//! Read-write workload: bulk-load half the dataset, apply CSV once, then
//! insert the other half in batches of 0.1·n while measuring query times and
//! storage after every batch — the paper's §6.3 protocol.
//!
//! Run with: `cargo run --release --example readwrite_workload [num_keys] [alpha]`

use csv_common::traits::LearnedIndex;
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{Dataset, ReadWriteWorkload};
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use std::time::Instant;

fn avg_query_ns<I: LearnedIndex>(index: &I, queries: &[u64]) -> f64 {
    let start = Instant::now();
    let mut found = 0usize;
    for &q in queries {
        if index.get(q).is_some() {
            found += 1;
        }
    }
    assert_eq!(found, queries.len());
    start.elapsed().as_nanos() as f64 / queries.len() as f64
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let alpha: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let dataset = Dataset::Osm;
    println!("dataset = {} ({n} keys), alpha = {alpha}", dataset.name());

    let keys = dataset.generate(n, 13);
    let workload = ReadWriteWorkload::split(&keys, 5, 0.1, 20_000, 2024);
    let records = records_from_keys(&workload.initial_keys);

    let mut original = LippIndex::bulk_load(&records);
    let mut enhanced = LippIndex::bulk_load(&records);
    let report = CsvOptimizer::new(CsvConfig::for_lipp(alpha)).optimize(&mut enhanced);
    println!(
        "CSV applied once to the half-loaded index: {} sub-trees rebuilt, {} virtual points, {:?} pre-processing\n",
        report.subtrees_rebuilt, report.virtual_points_added, report.preprocessing_time
    );

    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>16} {:>16}",
        "batch", "orig ns/query", "CSV ns/query", "saved (%)", "orig size (MiB)", "CSV size (MiB)"
    );
    let report_line =
        |batch: usize, original: &LippIndex, enhanced: &LippIndex, queries: &[u64]| {
            let orig_ns = avg_query_ns(original, queries);
            let enh_ns = avg_query_ns(enhanced, queries);
            println!(
                "{:>6} {:>14.1} {:>14.1} {:>12.1} {:>16.2} {:>16.2}",
                batch,
                orig_ns,
                enh_ns,
                (orig_ns - enh_ns) / orig_ns * 100.0,
                original.stats().size_bytes as f64 / (1 << 20) as f64,
                enhanced.stats().size_bytes as f64 / (1 << 20) as f64,
            );
        };

    report_line(0, &original, &enhanced, &workload.queries);
    for (i, batch) in workload.insert_batches.iter().enumerate() {
        let t0 = Instant::now();
        for &k in batch {
            original.insert(k, k);
        }
        let orig_insert = t0.elapsed();
        let t1 = Instant::now();
        for &k in batch {
            enhanced.insert(k, k);
        }
        let enh_insert = t1.elapsed();
        println!(
            "   -- insert batch {}: original {:.1} ns/insert, CSV-enhanced {:.1} ns/insert",
            i + 1,
            orig_insert.as_nanos() as f64 / batch.len() as f64,
            enh_insert.as_nanos() as f64 / batch.len() as f64
        );
        report_line(i + 1, &original, &enhanced, &workload.queries);
    }
}
