//! End-to-end serving: a thread-per-core TCP server over the sharded,
//! CSV-optimised index, exercised in-process by the blocking client.
//!
//! This walks the whole stack the `csv-index --serve` mode wires up:
//! bulk load → CSV optimise → spawn the maintenance engine → bind a
//! loopback server whose workers pin RCU `ReadView`s → speak the
//! length-prefixed, CRC-checked binary protocol — then drives a short
//! YCSB-B run through the load generator and shuts everything down.
//!
//! Run with: `cargo run --release --example serving`

use csv_concurrent::{
    MaintenanceConfig, MaintenanceEngine, ReadPath, ShardedIndex, ShardingConfig,
};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::Dataset;
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use csv_server::{run_loadgen, spawn, Client, LoadgenConfig, MixChoice, ServerConfig, WriteOp};
use std::sync::Arc;
use std::time::Duration;

const KEYS: usize = 200_000;
const SEED: u64 = 42;

fn main() {
    // 1. Build the index the server will serve: sharded LIPP on the RCU
    //    read path, smoothed by CSV, with the maintenance engine ticking
    //    splits/merges/re-optimisation behind the scenes.
    let keys = Dataset::Genome.generate(KEYS, SEED);
    let index = Arc::new(ShardedIndex::<LippIndex>::bulk_load(
        &records_from_keys(&keys),
        ShardingConfig::with_shards(8).with_read_path(ReadPath::Rcu),
    ));
    index.optimize(&CsvOptimizer::new(CsvConfig::for_lipp(0.1)));
    let engine = MaintenanceEngine::new(
        CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
        MaintenanceConfig::default(),
    );
    let engine_handle = engine.spawn(Arc::clone(&index));

    // 2. Bind an ephemeral loopback port (port 0 → the OS picks) with two
    //    workers; each worker pins an RCU ReadView so point reads touch no
    //    atomics on the hot path.
    let server = spawn(
        Arc::clone(&index),
        Some(engine_handle),
        ServerConfig {
            port: 0,
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("binding a loopback port");
    let addr = server.local_addr();
    println!("serving {} keys on {addr} with 2 workers", index.len());

    // 3. Talk to it with the blocking client: point reads, a batched
    //    MultiGet (one frame, N answers), a bounded range scan, writes.
    let mut client = Client::connect(addr).expect("connecting over loopback");
    let k = keys[KEYS / 2];
    println!("get({k})            -> {:?}", client.get(k).unwrap());
    let batch = [keys[10], keys[20], keys.last().unwrap() + 1];
    println!(
        "multi_get(3 keys)   -> {:?} (last one misses)",
        client.multi_get(&batch).unwrap()
    );
    let scan = client.range(keys[100], keys[160], 5).unwrap();
    println!(
        "range(.., limit=5)  -> {} records, first key {}, truncated={}",
        scan.records.len(),
        scan.records[0].key,
        scan.truncated
    );
    let fresh = client.insert(keys.last().unwrap() + 7, 1234).unwrap();
    println!("insert(new key)     -> fresh={fresh}");
    let (inserts, hits) = client
        .write_batch(&[
            WriteOp::Insert { key: 1, value: 2 },
            WriteOp::Remove { key: 1 },
        ])
        .unwrap();
    println!("write_batch(2 ops)  -> {inserts} fresh inserts, {hits} remove hits");
    let stats = client.stats().unwrap();
    println!(
        "stats               -> {} keys, {} shards, rcu={}, engine_healthy={}",
        stats.keys, stats.shards, stats.rcu, stats.engine_healthy
    );

    // 4. Put the server under load: a short YCSB-B run (95% reads, 5%
    //    updates, Zipfian popularity) over four connections, with reads
    //    batched 16-to-a-frame, then a protocol-level shutdown.
    let report = run_loadgen(&LoadgenConfig {
        addr: addr.to_string(),
        connections: 4,
        duration: Duration::from_secs(2),
        mix: MixChoice::YcsbB,
        dataset: Dataset::Genome,
        size: KEYS,
        seed: SEED,
        batch: 16,
        shutdown: true,
        ..LoadgenConfig::default()
    })
    .expect("the loadgen run completes");
    println!("\n{}", report.render());

    // 5. `--shutdown` stopped the server; join returns its counters and
    //    the maintenance engine's final stats.
    let summary = server.join();
    println!(
        "server: {} connections, {} ops, {} protocol errors, engine healthy: {}",
        summary.connections, summary.ops, summary.protocol_errors, summary.engine_healthy
    );
    if let Some(engine) = summary.engine_stats {
        println!(
            "engine: {} maintenance passes, {} splits, {} merges",
            engine.maintain_passes, engine.splits, engine.merges
        );
    }
}
