//! Crash-safe durability for the sharded index: checkpoint + WAL + recovery.
//!
//! The paper's pipeline is in-memory; this example demonstrates the
//! durability layer grown around it. A sharded LIPP index is bulk-loaded
//! with a per-shard checkpoint + write-ahead-log sink attached, absorbs a
//! burst of writes (some checkpointed by an explicit fold, some only
//! WAL-logged), then "crashes" — the process state is dropped without any
//! orderly shutdown. Recovery rebuilds the index from the store directory
//! alone and the example verifies every acknowledged write survived.
//!
//! Run with: `cargo run --release --example recovery`

use csv_concurrent::{OverlayRepr, ReadPath, ShardedIndex, ShardingConfig};
use csv_datasets::Dataset;
use csv_durability::{recover, DurabilityConfig, FileSink, FsyncPolicy};
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use std::sync::Arc;

const KEYS: usize = 200_000;
const LOGGED_WRITES: u64 = 30_000;

fn main() {
    let data_dir =
        std::env::temp_dir().join(format!("csv_recovery_example_{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();

    let keys = Dataset::Genome.generate(KEYS, 5);
    let records = records_from_keys(&keys);
    let sharding = || {
        ShardingConfig::with_shards(16)
            .with_read_path(ReadPath::Rcu)
            .with_overlay(OverlayRepr::Persistent)
    };

    // 1. Create the store and load the index through it: every shard gets a
    //    base checkpoint, then every acknowledged write is WAL-logged
    //    before its snapshot publishes.
    let sink = Arc::new(
        FileSink::create(DurabilityConfig::new(&data_dir).with_fsync(FsyncPolicy::OnCheckpoint))
            .expect("create store"),
    );
    let index = ShardedIndex::<LippIndex>::bulk_load_durable(&records, sharding(), sink.clone());
    println!(
        "store created in {} ({} shards, {} keys)",
        data_dir.display(),
        index.num_shards(),
        index.len()
    );

    // 2. A write burst. Fresh keys interleave with the loaded ones so the
    //    writes spread across shards; deep overlays fold along the way,
    //    checkpointing some shards and truncating their logs.
    let base = *keys.last().unwrap() + 1;
    for i in 0..LOGGED_WRITES {
        index.insert(base + i * 2, i);
    }
    // One explicit checkpoint: shard 0's overlay folds into its base and
    // its WAL restarts empty, exactly what a maintenance checkpoint tick
    // does when the backlog threshold trips.
    index.checkpoint_shard(0);
    let expected_len = index.len();
    let persisted = sink.stats();
    println!(
        "burst absorbed: {} keys live, {} checkpoints written, {} wal records logged",
        expected_len, persisted.checkpoints, persisted.wal_records
    );

    // 3. Crash. No shutdown, no final checkpoint — the only survivors are
    //    the files the sink already wrote.
    drop(index);
    drop(sink);
    println!("simulated crash: process state dropped without shutdown");

    // 4. Recovery: checkpoints load, WAL tails replay, staleness counters
    //    re-arm, and the store is re-checkpointed under fresh epochs.
    let recovered = recover::<LippIndex>(DurabilityConfig::new(&data_dir), sharding())
        .expect("store must recover");
    let report = &recovered.report;
    println!(
        "recovered {} shards / {} keys in {:.2}ms ({} wal records replayed, {} torn shards)",
        report.shards.len(),
        report.keys,
        report.elapsed.as_secs_f64() * 1_000.0,
        report.replayed(),
        report.torn_shards()
    );

    // 5. Verify: every acknowledged write is back.
    assert_eq!(
        recovered.index.len(),
        expected_len,
        "no acknowledged write may be lost"
    );
    for i in 0..LOGGED_WRITES {
        assert_eq!(
            recovered.index.get(base + i * 2),
            Some(i),
            "logged write {i} must survive the crash"
        );
    }
    let sample = keys[keys.len() / 2];
    assert_eq!(recovered.index.get(sample), Some(sample));
    println!("verified: all {LOGGED_WRITES} logged writes and the bulk-loaded keys survived");

    std::fs::remove_dir_all(&data_dir).ok();
}
