//! YCSB-style mixed workloads over every index in the workspace, with and
//! without CSV optimisation.
//!
//! The paper's evaluation focuses on point lookups over promoted keys; a
//! downstream adopter also needs to know how the CSV-enhanced structures
//! behave under steady-state mixes of reads, writes, removals and short
//! scans. This example replays the same deterministic operation sequence
//! against ALEX, LIPP, SALI, PGM and the B+-tree and reports wall-clock
//! throughput per mix.
//!
//! Run with: `cargo run --release --example mixed_operations`

use csv_alex::AlexIndex;
use csv_btree::BPlusTree;
use csv_common::traits::{LearnedIndex, RangeIndex, RemovableIndex};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{
    Dataset, MixedWorkload, MixedWorkloadSpec, Operation, OperationMix, Popularity,
};
use csv_lipp::LippIndex;
use csv_pgm::PgmIndex;
use csv_repro::records_from_keys;
use csv_sali::SaliIndex;
use std::time::Instant;

const KEYS: usize = 200_000;
const OPS: usize = 100_000;

fn run<I: LearnedIndex + RangeIndex + RemovableIndex>(
    label: &str,
    mut index: I,
    workload: &MixedWorkload,
) {
    let started = Instant::now();
    let mut hits = 0usize;
    let mut scanned = 0usize;
    for op in &workload.operations {
        match *op {
            Operation::Read(k) => hits += usize::from(index.get(k).is_some()),
            Operation::Insert(k) => {
                index.insert(k, k);
            }
            Operation::Remove(k) => hits += usize::from(index.remove(k).is_some()),
            Operation::Scan(lo, hi) => scanned += index.range(lo, hi).len(),
        }
    }
    let elapsed = started.elapsed();
    let mops = workload.operations.len() as f64 / elapsed.as_secs_f64() / 1e6;
    println!(
        "    {:<22} {:>8.2} Mops/s   ({} point hits, {} records scanned)",
        label, mops, hits, scanned
    );
}

fn main() {
    let keys = Dataset::Osm.generate(KEYS, 7);
    let records = records_from_keys(&keys);

    for (mix_name, mix, popularity) in [
        (
            "YCSB-A (50/50 read/update, zipfian)",
            OperationMix::ycsb_a(),
            Popularity::Zipfian(0.99),
        ),
        (
            "YCSB-B (95/5 read/update, zipfian)",
            OperationMix::ycsb_b(),
            Popularity::Zipfian(0.99),
        ),
        (
            "YCSB-E (95% short scans)",
            OperationMix::ycsb_e(),
            Popularity::Uniform,
        ),
        (
            "Churn (reads/inserts/removes/scans)",
            OperationMix::churn(),
            Popularity::Uniform,
        ),
    ] {
        let spec = MixedWorkloadSpec {
            num_operations: OPS,
            mix,
            popularity,
            scan_width: 100,
            seed: 99,
        };
        let workload = MixedWorkload::generate(&keys, &spec);
        let (reads, inserts, removes, scans) = workload.op_counts();
        println!(
            "\n== {mix_name}: {reads} reads / {inserts} inserts / {removes} removes / {scans} scans =="
        );

        run("B+Tree", BPlusTree::bulk_load(&records), &workload);
        run("PGM", PgmIndex::bulk_load(&records), &workload);
        run("ALEX", AlexIndex::bulk_load(&records), &workload);
        run("LIPP", LippIndex::bulk_load(&records), &workload);
        run("SALI", SaliIndex::bulk_load(&records), &workload);

        let mut lipp_csv = LippIndex::bulk_load(&records);
        CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut lipp_csv);
        run("LIPP + CSV (alpha=0.1)", lipp_csv, &workload);

        let mut alex_csv = AlexIndex::bulk_load(&records);
        CsvOptimizer::new(CsvConfig::for_alex(
            0.1,
            csv_core::cost::CostModel::default(),
        ))
        .optimize(&mut alex_csv);
        run("ALEX + CSV (alpha=0.1)", alex_csv, &workload);
    }
}
