//! Multi-threaded read scalability of a sharded, CSV-optimised learned index.
//!
//! SALI's motivation (and the benchmark framework the paper builds on) is
//! concurrent operation. This example shards a LIPP index, applies CSV to
//! every shard, and measures aggregate lookup throughput as the number of
//! reader threads grows — demonstrating that the CSV optimisation composes
//! with shard-level parallelism.
//!
//! Run with: `cargo run --release --example concurrent_reads`

use csv_concurrent::{
    run_read_throughput, run_read_throughput_pinned, ShardedIndex, ShardingConfig,
};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{Dataset, ReadOnlyWorkload, Zipfian};
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;

const KEYS: usize = 400_000;
const QUERIES: usize = 400_000;

fn main() {
    let keys = Dataset::Genome.generate(KEYS, 5);
    let records = records_from_keys(&keys);

    // The default config serves lookups through lock-free RCU snapshots.
    let plain = ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig::with_shards(16));
    let enhanced = ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig::with_shards(16));
    // All 16 shards are optimised concurrently on the rayon pool.
    enhanced.optimize(&CsvOptimizer::new(CsvConfig::for_lipp(0.1)));
    println!(
        "Sharded LIPP over {KEYS} Genome-like keys: {} shards, {} keys, {:.1} MiB (plain) vs {:.1} MiB (CSV)",
        plain.num_shards(),
        plain.len(),
        plain.stats().size_bytes as f64 / (1024.0 * 1024.0),
        enhanced.stats().size_bytes as f64 / (1024.0 * 1024.0),
    );

    let uniform = ReadOnlyWorkload::uniform(keys.clone(), QUERIES, 11).queries;
    let skewed = Zipfian::new(keys.len(), 0.99, 13).sample_keys(&keys, QUERIES);

    for (label, queries) in [("uniform", &uniform), ("zipfian 0.99", &skewed)] {
        println!("\n== {label} queries ==");
        println!(
            "{:>8} {:>18} {:>18} {:>18} {:>10}",
            "threads", "plain (Mops/s)", "CSV (Mops/s)", "CSV pinned (Mops/s)", "hit rate"
        );
        for threads in [1usize, 2, 4, 8] {
            let base = run_read_throughput(&plain, queries, threads);
            let opt = run_read_throughput(&enhanced, queries, threads);
            // The read-mostly fast path: each worker pins the shard
            // snapshots once and serves its whole chunk from them.
            let pinned = run_read_throughput_pinned(&enhanced, queries, threads);
            println!(
                "{:>8} {:>18.2} {:>18.2} {:>18.2} {:>9.1}%",
                threads,
                base.lookups_per_second() / 1e6,
                opt.lookups_per_second() / 1e6,
                pinned.lookups_per_second() / 1e6,
                opt.hit_rate() * 100.0
            );
            assert_eq!(base.hits, opt.hits, "CSV must not change lookup answers");
            assert_eq!(
                pinned.hits, opt.hits,
                "pinning must not change lookup answers"
            );
        }
    }
}
