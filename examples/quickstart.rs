//! Quickstart: smooth a small key segment with virtual points and inspect
//! the loss reduction — the paper's Fig. 2 running example.
//!
//! Run with: `cargo run --release --example quickstart`

use csv_core::paper_example::{fig2_keys, reported, FIG2_ALPHA};
use csv_core::{exhaustive_smooth, smooth_segment, SmoothingConfig};

fn main() {
    let keys = fig2_keys();
    println!("Key set (reconstructed Fig. 2a example): {keys:?}");

    let config = SmoothingConfig::with_alpha(FIG2_ALPHA);
    let result = smooth_segment(&keys, &config);

    println!(
        "\n== CDF smoothing with alpha = {FIG2_ALPHA} (budget = {}) ==",
        result.budget
    );
    println!(
        "loss before smoothing  L_f(K)        = {:.3}  (paper: {:.2})",
        result.loss_before,
        reported::LOSS_BEFORE
    );
    println!(
        "loss after  (real keys) L_f'(K)      = {:.3}  (paper: {:.2})",
        result.loss_after_real,
        reported::LOSS_AFTER_REAL
    );
    println!(
        "loss after  (all points) L_f'(K u V) = {:.3}  (paper: {:.2})",
        result.loss_after_all,
        reported::LOSS_AFTER_ALL
    );
    println!("virtual points inserted: {:?}", result.virtual_points);
    println!("loss improvement: {:.1}%", result.improvement_percent());

    println!("\nSmoothed layout (slot -> entry):");
    for (slot, entry) in result.layout.entries().iter().enumerate() {
        let kind = if entry.is_real() {
            "real   "
        } else {
            "virtual"
        };
        println!("  slot {slot:>2}: {kind} {}", entry.key());
    }

    if let Some(exact) = exhaustive_smooth(&keys, FIG2_ALPHA, 64) {
        println!("\n== Exhaustive baseline (Table 2) ==");
        println!(
            "greedy (CSV) loss:  {:.3}  (paper: {:.3})",
            result.loss_after_all,
            reported::TABLE2_CSV
        );
        println!(
            "exhaustive loss:    {:.3}  (paper: {:.3})",
            exact.loss_after_all,
            reported::TABLE2_EXHAUSTIVE
        );
        println!(
            "subsets evaluated by the exhaustive search: {}",
            exact.subsets_evaluated
        );
    }
}
