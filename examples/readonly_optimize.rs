//! Read-only workload optimisation: build LIPP and ALEX over a hard dataset,
//! apply CSV, and compare query cost, structure and storage — the scenario of
//! the paper's §6.2.
//!
//! Run with: `cargo run --release --example readonly_optimize [num_keys] [alpha]`

use csv_alex::AlexIndex;
use csv_common::metrics::CostCounters;
use csv_common::traits::LearnedIndex;
use csv_core::cost::CostModel;
use csv_core::{CsvConfig, CsvIntegrable, CsvOptimizer};
use csv_datasets::{Dataset, ReadOnlyWorkload};
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use std::time::Instant;

fn measure<I: LearnedIndex>(index: &I, queries: &[u64]) -> (f64, f64) {
    let mut counters = CostCounters::new();
    let start = Instant::now();
    let mut found = 0usize;
    for &q in queries {
        if index.get_counted(q, &mut counters).is_some() {
            found += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(found, queries.len(), "every query key must be present");
    (
        elapsed.as_nanos() as f64 / queries.len() as f64,
        counters.abstract_cost() as f64 / queries.len() as f64,
    )
}

fn optimize_and_report<I>(name: &str, mut index: I, config: CsvConfig, workload: &ReadOnlyWorkload)
where
    I: LearnedIndex + CsvIntegrable,
{
    let before_stats = index.stats();
    let (ns_before, cost_before) = measure(&index, &workload.queries);

    let report = CsvOptimizer::new(config).optimize(&mut index);

    let after_stats = index.stats();
    let (ns_after, cost_after) = measure(&index, &workload.queries);

    println!("== {name} ==");
    println!(
        "  CSV pre-processing time : {:?}",
        report.preprocessing_time
    );
    println!(
        "  sub-trees considered / rebuilt : {} / {}",
        report.subtrees_considered(),
        report.subtrees_rebuilt
    );
    println!(
        "  virtual points added    : {}",
        report.virtual_points_added
    );
    println!(
        "  mean key level          : {:.3} -> {:.3}",
        before_stats.mean_key_level(),
        after_stats.mean_key_level()
    );
    println!(
        "  index nodes             : {} -> {}",
        before_stats.node_count, after_stats.node_count
    );
    println!(
        "  index size              : {:.2} MiB -> {:.2} MiB ({:+.1}%)",
        before_stats.size_bytes as f64 / (1 << 20) as f64,
        after_stats.size_bytes as f64 / (1 << 20) as f64,
        (after_stats.size_bytes as f64 / before_stats.size_bytes as f64 - 1.0) * 100.0
    );
    println!("  avg query latency       : {ns_before:.0} ns -> {ns_after:.0} ns");
    println!("  avg abstract query cost : {cost_before:.2} -> {cost_after:.2}");
    println!();
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let alpha: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let dataset = Dataset::Genome;
    println!(
        "dataset = {} ({n} keys), smoothing threshold alpha = {alpha}\n",
        dataset.name()
    );

    let keys = dataset.generate(n, 7);
    let workload = ReadOnlyWorkload::uniform(keys.clone(), 20_000, 99);
    let records = records_from_keys(&keys);

    optimize_and_report(
        "LIPP + CSV",
        LippIndex::bulk_load(&records),
        CsvConfig::for_lipp(alpha),
        &workload,
    );
    optimize_and_report(
        "ALEX + CSV",
        AlexIndex::bulk_load(&records),
        CsvConfig::for_alex(alpha, CostModel::default()),
        &workload,
    );
}
