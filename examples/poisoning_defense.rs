//! Poisoning attack vs. CDF smoothing defence.
//!
//! Section 2.3 of the paper roots CDF smoothing in data-poisoning attacks on
//! learned indexes: an adversary inserts keys that *maximise* the indexing
//! function's loss, while CSV inserts virtual points that *minimise* it.
//! This example runs both directions on segments drawn from every dataset
//! analogue and shows (1) how much damage a small poisoning budget does and
//! (2) how much of that damage a CSV-style smoothing pass claws back.
//!
//! Run with: `cargo run --release --example poisoning_defense`

use csv_core::poisoning::{poison_segment, smoothing_counteracts_poisoning, PoisoningConfig};
use csv_core::{smooth_segment, SmoothingConfig};
use csv_datasets::Dataset;

fn main() {
    let segment_size = 4_096;
    let poison_alpha = 0.05;
    let smooth_alpha = 0.2;

    println!(
        "Poisoning budget: {:.0}% of the segment; smoothing budget: {:.0}%\n",
        poison_alpha * 100.0,
        smooth_alpha * 100.0
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>14} {:>14}",
        "dataset", "loss (clean)", "loss (poisoned)", "damage", "loss (smoothed)", "recovered"
    );

    for dataset in Dataset::paper_datasets() {
        // A contiguous segment, mimicking the key set of one index node.
        let keys = dataset.generate(segment_size, 17);

        let attack = poison_segment(&keys, &PoisoningConfig::with_alpha(poison_alpha));
        let (poisoned_loss, repaired_loss) =
            smoothing_counteracts_poisoning(&keys, poison_alpha, smooth_alpha);

        let damage = if attack.loss_before > 0.0 {
            attack.loss_after_real / attack.loss_before
        } else {
            1.0
        };
        let recovered = if poisoned_loss > 0.0 {
            (poisoned_loss - repaired_loss) / poisoned_loss * 100.0
        } else {
            0.0
        };
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>11.2}x {:>14.1} {:>13.1}%",
            dataset.name(),
            attack.loss_before,
            attack.loss_after_real,
            damage,
            repaired_loss,
            recovered
        );
    }

    // The defensive reading in isolation: smoothing an un-poisoned segment
    // for comparison.
    println!("\nBaseline smoothing of clean segments (no attack):");
    for dataset in Dataset::paper_datasets() {
        let keys = dataset.generate(segment_size, 17);
        let smoothed = smooth_segment(&keys, &SmoothingConfig::with_alpha(smooth_alpha));
        println!(
            "  {:<10} loss {:.1} -> {:.1}  ({:.1}% better, {} virtual points)",
            dataset.name(),
            smoothed.loss_before,
            smoothed.loss_after_real,
            smoothed.improvement_percent(),
            smoothed.virtual_points.len()
        );
    }
}
