//! Per-level query-time breakdown of LIPP over the four dataset analogues —
//! the scenario of the paper's Fig. 1 (keys indexed deeper in the hierarchy
//! are slower to query).
//!
//! Run with: `cargo run --release --example level_analysis [num_keys]`

use csv_common::metrics::CostCounters;
use csv_common::traits::LearnedIndex;
use csv_datasets::Dataset;
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    println!("Building LIPP over {n} keys per dataset and measuring per-level lookup cost\n");
    println!(
        "{:<10} {:>5} {:>12} {:>16} {:>18}",
        "dataset", "level", "keys", "avg ns/query", "avg nodes visited"
    );

    for dataset in Dataset::paper_datasets() {
        let keys = dataset.generate(n, 42);
        let index = LippIndex::bulk_load(&records_from_keys(&keys));
        let stats = index.stats();

        // Group sampled keys by the level they are stored at.
        let mut by_level: Vec<Vec<u64>> = vec![Vec::new(); stats.height + 1];
        for &k in keys.iter().step_by(17) {
            if let Some(level) = index.level_of_key(k) {
                by_level[level].push(k);
            }
        }
        for (level, sample) in by_level.iter().enumerate() {
            if sample.is_empty() {
                continue;
            }
            let mut counters = CostCounters::new();
            let start = Instant::now();
            let mut found = 0usize;
            for &k in sample {
                if index.get_counted(k, &mut counters).is_some() {
                    found += 1;
                }
            }
            let elapsed = start.elapsed();
            assert_eq!(found, sample.len());
            println!(
                "{:<10} {:>5} {:>12} {:>16.1} {:>18.2}",
                dataset.name(),
                level,
                stats.level_histogram.at(level),
                elapsed.as_nanos() as f64 / sample.len() as f64,
                counters.nodes_visited as f64 / sample.len() as f64,
            );
        }
        println!();
    }
    println!("Deeper levels cost more per query — the effect CSV removes by promoting keys.");
}
