//! Property-based tests for the extension modules (poisoning, quadratic
//! smoothing, SOSD I/O, Zipfian sampling, latency histogram, sharded
//! concurrency) on randomly generated inputs.

use csv_common::latency::LatencyHistogram;
use csv_common::quadratic::QuadraticModel;
use csv_common::traits::{LearnedIndex, RangeIndex, RemovableIndex};
use csv_common::{Key, LinearModel};
use csv_concurrent::{ReadPath, ShardedIndex, ShardingConfig};
use csv_core::poisoning::{poison_segment, PoisoningConfig};
use csv_core::{
    smooth_segment, smooth_segment_quadratic, GreedyMode, QuadraticSmoothingConfig, SmoothingConfig,
};
use csv_datasets::io::{decode_keys, encode_keys};
use csv_datasets::Zipfian;
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use proptest::collection::{btree_set, vec as pvec};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Random sorted, unique key sets of modest size with gaps.
fn key_set() -> impl Strategy<Value = Vec<Key>> {
    btree_set(0u64..2_000_000, 4..200).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn smoothing_never_increases_loss_and_poisoning_never_decreases_it(keys in key_set(), alpha in 0.05f64..0.8) {
        let smoothed = smooth_segment(&keys, &SmoothingConfig::with_alpha(alpha));
        prop_assert!(smoothed.loss_after_all <= smoothed.loss_before + 1e-6);
        prop_assert!(smoothed.virtual_points.len() <= smoothed.budget);

        let poisoned = poison_segment(&keys, &PoisoningConfig::with_alpha(alpha));
        prop_assert!(poisoned.loss_after_real >= poisoned.loss_before - 1e-6);
        prop_assert!(poisoned.poison_points.len() <= poisoned.budget);
        // Neither direction may duplicate an existing key.
        for v in smoothed.virtual_points.iter().chain(poisoned.poison_points.iter()) {
            prop_assert!(keys.binary_search(v).is_err());
        }
    }

    #[test]
    fn lazy_drift_tolerance_zero_is_bit_identical_to_the_default(keys in key_set(), alpha in 0.05f64..0.8) {
        // The satellite contract of `SmoothingConfig::drift_tolerance`: the
        // default (0) keeps the lazy driver bit-identical to the exact
        // fallback behaviour, so spelling the field out changes nothing.
        let base = SmoothingConfig { mode: GreedyMode::Lazy, ..SmoothingConfig::with_alpha(alpha) };
        let explicit = SmoothingConfig { drift_tolerance: 0.0, ..base };
        let defaulted = smooth_segment(&keys, &base);
        prop_assert_eq!(&defaulted, &smooth_segment(&keys, &explicit));
        // A positive tolerance only removes fallbacks, and every insertion
        // it admits still strictly reduces the loss.
        let tolerant = smooth_segment(&keys, &SmoothingConfig { drift_tolerance: 0.5, ..base });
        prop_assert!(tolerant.counters.fallback_rescans <= defaulted.counters.fallback_rescans);
        prop_assert!(tolerant.loss_after_all <= tolerant.loss_before + 1e-6);
    }

    #[test]
    fn quadratic_fit_never_loses_to_linear_fit(keys in key_set()) {
        let lin = LinearModel::fit_cdf(&keys).sse_cdf(&keys);
        let quad = QuadraticModel::fit_cdf(&keys).sse_cdf(&keys);
        // OLS over a strictly larger model class: the optimum cannot be worse
        // (allow a tiny tolerance for the numerical solve).
        prop_assert!(quad <= lin * (1.0 + 1e-6) + 1e-6, "quad {quad} vs lin {lin}");
    }

    #[test]
    fn quadratic_smoothing_reduces_loss_and_preserves_real_keys(keys in key_set()) {
        let result = smooth_segment_quadratic(&keys, &QuadraticSmoothingConfig::with_alpha(0.2));
        prop_assert!(result.loss_after_all <= result.loss_before + 1e-6);
        let real: Vec<Key> = result.entries.iter().filter(|e| e.is_real()).map(|e| e.key()).collect();
        prop_assert_eq!(real, keys);
    }

    #[test]
    fn sosd_roundtrip_is_lossless(keys in pvec(any::<u64>(), 0..500)) {
        let decoded = decode_keys(&encode_keys(&keys)).unwrap();
        prop_assert_eq!(decoded, keys);
    }

    #[test]
    fn zipfian_ranks_stay_in_bounds(n in 1usize..5_000, theta in 0.05f64..0.99, seed in any::<u64>()) {
        let mut z = Zipfian::new(n, theta, seed);
        for _ in 0..200 {
            prop_assert!(z.next_rank() < n);
        }
    }

    #[test]
    fn latency_histogram_quantiles_are_ordered_and_bounded(samples in pvec(1u64..10_000_000_000, 1..300)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record_ns(s);
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert_eq!(h.count(), samples.len() as u64);
        let p50 = h.p50_ns();
        let p99 = h.p99_ns();
        prop_assert!(p50 <= p99);
        prop_assert!(p50 >= min && p99 <= max);
        prop_assert!(h.mean_ns() >= min as f64 && h.mean_ns() <= max as f64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lipp_range_and_remove_match_btreemap(keys in btree_set(0u64..500_000, 64..400), ops in pvec((any::<u64>(), 0u8..4), 1..120) ) {
        let keys: Vec<Key> = keys.into_iter().collect();
        let mut index = LippIndex::bulk_load(&records_from_keys(&keys));
        let mut oracle: BTreeMap<Key, u64> = keys.iter().map(|&k| (k, k)).collect();
        for (raw, kind) in ops {
            let k = raw % 600_000;
            match kind {
                0 => prop_assert_eq!(index.get(k), oracle.get(&k).copied()),
                1 => prop_assert_eq!(index.insert(k, raw), oracle.insert(k, raw).is_none()),
                2 => prop_assert_eq!(index.remove(k), oracle.remove(&k)),
                _ => {
                    let hi = k.saturating_add(raw % 10_000);
                    let got: Vec<Key> = index.range(k, hi).iter().map(|r| r.key).collect();
                    let expected: Vec<Key> = oracle.range(k..=hi).map(|(&k, _)| k).collect();
                    prop_assert_eq!(got, expected);
                }
            }
        }
        prop_assert_eq!(index.len(), oracle.len());
    }

    #[test]
    fn sharded_index_agrees_with_flat_index(keys in btree_set(0u64..1_000_000, 32..300), shards in 1usize..12) {
        let keys: Vec<Key> = keys.into_iter().collect();
        let records = records_from_keys(&keys);
        let flat = LippIndex::bulk_load(&records);
        let sharded = ShardedIndex::<LippIndex>::bulk_load(
            &records,
            ShardingConfig::with_shards(shards),
        );
        prop_assert_eq!(sharded.len(), flat.len());
        for &k in keys.iter().step_by(7) {
            prop_assert_eq!(sharded.get(k), flat.get(k));
        }
        let lo = keys[keys.len() / 4];
        let hi = keys[3 * keys.len() / 4];
        prop_assert_eq!(sharded.range(lo, hi), flat.range(lo, hi));
        // The locked read path must agree with the (default) RCU one.
        let locked = ShardedIndex::<LippIndex>::bulk_load(
            &records,
            ShardingConfig::with_shards(shards).with_read_path(ReadPath::Locked),
        );
        prop_assert_eq!(locked.len(), sharded.len());
        for &k in keys.iter().step_by(11) {
            prop_assert_eq!(locked.get(k), sharded.get(k));
        }
    }
}
