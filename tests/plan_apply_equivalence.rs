//! Property tests pinning down the plan → apply lifecycle contract:
//! `CsvOptimizer::plan` followed by `CsvPlan::apply` is observationally
//! identical to the fused `CsvOptimizer::optimize` — same report, same
//! rebuilt structure, same lookups — on any dataset and smoothing
//! threshold, and planning alone never mutates the index.

use csv_common::traits::LearnedIndex;
use csv_core::{CsvConfig, CsvOptimizer, Decision, PlannedAction};
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use proptest::collection::btree_set;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn plan_then_apply_matches_fused_optimize(
        keys in btree_set(0u64..3_000_000, 512..2_000),
        alpha in 0.05f64..0.4,
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let records = records_from_keys(&keys);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(alpha));

        let mut fused = LippIndex::bulk_load(&records);
        let fused_report = optimizer.optimize(&mut fused);

        let mut staged = LippIndex::bulk_load(&records);
        let before_plan = staged.stats();
        let plan = optimizer.plan(&staged);

        // Planning is a pure read: the index is structurally untouched and
        // the plan already knows everything the fused run will decide.
        prop_assert_eq!(&staged.stats(), &before_plan);
        prop_assert_eq!(plan.len(), fused_report.subtrees_considered());
        // An accepted layout can still be declined by the index at apply
        // time (e.g. the rebuilt node would demote keys), so the planned
        // rebuilds account for the applied ones plus the declined ones.
        prop_assert_eq!(
            plan.num_rebuilds(),
            fused_report.subtrees_rebuilt + fused_report.rebuilds_declined()
        );
        for (planned, outcome) in plan.decisions().iter().zip(&fused_report.outcomes) {
            prop_assert_eq!(planned.subtree, outcome.subtree);
            match (&planned.action, &outcome.decision) {
                (PlannedAction::Rebuild(_), Decision::Rebuilt)
                | (PlannedAction::Rebuild(_), Decision::Declined(_))
                | (PlannedAction::CostRejected, Decision::CostRejected) => {}
                (PlannedAction::Skipped(a), Decision::Skipped(b)) => prop_assert_eq!(a, b),
                (action, decision) => prop_assert!(
                    false,
                    "planned {:?} but fused run decided {:?}",
                    action,
                    decision
                ),
            }
        }

        // Applying the plan reproduces the fused run: identical report
        // (outcome for outcome, in the same order) and identical structure.
        let staged_report = plan.apply(&mut staged);
        prop_assert_eq!(&fused_report.outcomes, &staged_report.outcomes);
        prop_assert_eq!(fused_report.subtrees_considered(), staged_report.subtrees_considered());
        prop_assert_eq!(fused_report.subtrees_rebuilt, staged_report.subtrees_rebuilt);
        prop_assert_eq!(fused_report.keys_rebuilt, staged_report.keys_rebuilt);
        prop_assert_eq!(fused_report.virtual_points_added, staged_report.virtual_points_added);
        prop_assert_eq!(fused_report.gap_refits, staged_report.gap_refits);
        prop_assert_eq!(staged.stats(), fused.stats());

        // Identical lookups: every loaded key hits in both, probes around
        // the key range miss in both.
        for &k in &keys {
            prop_assert_eq!(staged.get(k), Some(k));
            prop_assert_eq!(staged.get(k), fused.get(k));
        }
        for probe in [0u64, 1_500_000, 2_999_999, 3_000_001] {
            prop_assert_eq!(staged.get(probe), fused.get(probe));
        }
    }
}
