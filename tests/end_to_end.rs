//! Cross-crate integration tests: every dataset analogue × every index,
//! with and without CSV optimisation.

use csv_alex::AlexIndex;
use csv_btree::BPlusTree;
use csv_common::traits::LearnedIndex;
use csv_core::cost::CostModel;
use csv_core::{CsvConfig, CsvIntegrable, CsvOptimizer};
use csv_datasets::Dataset;
use csv_lipp::LippIndex;
use csv_pgm::PgmIndex;
use csv_repro::records_from_keys;
use csv_sali::SaliIndex;

const N: usize = 60_000;

fn check_all_present(index: &dyn LearnedIndex, keys: &[u64]) {
    assert_eq!(index.len(), keys.len());
    for &k in keys.iter().step_by(7) {
        assert_eq!(index.get(k), Some(k), "{}: key {k} lost", index.name());
    }
    // Probe a few keys that are guaranteed absent.
    for w in keys.windows(2).step_by(997) {
        if w[1] - w[0] > 1 {
            let missing = w[0] + 1;
            assert_eq!(
                index.get(missing),
                None,
                "{}: phantom key {missing}",
                index.name()
            );
        }
    }
}

#[test]
fn every_index_answers_every_dataset() {
    for dataset in Dataset::paper_datasets() {
        let keys = dataset.generate(N, 11);
        let records = records_from_keys(&keys);
        let indexes: Vec<Box<dyn LearnedIndex>> = vec![
            Box::new(LippIndex::bulk_load(&records)),
            Box::new(SaliIndex::bulk_load(&records)),
            Box::new(AlexIndex::bulk_load(&records)),
            Box::new(PgmIndex::bulk_load(&records)),
            Box::new(BPlusTree::bulk_load(&records)),
        ];
        for index in &indexes {
            check_all_present(index.as_ref(), &keys);
            let stats = index.stats();
            assert_eq!(stats.num_keys, keys.len(), "{} stats", index.name());
            assert_eq!(
                stats.level_histogram.total(),
                keys.len(),
                "{} histogram",
                index.name()
            );
        }
    }
}

fn csv_roundtrip<I>(mut index: I, keys: &[u64], config: CsvConfig) -> (f64, f64, usize)
where
    I: LearnedIndex + CsvIntegrable,
{
    let before = index.stats();
    let report = CsvOptimizer::new(config).optimize(&mut index);
    let after = index.stats();
    check_all_present(&index, keys);
    assert_eq!(after.level_histogram.total(), keys.len());
    (
        before.mean_key_level(),
        after.mean_key_level(),
        report.subtrees_rebuilt,
    )
}

#[test]
fn csv_preserves_answers_on_all_indexes_and_datasets() {
    for dataset in Dataset::paper_datasets() {
        let keys = dataset.generate(N, 23);
        let records = records_from_keys(&keys);

        let (lb, la, _) = csv_roundtrip(
            LippIndex::bulk_load(&records),
            &keys,
            CsvConfig::for_lipp(0.1),
        );
        assert!(
            la <= lb + 1e-9,
            "{}: LIPP mean level increased {lb} -> {la}",
            dataset.name()
        );

        let (sb, sa, _) = csv_roundtrip(
            SaliIndex::bulk_load(&records),
            &keys,
            CsvConfig::for_sali(0.1),
        );
        assert!(
            sa <= sb + 1e-9,
            "{}: SALI mean level increased {sb} -> {sa}",
            dataset.name()
        );

        let config = CsvConfig::for_alex(0.1, CostModel::default());
        let (_, _, _) = csv_roundtrip(AlexIndex::bulk_load(&records), &keys, config);
    }
}

#[test]
fn csv_promotes_keys_on_hard_datasets_for_lipp() {
    // The headline claim: on hard datasets a meaningful share of the deep
    // ("promotable") keys moves to upper levels, at bounded space overhead.
    for dataset in [Dataset::Osm, Dataset::Genome] {
        let keys = dataset.generate(N, 5);
        let records = records_from_keys(&keys);
        let mut index = LippIndex::bulk_load(&records);
        let before = index.stats();
        let promotable = before.level_histogram.at_or_below(3);
        let report = CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut index);
        let after = index.stats();

        assert!(
            report.subtrees_rebuilt > 0,
            "{}: nothing rebuilt",
            dataset.name()
        );
        let deep_after = after.level_histogram.at_or_below(3);
        assert!(
            deep_after <= promotable,
            "{}: deep keys increased {promotable} -> {deep_after}",
            dataset.name()
        );
        let space_increase =
            (after.size_bytes as f64 - before.size_bytes as f64) / before.size_bytes as f64 * 100.0;
        assert!(
            space_increase < 60.0,
            "{}: space increase {space_increase:.1}%",
            dataset.name()
        );
    }
}

#[test]
fn gap_insertion_competitor_uses_more_space_than_csv() {
    // Table 1's qualitative claim, backed quantitatively: for the same key
    // set, the GI technique's storage overhead exceeds the overhead CSV adds
    // to LIPP at the default smoothing threshold.
    let keys = Dataset::Genome.generate(N, 3);
    let records = records_from_keys(&keys);

    let mut index = LippIndex::bulk_load(&records);
    let before = index.stats().size_bytes as f64;
    CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut index);
    let csv_overhead = (index.stats().size_bytes as f64 / before - 1.0) * 100.0;

    let gi = csv_core::competitors::GapInsertionLayout::build(&keys, 1.8);
    let gi_overhead = gi.storage_overhead_percent();

    assert!(
        gi_overhead > csv_overhead,
        "GI overhead {gi_overhead:.1}% should exceed CSV overhead {csv_overhead:.1}%"
    );
}
