//! Read-write workload equivalence: after CSV optimisation and several insert
//! batches, every index must agree with a `BTreeMap` oracle.

use csv_alex::AlexIndex;
use csv_common::traits::LearnedIndex;
use csv_core::cost::CostModel;
use csv_core::{CsvConfig, CsvIntegrable, CsvOptimizer};
use csv_datasets::{Dataset, ReadWriteWorkload};
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use csv_sali::SaliIndex;
use std::collections::BTreeMap;

const N: usize = 40_000;

fn run_read_write<I>(mut index: I, workload: &ReadWriteWorkload)
where
    I: LearnedIndex + CsvIntegrable,
{
    let mut oracle: BTreeMap<u64, u64> = workload.initial_keys.iter().map(|&k| (k, k)).collect();
    // Apply CSV once after the initial bulk load, as in the paper's §6.3.
    CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut index);

    for batch in &workload.insert_batches {
        for &k in batch {
            index.insert(k, k);
            oracle.insert(k, k);
        }
        // After every batch the index and the oracle agree on sampled keys
        // and on the total size.
        assert_eq!(
            index.len(),
            oracle.len(),
            "{} length mismatch",
            index.name()
        );
        for (&k, &v) in oracle.iter().step_by(13) {
            assert_eq!(index.get(k), Some(v), "{}: lost key {k}", index.name());
        }
        for &q in workload.queries.iter().step_by(11) {
            assert_eq!(
                index.get(q),
                oracle.get(&q).copied(),
                "{}: query {q}",
                index.name()
            );
        }
    }
}

#[test]
fn lipp_read_write_equivalence() {
    let keys = Dataset::Osm.generate(N, 17);
    let workload = ReadWriteWorkload::split(&keys, 5, 0.1, 2_000, 7);
    run_read_write(
        LippIndex::bulk_load(&records_from_keys(&workload.initial_keys)),
        &workload,
    );
}

#[test]
fn sali_read_write_equivalence() {
    let keys = Dataset::Genome.generate(N, 29);
    let workload = ReadWriteWorkload::split(&keys, 5, 0.1, 2_000, 8);
    let mut sali = SaliIndex::bulk_load(&records_from_keys(&workload.initial_keys));
    // Exercise the SALI-specific flattening path before the generic check.
    sali.optimize_for_workload(&workload.queries);
    run_read_write(sali, &workload);
}

#[test]
fn alex_read_write_equivalence() {
    let keys = Dataset::Facebook.generate(N, 31);
    let workload = ReadWriteWorkload::split(&keys, 5, 0.1, 2_000, 9);
    let mut index = AlexIndex::bulk_load(&records_from_keys(&workload.initial_keys));
    // ALEX uses the Eq. 22 cost-model condition.
    CsvOptimizer::new(CsvConfig::for_alex(0.1, CostModel::default())).optimize(&mut index);
    let mut oracle: BTreeMap<u64, u64> = workload.initial_keys.iter().map(|&k| (k, k)).collect();
    for batch in &workload.insert_batches {
        for &k in batch {
            index.insert(k, k);
            oracle.insert(k, k);
        }
    }
    assert_eq!(index.len(), oracle.len());
    for (&k, &v) in oracle.iter().step_by(17) {
        assert_eq!(index.get(k), Some(v));
    }
}

#[test]
fn csv_gaps_absorb_insertions_into_smoothed_nodes() {
    // The paper's §6.3 observation: the slots left by virtual points are
    // reused by later insertions, so the CSV-enhanced index's size overhead
    // shrinks as batches arrive.
    let keys = Dataset::Genome.generate(N, 41);
    let workload = ReadWriteWorkload::split(&keys, 5, 0.1, 1_000, 10);
    let records = records_from_keys(&workload.initial_keys);

    let mut plain = LippIndex::bulk_load(&records);
    let mut enhanced = LippIndex::bulk_load(&records);
    CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut enhanced);

    let overhead = |a: &LippIndex, b: &LippIndex| {
        b.stats().size_bytes as f64 / a.stats().size_bytes as f64 - 1.0
    };
    let initial_overhead = overhead(&plain, &enhanced);
    for batch in &workload.insert_batches {
        for &k in batch {
            plain.insert(k, k);
            enhanced.insert(k, k);
        }
    }
    let final_overhead = overhead(&plain, &enhanced);
    assert!(
        final_overhead <= initial_overhead + 0.02,
        "size overhead should not grow with insertions: {initial_overhead:.3} -> {final_overhead:.3}"
    );
    assert_eq!(plain.len(), enhanced.len());
}
