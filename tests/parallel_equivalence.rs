//! Property tests pinning down the central contract of the parallel
//! optimisation pipeline: `CsvOptimizer::optimize_parallel` is
//! observationally identical to the sequential `optimize` — same report,
//! same rebuilt structure, same lookups — on any dataset, smoothing
//! threshold and thread-pool width.

use csv_common::traits::LearnedIndex;
use csv_core::{CsvConfig, CsvOptimizer};
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use proptest::collection::btree_set;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_csv_sweep_matches_sequential(
        keys in btree_set(0u64..3_000_000, 512..2_000),
        alpha in 0.05f64..0.4,
        threads in 2usize..9,
    ) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let records = records_from_keys(&keys);
        // A scoped pool per case: the global pool can only be built once per
        // process, so per-case widths must not go through it.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(alpha));

        let mut sequential = LippIndex::bulk_load(&records);
        let sequential_report = optimizer.optimize(&mut sequential);

        let mut parallel = LippIndex::bulk_load(&records);
        let parallel_report = pool.install(|| optimizer.optimize_parallel(&mut parallel));

        // Identical reports, outcome for outcome and in the same order.
        prop_assert_eq!(&sequential_report.outcomes, &parallel_report.outcomes);
        prop_assert_eq!(sequential_report.subtrees_considered(), parallel_report.subtrees_considered());
        prop_assert_eq!(sequential_report.subtrees_rebuilt, parallel_report.subtrees_rebuilt);
        prop_assert_eq!(sequential_report.keys_rebuilt, parallel_report.keys_rebuilt);
        prop_assert_eq!(sequential_report.virtual_points_added, parallel_report.virtual_points_added);
        prop_assert_eq!(sequential_report.gap_refits, parallel_report.gap_refits);

        // Identical rebuilt structure.
        prop_assert_eq!(sequential.stats(), parallel.stats());

        // Identical lookups: every loaded key hits in both, probes around
        // the key range miss in both.
        for &k in &keys {
            prop_assert_eq!(parallel.get(k), Some(k));
            prop_assert_eq!(parallel.get(k), sequential.get(k));
        }
        for probe in [0u64, 1_500_000, 2_999_999, 3_000_001] {
            prop_assert_eq!(parallel.get(probe), sequential.get(probe));
        }
    }
}
