//! Property tests pinning the maintenance lifecycle contract:
//!
//! * **Quiesced maintenance ≡ one full optimize** — on an index that
//!   receives no writes, draining the dirty marks (`optimize_dirty` until
//!   nothing is considered, or the sharded engine's `run_until_idle`)
//!   produces exactly what one full `optimize` produces, for LIPP and ALEX.
//! * **Maintenance never breaks reads** — interleaving inserts, removes,
//!   range scans and engine ticks over a `ShardedIndex` stays consistent
//!   with a `BTreeMap` oracle throughout.

use csv_alex::{AlexConfig, AlexIndex};
use csv_common::traits::LearnedIndex;
use csv_common::{Key, KeyValue};
use csv_concurrent::{
    MaintenanceAction, MaintenanceConfig, MaintenanceEngine, OverlayRepr, ReadPath, ShardedIndex,
    ShardingConfig,
};
use csv_core::cost::CostModel;
use csv_core::{CsvConfig, CsvIntegrable, CsvOptimizer};
use csv_lipp::LippIndex;
use csv_repro::records_from_keys;
use proptest::collection::{btree_set, vec as pvec};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Drains an index's dirty marks: `optimize_dirty` until a round considers
/// nothing, returning the rounds' reports.
fn maintain_until_clean<I: CsvIntegrable + ?Sized>(
    optimizer: &CsvOptimizer,
    index: &mut I,
) -> Vec<csv_core::CsvReport> {
    let mut reports = Vec::new();
    loop {
        let report = optimizer.optimize_dirty(index);
        let done = report.subtrees_considered() == 0;
        reports.push(report);
        if done {
            return reports;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn quiesced_maintenance_equals_full_optimize_on_lipp(
        keys in btree_set(0u64..3_000_000, 512..2_000),
        alpha in 0.05f64..0.4,
    ) {
        let keys: Vec<Key> = keys.into_iter().collect();
        let records = records_from_keys(&keys);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(alpha));

        let mut fused = LippIndex::bulk_load(&records);
        let fused_report = optimizer.optimize(&mut fused);

        let mut maintained = LippIndex::bulk_load(&records);
        let reports = maintain_until_clean(&optimizer, &mut maintained);
        // A quiesced index drains in one real round plus one idle round.
        prop_assert_eq!(reports.len(), 2);
        prop_assert_eq!(&reports[0].outcomes, &fused_report.outcomes);
        prop_assert_eq!(reports[1].subtrees_considered(), 0);

        prop_assert_eq!(maintained.stats(), fused.stats());
        for &k in &keys {
            prop_assert_eq!(maintained.get(k), Some(k));
        }
    }

    #[test]
    fn quiesced_maintenance_equals_full_optimize_on_alex(
        keys in btree_set(0u64..40_000_000, 2_000..6_000),
        alpha in 0.05f64..0.4,
    ) {
        let keys: Vec<Key> = keys.into_iter().collect();
        let records = records_from_keys(&keys);
        // Small data nodes and a tight fanout so the tree is deep enough
        // for a multi-level sweep (the regime where per-level dirty rounds
        // could diverge).
        let config = AlexConfig {
            max_data_node_keys: 64,
            min_fanout: 4,
            max_fanout: 8,
            ..AlexConfig::default()
        };
        let optimizer =
            CsvOptimizer::new(CsvConfig::for_alex(alpha, CostModel::new(1.0, 2.5, 0.0)));

        let mut fused = AlexIndex::with_config(&records, config);
        let fused_report = optimizer.optimize(&mut fused);
        prop_assert!(fused_report.subtrees_considered() > 0);

        let mut maintained = AlexIndex::with_config(&records, config);
        let reports = maintain_until_clean(&optimizer, &mut maintained);
        prop_assert_eq!(reports.len(), 2);
        prop_assert_eq!(&reports[0].outcomes, &fused_report.outcomes);
        prop_assert_eq!(reports[1].subtrees_considered(), 0);

        prop_assert_eq!(maintained.stats(), fused.stats());
        for &k in keys.iter().step_by(7) {
            prop_assert_eq!(maintained.get(k), Some(k));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_maintenance_preserves_lookups_and_ranges(
        keys in btree_set(0u64..1_000_000, 256..1_000),
        ops in pvec((any::<u64>(), 0u8..6), 40..160),
        shards in 1usize..6,
        rcu in any::<bool>(),
        vec_overlay in any::<bool>(),
        overlay_capacity in 1usize..12,
    ) {
        let keys: Vec<Key> = keys.into_iter().collect();
        let records = records_from_keys(&keys);
        let read_path = if rcu { ReadPath::Rcu } else { ReadPath::Locked };
        // Both overlay representations, at a capacity tiny enough that
        // folds interleave with the splits/merges/maintenance below.
        let overlay = if vec_overlay { OverlayRepr::Vec } else { OverlayRepr::Persistent };
        let sharded = ShardedIndex::<LippIndex>::bulk_load(
            &records,
            ShardingConfig::with_shards(shards)
                .with_read_path(read_path)
                .with_overlay(overlay)
                .with_overlay_capacity(overlay_capacity),
        );
        let mut oracle: BTreeMap<Key, u64> = keys.iter().map(|&k| (k, k)).collect();
        // An aggressive merge factor so the drained-shard trigger fires
        // inside the interleaving, not only in dedicated tests.
        let engine = MaintenanceEngine::new(
            CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
            MaintenanceConfig {
                min_split_keys: 64,
                split_factor: 1.5,
                merge_factor: 0.6,
                ..MaintenanceConfig::default()
            },
        );

        for (raw, kind) in ops {
            let k = raw % 1_200_000;
            match kind {
                0 => prop_assert_eq!(sharded.get(k), oracle.get(&k).copied()),
                1 => prop_assert_eq!(
                    sharded.insert(k, raw),
                    oracle.insert(k, raw).is_none()
                ),
                2 => prop_assert_eq!(sharded.remove(k), oracle.remove(&k)),
                3 => {
                    let hi = k.saturating_add(raw % 50_000);
                    let got: Vec<KeyValue> = sharded.range(k, hi);
                    let expected: Vec<KeyValue> =
                        oracle.range(k..=hi).map(|(&k, &v)| KeyValue::new(k, v)).collect();
                    prop_assert_eq!(got, expected);
                }
                4 => {
                    // An explicit re-layout (split, then sometimes the
                    // inverse merge) in the middle of the write stream.
                    let shard = (raw as usize) % sharded.num_shards().max(1);
                    if sharded.split_shard(shard, 2) && raw % 2 == 0 {
                        prop_assert!(sharded.merge_shards(shard, usize::MAX));
                    }
                }
                _ => {
                    // A maintenance tick (split, merge or incremental
                    // re-smoothing) in the middle of the write stream.
                    engine.run_once(&sharded);
                }
            }
        }
        // Drain to quiescence, then every oracle fact must still hold.
        engine.run_until_idle(&sharded, 1_000);
        prop_assert_eq!(sharded.len(), oracle.len());
        for (&k, &v) in &oracle {
            prop_assert_eq!(sharded.get(k), Some(v));
        }
        let full: Vec<KeyValue> = sharded.range(0, u64::MAX);
        let expected: Vec<KeyValue> =
            oracle.iter().map(|(&k, &v)| KeyValue::new(k, v)).collect();
        prop_assert_eq!(full, expected);
    }
}

/// The sharded quiesced pin: the engine draining a fresh, balanced sharded
/// index to idleness is observationally identical to one full
/// `ShardedIndex::optimize` — same per-shard outcomes, same structure, same
/// lookups.
#[test]
fn engine_until_idle_equals_sharded_optimize() {
    use csv_datasets::Dataset;
    let keys = Dataset::Osm.generate(60_000, 17);
    let records = records_from_keys(&keys);
    let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

    for read_path in [ReadPath::Locked, ReadPath::Rcu] {
        let config = ShardingConfig::with_shards(4).with_read_path(read_path);
        let reference = ShardedIndex::<LippIndex>::bulk_load(&records, config);
        let reference_reports = reference.optimize(&optimizer);

        let maintained = ShardedIndex::<LippIndex>::bulk_load(&records, config);
        let engine = MaintenanceEngine::new(optimizer.clone(), MaintenanceConfig::default());
        let actions = engine.run_until_idle(&maintained, 100);
        assert!(actions.last().unwrap().is_idle());

        // Per-shard reports match the full optimize, shard for shard (the
        // engine visits stalest-first, so collect by shard position).
        let mut maintained_reports: Vec<Option<csv_core::CsvReport>> =
            vec![None; reference_reports.len()];
        for action in &actions {
            if let MaintenanceAction::Maintained {
                shard,
                report,
                completed,
            } = action
            {
                assert!(completed, "no budget is configured");
                assert!(
                    maintained_reports[*shard].replace(report.clone()).is_none(),
                    "a quiesced shard must be maintained exactly once"
                );
            }
        }
        for (shard, reference_report) in reference_reports.iter().enumerate() {
            let report = maintained_reports[shard]
                .as_ref()
                .unwrap_or_else(|| panic!("shard {shard} was never maintained"));
            assert_eq!(report.outcomes, reference_report.outcomes, "shard {shard}");
        }

        assert_eq!(maintained.stats(), reference.stats());
        for &k in keys.iter().step_by(23) {
            assert_eq!(maintained.get(k), reference.get(k));
            assert_eq!(maintained.get(k), Some(k));
        }
    }
}
