//! The streaming-scan acceptance pins: a collected `range_visit` must be
//! byte-identical to the materialised `range` at every layer that grew a
//! native visitor — each of the five indexes (trait layer), the sharded
//! index on both read paths and both overlay representations (shard
//! layer), and the pinned `ReadView` (the path the server's `Range`
//! handler walks). Tiny overlay capacities force folds mid-workload so
//! the merge-join crosses base/overlay/tombstone boundaries, and a
//! mid-scan `limit` pins early termination against a truncated `range`.

use csv_alex::AlexIndex;
use csv_btree::BPlusTree;
use csv_common::traits::{collect_range_visit, LearnedIndex, RangeIndex, RemovableIndex};
use csv_common::{Key, KeyValue};
use csv_concurrent::{OverlayRepr, ReadPath, ShardedIndex, ShardingConfig};
use csv_lipp::LippIndex;
use csv_pgm::PgmIndex;
use csv_repro::records_from_keys;
use csv_sali::SaliIndex;
use proptest::collection::btree_set;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Random sorted, unique key sets with gaps, plus a write tape (key,
/// remove?) and scan bounds drawn from the same space so scans hit the
/// populated region.
fn scan_case() -> impl Strategy<Value = (Vec<Key>, Vec<(Key, bool)>, Key, Key, usize)> {
    (
        (
            btree_set(0u64..100_000, 8..150),
            proptest::collection::vec((0u64..100_000, any::<bool>()), 0..60),
        ),
        (0u64..100_000, 0u64..110_000, 0usize..40),
    )
        .prop_map(|((keys, writes), (lo, hi, limit))| {
            (keys.into_iter().collect(), writes, lo, hi, limit)
        })
}

/// Applies the write tape, then checks `range_visit` ≡ `range` (full and
/// limited) for one index at the trait layer.
fn check_index<I: LearnedIndex + RangeIndex + RemovableIndex>(
    mut index: I,
    writes: &[(Key, bool)],
    lo: Key,
    hi: Key,
    limit: usize,
) -> Result<(), TestCaseError> {
    for &(k, remove) in writes {
        if remove {
            index.remove(k);
        } else {
            index.insert(k, k ^ 0x5eed);
        }
    }
    let name = index.name();
    let materialised = index.range(lo, hi);
    prop_assert_eq!(
        &collect_range_visit(&index, lo, hi, 0),
        &materialised,
        "{}: full streaming scan",
        name
    );
    // A mid-scan Break(()) stops the visitor after exactly `limit`
    // records (limit 0 = unlimited): the streamed prefix equals the
    // truncated materialised scan.
    let capped = collect_range_visit(&index, lo, hi, limit);
    let want = if limit == 0 {
        &materialised[..]
    } else {
        &materialised[..limit.min(materialised.len())]
    };
    prop_assert_eq!(&capped[..], want, "{}: limited streaming scan", name);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn streaming_scan_equals_materialised_range_on_every_index(
        (keys, writes, lo, hi, limit) in scan_case()
    ) {
        let records = records_from_keys(&keys);
        check_index(BPlusTree::bulk_load(&records), &writes, lo, hi, limit)?;
        check_index(PgmIndex::bulk_load(&records), &writes, lo, hi, limit)?;
        check_index(AlexIndex::bulk_load(&records), &writes, lo, hi, limit)?;
        check_index(LippIndex::bulk_load(&records), &writes, lo, hi, limit)?;
        check_index(SaliIndex::bulk_load(&records), &writes, lo, hi, limit)?;
    }

    #[test]
    fn streaming_scan_equals_materialised_range_through_the_shard_layer(
        (keys, writes, lo, hi, limit) in scan_case()
    ) {
        let records = records_from_keys(&keys);
        for read_path in [ReadPath::Locked, ReadPath::Rcu] {
            for overlay in [OverlayRepr::Vec, OverlayRepr::Persistent] {
                // A tiny overlay folds every few writes, so the write tape
                // exercises base-fold boundaries, not just overlay merges.
                let index = ShardedIndex::<BPlusTree>::bulk_load(
                    &records,
                    ShardingConfig::with_shards(3)
                        .with_read_path(read_path)
                        .with_overlay(overlay)
                        .with_overlay_capacity(4),
                );
                for &(k, remove) in &writes {
                    if remove {
                        index.remove(k);
                    } else {
                        index.insert(k, k ^ 0x5eed);
                    }
                }

                let materialised = index.range(lo, hi);
                let mut streamed: Vec<KeyValue> = Vec::new();
                let _ = index.range_visit(lo, hi, &mut |key, value| {
                    streamed.push(KeyValue { key, value });
                    if limit != 0 && streamed.len() >= limit {
                        core::ops::ControlFlow::Break(())
                    } else {
                        core::ops::ControlFlow::Continue(())
                    }
                });
                let want = if limit == 0 {
                    &materialised[..]
                } else {
                    &materialised[..limit.min(materialised.len())]
                };
                prop_assert_eq!(&streamed[..], want,
                    "{:?}/{:?}: sharded streaming scan", read_path, overlay);

                // The pinned-snapshot path (what the server's Range handler
                // walks) must agree with the live index too.
                if let Some(view) = index.read_view() {
                    prop_assert_eq!(view.range(lo, hi), materialised.clone(),
                        "{:?}: pinned view range", overlay);
                    let mut view_streamed: Vec<KeyValue> = Vec::new();
                    let _ = view.range_visit(lo, hi, &mut |key, value| {
                        view_streamed.push(KeyValue { key, value });
                        core::ops::ControlFlow::Continue(())
                    });
                    prop_assert_eq!(view_streamed, materialised,
                        "{:?}: pinned view streaming scan", overlay);
                }
            }
        }
    }
}
