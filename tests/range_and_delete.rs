//! Cross-crate integration tests for range scans and deletions: every index
//! in the workspace (ALEX, LIPP, SALI, PGM, B+-tree) must agree with a
//! `BTreeMap` oracle under a mixed workload of point lookups, range scans,
//! inserts and removals — both before and after CSV optimisation of the
//! learned indexes.

use csv_alex::AlexIndex;
use csv_btree::BPlusTree;
use csv_common::rng::XorShift64;
use csv_common::traits::{LearnedIndex, RangeIndex, RemovableIndex};
use csv_common::{Key, KeyValue};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::Dataset;
use csv_lipp::LippIndex;
use csv_pgm::PgmIndex;
use csv_repro::records_from_keys;
use csv_sali::SaliIndex;
use std::collections::BTreeMap;
use std::ops::RangeInclusive;

const N: usize = 30_000;

/// Drives a deterministic mixed workload against an index and a `BTreeMap`
/// oracle, checking every answer.
fn run_mixed_workload<I>(mut index: I, keys: &[Key], seed: u64)
where
    I: LearnedIndex + RangeIndex + RemovableIndex,
{
    let mut oracle: BTreeMap<Key, u64> = keys.iter().map(|&k| (k, k)).collect();
    let mut rng = XorShift64::new(seed);
    let span = keys[keys.len() - 1] - keys[0];
    let name = index.name();

    for op in 0..4_000u64 {
        match op % 8 {
            // Point lookups on present and absent keys.
            0..=2 => {
                let k = if op % 2 == 0 {
                    keys[rng.next_below(keys.len() as u64) as usize]
                } else {
                    keys[0] + rng.next_below(span + 1)
                };
                assert_eq!(index.get(k), oracle.get(&k).copied(), "{name}: get({k})");
            }
            // Range scans of varying width.
            3 => {
                let lo = keys[0] + rng.next_below(span + 1);
                let width = rng.next_below(span / 100 + 2);
                let hi = lo.saturating_add(width);
                let got = index.range(lo, hi);
                let expected = oracle_range(&oracle, lo..=hi);
                assert_eq!(got, expected, "{name}: range [{lo}, {hi}]");
            }
            // Inserts of fresh keys (and occasional overwrites).
            4 | 5 => {
                let k = keys[0] + rng.next_below(span + 1);
                let v = rng.next_u64();
                let was_new = index.insert(k, v);
                let oracle_new = oracle.insert(k, v).is_none();
                assert_eq!(was_new, oracle_new, "{name}: insert({k}) newness");
            }
            // Removals of present and absent keys.
            _ => {
                let k = if op % 2 == 0 {
                    keys[rng.next_below(keys.len() as u64) as usize]
                } else {
                    keys[0] + rng.next_below(span + 1)
                };
                assert_eq!(index.remove(k), oracle.remove(&k), "{name}: remove({k})");
            }
        }
        if op % 512 == 0 {
            assert_eq!(index.len(), oracle.len(), "{name}: length after {op} ops");
        }
    }
    assert_eq!(index.len(), oracle.len(), "{name}: final length");
    // Final full-range sweep.
    let all = index.range(0, u64::MAX);
    let expected: Vec<KeyValue> = oracle.iter().map(|(&k, &v)| KeyValue::new(k, v)).collect();
    assert_eq!(all, expected, "{name}: final full scan");
}

fn oracle_range(oracle: &BTreeMap<Key, u64>, range: RangeInclusive<Key>) -> Vec<KeyValue> {
    oracle
        .range(range)
        .map(|(&k, &v)| KeyValue::new(k, v))
        .collect()
}

#[test]
fn btree_mixed_workload_matches_oracle() {
    let keys = Dataset::Facebook.generate(N, 3);
    run_mixed_workload(BPlusTree::bulk_load(&records_from_keys(&keys)), &keys, 11);
}

#[test]
fn pgm_mixed_workload_matches_oracle() {
    let keys = Dataset::Covid.generate(N, 5);
    run_mixed_workload(PgmIndex::bulk_load(&records_from_keys(&keys)), &keys, 13);
}

#[test]
fn alex_mixed_workload_matches_oracle() {
    let keys = Dataset::Osm.generate(N, 7);
    run_mixed_workload(AlexIndex::bulk_load(&records_from_keys(&keys)), &keys, 17);
}

#[test]
fn lipp_mixed_workload_matches_oracle() {
    let keys = Dataset::Genome.generate(N, 19);
    run_mixed_workload(LippIndex::bulk_load(&records_from_keys(&keys)), &keys, 23);
}

#[test]
fn sali_mixed_workload_matches_oracle() {
    let keys = Dataset::Osm.generate(N, 29);
    let mut sali = SaliIndex::bulk_load(&records_from_keys(&keys));
    // Flatten some hot sub-trees first so the mixed workload exercises the
    // region-mirroring paths of insert/remove/get.
    let hot: Vec<Key> = keys.iter().copied().take(keys.len() / 4).collect();
    sali.optimize_for_workload(&hot);
    run_mixed_workload(sali, &keys, 31);
}

#[test]
fn csv_enhanced_indexes_preserve_range_and_delete_semantics() {
    // The paper's point: CSV only restructures the index; every operation
    // must keep its semantics after optimisation.
    let keys = Dataset::Genome.generate(N, 37);
    let records = records_from_keys(&keys);

    let mut lipp = LippIndex::bulk_load(&records);
    CsvOptimizer::new(CsvConfig::for_lipp(0.2)).optimize(&mut lipp);
    run_mixed_workload(lipp, &keys, 41);

    let mut alex = AlexIndex::bulk_load(&records);
    CsvOptimizer::new(CsvConfig::for_alex(
        0.1,
        csv_core::cost::CostModel::default(),
    ))
    .optimize(&mut alex);
    run_mixed_workload(alex, &keys, 43);

    let mut sali = SaliIndex::bulk_load(&records);
    CsvOptimizer::new(CsvConfig::for_sali(0.1)).optimize(&mut sali);
    run_mixed_workload(sali, &keys, 47);
}

#[test]
fn range_scan_totals_are_consistent_across_indexes() {
    // All five indexes over the same data must return byte-identical range
    // results for the same queries.
    let keys = Dataset::Facebook.generate(N, 53);
    let records = records_from_keys(&keys);
    let btree = BPlusTree::bulk_load(&records);
    let pgm = PgmIndex::bulk_load(&records);
    let alex = AlexIndex::bulk_load(&records);
    let lipp = LippIndex::bulk_load(&records);
    let sali = SaliIndex::bulk_load(&records);

    let mut rng = XorShift64::new(59);
    let span = keys[keys.len() - 1] - keys[0];
    for _ in 0..50 {
        let lo = keys[0] + rng.next_below(span + 1);
        let hi = lo.saturating_add(rng.next_below(span / 20 + 1));
        let reference = btree.range(lo, hi);
        assert_eq!(pgm.range(lo, hi), reference, "PGM range [{lo}, {hi}]");
        assert_eq!(alex.range(lo, hi), reference, "ALEX range [{lo}, {hi}]");
        assert_eq!(lipp.range(lo, hi), reference, "LIPP range [{lo}, {hi}]");
        assert_eq!(sali.range(lo, hi), reference, "SALI range [{lo}, {hi}]");
    }
}
