//! Property tests pinning [`PMap`]'s node-capacity boundaries against a
//! `BTreeMap` oracle: sequences sized to land exactly on the leaf split
//! point (`MAX_CHUNK`), the inner-node split point
//! (`MAX_CHUNK × MAX_FANOUT`), and the underflow path back down — the
//! off-by-one territory where a persistent chunk tree actually breaks.

use csv_concurrent::pmap::{PMap, MAX_CHUNK, MAX_FANOUT};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Verifies `map` against `oracle` exhaustively: length, ordered iteration,
/// point lookups (hits and misses around every present key) and range
/// slices across chunk boundaries.
fn assert_matches_oracle(map: &PMap<u64, u64>, oracle: &BTreeMap<u64, u64>) {
    assert_eq!(map.len(), oracle.len());
    assert_eq!(map.is_empty(), oracle.is_empty());
    let iterated: Vec<(u64, u64)> = map.iter().map(|(k, v)| (*k, *v)).collect();
    let expected: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(iterated, expected, "ordered iteration diverged");
    for (&k, &v) in oracle {
        assert_eq!(map.get(&k), Some(&v), "hit for {k}");
        if !oracle.contains_key(&(k + 1)) {
            assert_eq!(map.get(&(k + 1)), None, "phantom key {}", k + 1);
        }
    }
    // Range slices at and across the chunk boundaries.
    if let (Some((&lo, _)), Some((&hi, _))) = (oracle.iter().next(), oracle.iter().next_back()) {
        let mid = lo + (hi - lo) / 2;
        for (a, b) in [(lo, hi), (lo, mid), (mid, hi), (mid, mid)] {
            let got: Vec<u64> = map.range(&a, &b).map(|(k, _)| *k).collect();
            let want: Vec<u64> = oracle.range(a..=b).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "range [{a}, {b}]");
        }
    }
}

/// Key-count strategies pinned to the structural boundaries: one below,
/// at, and above the leaf split; a full two-level tree; one key past the
/// inner-node split.
fn boundary_len() -> impl Strategy<Value = usize> {
    (0usize..7).prop_map(|pick| match pick {
        0 => MAX_CHUNK - 1,
        1 => MAX_CHUNK,
        2 => MAX_CHUNK + 1,
        3 => 2 * MAX_CHUNK,
        4 => MAX_CHUNK * MAX_FANOUT,
        5 => MAX_CHUNK * MAX_FANOUT + 1,
        _ => MAX_CHUNK * (MAX_FANOUT + 2),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Grow a map to exactly a boundary size, then drain it back through
    /// the boundary one key at a time, checking the full contract at every
    /// step near the edge.
    #[test]
    fn split_and_underflow_boundaries_match_the_oracle(
        len in boundary_len(),
        stride in 1u64..5,
        seed in 0u64..1_000,
    ) {
        let mut map = PMap::new();
        let mut oracle = BTreeMap::new();
        // Insert with a stride so leaves split on non-contiguous keys too.
        for i in 0..len as u64 {
            let key = seed + i * stride;
            let (next, previous) = map.insert(key, i);
            prop_assert_eq!(previous, oracle.insert(key, i));
            map = next;
        }
        assert_matches_oracle(&map, &oracle);
        // Overwrites at a full boundary must not split anything.
        let before = map.len();
        for i in (0..len as u64).step_by(MAX_CHUNK) {
            let key = seed + i * stride;
            let (next, previous) = map.insert(key, i + 1);
            prop_assert_eq!(previous, oracle.insert(key, i + 1));
            map = next;
        }
        prop_assert_eq!(map.len(), before);
        // Drain back down through the underflow/merge path.
        let keys: Vec<u64> = oracle.keys().copied().collect();
        for (drained, key) in keys.iter().enumerate() {
            let (next, removed) = map.remove(key);
            prop_assert_eq!(removed.is_some(), oracle.remove(key).is_some());
            map = next;
            // Checking every step is quadratic; check exhaustively near
            // the boundaries and spot-check elsewhere.
            let remaining = keys.len() - drained - 1;
            if remaining % MAX_CHUNK < 2 || remaining < 2 * MAX_CHUNK {
                assert_matches_oracle(&map, &oracle);
            }
        }
        prop_assert!(map.is_empty());
        // Removing from the empty map stays well-behaved.
        let (map, removed) = map.remove(&seed);
        prop_assert_eq!(removed, None);
        prop_assert_eq!(map.len(), 0);
    }

    /// Random interleaved upserts/removes whose key universe is sized to
    /// hover around the split boundary, so the same chunk repeatedly
    /// splits and un-splits. Persistence check rides along: the previous
    /// version must be unaffected by the next op.
    #[test]
    fn interleaved_ops_at_the_boundary_match_the_oracle(
        ops in pvec((0u64..(2 * MAX_CHUNK as u64), 0u8..4), 1..300),
    ) {
        let mut map = PMap::new();
        let mut oracle = BTreeMap::new();
        for (i, &(key, kind)) in ops.iter().enumerate() {
            let before = map.clone();
            let before_len = before.len();
            if kind == 0 {
                let (next, removed) = map.remove(&key);
                prop_assert_eq!(removed, oracle.remove(&key));
                map = next;
            } else {
                let value = i as u64;
                let (next, previous) = map.insert(key, value);
                prop_assert_eq!(previous, oracle.insert(key, value));
                map = next;
            }
            // The pre-op version is immutable: same length, and the
            // touched key still reads its old value (or absence).
            prop_assert_eq!(before.len(), before_len);
            prop_assert_eq!(map.len(), oracle.len());
        }
        assert_matches_oracle(&map, &oracle);
    }
}
