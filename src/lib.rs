//! Umbrella crate for the CSV (CDF Smoothing via Virtual points) learned
//! index reproduction.
//!
//! This crate hosts the runnable examples and the cross-crate integration
//! tests; the actual functionality lives in the workspace crates, which are
//! re-exported here for convenience:
//!
//! * [`core`] — virtual-point smoothing and the CSV algorithm,
//! * [`alex`], [`lipp`], [`sali`] — the three learned indexes CSV is
//!   integrated with,
//! * [`pgm`], [`btree`] — baselines,
//! * [`datasets`] — SOSD-style synthetic datasets and workloads,
//! * [`common`] — shared types and traits.

pub use csv_alex as alex;
pub use csv_btree as btree;
pub use csv_common as common;
pub use csv_core as core;
pub use csv_datasets as datasets;
pub use csv_lipp as lipp;
pub use csv_pgm as pgm;
pub use csv_sali as sali;

use csv_common::key::identity_records;
use csv_common::traits::LearnedIndex;
use csv_common::{Key, KeyValue};

/// The indexes the paper integrates CSV with, used by the examples and the
/// experiment harness to loop over all three uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// ALEX (gapped arrays + exponential search).
    Alex,
    /// LIPP (precise positions).
    Lipp,
    /// SALI (LIPP + workload-aware flattening).
    Sali,
}

impl IndexKind {
    /// All three CSV target indexes.
    pub fn all() -> [IndexKind; 3] {
        [IndexKind::Lipp, IndexKind::Sali, IndexKind::Alex]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Alex => "ALEX",
            IndexKind::Lipp => "LIPP",
            IndexKind::Sali => "SALI",
        }
    }
}

/// Convenience helper: turns a sorted key slice into identity records.
pub fn records_from_keys(keys: &[Key]) -> Vec<KeyValue> {
    identity_records(keys)
}

/// Builds one of the three CSV target indexes over sorted keys and returns it
/// as a trait object (useful for generic driver loops).
pub fn build_index(kind: IndexKind, keys: &[Key]) -> Box<dyn LearnedIndex> {
    let records = identity_records(keys);
    match kind {
        IndexKind::Alex => Box::new(csv_alex::AlexIndex::bulk_load(&records)),
        IndexKind::Lipp => Box::new(csv_lipp::LippIndex::bulk_load(&records)),
        IndexKind::Sali => Box::new(csv_sali::SaliIndex::bulk_load(&records)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_datasets::Dataset;

    #[test]
    fn build_index_covers_all_kinds() {
        let keys = Dataset::Covid.generate(2_000, 1);
        for kind in IndexKind::all() {
            let index = build_index(kind, &keys);
            assert_eq!(index.len(), keys.len());
            assert_eq!(index.name(), kind.name());
            assert_eq!(index.get(keys[123]), Some(keys[123]));
        }
    }
}
