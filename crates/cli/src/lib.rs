//! Library backing the `csv-index` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; keeping the argument parsing
//! and the driver logic in a library makes the whole tool unit-testable
//! without spawning processes.
//!
//! ```text
//! csv-index --index lipp --dataset genome --size 200000 --alpha 0.1 \
//!           --workload ycsb-b --ops 100000
//! csv-index --index alex --dataset-file keys.sosd --alpha 0.2 --workload read-only
//! ```

#![forbid(unsafe_code)]

pub mod args;
pub mod driver;

pub use args::{CliArgs, CliError, IndexChoice, WorkloadChoice};
pub use driver::{run, RunSummary};
