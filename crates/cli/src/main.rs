//! `csv-index` — build a learned index over a synthetic or SOSD dataset,
//! optionally apply CSV smoothing, replay a workload and print a report.

#![forbid(unsafe_code)]

use csv_cli::{run, CliArgs};
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match CliArgs::parse(&raw) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(summary) => {
            print!("{}", summary.render());
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
