//! Hand-rolled argument parsing for the `csv-index` tool (no external
//! dependencies beyond the workspace crates).

use csv_concurrent::{OverlayRepr, ReadPath};
use csv_core::GreedyMode;
use csv_datasets::Dataset;
use std::fmt;
use std::path::PathBuf;

/// Which index implementation to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexChoice {
    /// ALEX (gapped arrays + exponential search).
    Alex,
    /// LIPP (precise positions).
    Lipp,
    /// SALI (LIPP + workload-aware flattening).
    Sali,
    /// PGM baseline.
    Pgm,
    /// B+-tree baseline.
    Btree,
}

impl IndexChoice {
    /// Parses an index name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "alex" => Ok(Self::Alex),
            "lipp" => Ok(Self::Lipp),
            "sali" => Ok(Self::Sali),
            "pgm" => Ok(Self::Pgm),
            "btree" | "b+tree" => Ok(Self::Btree),
            other => Err(CliError::new(format!(
                "unknown index '{other}' (expected alex|lipp|sali|pgm|btree)"
            ))),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Alex => "ALEX",
            Self::Lipp => "LIPP",
            Self::Sali => "SALI",
            Self::Pgm => "PGM",
            Self::Btree => "B+Tree",
        }
    }

    /// `true` when CSV (Algorithm 2) can be applied to the index.
    pub fn supports_csv(&self) -> bool {
        matches!(self, Self::Alex | Self::Lipp | Self::Sali)
    }
}

/// Which workload to replay after construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadChoice {
    /// Point lookups over every loaded key (uniform).
    ReadOnly,
    /// YCSB-A: 50% reads / 50% updates, Zipfian popularity.
    YcsbA,
    /// YCSB-B: 95% reads / 5% updates, Zipfian popularity.
    YcsbB,
    /// YCSB-E: 95% short scans / 5% inserts.
    YcsbE,
    /// Mixed churn: reads, inserts, removes and scans.
    Churn,
}

impl WorkloadChoice {
    /// Parses a workload name.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "read-only" | "readonly" | "ycsb-c" => Ok(Self::ReadOnly),
            "ycsb-a" => Ok(Self::YcsbA),
            "ycsb-b" => Ok(Self::YcsbB),
            "ycsb-e" => Ok(Self::YcsbE),
            "churn" => Ok(Self::Churn),
            other => Err(CliError::new(format!(
                "unknown workload '{other}' (expected read-only|ycsb-a|ycsb-b|ycsb-e|churn)"
            ))),
        }
    }
}

/// A parse/validation error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// The message printed to stderr.
    pub message: String,
}

impl CliError {
    /// Creates an error from any displayable message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Parsed command-line arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Index to build.
    pub index: IndexChoice,
    /// Synthetic dataset analogue (ignored when `dataset_file` is given).
    pub dataset: Dataset,
    /// Optional SOSD file to load keys from instead of generating them.
    pub dataset_file: Option<PathBuf>,
    /// Number of keys to generate.
    pub size: usize,
    /// Smoothing threshold α; 0 disables CSV.
    pub alpha: f64,
    /// Workload to replay.
    pub workload: WorkloadChoice,
    /// Number of workload operations.
    pub ops: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the CSV optimisation sweep (0 = one per core).
    pub threads: usize,
    /// Greedy driver for Algorithm 1: the lazy heap (default) or the
    /// paper-faithful full rescan.
    pub greedy: GreedyMode,
    /// Diminishing-returns drift the lazy driver tolerates before its exact
    /// fallback rescan (0 = exact behaviour).
    pub drift_tolerance: f64,
    /// Plan-only mode: print the CSV plan as JSON without applying it (and
    /// without replaying any workload).
    pub dry_run: bool,
    /// Maintenance mode: run the workload over the sharded index twice —
    /// once interleaved with background maintenance ticks, once without —
    /// and report the lookup-latency comparison.
    pub maintain: bool,
    /// Which concurrency scheme the sharded index in `--maintain` mode
    /// serves lookups with: lock-free RCU snapshots (default) or the
    /// classic per-shard reader–writer locks, for A/B comparisons.
    pub read_path: ReadPath,
    /// RCU path only: which representation shard snapshots buffer pending
    /// writes in — the structurally shared persistent map (default) or the
    /// flat vector baseline, for write-cost A/B comparisons.
    pub overlay: OverlayRepr,
    /// Shard count for the sharded index in `--maintain`/`--recover` modes.
    pub shards: usize,
    /// RCU path only: how many buffered writes a shard snapshot holds
    /// before folding into its base index (`None` keeps the sharding
    /// default).
    pub overlay_capacity: Option<usize>,
    /// Directory backing the durable store (`--durability` creates it,
    /// `--recover` reads it).
    pub data_dir: Option<PathBuf>,
    /// Attach the per-shard WAL + checkpoint sink to the maintained run,
    /// persisting every acknowledged write into `--data-dir`.
    pub durability: bool,
    /// Recover a durable store from `--data-dir`, report recovery time and
    /// replayed-record counts, and exit.
    pub recover: bool,
    /// Serving mode: build + optimise the sharded index, then listen on
    /// `--port` with `--workers` thread-per-core workers (plus the
    /// background maintenance engine) until a client sends `Shutdown`.
    pub serve: bool,
    /// Loopback port `--serve` listens on.
    pub port: u16,
    /// Worker threads for `--serve` (`None` = one per core).
    pub workers: Option<usize>,
}

impl Default for CliArgs {
    fn default() -> Self {
        Self {
            index: IndexChoice::Lipp,
            dataset: Dataset::Genome,
            dataset_file: None,
            size: 200_000,
            alpha: 0.1,
            workload: WorkloadChoice::ReadOnly,
            ops: 100_000,
            seed: 42,
            threads: 0,
            greedy: GreedyMode::Lazy,
            drift_tolerance: 0.0,
            dry_run: false,
            maintain: false,
            read_path: ReadPath::default(),
            overlay: OverlayRepr::default(),
            shards: 16,
            overlay_capacity: None,
            data_dir: None,
            durability: false,
            recover: false,
            serve: false,
            port: 4711,
            workers: None,
        }
    }
}

impl CliArgs {
    /// The usage string printed on `--help` or a parse error.
    pub fn usage() -> &'static str {
        "csv-index [--index alex|lipp|sali|pgm|btree] [--dataset facebook|covid|osm|genome]\n\
         \u{20}         [--dataset-file PATH.sosd] [--size N] [--alpha A] [--threads T]\n\
         \u{20}         [--greedy lazy|rescan] [--drift-tolerance D]\n\
         \u{20}         [--workload read-only|ycsb-a|ycsb-b|ycsb-e|churn]\n\
         \u{20}         [--ops N] [--seed S] [--dry-run] [--maintain] [--read-path locked|rcu]\n\
         \u{20}         [--overlay vec|persistent] [--shards N] [--overlay-capacity N]\n\
         \u{20}         [--data-dir PATH] [--durability] [--recover]\n\
         \u{20}         [--serve] [--port P] [--workers W]\n\
         \n\
         Builds the chosen index over a synthetic or SOSD dataset, optionally applies CSV\n\
         smoothing (alpha > 0) using T worker threads (0 = one per core) and the chosen\n\
         greedy driver (drift tolerance D > 0 lets the lazy driver skip exact fallback\n\
         rescans on bounded invariant violations), replays the workload and prints\n\
         structure and latency reports.\n\
         With --dry-run the CSV plan is printed as JSON and nothing is applied or replayed\n\
         (exact for lipp/sali; for alex's multi-level sweep the upper levels are planned\n\
         against the un-rebuilt structure, so a real run can decide those levels differently).\n\
         With --maintain the workload runs over the sharded index twice — interleaved with\n\
         background maintenance ticks, then without — and the lookup-latency comparison\n\
         (p50/p99) is reported alongside the usual output; --read-path picks the sharded\n\
         index's concurrency scheme (lock-free rcu snapshots, the default, or the locked\n\
         baseline), --overlay the rcu snapshots' pending-write buffer (the structurally\n\
         shared persistent map, the default, or the flat vec baseline) for A/B comparisons,\n\
         --shards the shard count and --overlay-capacity the per-snapshot fold threshold.\n\
         With --durability (requires --maintain, --data-dir and the rcu read path) the\n\
         maintained run persists every acknowledged write through per-shard checkpoints\n\
         plus a write-ahead log in --data-dir; --recover (requires --data-dir) rebuilds\n\
         the index from such a store, reports recovery time and replayed-record counts,\n\
         and exits.\n\
         With --serve the optimised sharded index is served over a loopback TCP socket\n\
         on --port (default 4711) by --workers thread-per-core workers (default: one per\n\
         core) with the maintenance engine ticking behind the socket, until a client\n\
         sends the protocol's Shutdown operation (csv-loadgen --shutdown does). --serve\n\
         is standalone (no --dry-run/--maintain/--recover) and honours --read-path,\n\
         --overlay, --shards, --overlay-capacity and --durability."
    }

    /// Parses `--flag value` style arguments (anything after the program
    /// name). Returns an error carrying a user-facing message on unknown
    /// flags, missing values or malformed numbers.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut out = Self::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if flag == "--help" || flag == "-h" {
                return Err(CliError::new(Self::usage()));
            }
            if flag == "--dry-run" {
                out.dry_run = true;
                continue;
            }
            if flag == "--maintain" {
                out.maintain = true;
                continue;
            }
            if flag == "--durability" {
                out.durability = true;
                continue;
            }
            if flag == "--recover" {
                out.recover = true;
                continue;
            }
            if flag == "--serve" {
                out.serve = true;
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::new(format!("flag {flag} expects a value")))?;
            match flag.as_str() {
                "--index" => out.index = IndexChoice::parse(value)?,
                "--dataset" => out.dataset = parse_dataset(value)?,
                "--dataset-file" => out.dataset_file = Some(PathBuf::from(value)),
                "--size" => out.size = parse_number(flag, value)? as usize,
                "--ops" => out.ops = parse_number(flag, value)? as usize,
                "--seed" => out.seed = parse_number(flag, value)?,
                "--threads" => out.threads = parse_number(flag, value)? as usize,
                "--shards" => {
                    out.shards = parse_number(flag, value)? as usize;
                    if out.shards == 0 {
                        return Err(CliError::new("--shards must be at least 1"));
                    }
                }
                "--overlay-capacity" => {
                    let capacity = parse_number(flag, value)? as usize;
                    if capacity == 0 {
                        return Err(CliError::new("--overlay-capacity must be at least 1"));
                    }
                    out.overlay_capacity = Some(capacity);
                }
                "--data-dir" => out.data_dir = Some(PathBuf::from(value)),
                "--port" => {
                    let port = parse_number(flag, value)?;
                    if port == 0 || port > u16::MAX as u64 {
                        return Err(CliError::new("--port must be in 1..=65535"));
                    }
                    out.port = port as u16;
                }
                "--workers" => {
                    let workers = parse_number(flag, value)? as usize;
                    if workers == 0 {
                        return Err(CliError::new("--workers must be at least 1"));
                    }
                    out.workers = Some(workers);
                }
                "--greedy" => {
                    out.greedy = match value.to_ascii_lowercase().as_str() {
                        "rescan" => GreedyMode::Rescan,
                        "lazy" => GreedyMode::Lazy,
                        other => {
                            return Err(CliError::new(format!(
                                "unknown greedy driver '{other}' (expected rescan|lazy)"
                            )))
                        }
                    }
                }
                "--alpha" => {
                    out.alpha = value.parse::<f64>().map_err(|_| {
                        CliError::new(format!("--alpha expects a number, got '{value}'"))
                    })?;
                    if !(0.0..=1.0).contains(&out.alpha) {
                        return Err(CliError::new("--alpha must be in [0, 1]"));
                    }
                }
                "--drift-tolerance" => {
                    out.drift_tolerance = value.parse::<f64>().map_err(|_| {
                        CliError::new(format!("--drift-tolerance expects a number, got '{value}'"))
                    })?;
                    if !out.drift_tolerance.is_finite() || out.drift_tolerance < 0.0 {
                        return Err(CliError::new("--drift-tolerance must be >= 0"));
                    }
                }
                "--workload" => out.workload = WorkloadChoice::parse(value)?,
                "--read-path" => {
                    out.read_path = match value.to_ascii_lowercase().as_str() {
                        "locked" => ReadPath::Locked,
                        "rcu" => ReadPath::Rcu,
                        other => {
                            return Err(CliError::new(format!(
                                "unknown read path '{other}' (expected locked|rcu)"
                            )))
                        }
                    }
                }
                "--overlay" => {
                    out.overlay = match value.to_ascii_lowercase().as_str() {
                        "vec" => OverlayRepr::Vec,
                        "persistent" | "pmap" => OverlayRepr::Persistent,
                        other => {
                            return Err(CliError::new(format!(
                                "unknown overlay representation '{other}' (expected vec|persistent)"
                            )))
                        }
                    }
                }
                other => {
                    return Err(CliError::new(format!(
                        "unknown flag '{other}'\n\n{}",
                        Self::usage()
                    )))
                }
            }
        }
        if out.size < 2 && out.dataset_file.is_none() {
            return Err(CliError::new("--size must be at least 2"));
        }
        if out.serve {
            if out.dry_run || out.maintain || out.recover {
                return Err(CliError::new(
                    "--serve is a standalone mode (drop --dry-run/--maintain/--recover)",
                ));
            }
        } else if out.port != Self::default().port {
            return Err(CliError::new("--port only applies with --serve"));
        } else if out.workers.is_some() {
            return Err(CliError::new("--workers only applies with --serve"));
        }
        if out.durability {
            if !out.maintain && !out.serve {
                return Err(CliError::new(
                    "--durability requires --maintain or --serve (the sink rides the sharded run)",
                ));
            }
            if out.data_dir.is_none() {
                return Err(CliError::new(
                    "--durability requires --data-dir to place the store in",
                ));
            }
            if out.read_path != ReadPath::Rcu {
                return Err(CliError::new(
                    "--durability requires --read-path rcu (checkpoints ride the RCU fold points)",
                ));
            }
        }
        if out.recover {
            if out.data_dir.is_none() {
                return Err(CliError::new(
                    "--recover requires --data-dir pointing at an existing store",
                ));
            }
            if out.maintain || out.dry_run {
                return Err(CliError::new(
                    "--recover is a standalone mode (drop --maintain/--dry-run)",
                ));
            }
            if out.read_path != ReadPath::Rcu {
                return Err(CliError::new(
                    "--recover serves the recovered index on the rcu read path (drop --read-path locked)",
                ));
            }
        }
        Ok(out)
    }
}

fn parse_dataset(value: &str) -> Result<Dataset, CliError> {
    match value.to_ascii_lowercase().as_str() {
        "facebook" | "fb" => Ok(Dataset::Facebook),
        "covid" => Ok(Dataset::Covid),
        "osm" => Ok(Dataset::Osm),
        "genome" => Ok(Dataset::Genome),
        other => Err(CliError::new(format!(
            "unknown dataset '{other}' (expected facebook|covid|osm|genome)"
        ))),
    }
}

fn parse_number(flag: &str, value: &str) -> Result<u64, CliError> {
    value
        .replace('_', "")
        .parse::<u64>()
        .map_err(|_| CliError::new(format!("{flag} expects an integer, got '{value}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, CliError> {
        CliArgs::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_when_no_flags_given() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, CliArgs::default());
    }

    #[test]
    fn full_flag_set_round_trips() {
        let args = parse(&[
            "--index",
            "alex",
            "--dataset",
            "osm",
            "--size",
            "50_000",
            "--alpha",
            "0.4",
            "--workload",
            "ycsb-b",
            "--ops",
            "9000",
            "--seed",
            "7",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(args.index, IndexChoice::Alex);
        assert_eq!(args.dataset, Dataset::Osm);
        assert_eq!(args.size, 50_000);
        assert!((args.alpha - 0.4).abs() < 1e-12);
        assert_eq!(args.workload, WorkloadChoice::YcsbB);
        assert_eq!(args.ops, 9_000);
        assert_eq!(args.seed, 7);
        assert_eq!(args.threads, 4);
    }

    #[test]
    fn threads_defaults_to_auto() {
        assert_eq!(parse(&[]).unwrap().threads, 0);
        assert!(parse(&["--threads", "x"])
            .unwrap_err()
            .message
            .contains("integer"));
    }

    #[test]
    fn greedy_driver_parses() {
        assert_eq!(parse(&[]).unwrap().greedy, GreedyMode::Lazy);
        assert_eq!(
            parse(&["--greedy", "rescan"]).unwrap().greedy,
            GreedyMode::Rescan
        );
        assert_eq!(
            parse(&["--greedy", "LAZY"]).unwrap().greedy,
            GreedyMode::Lazy
        );
        assert!(parse(&["--greedy", "eager"])
            .unwrap_err()
            .message
            .contains("rescan|lazy"));
    }

    #[test]
    fn every_index_and_workload_name_parses() {
        for (name, expected) in [
            ("alex", IndexChoice::Alex),
            ("LIPP", IndexChoice::Lipp),
            ("sali", IndexChoice::Sali),
            ("pgm", IndexChoice::Pgm),
            ("b+tree", IndexChoice::Btree),
        ] {
            assert_eq!(IndexChoice::parse(name).unwrap(), expected);
            assert!(!expected.name().is_empty());
        }
        for (name, expected) in [
            ("read-only", WorkloadChoice::ReadOnly),
            ("ycsb-a", WorkloadChoice::YcsbA),
            ("YCSB-B", WorkloadChoice::YcsbB),
            ("ycsb-e", WorkloadChoice::YcsbE),
            ("churn", WorkloadChoice::Churn),
        ] {
            assert_eq!(WorkloadChoice::parse(name).unwrap(), expected);
        }
        assert!(IndexChoice::Alex.supports_csv());
        assert!(!IndexChoice::Btree.supports_csv());
    }

    #[test]
    fn errors_carry_useful_messages() {
        assert!(parse(&["--index", "nope"])
            .unwrap_err()
            .message
            .contains("unknown index"));
        assert!(parse(&["--bogus", "1"])
            .unwrap_err()
            .message
            .contains("unknown flag"));
        assert!(parse(&["--size"])
            .unwrap_err()
            .message
            .contains("expects a value"));
        assert!(parse(&["--alpha", "3.0"])
            .unwrap_err()
            .message
            .contains("[0, 1]"));
        assert!(parse(&["--size", "1"])
            .unwrap_err()
            .message
            .contains("at least 2"));
        assert!(parse(&["--help"])
            .unwrap_err()
            .message
            .contains("csv-index"));
        assert!(parse(&["--ops", "abc"])
            .unwrap_err()
            .message
            .contains("integer"));
        assert!(parse(&["--dataset", "mars"])
            .unwrap_err()
            .message
            .contains("unknown dataset"));
    }

    #[test]
    fn dry_run_is_a_valueless_flag() {
        assert!(!parse(&[]).unwrap().dry_run);
        assert!(parse(&["--dry-run"]).unwrap().dry_run);
        // It must not consume the following flag as its value.
        let args = parse(&["--dry-run", "--size", "5000"]).unwrap();
        assert!(args.dry_run);
        assert_eq!(args.size, 5_000);
    }

    #[test]
    fn maintain_is_a_valueless_flag() {
        assert!(!parse(&[]).unwrap().maintain);
        let args = parse(&["--maintain", "--ops", "777"]).unwrap();
        assert!(args.maintain);
        assert_eq!(args.ops, 777);
    }

    #[test]
    fn read_path_parses_and_validates() {
        assert_eq!(parse(&[]).unwrap().read_path, ReadPath::Rcu);
        assert_eq!(
            parse(&["--read-path", "locked"]).unwrap().read_path,
            ReadPath::Locked
        );
        assert_eq!(
            parse(&["--read-path", "RCU"]).unwrap().read_path,
            ReadPath::Rcu
        );
        assert!(parse(&["--read-path", "lockfree"])
            .unwrap_err()
            .message
            .contains("locked|rcu"));
    }

    #[test]
    fn overlay_parses_and_validates() {
        assert_eq!(parse(&[]).unwrap().overlay, OverlayRepr::Persistent);
        assert_eq!(
            parse(&["--overlay", "vec"]).unwrap().overlay,
            OverlayRepr::Vec
        );
        assert_eq!(
            parse(&["--overlay", "PERSISTENT"]).unwrap().overlay,
            OverlayRepr::Persistent
        );
        assert!(parse(&["--overlay", "btree"])
            .unwrap_err()
            .message
            .contains("vec|persistent"));
    }

    #[test]
    fn drift_tolerance_parses_and_validates() {
        assert_eq!(parse(&[]).unwrap().drift_tolerance, 0.0);
        assert!(
            (parse(&["--drift-tolerance", "0.25"])
                .unwrap()
                .drift_tolerance
                - 0.25)
                .abs()
                < 1e-12
        );
        assert!(parse(&["--drift-tolerance", "-1"])
            .unwrap_err()
            .message
            .contains(">= 0"));
        assert!(parse(&["--drift-tolerance", "x"])
            .unwrap_err()
            .message
            .contains("number"));
    }

    #[test]
    fn dataset_file_flag_is_recorded() {
        let args = parse(&["--dataset-file", "/tmp/keys.sosd"]).unwrap();
        assert_eq!(args.dataset_file, Some(PathBuf::from("/tmp/keys.sosd")));
    }

    #[test]
    fn drift_tolerance_rejects_nan_and_infinity() {
        assert!(parse(&["--drift-tolerance", "NaN"])
            .unwrap_err()
            .message
            .contains(">= 0"));
        assert!(parse(&["--drift-tolerance", "inf"])
            .unwrap_err()
            .message
            .contains(">= 0"));
    }

    #[test]
    fn shards_and_overlay_capacity_reject_zero() {
        assert_eq!(parse(&[]).unwrap().shards, 16);
        assert_eq!(parse(&["--shards", "4"]).unwrap().shards, 4);
        assert!(parse(&["--shards", "0"])
            .unwrap_err()
            .message
            .contains("at least 1"));
        assert_eq!(parse(&[]).unwrap().overlay_capacity, None);
        assert_eq!(
            parse(&["--overlay-capacity", "64"])
                .unwrap()
                .overlay_capacity,
            Some(64)
        );
        assert!(parse(&["--overlay-capacity", "0"])
            .unwrap_err()
            .message
            .contains("at least 1"));
        assert!(parse(&["--shards", "x"])
            .unwrap_err()
            .message
            .contains("integer"));
    }

    #[test]
    fn durability_requires_maintain_data_dir_and_rcu() {
        let args = parse(&["--durability", "--maintain", "--data-dir", "/tmp/store"]).unwrap();
        assert!(args.durability);
        assert_eq!(args.data_dir, Some(PathBuf::from("/tmp/store")));
        assert!(parse(&["--durability", "--data-dir", "/tmp/store"])
            .unwrap_err()
            .message
            .contains("--maintain"));
        assert!(parse(&["--durability", "--maintain"])
            .unwrap_err()
            .message
            .contains("--data-dir"));
        assert!(parse(&[
            "--durability",
            "--maintain",
            "--data-dir",
            "/tmp/store",
            "--read-path",
            "locked"
        ])
        .unwrap_err()
        .message
        .contains("rcu"));
    }

    #[test]
    fn serve_flags_parse_and_validate() {
        let args = parse(&["--serve"]).unwrap();
        assert!(args.serve);
        assert_eq!(args.port, 4711);
        assert_eq!(args.workers, None);
        let args = parse(&["--serve", "--port", "47113", "--workers", "8"]).unwrap();
        assert_eq!(args.port, 47_113);
        assert_eq!(args.workers, Some(8));
        // Zero and out-of-range values are rejected with typed errors.
        assert!(parse(&["--serve", "--port", "0"])
            .unwrap_err()
            .message
            .contains("1..=65535"));
        assert!(parse(&["--serve", "--port", "70000"])
            .unwrap_err()
            .message
            .contains("1..=65535"));
        assert!(parse(&["--serve", "--workers", "0"])
            .unwrap_err()
            .message
            .contains("at least 1"));
        assert!(parse(&["--serve", "--port", "x"])
            .unwrap_err()
            .message
            .contains("integer"));
        // --port/--workers are serve-only knobs.
        assert!(parse(&["--port", "9000"])
            .unwrap_err()
            .message
            .contains("--serve"));
        assert!(parse(&["--workers", "4"])
            .unwrap_err()
            .message
            .contains("--serve"));
        // --serve is standalone.
        for conflicting in ["--dry-run", "--maintain"] {
            assert!(parse(&["--serve", conflicting])
                .unwrap_err()
                .message
                .contains("standalone"));
        }
        assert!(parse(&["--serve", "--recover", "--data-dir", "/tmp/x"])
            .unwrap_err()
            .message
            .contains("standalone"));
        // --durability accepts --serve as its host mode.
        let args = parse(&["--serve", "--durability", "--data-dir", "/tmp/x"]).unwrap();
        assert!(args.durability && args.serve);
        // --serve composes with the sharding/read-path knobs.
        let args = parse(&["--serve", "--read-path", "locked", "--shards", "8"]).unwrap();
        assert_eq!(args.read_path, ReadPath::Locked);
        assert_eq!(args.shards, 8);
    }

    #[test]
    fn recover_is_a_standalone_mode_anchored_to_a_data_dir() {
        let args = parse(&["--recover", "--data-dir", "/tmp/store"]).unwrap();
        assert!(args.recover);
        assert!(parse(&["--recover"])
            .unwrap_err()
            .message
            .contains("--data-dir"));
        assert!(
            parse(&["--recover", "--data-dir", "/tmp/store", "--maintain"])
                .unwrap_err()
                .message
                .contains("standalone")
        );
        assert!(
            parse(&["--recover", "--data-dir", "/tmp/store", "--dry-run"])
                .unwrap_err()
                .message
                .contains("standalone")
        );
        assert!(parse(&[
            "--recover",
            "--data-dir",
            "/tmp/store",
            "--read-path",
            "locked"
        ])
        .unwrap_err()
        .message
        .contains("rcu"));
    }
}
