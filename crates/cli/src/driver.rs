//! The CLI driver: build → (optional) CSV optimisation → workload replay →
//! report.

use crate::args::{CliArgs, CliError, IndexChoice, WorkloadChoice};
use csv_alex::AlexIndex;
use csv_btree::BPlusTree;
use csv_common::latency::LatencyHistogram;
use csv_common::traits::SnapshotIndex;
use csv_common::traits::{IndexStats, LearnedIndex, RangeIndex, RemovableIndex};
use csv_common::Key;
use csv_concurrent::{
    DurabilitySink, MaintenanceConfig, MaintenanceEngine, OverlayRepr, ReadPath, ShardedIndex,
    ShardingConfig,
};
use csv_core::cost::CostModel;
use csv_core::{CsvConfig, CsvConfigBuilder, CsvIntegrable, CsvOptimizer, CsvReport};
use csv_datasets::{
    io, MixedWorkload, MixedWorkloadSpec, Operation, OperationMix, Popularity, ReadOnlyWorkload,
};
use csv_durability::{recover, DurabilityConfig, FileSink};
use csv_lipp::LippIndex;
use csv_pgm::PgmIndex;
use csv_sali::SaliIndex;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything the run produced, returned for tests and printed by `main`.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Index display name.
    pub index_name: &'static str,
    /// Number of keys loaded.
    pub keys_loaded: usize,
    /// Structure statistics before CSV.
    pub stats_before: IndexStats,
    /// Structure statistics after CSV (equal to `stats_before` when CSV was
    /// skipped).
    pub stats_after: IndexStats,
    /// CSV run report, when CSV was applied.
    pub csv_report: Option<CsvReport>,
    /// Number of workload operations replayed.
    pub operations: usize,
    /// Point lookups that found their key.
    pub hits: usize,
    /// Records returned by range scans.
    pub scanned: usize,
    /// Per-operation latency histogram.
    pub latency: LatencyHistogram,
    /// The CSV plan as JSON, set only in `--dry-run` mode (where nothing is
    /// applied or replayed).
    pub plan_json: Option<String>,
    /// The with/without-maintenance comparison, set only in `--maintain`
    /// mode.
    pub maintain: Option<MaintainComparison>,
    /// What the durable sink persisted, set only with `--durability`.
    pub durability: Option<DurabilitySummary>,
    /// What recovery found and replayed, set only in `--recover` mode.
    pub recovery: Option<RecoverySummary>,
    /// What the serving front-end counted, set only in `--serve` mode.
    pub serve: Option<ServeSummary>,
}

/// What a `--serve` session counted between bind and shutdown.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// The address the server listened on.
    pub addr: String,
    /// Worker threads that served connections.
    pub workers: usize,
    /// The concurrency scheme lookups were served with.
    pub read_path: ReadPath,
    /// Connections accepted over the session.
    pub connections: u64,
    /// Operations served (batch entries count once each).
    pub ops: u64,
    /// Connections dropped for sending malformed frames.
    pub protocol_errors: u64,
    /// `false` when the background maintenance engine panicked.
    pub engine_healthy: bool,
    /// Incremental shard-maintenance passes the engine performed.
    pub maintenance_passes: usize,
    /// Shard splits the engine performed.
    pub shard_splits: usize,
    /// Shard merges the engine performed.
    pub shard_merges: usize,
}

impl ServeSummary {
    /// One line summarising the serving session.
    pub fn summary_line(&self) -> String {
        format!(
            "{} with {} workers on the {:?} read path; {} connections, {} ops, {} protocol errors; engine {} ({} passes, {} splits, {} merges)",
            self.addr,
            self.workers,
            self.read_path,
            self.connections,
            self.ops,
            self.protocol_errors,
            if self.engine_healthy { "healthy" } else { "PANICKED" },
            self.maintenance_passes,
            self.shard_splits,
            self.shard_merges
        )
    }
}

/// What the per-shard checkpoint + WAL sink persisted during a
/// `--durability` run.
#[derive(Debug, Clone)]
pub struct DurabilitySummary {
    /// Directory the store lives in.
    pub data_dir: PathBuf,
    /// Checkpoints written (the bulk-load seed plus every fold, split,
    /// merge, maintenance pass and backlog-triggered checkpoint tick).
    pub checkpoints: u64,
    /// WAL records appended (one per acknowledged overlay write).
    pub wal_records: u64,
}

/// What `--recover` rebuilt from the store on disk.
#[derive(Debug, Clone)]
pub struct RecoverySummary {
    /// Shards in the recovered layout.
    pub shards: usize,
    /// Live keys after checkpoint load + WAL replay.
    pub keys: usize,
    /// WAL records replayed over the checkpoints across all shards.
    pub replayed: u64,
    /// Shards whose WAL ended in a torn or corrupt tail (degraded past;
    /// expected after a crash).
    pub torn_shards: usize,
    /// Wall-clock recovery time, excluding the re-checkpoint that re-opens
    /// the store for writing.
    pub elapsed: Duration,
}

/// What `--maintain` measures: the same mixed workload replayed over the
/// sharded index twice — once with the background maintenance engine
/// ticking, once without — with point-lookup latencies recorded separately
/// so the structural drift shows up where it hurts.
#[derive(Debug, Clone)]
pub struct MaintainComparison {
    /// The concurrency scheme the sharded index served lookups with.
    pub read_path: ReadPath,
    /// The overlay representation RCU shard snapshots buffered pending
    /// writes in (ignored on the locked path, which has no overlays).
    pub overlay: OverlayRepr,
    /// Point-lookup latencies with background maintenance running.
    pub with_maintenance: LatencyHistogram,
    /// Point-lookup latencies without any maintenance.
    pub without_maintenance: LatencyHistogram,
    /// Incremental shard-maintenance passes the engine performed.
    pub maintenance_passes: usize,
    /// Shard splits the engine performed.
    pub shard_splits: usize,
    /// Shard merges the engine performed.
    pub shard_merges: usize,
    /// Shard count at the end of the maintained run.
    pub final_shards: usize,
}

impl MaintainComparison {
    /// One line comparing the two lookup-latency distributions.
    pub fn summary_line(&self) -> String {
        // The overlay knob only exists on the RCU path; naming it for a
        // locked run would misreport how writes were buffered.
        let scheme = match self.read_path {
            ReadPath::Locked => format!("{:?} read path", self.read_path),
            ReadPath::Rcu => format!(
                "{:?} read path ({:?} overlay)",
                self.read_path, self.overlay
            ),
        };
        format!(
            "{scheme}; {} passes, {} splits, {} merges, {} shards; lookups with maintenance p50={}ns p99={}ns, without p50={}ns p99={}ns",
            self.maintenance_passes,
            self.shard_splits,
            self.shard_merges,
            self.final_shards,
            self.with_maintenance.p50_ns(),
            self.with_maintenance.p99_ns(),
            self.without_maintenance.p50_ns(),
            self.without_maintenance.p99_ns()
        )
    }
}

impl RunSummary {
    /// Renders the human-readable report the binary prints (or, in
    /// `--dry-run` mode, just the JSON plan so the output stays pipeable).
    pub fn render(&self) -> String {
        if let Some(json) = &self.plan_json {
            return format!("{json}\n");
        }
        let mut out = String::new();
        out.push_str(&format!(
            "index: {} ({} keys, height {}, {} nodes, {:.1} MiB)\n",
            self.index_name,
            self.keys_loaded,
            self.stats_after.height,
            self.stats_after.node_count,
            self.stats_after.size_bytes as f64 / (1024.0 * 1024.0)
        ));
        if let Some(report) = &self.csv_report {
            out.push_str(&format!(
                "csv: {} of {} sub-trees rebuilt ({} skipped, {} declined), {} virtual points, {} refits ({} fallback rescans) in {:.2}s, mean key level {:.2} -> {:.2}, size {:+.1}%\n",
                report.subtrees_rebuilt,
                report.subtrees_considered(),
                report.subtrees_skipped(),
                report.rebuilds_declined(),
                report.virtual_points_added,
                report.gap_refits,
                report.smoothing.fallback_rescans,
                report.preprocessing_time.as_secs_f64(),
                self.stats_before.mean_key_level(),
                self.stats_after.mean_key_level(),
                (self.stats_after.size_bytes as f64 / self.stats_before.size_bytes.max(1) as f64 - 1.0)
                    * 100.0
            ));
        }
        // A served run has no local replay: its operation counts and
        // latency live on the client side (the load generator prints
        // them), so the workload/latency lines would only show zeros.
        if self.serve.is_none() {
            out.push_str(&format!(
                "workload: {} operations, {} hits, {} records scanned\n",
                self.operations, self.hits, self.scanned
            ));
            out.push_str(&format!("latency: {}\n", self.latency.summary_line()));
        }
        if let Some(maintain) = &self.maintain {
            out.push_str(&format!("maintain: {}\n", maintain.summary_line()));
        }
        if let Some(durability) = &self.durability {
            out.push_str(&format!(
                "durability: {} checkpoints, {} wal records in {}\n",
                durability.checkpoints,
                durability.wal_records,
                durability.data_dir.display()
            ));
        }
        if let Some(recovery) = &self.recovery {
            out.push_str(&format!(
                "recovery: {} shards, {} keys, {} wal records replayed ({} torn shards) in {:.2}ms\n",
                recovery.shards,
                recovery.keys,
                recovery.replayed,
                recovery.torn_shards,
                recovery.elapsed.as_secs_f64() * 1_000.0
            ));
        }
        if let Some(serve) = &self.serve {
            out.push_str(&format!("serve: {}\n", serve.summary_line()));
        }
        out
    }
}

/// Runs the whole pipeline described by `args`.
pub fn run(args: &CliArgs) -> Result<RunSummary, CliError> {
    // `0` keeps rayon's auto-detected width (one worker per core).
    csv_core::configure_global_threads(args.threads);
    if args.recover {
        // Recovery needs no dataset: the store on disk is the input.
        return match args.index {
            IndexChoice::Alex => recover_run::<AlexIndex>(args),
            IndexChoice::Lipp => recover_run::<LippIndex>(args),
            IndexChoice::Sali => recover_run::<SaliIndex>(args),
            IndexChoice::Pgm => recover_run::<PgmIndex>(args),
            IndexChoice::Btree => recover_run::<BPlusTree>(args),
        };
    }
    if args.dry_run {
        if !args.index.supports_csv() {
            return Err(CliError::new(format!(
                "--dry-run plans a CSV optimisation, which {} does not support (use alex|lipp|sali)",
                args.index.name()
            )));
        }
        if args.alpha <= 0.0 {
            return Err(CliError::new(
                "--dry-run requires --alpha > 0 (alpha 0 disables CSV)",
            ));
        }
    }
    if args.maintain {
        if args.dry_run {
            return Err(CliError::new(
                "--maintain and --dry-run are mutually exclusive",
            ));
        }
        if !args.index.supports_csv() {
            return Err(CliError::new(format!(
                "--maintain re-optimises via CSV, which {} does not support (use alex|lipp|sali)",
                args.index.name()
            )));
        }
        if args.alpha <= 0.0 {
            return Err(CliError::new(
                "--maintain requires --alpha > 0 (alpha 0 disables CSV)",
            ));
        }
    }
    if args.serve {
        // Serving keeps the maintenance engine ticking behind the socket,
        // so it needs a CSV-capable index, like --maintain.
        if !args.index.supports_csv() {
            return Err(CliError::new(format!(
                "--serve maintains the index via CSV, which {} does not support (use alex|lipp|sali)",
                args.index.name()
            )));
        }
        if args.alpha <= 0.0 {
            return Err(CliError::new(
                "--serve requires --alpha > 0 (alpha 0 disables CSV)",
            ));
        }
    }
    let keys = load_keys(args)?;
    if keys.len() < 2 {
        return Err(CliError::new(
            "the dataset must contain at least two unique keys",
        ));
    }
    if args.serve {
        return match args.index {
            IndexChoice::Alex => serve_run::<AlexIndex>(&keys, args, true),
            IndexChoice::Lipp => serve_run::<LippIndex>(&keys, args, false),
            IndexChoice::Sali => serve_run::<SaliIndex>(&keys, args, false),
            _ => unreachable!("validated above"),
        };
    }
    if args.maintain {
        return match args.index {
            IndexChoice::Alex => maintained_run::<AlexIndex>(&keys, args, true),
            IndexChoice::Lipp => maintained_run::<LippIndex>(&keys, args, false),
            IndexChoice::Sali => maintained_run::<SaliIndex>(&keys, args, false),
            _ => unreachable!("validated above"),
        };
    }
    match args.index {
        IndexChoice::Alex => {
            let mut index = AlexIndex::bulk_load(&csv_common::key::identity_records(&keys));
            if args.dry_run {
                return Ok(dry_run(&index, args, true));
            }
            let (before, report, after) = optimize(&mut index, args, true);
            Ok(replay(index, &keys, args, before, report, after))
        }
        IndexChoice::Lipp => {
            let mut index = LippIndex::bulk_load(&csv_common::key::identity_records(&keys));
            if args.dry_run {
                return Ok(dry_run(&index, args, false));
            }
            let (before, report, after) = optimize(&mut index, args, false);
            Ok(replay(index, &keys, args, before, report, after))
        }
        IndexChoice::Sali => {
            let mut index = SaliIndex::bulk_load(&csv_common::key::identity_records(&keys));
            if args.dry_run {
                return Ok(dry_run(&index, args, false));
            }
            let (before, report, after) = optimize(&mut index, args, false);
            Ok(replay(index, &keys, args, before, report, after))
        }
        IndexChoice::Pgm => {
            let index = PgmIndex::bulk_load(&csv_common::key::identity_records(&keys));
            let stats = index.stats();
            Ok(replay(index, &keys, args, stats.clone(), None, stats))
        }
        IndexChoice::Btree => {
            let index = BPlusTree::bulk_load(&csv_common::key::identity_records(&keys));
            let stats = index.stats();
            Ok(replay(index, &keys, args, stats.clone(), None, stats))
        }
    }
}

fn load_keys(args: &CliArgs) -> Result<Vec<Key>, CliError> {
    match &args.dataset_file {
        Some(path) => io::load_keys_normalized(path)
            .map_err(|e| CliError::new(format!("failed to load {}: {e}", path.display()))),
        None => Ok(args.dataset.generate(args.size, args.seed)),
    }
}

fn csv_config(args: &CliArgs, is_alex: bool) -> CsvConfig {
    let builder = if is_alex {
        CsvConfigBuilder::alex(CostModel::default())
    } else {
        CsvConfigBuilder::lipp()
    };
    builder
        .alpha(args.alpha)
        .greedy(args.greedy)
        .drift_tolerance(args.drift_tolerance)
        .build()
}

fn optimize<I: LearnedIndex + csv_core::CsvIntegrable + Sync>(
    index: &mut I,
    args: &CliArgs,
    is_alex: bool,
) -> (IndexStats, Option<CsvReport>, IndexStats) {
    let before = index.stats();
    if args.alpha <= 0.0 {
        return (before.clone(), None, before);
    }
    let optimizer = CsvOptimizer::new(csv_config(args, is_alex));
    let report = if args.threads == 1 {
        optimizer.optimize(index)
    } else {
        optimizer.optimize_parallel(index)
    };
    let after = index.stats();
    (before, Some(report), after)
}

/// `--dry-run`: computes the plan against the freshly built index and
/// renders it as JSON; the index is never mutated and no workload runs.
///
/// For single-level sweeps (LIPP/SALI) the plan is exactly what the real
/// run applies. ALEX sweeps multiple levels, and a real run re-plans each
/// level after the deeper rebuilds have happened, so a dry-run plan's
/// upper-level decisions are a snapshot approximation (see
/// [`CsvOptimizer::plan`]); the usage text says so.
fn dry_run<I: LearnedIndex + csv_core::CsvIntegrable + Sync>(
    index: &I,
    args: &CliArgs,
    is_alex: bool,
) -> RunSummary {
    let optimizer = CsvOptimizer::new(csv_config(args, is_alex));
    let plan = if args.threads == 1 {
        optimizer.plan(index)
    } else {
        optimizer.plan_parallel(index)
    };
    let stats = index.stats();
    RunSummary {
        index_name: index.name(),
        keys_loaded: stats.num_keys,
        stats_before: stats.clone(),
        stats_after: stats,
        csv_report: None,
        operations: 0,
        hits: 0,
        scanned: 0,
        latency: LatencyHistogram::new(),
        plan_json: Some(plan.to_json()),
        maintain: None,
        durability: None,
        recovery: None,
        serve: None,
    }
}

/// The sharded-index layout `--maintain`/`--recover` runs use, built from
/// the CLI knobs (`--shards`, `--overlay-capacity`, `--read-path`,
/// `--overlay`).
fn sharding_config(args: &CliArgs) -> ShardingConfig {
    let mut config = ShardingConfig::with_shards(args.shards)
        .with_read_path(args.read_path)
        .with_overlay(args.overlay);
    if let Some(capacity) = args.overlay_capacity {
        config = config.with_overlay_capacity(capacity);
    }
    config
}

/// `--recover`: rebuilds the sharded index from the durable store in
/// `--data-dir` (checkpoints + WAL replay) and reports what recovery found
/// — no dataset is generated and no workload runs.
fn recover_run<I>(args: &CliArgs) -> Result<RunSummary, CliError>
where
    I: LearnedIndex + RangeIndex,
{
    let data_dir = args.data_dir.as_ref().expect("validated at parse time");
    let recovered = recover::<I>(DurabilityConfig::new(data_dir), sharding_config(args))
        .map_err(|e| CliError::new(format!("--recover: {e}")))?;
    let stats = recovered.index.stats();
    let report = &recovered.report;
    Ok(RunSummary {
        index_name: args.index.name(),
        keys_loaded: report.keys,
        stats_before: stats.clone(),
        stats_after: stats,
        csv_report: None,
        operations: 0,
        hits: 0,
        scanned: 0,
        latency: LatencyHistogram::new(),
        plan_json: None,
        maintain: None,
        durability: None,
        recovery: Some(RecoverySummary {
            shards: report.shards.len(),
            keys: report.keys,
            replayed: report.replayed(),
            torn_shards: report.torn_shards(),
            elapsed: report.elapsed,
        }),
        serve: None,
    })
}

/// `--serve`: builds the sharded index exactly like `--maintain` does
/// (bulk load → CSV optimise → spawn the maintenance engine), then hands
/// it to the `csv_server` front-end and blocks until a client sends the
/// protocol's `Shutdown` operation. The listening line is printed (and
/// flushed) before blocking so a supervising process — CI's smoke test,
/// a benchmark script — knows when to start its load generator.
fn serve_run<I>(keys: &[Key], args: &CliArgs, is_alex: bool) -> Result<RunSummary, CliError>
where
    I: SnapshotIndex + RangeIndex + RemovableIndex + CsvIntegrable + 'static,
{
    let records = csv_common::key::identity_records(keys);
    let optimizer = CsvOptimizer::new(csv_config(args, is_alex));
    let sink = if args.durability {
        let data_dir = args.data_dir.as_ref().expect("validated at parse time");
        let sink = FileSink::create(DurabilityConfig::new(data_dir))
            .map_err(|e| CliError::new(format!("--durability: {e}")))?;
        Some(Arc::new(sink))
    } else {
        None
    };
    let sharded = match &sink {
        Some(sink) => Arc::new(ShardedIndex::<I>::bulk_load_durable(
            &records,
            sharding_config(args),
            Arc::clone(sink) as Arc<dyn DurabilitySink>,
        )),
        None => Arc::new(ShardedIndex::<I>::bulk_load(
            &records,
            sharding_config(args),
        )),
    };
    let stats_before = sharded.stats();
    sharded.optimize(&optimizer);
    let stats_after = sharded.stats();
    let engine = MaintenanceEngine::new(optimizer, MaintenanceConfig::default());
    let engine_handle = engine.spawn(Arc::clone(&sharded));
    let workers = args
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(2, |n| n.get()));
    let handle = csv_server::spawn(
        Arc::clone(&sharded),
        Some(engine_handle),
        csv_server::ServerConfig {
            port: args.port,
            workers,
            ..csv_server::ServerConfig::default()
        },
    )
    .map_err(|e| CliError::new(format!("--serve: failed to bind port {}: {e}", args.port)))?;
    let addr = handle.local_addr().to_string();
    println!(
        "serving: {addr} ({workers} workers, {:?} read path, {} shards, {} keys)",
        args.read_path,
        sharded.num_shards(),
        keys.len()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let report = handle.join();
    let engine_stats = report.engine_stats.unwrap_or_default();
    let durability = sink.map(|sink| {
        let persisted = sink.stats();
        DurabilitySummary {
            data_dir: sink.data_dir().to_path_buf(),
            checkpoints: persisted.checkpoints,
            wal_records: persisted.wal_records,
        }
    });
    Ok(RunSummary {
        index_name: args.index.name(),
        keys_loaded: keys.len(),
        stats_before,
        stats_after,
        csv_report: None,
        operations: report.ops as usize,
        hits: 0,
        scanned: 0,
        latency: LatencyHistogram::new(),
        plan_json: None,
        maintain: None,
        durability,
        recovery: None,
        serve: Some(ServeSummary {
            addr,
            workers,
            read_path: args.read_path,
            connections: report.connections,
            ops: report.ops,
            protocol_errors: report.protocol_errors,
            engine_healthy: report.engine_healthy,
            maintenance_passes: engine_stats.maintain_passes,
            shard_splits: engine_stats.splits,
            shard_merges: engine_stats.merges,
        }),
    })
}

/// The per-run result of one `--maintain` replay (with or without the
/// engine ticking in the background).
struct MaintainedReplay {
    lookups: LatencyHistogram,
    all_ops: LatencyHistogram,
    hits: usize,
    scanned: usize,
    passes: usize,
    splits: usize,
    merges: usize,
    stats_before: IndexStats,
    stats_after: IndexStats,
    shards: usize,
    durability: Option<DurabilitySummary>,
}

/// `--maintain`: replays the workload over a [`ShardedIndex`] (on the read
/// path chosen by `--read-path`) twice — first with the engine-owned
/// background thread ([`MaintenanceEngine::spawn`]) splitting outgrown
/// shards, merging drained ones and incrementally re-smoothing the
/// stalest, then with no maintenance at all — and reports the point-lookup
/// latency comparison. Both runs start from the same freshly optimised
/// sharded index, so the only difference is whether the smoothed layout is
/// allowed to erode.
fn maintained_run<I>(keys: &[Key], args: &CliArgs, is_alex: bool) -> Result<RunSummary, CliError>
where
    I: SnapshotIndex + RangeIndex + RemovableIndex + CsvIntegrable + 'static,
{
    let records = csv_common::key::identity_records(keys);
    let operations = build_operations(keys, args);
    let optimizer = CsvOptimizer::new(csv_config(args, is_alex));

    let replay_once = |maintain: bool| -> Result<MaintainedReplay, CliError> {
        // Only the maintained run persists: durability rides the engine's
        // checkpoint ticks, and one store per directory keeps `--recover`
        // unambiguous about which run it resumes.
        let sink = if maintain && args.durability {
            let data_dir = args.data_dir.as_ref().expect("validated at parse time");
            let sink = FileSink::create(DurabilityConfig::new(data_dir))
                .map_err(|e| CliError::new(format!("--durability: {e}")))?;
            Some(Arc::new(sink))
        } else {
            None
        };
        let sharded = match &sink {
            Some(sink) => Arc::new(ShardedIndex::<I>::bulk_load_durable(
                &records,
                sharding_config(args),
                Arc::clone(sink) as Arc<dyn DurabilitySink>,
            )),
            None => Arc::new(ShardedIndex::<I>::bulk_load(
                &records,
                sharding_config(args),
            )),
        };
        let stats_before = sharded.stats();
        // Both runs start from the smoothed layout the paper's one-shot
        // pipeline produces; the maintained run is the one that keeps it.
        sharded.optimize(&optimizer);
        let mut lookups = LatencyHistogram::new();
        let mut all_ops = LatencyHistogram::new();
        let mut hits = 0usize;
        let mut scanned = 0usize;
        let engine = MaintenanceEngine::new(optimizer.clone(), MaintenanceConfig::default());
        let handle = maintain.then(|| engine.spawn(Arc::clone(&sharded)));
        for op in &operations {
            let started = Instant::now();
            let is_lookup = matches!(op, Operation::Read(_));
            match *op {
                Operation::Read(k) => hits += usize::from(sharded.get(k).is_some()),
                Operation::Insert(k) => {
                    sharded.insert(k, k);
                }
                Operation::Remove(k) => hits += usize::from(sharded.remove(k).is_some()),
                Operation::Scan(lo, hi) => scanned += sharded.range(lo, hi).len(),
            }
            let elapsed = started.elapsed();
            all_ops.record(elapsed);
            if is_lookup {
                lookups.record(elapsed);
            }
        }
        let stats = handle.map(|h| h.stop()).unwrap_or_default();
        let durability = sink.map(|sink| {
            let persisted = sink.stats();
            DurabilitySummary {
                data_dir: sink.data_dir().to_path_buf(),
                checkpoints: persisted.checkpoints,
                wal_records: persisted.wal_records,
            }
        });
        Ok(MaintainedReplay {
            lookups,
            all_ops,
            hits,
            scanned,
            passes: stats.maintain_passes,
            splits: stats.splits,
            merges: stats.merges,
            stats_before,
            stats_after: sharded.stats(),
            shards: sharded.num_shards(),
            durability,
        })
    };

    let maintained = replay_once(true)?;
    let unmaintained = replay_once(false)?;
    Ok(RunSummary {
        index_name: args.index.name(),
        keys_loaded: keys.len(),
        stats_before: maintained.stats_before.clone(),
        stats_after: maintained.stats_after.clone(),
        csv_report: None,
        operations: operations.len(),
        hits: maintained.hits,
        scanned: maintained.scanned,
        latency: maintained.all_ops.clone(),
        plan_json: None,
        maintain: Some(MaintainComparison {
            read_path: args.read_path,
            overlay: args.overlay,
            with_maintenance: maintained.lookups,
            without_maintenance: unmaintained.lookups,
            maintenance_passes: maintained.passes,
            shard_splits: maintained.splits,
            shard_merges: maintained.merges,
            final_shards: maintained.shards,
        }),
        durability: maintained.durability,
        recovery: None,
        serve: None,
    })
}

fn replay<I: LearnedIndex + RangeIndex + RemovableIndex>(
    mut index: I,
    keys: &[Key],
    args: &CliArgs,
    stats_before: IndexStats,
    csv_report: Option<CsvReport>,
    stats_after: IndexStats,
) -> RunSummary {
    let operations = build_operations(keys, args);
    let mut latency = LatencyHistogram::new();
    let mut hits = 0usize;
    let mut scanned = 0usize;
    for op in &operations {
        let started = Instant::now();
        match *op {
            Operation::Read(k) => hits += usize::from(index.get(k).is_some()),
            Operation::Insert(k) => {
                index.insert(k, k);
            }
            Operation::Remove(k) => hits += usize::from(index.remove(k).is_some()),
            Operation::Scan(lo, hi) => scanned += index.range(lo, hi).len(),
        }
        latency.record(started.elapsed());
    }
    RunSummary {
        index_name: index.name(),
        keys_loaded: keys.len(),
        stats_before,
        stats_after,
        csv_report,
        operations: operations.len(),
        hits,
        scanned,
        latency,
        plan_json: None,
        maintain: None,
        durability: None,
        recovery: None,
        serve: None,
    }
}

fn build_operations(keys: &[Key], args: &CliArgs) -> Vec<Operation> {
    match args.workload {
        WorkloadChoice::ReadOnly => {
            ReadOnlyWorkload::uniform(keys.to_vec(), args.ops, args.seed ^ 0x5151)
                .queries
                .into_iter()
                .map(Operation::Read)
                .collect()
        }
        other => {
            let (mix, popularity) = match other {
                WorkloadChoice::YcsbA => (OperationMix::ycsb_a(), Popularity::Zipfian(0.99)),
                WorkloadChoice::YcsbB => (OperationMix::ycsb_b(), Popularity::Zipfian(0.99)),
                WorkloadChoice::YcsbE => (OperationMix::ycsb_e(), Popularity::Uniform),
                _ => (OperationMix::churn(), Popularity::Uniform),
            };
            MixedWorkload::generate(
                keys,
                &MixedWorkloadSpec {
                    num_operations: args.ops,
                    mix,
                    popularity,
                    scan_width: 100,
                    seed: args.seed ^ 0x7e7e,
                },
            )
            .operations
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_datasets::Dataset;

    fn small_args(index: IndexChoice, workload: WorkloadChoice, alpha: f64) -> CliArgs {
        CliArgs {
            index,
            dataset: Dataset::Genome,
            dataset_file: None,
            size: 20_000,
            alpha,
            workload,
            ops: 5_000,
            seed: 3,
            ..CliArgs::default()
        }
    }

    #[test]
    fn read_only_run_hits_every_query() {
        for index in [IndexChoice::Lipp, IndexChoice::Pgm, IndexChoice::Btree] {
            let summary = run(&small_args(index, WorkloadChoice::ReadOnly, 0.0)).unwrap();
            assert_eq!(summary.operations, 5_000);
            assert_eq!(
                summary.hits, 5_000,
                "{}: read-only queries must all hit",
                summary.index_name
            );
            assert!(summary.csv_report.is_none());
            assert_eq!(summary.latency.count(), 5_000);
            assert!(summary.render().contains("workload: 5000 operations"));
        }
    }

    #[test]
    fn csv_is_applied_when_alpha_is_positive() {
        let summary = run(&small_args(
            IndexChoice::Lipp,
            WorkloadChoice::ReadOnly,
            0.2,
        ))
        .unwrap();
        let report = summary
            .csv_report
            .as_ref()
            .expect("CSV must run for alpha > 0");
        assert!(report.subtrees_considered() > 0);
        assert!(
            summary.stats_after.mean_key_level() <= summary.stats_before.mean_key_level() + 1e-9
        );
        assert!(summary.render().contains("csv:"));
        // Baselines do not support CSV and simply skip it.
        let baseline = run(&small_args(
            IndexChoice::Btree,
            WorkloadChoice::ReadOnly,
            0.2,
        ))
        .unwrap();
        assert!(baseline.csv_report.is_none());
    }

    #[test]
    fn dry_run_emits_a_json_plan_without_applying() {
        let args = CliArgs {
            dry_run: true,
            ..small_args(IndexChoice::Lipp, WorkloadChoice::ReadOnly, 0.2)
        };
        let summary = run(&args).unwrap();
        let json = summary
            .plan_json
            .as_deref()
            .expect("dry-run must produce a plan");
        assert!(json.contains("\"decisions\""));
        assert!(json.contains("\"subtrees_considered\""));
        // Nothing was applied or replayed.
        assert_eq!(summary.stats_before, summary.stats_after);
        assert!(summary.csv_report.is_none());
        assert_eq!(summary.operations, 0);
        assert_eq!(summary.render().trim_end(), json);

        // A real run over the same arguments does mutate the structure.
        let applied = run(&small_args(
            IndexChoice::Lipp,
            WorkloadChoice::ReadOnly,
            0.2,
        ))
        .unwrap();
        assert!(applied.csv_report.unwrap().subtrees_rebuilt > 0);
    }

    #[test]
    fn dry_run_rejects_unsupported_combinations() {
        let baseline = CliArgs {
            dry_run: true,
            ..small_args(IndexChoice::Btree, WorkloadChoice::ReadOnly, 0.2)
        };
        assert!(run(&baseline)
            .unwrap_err()
            .message
            .contains("does not support"));
        let no_alpha = CliArgs {
            dry_run: true,
            ..small_args(IndexChoice::Lipp, WorkloadChoice::ReadOnly, 0.0)
        };
        assert!(run(&no_alpha).unwrap_err().message.contains("--alpha > 0"));
    }

    #[test]
    fn mixed_workloads_run_on_every_index() {
        for index in [
            IndexChoice::Alex,
            IndexChoice::Lipp,
            IndexChoice::Sali,
            IndexChoice::Pgm,
            IndexChoice::Btree,
        ] {
            let summary = run(&small_args(index, WorkloadChoice::Churn, 0.1)).unwrap();
            assert_eq!(summary.operations, 5_000);
            assert!(
                summary.hits > 0,
                "{}: churn workload should hit keys",
                summary.index_name
            );
            assert_eq!(summary.latency.count(), 5_000);
        }
    }

    #[test]
    fn maintain_mode_reports_both_latency_distributions() {
        for (read_path, overlay) in [
            (ReadPath::Rcu, OverlayRepr::Persistent),
            (ReadPath::Rcu, OverlayRepr::Vec),
            (ReadPath::Locked, OverlayRepr::Persistent),
        ] {
            let args = CliArgs {
                maintain: true,
                read_path,
                overlay,
                ..small_args(IndexChoice::Lipp, WorkloadChoice::YcsbA, 0.1)
            };
            let summary = run(&args).unwrap();
            let maintain = summary
                .maintain
                .as_ref()
                .expect("--maintain must produce a comparison");
            assert_eq!(maintain.read_path, read_path);
            assert_eq!(maintain.overlay, overlay);
            // Lookups are a strict subset of the replayed operations, and
            // both runs replay the same workload.
            assert!(maintain.with_maintenance.count() > 0);
            assert_eq!(
                maintain.with_maintenance.count(),
                maintain.without_maintenance.count()
            );
            assert!(maintain.with_maintenance.count() < summary.operations as u64);
            assert!(maintain.final_shards >= 16);
            assert_eq!(summary.latency.count(), summary.operations as u64);
            assert!(summary.hits > 0);
            let rendered = summary.render();
            assert!(rendered.contains("maintain:"));
            assert!(rendered.contains("with maintenance p50="));
            assert!(rendered.contains(&format!("{read_path:?} read path")));
        }
    }

    #[test]
    fn maintain_mode_rejects_unsupported_combinations() {
        let baseline = CliArgs {
            maintain: true,
            ..small_args(IndexChoice::Pgm, WorkloadChoice::YcsbA, 0.1)
        };
        assert!(run(&baseline)
            .unwrap_err()
            .message
            .contains("does not support"));
        let no_alpha = CliArgs {
            maintain: true,
            ..small_args(IndexChoice::Lipp, WorkloadChoice::YcsbA, 0.0)
        };
        assert!(run(&no_alpha).unwrap_err().message.contains("--alpha > 0"));
        let both = CliArgs {
            maintain: true,
            dry_run: true,
            ..small_args(IndexChoice::Lipp, WorkloadChoice::YcsbA, 0.1)
        };
        assert!(run(&both)
            .unwrap_err()
            .message
            .contains("mutually exclusive"));
    }

    #[test]
    fn ycsb_e_reports_scanned_records() {
        let summary = run(&small_args(IndexChoice::Alex, WorkloadChoice::YcsbE, 0.0)).unwrap();
        assert!(
            summary.scanned > 0,
            "scan-heavy workload must return records"
        );
    }

    #[test]
    fn dataset_files_are_loaded_and_bad_paths_reported() {
        let keys = Dataset::Covid.generate(5_000, 9);
        let mut path = std::env::temp_dir();
        path.push(format!("csv_cli_driver_{}.sosd", std::process::id()));
        io::save_keys(&path, &keys).unwrap();
        let args = CliArgs {
            dataset_file: Some(path.clone()),
            ops: 1_000,
            ..small_args(IndexChoice::Lipp, WorkloadChoice::ReadOnly, 0.0)
        };
        let summary = run(&args).unwrap();
        assert_eq!(summary.keys_loaded, keys.len());
        std::fs::remove_file(&path).ok();

        let missing = CliArgs {
            dataset_file: Some(std::path::PathBuf::from("/definitely/not/here.sosd")),
            ..args
        };
        assert!(run(&missing)
            .unwrap_err()
            .message
            .contains("failed to load"));
    }

    #[test]
    fn durable_maintain_then_recover_round_trips() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("csv_cli_durable_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let durable = CliArgs {
            maintain: true,
            durability: true,
            data_dir: Some(dir.clone()),
            shards: 4,
            ..small_args(IndexChoice::Lipp, WorkloadChoice::YcsbA, 0.1)
        };
        let summary = run(&durable).unwrap();
        let persisted = summary
            .durability
            .as_ref()
            .expect("--durability must report sink stats");
        assert!(persisted.checkpoints >= 4, "bulk load seeds every shard");
        assert!(
            persisted.wal_records > 0,
            "a write-heavy workload must log records"
        );
        assert_eq!(persisted.data_dir, dir);
        assert!(summary.render().contains("durability:"));

        // The store the run left behind is recoverable, and the recovered
        // report reaches the rendered output.
        let recovered = run(&CliArgs {
            recover: true,
            data_dir: Some(dir.clone()),
            ..small_args(IndexChoice::Lipp, WorkloadChoice::YcsbA, 0.1)
        })
        .unwrap();
        let report = recovered
            .recovery
            .as_ref()
            .expect("--recover must report what replay found");
        assert!(report.shards >= 4);
        assert!(report.keys > 0);
        assert_eq!(
            report.torn_shards, 0,
            "an orderly shutdown leaves clean logs"
        );
        assert_eq!(recovered.keys_loaded, report.keys);
        assert!(recovered.render().contains("recovery:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_reports_missing_and_occupied_stores() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("csv_cli_norecover_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let missing = CliArgs {
            recover: true,
            data_dir: Some(dir.clone()),
            ..small_args(IndexChoice::Lipp, WorkloadChoice::ReadOnly, 0.0)
        };
        assert!(run(&missing)
            .unwrap_err()
            .message
            .contains("no durability store"));

        // A second --durability run must refuse to overwrite the store the
        // first one left behind.
        let durable = CliArgs {
            maintain: true,
            durability: true,
            data_dir: Some(dir.clone()),
            shards: 2,
            ops: 500,
            ..small_args(IndexChoice::Lipp, WorkloadChoice::YcsbB, 0.1)
        };
        run(&durable).unwrap();
        assert!(run(&durable)
            .unwrap_err()
            .message
            .contains("already holds a durability store"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_datasets_are_rejected() {
        let args = CliArgs {
            size: 2,
            ..small_args(IndexChoice::Lipp, WorkloadChoice::ReadOnly, 0.0)
        };
        // Size 2 generates two keys, which is accepted; size below that is
        // caught at parse time, so force the runtime check via a file.
        let mut path = std::env::temp_dir();
        path.push(format!("csv_cli_tiny_{}.sosd", std::process::id()));
        io::save_keys(&path, &[7]).unwrap();
        let bad = CliArgs {
            dataset_file: Some(path.clone()),
            ..args
        };
        assert!(run(&bad).unwrap_err().message.contains("at least two"));
        std::fs::remove_file(&path).ok();
    }

    /// `--serve` end to end through `run()`: the driver builds the index,
    /// spawns the engine and the server, and blocks until a client sends
    /// Shutdown — after which the summary carries the serving counters.
    #[test]
    fn serve_run_serves_and_reports_on_both_read_paths() {
        for (port, read_path) in [(47201u16, ReadPath::Rcu), (47202, ReadPath::Locked)] {
            let args = CliArgs {
                serve: true,
                port,
                workers: Some(2),
                shards: 4,
                read_path,
                ..small_args(IndexChoice::Lipp, WorkloadChoice::ReadOnly, 0.1)
            };
            let keys = Dataset::Genome.generate(args.size, args.seed);
            let server = std::thread::spawn(move || run(&args));

            // The server owns the calling thread; poll until it is up.
            let addr = format!("127.0.0.1:{port}");
            let mut client = None;
            for _ in 0..200 {
                match csv_server::Client::connect(&addr) {
                    Ok(c) => {
                        client = Some(c);
                        break;
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(25)),
                }
            }
            let mut client = client.expect("the server must come up within five seconds");

            assert_eq!(client.get(keys[42]).unwrap(), Some(keys[42]));
            let batch = [keys[1], keys[3], keys.last().unwrap() + 1];
            assert_eq!(
                client.multi_get(&batch).unwrap(),
                vec![Some(keys[1]), Some(keys[3]), None]
            );
            let stats = client.stats().unwrap();
            assert_eq!(stats.keys, keys.len() as u64);
            assert_eq!(stats.workers, 2);
            assert_eq!(stats.rcu, read_path == ReadPath::Rcu);
            assert!(stats.maintenance, "--serve attaches the engine");
            assert!(stats.engine_healthy);

            client.shutdown().unwrap();
            let summary = server.join().unwrap().unwrap();
            let serve = summary.serve.as_ref().expect("--serve fills the summary");
            assert_eq!(serve.addr, addr);
            assert_eq!(serve.workers, 2);
            assert_eq!(serve.read_path, read_path);
            assert!(serve.connections >= 1);
            assert!(serve.ops >= 5);
            assert_eq!(serve.protocol_errors, 0);
            assert!(serve.engine_healthy);
            let rendered = summary.render();
            assert!(rendered.contains("serve:"), "{rendered}");
            assert!(rendered.contains("engine healthy"), "{rendered}");
        }
    }
}
