//! The cost model balancing traversal savings against extra leaf-node search
//! work (§5.1, Eq. 22 of the paper).
//!
//! CSV merges a sub-tree into a single flat node. For indexes without a
//! leaf-search component (LIPP, SALI) a successful smoothing is always
//! beneficial, so the cost condition reduces to "did the loss improve?". For
//! ALEX-style indexes the merged node holds more keys and therefore needs
//! more exponential-search iterations per lookup, so Eq. 22 weighs the
//! expected number of searches against the traversal levels saved:
//!
//! ```text
//! cost = search_constant · Δ expected_number_of_searches
//!      + traversal_constant · Δ index_level
//! ```
//!
//! Both deltas are "after − before"; a negative cost means the rebuilt node
//! is expected to answer queries faster, and the rebuild is performed only if
//! `cost < c` for a threshold `c ≤ 0`.

use crate::layout::SmoothedLayout;
use csv_common::search::expected_search_iterations;
use serde::{Deserialize, Serialize};

/// Hardware-calibrated constants of Eq. 22.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Time (or abstract cost units) per leaf-node search iteration.
    pub search_constant: f64,
    /// Time (or abstract cost units) per traversed index level.
    pub traversal_constant: f64,
    /// Rebuild threshold `c`; the paper recommends a value ≤ 0.
    pub threshold: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Defaults correspond to the common observation that one level of
        // pointer chasing costs roughly as much as 2–3 search iterations in
        // a cache-resident node; they can be re-calibrated via `calibrate`.
        Self {
            search_constant: 1.0,
            traversal_constant: 2.5,
            threshold: 0.0,
        }
    }
}

impl CostModel {
    /// Creates a model from measured per-search and per-level costs.
    pub fn new(search_constant: f64, traversal_constant: f64, threshold: f64) -> Self {
        Self {
            search_constant,
            traversal_constant,
            threshold,
        }
    }

    /// Builds a model from sampled measurements: the average time (in any
    /// consistent unit) spent per leaf-search iteration and per traversed
    /// level, as suggested by the paper to stay hardware-independent.
    pub fn calibrate(avg_search_time: f64, avg_level_time: f64, threshold: f64) -> Self {
        Self {
            search_constant: avg_search_time.max(f64::MIN_POSITIVE),
            traversal_constant: avg_level_time.max(f64::MIN_POSITIVE),
            threshold,
        }
    }

    /// Eq. 22 evaluated on before/after statistics of a sub-tree.
    pub fn cost_delta(&self, before: &SubtreeCostStats, after: &SubtreeCostStats) -> f64 {
        let d_search = after.expected_searches - before.expected_searches;
        let d_level = after.mean_key_depth - before.mean_key_depth;
        self.search_constant * d_search + self.traversal_constant * d_level
    }

    /// `true` when the rebuild passes the threshold test (`cost < c`).
    pub fn accepts(&self, before: &SubtreeCostStats, after: &SubtreeCostStats) -> bool {
        self.cost_delta(before, after) < self.threshold
    }
}

/// Per-sub-tree query-cost statistics used by the cost condition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubtreeCostStats {
    /// Number of real keys in the sub-tree.
    pub num_keys: usize,
    /// Mean depth (in levels, 1 = the sub-tree root) at which a key is found.
    pub mean_key_depth: f64,
    /// Mean expected number of leaf-search iterations per lookup.
    pub expected_searches: f64,
}

impl SubtreeCostStats {
    /// Statistics of a *flattened* sub-tree rebuilt from a smoothed layout:
    /// every key sits in the (single) root node, and the expected number of
    /// searches follows ALEX's `log2`-error model evaluated against the
    /// layout's refitted linear model.
    pub fn of_layout(layout: &SmoothedLayout) -> Self {
        let mut total_iters = 0.0;
        let mut real = 0usize;
        for (rank, entry) in layout.entries().iter().enumerate() {
            if entry.is_real() {
                let err = layout.model().predict_f64(entry.key()) - rank as f64;
                total_iters += expected_search_iterations(err);
                real += 1;
            }
        }
        let expected_searches = if real == 0 {
            0.0
        } else {
            total_iters / real as f64
        };
        Self {
            num_keys: real,
            mean_key_depth: 1.0,
            expected_searches,
        }
    }
}

/// The rebuild decision rule used by CSV for a given index family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostCondition {
    /// LIPP/SALI-style: rebuild whenever smoothing reduced the loss by at
    /// least the given relative fraction (0.0 = any improvement).
    LossBased {
        /// Minimum relative loss improvement required, in `[0, 1]`.
        min_relative_improvement: f64,
    },
    /// ALEX-style: rebuild when Eq. 22 evaluates below the model's threshold.
    Model(CostModel),
}

impl Default for CostCondition {
    fn default() -> Self {
        CostCondition::LossBased {
            min_relative_improvement: 0.0,
        }
    }
}

impl CostCondition {
    /// Decides whether a sub-tree should be rebuilt.
    ///
    /// * `loss_before` / `loss_after` — segment loss before/after smoothing;
    /// * `before` / `after` — query-cost statistics before/after the rebuild.
    pub fn should_rebuild(
        &self,
        loss_before: f64,
        loss_after: f64,
        before: &SubtreeCostStats,
        after: &SubtreeCostStats,
    ) -> bool {
        match *self {
            CostCondition::LossBased {
                min_relative_improvement,
            } => {
                if loss_before <= 0.0 {
                    return false;
                }
                let gain = (loss_before - loss_after) / loss_before;
                gain > min_relative_improvement
            }
            CostCondition::Model(model) => model.accepts(before, after),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::{smooth_segment, SmoothingConfig};
    use csv_common::Key;

    fn stats(depth: f64, searches: f64) -> SubtreeCostStats {
        SubtreeCostStats {
            num_keys: 100,
            mean_key_depth: depth,
            expected_searches: searches,
        }
    }

    #[test]
    fn cost_delta_weights_both_terms() {
        let m = CostModel::new(1.0, 2.0, 0.0);
        // Depth drops by 1 level, searches grow by 1 iteration: net −1.
        let c = m.cost_delta(&stats(2.0, 1.0), &stats(1.0, 2.0));
        assert!((c - (-1.0)).abs() < 1e-12);
        assert!(m.accepts(&stats(2.0, 1.0), &stats(1.0, 2.0)));
        // Searches grow by 3: net +1, rejected.
        assert!(!m.accepts(&stats(2.0, 1.0), &stats(1.0, 4.0)));
    }

    #[test]
    fn negative_threshold_is_stricter() {
        let lenient = CostModel::new(1.0, 2.0, 0.0);
        let strict = CostModel::new(1.0, 2.0, -1.5);
        let before = stats(2.0, 1.0);
        let after = stats(1.0, 2.0); // cost −1
        assert!(lenient.accepts(&before, &after));
        assert!(!strict.accepts(&before, &after));
    }

    #[test]
    fn calibration_guards_against_zero() {
        let m = CostModel::calibrate(0.0, 0.0, -0.1);
        assert!(m.search_constant > 0.0);
        assert!(m.traversal_constant > 0.0);
        assert_eq!(m.threshold, -0.1);
    }

    #[test]
    fn layout_stats_reflect_model_quality() {
        let hard: Vec<Key> = vec![1, 2, 3, 4, 5, 1000, 2000, 3000, 3001, 3002];
        let smoothed = smooth_segment(&hard, &SmoothingConfig::with_alpha(0.8));
        let before = SubtreeCostStats::of_layout(&crate::layout::SmoothedLayout::identity(&hard));
        let after = SubtreeCostStats::of_layout(&smoothed.layout);
        assert_eq!(before.num_keys, after.num_keys);
        assert!(after.expected_searches <= before.expected_searches + 1e-9);
        assert_eq!(after.mean_key_depth, 1.0);
    }

    #[test]
    fn loss_based_condition() {
        let cond = CostCondition::LossBased {
            min_relative_improvement: 0.1,
        };
        let b = stats(2.0, 1.0);
        let a = stats(1.0, 1.0);
        assert!(cond.should_rebuild(10.0, 5.0, &b, &a));
        assert!(!cond.should_rebuild(10.0, 9.5, &b, &a));
        assert!(!cond.should_rebuild(0.0, 0.0, &b, &a));
        let model_cond = CostCondition::Model(CostModel::default());
        assert!(model_cond.should_rebuild(1.0, 1.0, &stats(3.0, 1.0), &stats(1.0, 1.5)));
    }
}
