//! The smoothed key layout produced by CDF smoothing.
//!
//! Smoothing a key segment yields an ordered sequence of slots: each slot is
//! either a **real** key of the original segment or a **virtual** point. The
//! slot position *is* the (smoothed) rank, so an index node rebuilt from a
//! layout places real keys exactly at their slot and leaves virtual slots as
//! gaps. The gaps both make the node's linear model accurate and act as
//! landing space for future inserts (§4, §6.3 of the paper).

use csv_common::{Key, LinearModel};
use serde::{Deserialize, Serialize};

/// One slot of a smoothed layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutEntry {
    /// A real key from the original segment.
    Real(Key),
    /// A virtual point inserted by the smoothing algorithm; the slot is left
    /// empty (a gap) when an index node is rebuilt from the layout.
    Virtual(Key),
}

impl LayoutEntry {
    /// The key value stored in the slot (real or virtual).
    #[inline]
    pub fn key(&self) -> Key {
        match *self {
            LayoutEntry::Real(k) | LayoutEntry::Virtual(k) => k,
        }
    }

    /// `true` for a real key.
    #[inline]
    pub fn is_real(&self) -> bool {
        matches!(self, LayoutEntry::Real(_))
    }
}

/// The ordered result of smoothing a key segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmoothedLayout {
    entries: Vec<LayoutEntry>,
    model: LinearModel,
}

impl SmoothedLayout {
    /// Creates a layout from its slots and the model refitted over them.
    pub fn new(entries: Vec<LayoutEntry>, model: LinearModel) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].key() < w[1].key()),
            "layout keys must be strictly increasing"
        );
        Self { entries, model }
    }

    /// A layout containing only the original keys (no smoothing).
    pub fn identity(keys: &[Key]) -> Self {
        let entries = keys.iter().copied().map(LayoutEntry::Real).collect();
        Self {
            entries,
            model: LinearModel::fit_cdf(keys),
        }
    }

    /// All slots in rank order.
    pub fn entries(&self) -> &[LayoutEntry] {
        &self.entries
    }

    /// The model refitted over real + virtual points.
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// Total number of slots (real + virtual).
    pub fn num_slots(&self) -> usize {
        self.entries.len()
    }

    /// Number of real keys.
    pub fn num_real(&self) -> usize {
        self.entries.iter().filter(|e| e.is_real()).count()
    }

    /// Number of virtual points.
    pub fn num_virtual(&self) -> usize {
        self.num_slots() - self.num_real()
    }

    /// The real keys, in order.
    pub fn real_keys(&self) -> Vec<Key> {
        self.entries
            .iter()
            .filter(|e| e.is_real())
            .map(|e| e.key())
            .collect()
    }

    /// The virtual points, in order.
    pub fn virtual_keys(&self) -> Vec<Key> {
        self.entries
            .iter()
            .filter(|e| !e.is_real())
            .map(|e| e.key())
            .collect()
    }

    /// Sum of squared errors of the layout's model over **real keys only**,
    /// evaluated at their smoothed ranks — the paper's `L_f'(K)` in Fig. 2b.
    pub fn loss_real(&self) -> f64 {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_real())
            .map(|(rank, e)| {
                let err = self.model.predict_f64(e.key()) - rank as f64;
                err * err
            })
            .sum()
    }

    /// Sum of squared errors over all slots (real and virtual) — the paper's
    /// `L_f'(K ∪ V)`.
    pub fn loss_all(&self) -> f64 {
        self.entries
            .iter()
            .enumerate()
            .map(|(rank, e)| {
                let err = self.model.predict_f64(e.key()) - rank as f64;
                err * err
            })
            .sum()
    }

    /// Ratio of slots to real keys; `1.0` means no space overhead.
    pub fn expansion_factor(&self) -> f64 {
        if self.num_real() == 0 {
            1.0
        } else {
            self.num_slots() as f64 / self.num_real() as f64
        }
    }

    /// Maximum absolute prediction error of the model over real keys at
    /// their smoothed ranks.
    pub fn max_abs_error(&self) -> f64 {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_real())
            .map(|(rank, e)| (self.model.predict_f64(e.key()) - rank as f64).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_layout_has_no_virtual_points() {
        let keys = vec![1u64, 5, 9, 20];
        let layout = SmoothedLayout::identity(&keys);
        assert_eq!(layout.num_slots(), 4);
        assert_eq!(layout.num_real(), 4);
        assert_eq!(layout.num_virtual(), 0);
        assert_eq!(layout.real_keys(), keys);
        assert!(layout.virtual_keys().is_empty());
        assert!((layout.expansion_factor() - 1.0).abs() < 1e-12);
        assert!(layout.loss_real() >= 0.0);
        assert!((layout.loss_real() - layout.loss_all()).abs() < 1e-9);
    }

    #[test]
    fn mixed_layout_accounting() {
        let entries = vec![
            LayoutEntry::Real(2),
            LayoutEntry::Virtual(4),
            LayoutEntry::Real(6),
            LayoutEntry::Virtual(8),
            LayoutEntry::Real(10),
        ];
        let keys_and_ranks: Vec<(Key, f64)> = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.key(), i as f64))
            .collect();
        let ks: Vec<Key> = keys_and_ranks.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = keys_and_ranks.iter().map(|p| p.1).collect();
        let model = LinearModel::fit_points(&ks, &ys);
        let layout = SmoothedLayout::new(entries, model);
        assert_eq!(layout.num_real(), 3);
        assert_eq!(layout.num_virtual(), 2);
        assert_eq!(layout.real_keys(), vec![2, 6, 10]);
        assert_eq!(layout.virtual_keys(), vec![4, 8]);
        // Perfectly linear layout: essentially zero loss.
        assert!(layout.loss_all() < 1e-18);
        assert!(layout.max_abs_error() < 1e-9);
        assert!((layout.expansion_factor() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn entry_accessors() {
        assert_eq!(LayoutEntry::Real(3).key(), 3);
        assert_eq!(LayoutEntry::Virtual(4).key(), 4);
        assert!(LayoutEntry::Real(3).is_real());
        assert!(!LayoutEntry::Virtual(3).is_real());
    }
}
