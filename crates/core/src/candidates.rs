//! Candidate virtual-point filtering (§4.2 of the paper).
//!
//! Candidate virtual points are integer values strictly between adjacent
//! stored keys, bounded to `(min K, max K)`: points before the minimum shift
//! every rank equally and points after the maximum shift nothing, so neither
//! can improve the fit. Every candidate inside one gap shares the same
//! insertion rank, and the refitted loss is convex in the candidate value on
//! the gap, so per gap it suffices to inspect the loss derivative at the two
//! endpoints (same sign → an endpoint is optimal; opposite signs → the
//! closed-form interior stationary point is optimal).

use crate::segment::SegmentState;
use csv_common::Key;

/// A gap between two adjacent stored keys that can host virtual points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapBounds {
    /// Smallest candidate value in the gap (`lower stored key + 1`).
    pub lo: Key,
    /// Largest candidate value in the gap (`upper stored key − 1`).
    pub hi: Key,
    /// Insertion rank shared by every candidate in the gap.
    pub rank: usize,
}

impl GapBounds {
    /// Number of integer candidates in the gap.
    pub fn width(&self) -> u64 {
        self.hi - self.lo + 1
    }
}

/// A concrete candidate virtual point together with the loss it would yield.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The candidate key value.
    pub value: Key,
    /// Insertion rank of the candidate.
    pub rank: usize,
    /// Refitted loss `L(K ∪ V ∪ {value})`.
    pub loss: f64,
}

/// Enumerates every gap of the segment, in key order.
pub fn enumerate_gaps(state: &SegmentState) -> Vec<GapBounds> {
    let entries = state.entries();
    let mut gaps = Vec::new();
    for (i, pair) in entries.windows(2).enumerate() {
        let lo_key = pair[0].key();
        let hi_key = pair[1].key();
        if hi_key > lo_key + 1 {
            gaps.push(GapBounds {
                lo: lo_key + 1,
                hi: hi_key - 1,
                rank: i + 1,
            });
        }
    }
    gaps
}

/// Finds the loss-minimising candidate within one gap, following the
/// derivative-sign filtering of §4.2.
pub fn best_candidate_in_gap(state: &SegmentState, gap: &GapBounds) -> Option<Candidate> {
    if gap.hi < gap.lo {
        return None;
    }
    let coeffs = state.gap_coefficients(gap.rank);
    let eval = |v: Key| Candidate {
        value: v,
        rank: gap.rank,
        loss: coeffs.loss(v as f64),
    };
    let width = gap.width();

    if width <= 2 {
        // Few candidates: evaluate them all (Algorithm 1, lines 7–8).
        let mut best = eval(gap.lo);
        if width == 2 {
            let other = eval(gap.hi);
            if other.loss < best.loss {
                best = other;
            }
        }
        return Some(best);
    }

    let d_lo = coeffs.loss_derivative(gap.lo as f64);
    let d_hi = coeffs.loss_derivative(gap.hi as f64);

    if d_lo.signum() == d_hi.signum() || d_lo == 0.0 || d_hi == 0.0 {
        // No interior minimum: the best candidate is one of the endpoints
        // (Algorithm 1, line 17).
        let lo = eval(gap.lo);
        let hi = eval(gap.hi);
        return Some(if lo.loss <= hi.loss { lo } else { hi });
    }

    // Opposite signs: the convex loss attains its minimum strictly inside the
    // gap; locate the stationary point in closed form and snap it to the
    // neighbouring integers (Algorithm 1, lines 20–22).
    let v_star = coeffs
        .interior_minimum()
        .filter(|v| v.is_finite() && *v > gap.lo as f64 && *v < gap.hi as f64)
        .unwrap_or_else(|| bisect_derivative(&coeffs, gap.lo as f64, gap.hi as f64));
    let floor = (v_star.floor() as Key).clamp(gap.lo, gap.hi);
    let ceil = (v_star.ceil() as Key).clamp(gap.lo, gap.hi);
    let a = eval(floor);
    let b = eval(ceil);
    Some(if a.loss <= b.loss { a } else { b })
}

/// Robust fallback root finder for the loss derivative on `[lo, hi]` when the
/// closed form is numerically degenerate. The derivative changes sign on the
/// interval by construction, so bisection converges.
fn bisect_derivative(coeffs: &crate::segment::GapCoefficients, mut lo: f64, mut hi: f64) -> f64 {
    let mut d_lo = coeffs.loss_derivative(lo);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let d_mid = coeffs.loss_derivative(mid);
        if d_mid == 0.0 {
            return mid;
        }
        if d_mid.signum() == d_lo.signum() {
            lo = mid;
            d_lo = d_mid;
        } else {
            hi = mid;
        }
        if hi - lo < 0.25 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Scans every gap and returns the globally best candidate, counting each
/// evaluated gap in `refits`. Ties keep the first gap in key order — the
/// selection rule of Algorithm 1's scan, which the greedy drivers in
/// [`crate::single`] must all agree on; this function is its only
/// implementation over a streamed scan.
pub fn best_candidate_counted(state: &SegmentState, refits: &mut usize) -> Option<Candidate> {
    let mut best: Option<Candidate> = None;
    for gap in enumerate_gaps(state) {
        if let Some(c) = best_candidate_in_gap(state, &gap) {
            *refits += 1;
            match &best {
                Some(b) if b.loss <= c.loss => {}
                _ => best = Some(c),
            }
        }
    }
    best
}

/// Scans every gap and returns the globally best candidate.
pub fn best_candidate(state: &SegmentState) -> Option<Candidate> {
    let mut refits = 0;
    best_candidate_counted(state, &mut refits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_keys() -> Vec<Key> {
        vec![2, 3, 5, 9, 14, 20, 26, 27, 29, 30]
    }

    #[test]
    fn gap_enumeration_covers_interior_only() {
        let state = SegmentState::from_keys(&example_keys());
        let gaps = enumerate_gaps(&state);
        // Gaps: (3,5)->4, (5,9)->6..8, (9,14)->10..13, (14,20)->15..19, (20,26)->21..25,
        // (27,29)->28.
        assert_eq!(gaps.len(), 6);
        assert_eq!(
            gaps[0],
            GapBounds {
                lo: 4,
                hi: 4,
                rank: 2
            }
        );
        assert_eq!(
            gaps[4],
            GapBounds {
                lo: 21,
                hi: 25,
                rank: 6
            }
        );
        assert_eq!(
            gaps[5],
            GapBounds {
                lo: 28,
                hi: 28,
                rank: 8
            }
        );
        // No gap before the minimum or after the maximum key.
        assert!(gaps.iter().all(|g| g.lo > 2 && g.hi < 30));
    }

    #[test]
    fn no_gaps_for_dense_keys() {
        let state = SegmentState::from_keys(&[5, 6, 7, 8]);
        assert!(enumerate_gaps(&state).is_empty());
        assert!(best_candidate(&state).is_none());
    }

    #[test]
    fn per_gap_best_matches_brute_force() {
        let state = SegmentState::from_keys(&example_keys());
        for gap in enumerate_gaps(&state) {
            let best = best_candidate_in_gap(&state, &gap).unwrap();
            let mut brute_v = gap.lo;
            let mut brute_loss = f64::INFINITY;
            for v in gap.lo..=gap.hi {
                let l = state.candidate_loss(v);
                if l < brute_loss {
                    brute_loss = l;
                    brute_v = v;
                }
            }
            assert!(
                (best.loss - brute_loss).abs() < 1e-6 * (1.0 + brute_loss),
                "gap {gap:?}: filtered {} ({}), brute {brute_v} ({brute_loss})",
                best.value,
                best.loss
            );
        }
    }

    #[test]
    fn global_best_matches_brute_force() {
        let keys = example_keys();
        let state = SegmentState::from_keys(&keys);
        let best = best_candidate(&state).unwrap();
        let mut brute_loss = f64::INFINITY;
        let mut brute_v = 0;
        for v in 3..30u64 {
            if state.contains(v) {
                continue;
            }
            let l = state.candidate_loss(v);
            if l < brute_loss {
                brute_loss = l;
                brute_v = v;
            }
        }
        assert_eq!(best.value, brute_v);
        assert!((best.loss - brute_loss).abs() < 1e-9 * (1.0 + brute_loss));
        // The best candidate must actually reduce the loss.
        assert!(best.loss < state.loss());
    }

    #[test]
    fn gap_width() {
        assert_eq!(
            GapBounds {
                lo: 5,
                hi: 5,
                rank: 1
            }
            .width(),
            1
        );
        assert_eq!(
            GapBounds {
                lo: 5,
                hi: 9,
                rank: 1
            }
            .width(),
            5
        );
    }
}
