//! The Gap-Insertion (GI) competitor technique (Table 1 of the paper).
//!
//! Gap insertion [Li et al., 2021] straightens the CDF by *repositioning*
//! keys: each key is moved to the slot its model predicts (scaled by an
//! expansion factor), leaving gaps in between. Keys whose predicted slots
//! collide cannot all be placed and overflow into an auxiliary array, which
//! is exactly the extra search step and the heavy storage overhead the paper
//! criticises (up to 87 % space increase). This module provides a compact
//! reproduction so Table 1's qualitative comparison can be backed by
//! measurements in the experiment harness.

use csv_common::{Key, LinearModel, Value};

/// A key layout produced by the gap-insertion technique.
#[derive(Debug, Clone)]
pub struct GapInsertionLayout {
    /// The slot array; `None` is a gap.
    slots: Vec<Option<(Key, Value)>>,
    /// Keys whose predicted slot was already occupied.
    overflow: Vec<(Key, Value)>,
    model: LinearModel,
}

impl GapInsertionLayout {
    /// Builds the layout for a strictly increasing key slice with the given
    /// expansion factor (`slots = ⌈expansion · n⌉`).
    pub fn build(keys: &[Key], expansion: f64) -> Self {
        assert!(expansion >= 1.0, "expansion factor must be >= 1");
        let n = keys.len();
        let num_slots = ((n as f64 * expansion).ceil() as usize).max(n);
        let base = LinearModel::fit_cdf(keys);
        // Scale the CDF model to the expanded slot range.
        let model = LinearModel::new(base.slope * expansion, base.intercept * expansion);
        let mut slots: Vec<Option<(Key, Value)>> = vec![None; num_slots];
        let mut overflow = Vec::new();
        let mut last_used: Option<usize> = None;
        for &k in keys {
            let predicted = model.predict_clamped(k, num_slots);
            // Positions must stay monotone in key order; clamp below the
            // previously used slot to the next free slot.
            let target = match last_used {
                Some(prev) if predicted <= prev => prev + 1,
                _ => predicted,
            };
            if target < num_slots && slots[target].is_none() {
                slots[target] = Some((k, k));
                last_used = Some(target);
            } else {
                overflow.push((k, k));
            }
        }
        Self {
            slots,
            overflow,
            model,
        }
    }

    /// Number of slots in the expanded array.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of keys placed directly in the slot array.
    pub fn num_placed(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of keys that overflowed because of slot collisions.
    pub fn num_overflow(&self) -> usize {
        self.overflow.len()
    }

    /// Storage overhead relative to a dense array of `n` records:
    /// `(slots + overflow) / n − 1`, expressed as a percentage.
    pub fn storage_overhead_percent(&self) -> f64 {
        let n = self.num_placed() + self.num_overflow();
        if n == 0 {
            return 0.0;
        }
        ((self.num_slots() + self.num_overflow()) as f64 / n as f64 - 1.0) * 100.0
    }

    /// Looks up a key: first probes the model-predicted neighbourhood of the
    /// slot array, then falls back to the overflow array. Returns the value
    /// and the number of probes used.
    pub fn get(&self, key: Key) -> (Option<Value>, usize) {
        let mut probes = 0usize;
        let predicted = self.model.predict_clamped(key, self.num_slots());
        // Local linear probe around the prediction (gap insertion keeps keys
        // near their predicted slot by construction).
        let radius = 16usize.min(self.num_slots());
        let lo = predicted.saturating_sub(radius);
        let hi = (predicted + radius + 1).min(self.num_slots());
        for slot in &self.slots[lo..hi] {
            probes += 1;
            if let Some((k, v)) = slot {
                if *k == key {
                    return (Some(*v), probes);
                }
            }
        }
        // Fall back to a full scan of the slot array window boundaries via
        // binary search over the compacted keys, then the overflow array.
        for (k, v) in &self.overflow {
            probes += 1;
            if *k == key {
                return (Some(*v), probes);
            }
        }
        // Last resort: scan the remaining slots (rare; only when the model is
        // badly wrong for this key).
        for slot in self.slots.iter().flatten() {
            probes += 1;
            if slot.0 == key {
                return (Some(slot.1), probes);
            }
        }
        (None, probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_keys() -> Vec<Key> {
        let mut keys: Vec<Key> = (0..200).collect();
        keys.extend((1..50).map(|i| 10_000 + i * 337));
        keys
    }

    #[test]
    fn every_key_is_findable() {
        let keys = skewed_keys();
        let layout = GapInsertionLayout::build(&keys, 1.5);
        assert_eq!(layout.num_placed() + layout.num_overflow(), keys.len());
        for &k in &keys {
            let (v, _probes) = layout.get(k);
            assert_eq!(v, Some(k), "key {k} lost");
        }
        let (missing, _) = layout.get(999_999);
        assert_eq!(missing, None);
    }

    #[test]
    fn storage_overhead_grows_with_expansion() {
        let keys = skewed_keys();
        let tight = GapInsertionLayout::build(&keys, 1.0);
        let loose = GapInsertionLayout::build(&keys, 2.0);
        assert!(loose.storage_overhead_percent() > tight.storage_overhead_percent());
        assert!(loose.num_slots() >= 2 * keys.len());
    }

    #[test]
    fn collisions_go_to_overflow() {
        // Extremely skewed keys with expansion 1.0 force collisions.
        let mut keys: Vec<Key> = (0..100).collect();
        keys.extend((0..100).map(|i| 1_000_000 + i));
        let layout = GapInsertionLayout::build(&keys, 1.0);
        assert!(
            layout.num_overflow() > 0,
            "expected collisions in the dense runs"
        );
        for &k in &keys {
            assert_eq!(layout.get(k).0, Some(k));
        }
    }

    #[test]
    #[should_panic(expected = "expansion factor")]
    fn rejects_sub_unit_expansion() {
        GapInsertionLayout::build(&[1, 2, 3], 0.5);
    }
}
