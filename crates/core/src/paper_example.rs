//! The running example of the paper (Fig. 2, Fig. 3, Fig. 4 and Table 2).
//!
//! The paper illustrates CDF smoothing with a 10-key set whose single-model
//! loss is 8.33 and which, after inserting 5 virtual points (α = 0.5), drops
//! to `L_{f'}(K) = 2.04` / `L_{f'}(K ∪ V) = 2.29`. The exact key values are
//! only shown graphically, so this module uses a reconstruction with the same
//! shape (a dense low cluster, a sparse tail, and two hard keys `k1 = 20`,
//! `k2 = 26`) whose loss matches the paper's 8.33 to two decimal places.

use csv_common::Key;

/// The reconstructed 10-key example of Fig. 2a. `LinearModel::fit_cdf` over
/// this set has SSE ≈ 8.33, matching the paper.
pub fn fig2_keys() -> Vec<Key> {
    vec![4, 5, 6, 8, 9, 10, 15, 20, 26, 30]
}

/// The two "hard" keys highlighted in Fig. 2a.
pub fn fig2_hard_keys() -> (Key, Key) {
    (20, 26)
}

/// The smoothing threshold used throughout the running example.
pub const FIG2_ALPHA: f64 = 0.5;

/// Loss values reported by the paper for the running example, used by the
/// experiment harness to print paper-vs-measured comparisons.
pub mod reported {
    /// `L_f(K)` before smoothing (Fig. 2a).
    pub const LOSS_BEFORE: f64 = 8.33;
    /// `L_{f'}(K)` after smoothing (Fig. 2b).
    pub const LOSS_AFTER_REAL: f64 = 2.04;
    /// `L_{f'}(K ∪ V)` after smoothing (Fig. 2b).
    pub const LOSS_AFTER_ALL: f64 = 2.29;
    /// Greedy (CSV) loss in Table 2.
    pub const TABLE2_CSV: f64 = 2.293;
    /// Exhaustive loss in Table 2.
    pub const TABLE2_EXHAUSTIVE: f64 = 2.118;
    /// Original loss in Table 2.
    pub const TABLE2_ORIGINAL: f64 = 8.327;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::{smooth_segment, SmoothingConfig};
    use csv_common::LinearModel;

    #[test]
    fn reconstructed_loss_matches_paper() {
        let keys = fig2_keys();
        assert_eq!(keys.len(), 10);
        let model = LinearModel::fit_cdf(&keys);
        let loss = model.sse_cdf(&keys);
        assert!(
            (loss - reported::LOSS_BEFORE).abs() < 0.01,
            "reconstructed loss {loss} should be ≈ {}",
            reported::LOSS_BEFORE
        );
    }

    #[test]
    fn smoothing_the_example_reaches_paper_ballpark() {
        let keys = fig2_keys();
        let result = smooth_segment(&keys, &SmoothingConfig::with_alpha(FIG2_ALPHA));
        // The exact reconstruction differs from the authors' set, so allow a
        // generous band around the reported values: the loss must drop from
        // ~8.3 to the low single digits.
        assert!(
            result.loss_after_all < 4.0,
            "L(K ∪ V) = {}",
            result.loss_after_all
        );
        assert!(
            result.loss_after_real < 4.0,
            "L(K) = {}",
            result.loss_after_real
        );
        assert!(result.virtual_points.len() <= 5);
        assert!(result.improvement_percent() > 55.0);
    }

    #[test]
    fn hard_keys_are_in_the_set() {
        let (k1, k2) = fig2_hard_keys();
        let keys = fig2_keys();
        assert!(keys.contains(&k1));
        assert!(keys.contains(&k2));
    }
}
