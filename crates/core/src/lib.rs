//! CDF smoothing via virtual points — the primary contribution of
//! *Learned Indexes with Distribution Smoothing via Virtual Points*
//! (EDBT 2025).
//!
//! A learned index approximates the cumulative distribution function (CDF)
//! of its key set with (usually linear) indexing functions. Key regions that
//! are hard to fit end up deep in the index hierarchy and are slow to query.
//! Instead of changing the index structure or the model class, this crate
//! modifies the *key space*: it inserts **virtual points** that smooth the
//! CDF so a single linear model fits far better (§1, Fig. 2 of the paper).
//!
//! The crate provides:
//!
//! * [`segment`] — incremental loss bookkeeping for one key segment
//!   (sufficient statistics, Eq. 5–16),
//! * [`candidates`] — derivative-based filtering of candidate virtual points
//!   (§4.2, Eq. 17–21),
//! * [`single`] — Algorithm 1, the greedy λ-budget smoothing of a single
//!   segment, in a faithful *Rescan* mode and a faster *Lazy* mode,
//! * [`exhaustive`] — the exponential-time exact smoothing used as the
//!   quality baseline in Table 2,
//! * [`layout`] — the smoothed layout (real keys + virtual gaps) that index
//!   nodes are rebuilt from,
//! * [`cost`] — the cost model of Eq. 22 balancing traversal savings against
//!   extra leaf-node search work,
//! * [`csv`] — Algorithm 2 (**CSV**): bottom-up smoothing and flattening of
//!   sub-trees of a hierarchical learned index through the
//!   [`csv::CsvIntegrable`] trait implemented by ALEX, LIPP and SALI, with
//!   an explicit read-only plan / mutating apply lifecycle
//!   ([`csv::CsvOptimizer::plan`] → [`csv::CsvPlan::apply`]),
//! * [`competitors`] — the Gap-Insertion (GI) technique the paper compares
//!   against in Table 1,
//! * [`poisoning`] — the greedy data-poisoning attack (§2.3) that motivated
//!   CDF smoothing, plus the defensive poison-then-smooth experiment,
//! * [`quadratic_smoothing`] — the extension of Algorithm 1 to quadratic
//!   indexing functions mentioned in §1,
//! * [`paper_example`] — the 10-key running example of Fig. 2/3/4 and
//!   Table 2.

#![forbid(unsafe_code)]

pub mod candidates;
pub mod competitors;
pub mod cost;
pub mod csv;
pub mod exhaustive;
pub mod layout;
pub mod paper_example;
pub mod poisoning;
pub mod quadratic_smoothing;
pub mod segment;
pub mod single;

pub use candidates::{best_candidate_in_gap, Candidate, GapBounds};

/// Configures the global rayon thread pool to `threads` workers (0 = leave
/// the auto-detected width untouched).
///
/// The global pool can only be built once per process — real rayon errors
/// on any later `build_global` call — so the first successful call wins and
/// later calls with a *different* width emit a warning instead of failing.
/// Shared by the CLI driver and the experiments binary.
pub fn configure_global_threads(threads: usize) {
    if threads == 0 {
        return;
    }
    // `None` records that the pool was already initialized elsewhere and
    // could not be configured at all.
    static CONFIGURED: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    let configured = *CONFIGURED.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .ok()
            .map(|()| threads)
    });
    match configured {
        Some(width) if width == threads => {}
        Some(width) => eprintln!(
            "warning: thread pool already configured ({width} threads); ignoring request for {threads}"
        ),
        None => eprintln!(
            "warning: global thread pool was already initialized; ignoring request for {threads} threads"
        ),
    }
}
pub use cost::{CostCondition, CostModel};
pub use csv::{
    CsvConfig, CsvConfigBuilder, CsvIntegrable, CsvOptimizer, CsvPlan, CsvReport, Decision,
    NodeOutcome, PlannedAction, PlannedSubtree, RebuildRefusal, SkipReason, StartLevel, SubtreeRef,
};
pub use exhaustive::exhaustive_smooth;
pub use layout::{LayoutEntry, SmoothedLayout};
pub use poisoning::{
    poison_segment, smoothing_counteracts_poisoning, PoisoningConfig, PoisoningResult,
};
pub use quadratic_smoothing::{
    compare_model_classes, smooth_segment_quadratic, QuadraticSmoothingConfig,
    QuadraticSmoothingResult,
};
pub use segment::SegmentState;
pub use single::{smooth_segment, GreedyMode, SmoothingConfig, SmoothingCounters, SmoothingResult};
