//! Algorithm 2 — **CSV**, CDF smoothing for hierarchical learned indexes.
//!
//! CSV walks a built index bottom-up. At every level it visits each node
//! that roots a sub-tree, collects the keys stored in the node and its
//! descendants, smooths that key segment with Algorithm 1, and — if the cost
//! condition of §5.1 is satisfied — rebuilds the sub-tree as a single flat
//! node laid out according to the smoothed ranks (virtual points become
//! gaps). Keys that used to live several levels deep are thereby *promoted*
//! to upper levels, cutting traversal time; the cost model prevents merges
//! that would pay for the promotion with excessive leaf-node search time.
//!
//! # The plan → apply lifecycle
//!
//! §5 of the paper observes that sub-trees at one level root *disjoint* key
//! ranges, so everything up to the rebuild decision — key collection,
//! smoothing, the cost condition — is a pure read of the index; only the
//! rebuild itself mutates it. The API makes that split explicit:
//!
//! * [`CsvOptimizer::plan`] (or [`CsvOptimizer::plan_parallel`], which fans
//!   the per-sub-tree work out across the rayon pool) takes `&index` and
//!   returns a [`CsvPlan`]: one [`PlannedSubtree`] per considered sub-tree,
//!   carrying the accepted [`SmoothedLayout`] for sub-trees that passed the
//!   cost condition and a typed skip/rejection record for the rest.
//! * [`CsvPlan::apply`] takes `&mut index` and performs only the rebuilds,
//!   in the deterministic Algorithm-2 order the plan was computed in, and
//!   returns the [`CsvReport`].
//!
//! Because planning never mutates, a caller that guards the index with a
//! reader–writer lock (see `csv_concurrent::ShardedIndex`) can plan under a
//! *shared* lock and take the exclusive lock only for the short apply phase.
//! A plan can also be inspected or serialized ([`CsvPlan::to_json`]) without
//! ever touching the index — the CLI's `--dry-run` does exactly that.
//!
//! Multi-level sweeps ([`StartLevel::Deepest`], the ALEX configuration)
//! interact with the split: a rebuild at level `l` changes the query-cost
//! statistics of the enclosing sub-trees at level `l − 1`. The
//! [`CsvOptimizer::optimize`] / [`CsvOptimizer::optimize_parallel`] wrappers
//! therefore run one plan → apply round *per level* (identical to the
//! classic fused sweep), while a single [`CsvOptimizer::plan`] snapshots
//! every level against the current structure — exact for single-level
//! sweeps such as [`CsvConfig::for_lipp`], a documented approximation of the
//! level-`l − 1` cost statistics otherwise.
//!
//! The coupling to a concrete index goes through [`CsvIntegrable`], which
//! the ALEX, LIPP and SALI crates implement. The contract is zero-copy on
//! the hot path: [`CsvIntegrable::csv_collect_keys_into`] appends into a
//! caller-owned scratch buffer that the optimizer reuses across sub-trees
//! (thread-locally in the parallel path), and
//! [`CsvIntegrable::csv_rebuild_subtree`] reports refusals as a typed
//! [`RebuildRefusal`] instead of a bare `bool`.

use crate::cost::{CostCondition, SubtreeCostStats};
use crate::layout::SmoothedLayout;
use crate::single::{smooth_segment, SmoothingConfig, SmoothingCounters, SmoothingResult};
use csv_common::Key;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::time::{Duration, Instant};

/// A reference to a sub-tree of a hierarchical index: the arena id of its
/// root node plus that node's 1-based level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubtreeRef {
    /// Index-specific node identifier (arena slot).
    pub node_id: usize,
    /// 1-based level of the node (1 = index root).
    pub level: usize,
}

/// Why an index declined to rebuild a sub-tree from an accepted layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebuildRefusal {
    /// The merged node would exceed a capacity / slot-count limit.
    CapacityExceeded,
    /// The layout no longer matches the sub-tree's current key set (the
    /// sub-tree changed between planning and applying).
    StaleLayout,
    /// The rebuilt node would place keys deeper than they already are
    /// (a smoothed model can still re-create conflicts).
    WouldDemoteKeys,
}

impl fmt::Display for RebuildRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RebuildRefusal::CapacityExceeded => "capacity-exceeded",
            RebuildRefusal::StaleLayout => "stale-layout",
            RebuildRefusal::WouldDemoteKeys => "would-demote-keys",
        })
    }
}

/// Why the optimizer skipped a sub-tree without smoothing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkipReason {
    /// Fewer than two keys — nothing to smooth.
    TooSmall,
    /// More keys than [`CsvConfig::max_subtree_keys`] (guards the O(λ·n)
    /// smoothing cost on pathological sub-trees).
    OverSizeGuard,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SkipReason::TooSmall => "too-small",
            SkipReason::OverSizeGuard => "over-size-guard",
        })
    }
}

/// What ultimately happened to one considered sub-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// The cost condition accepted the smoothed layout and the index
    /// rebuilt the sub-tree as a single flat node.
    Rebuilt,
    /// Smoothing ran but the cost condition rejected the rebuild.
    CostRejected,
    /// The cost condition accepted, but the index refused the rebuild.
    Declined(RebuildRefusal),
    /// The sub-tree was skipped before smoothing.
    Skipped(SkipReason),
}

impl Decision {
    /// `true` when the sub-tree was rebuilt.
    pub fn is_rebuilt(&self) -> bool {
        matches!(self, Decision::Rebuilt)
    }
}

/// The hooks an index must expose so CSV can optimise it.
pub trait CsvIntegrable {
    /// Deepest level that contains nodes with sub-trees (i.e. internal
    /// nodes whose children exist). Returns 0/1 for a flat index.
    fn csv_max_level(&self) -> usize;

    /// The sub-tree roots at `level` that are candidates for merging: nodes
    /// at that level which have at least one child node.
    fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef>;

    /// Appends every (real) key stored in the sub-tree to `buf`, in
    /// ascending order.
    ///
    /// The optimizer clears and reuses one scratch buffer per worker across
    /// all sub-trees of a planning pass, so implementations must append
    /// (never allocate a fresh vector) and must not assume `buf` starts
    /// empty beyond what the caller guarantees.
    fn csv_collect_keys_into(&self, subtree: &SubtreeRef, buf: &mut Vec<Key>);

    /// Convenience wrapper around [`CsvIntegrable::csv_collect_keys_into`]
    /// that allocates a fresh vector. Diagnostics and one-off callers only;
    /// the optimizer itself always goes through the buffered form.
    fn csv_collect_keys(&self, subtree: &SubtreeRef) -> Vec<Key> {
        let mut buf = Vec::new();
        self.csv_collect_keys_into(subtree, &mut buf);
        buf
    }

    /// Query-cost statistics of the sub-tree as currently structured.
    ///
    /// `num_keys` must equal the number of keys
    /// [`CsvIntegrable::csv_collect_keys_into`] would produce — the
    /// optimizer's skip guards consult it *instead of* collecting, so
    /// over-size-guard sub-trees are never materialised.
    fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats;

    /// Replaces the sub-tree with a single flat node laid out according to
    /// `layout`, or reports why the index declines the rebuild (e.g. the
    /// layout exceeds a node-capacity limit, or no longer matches the
    /// sub-tree's contents).
    fn csv_rebuild_subtree(
        &mut self,
        subtree: &SubtreeRef,
        layout: &SmoothedLayout,
    ) -> Result<(), RebuildRefusal>;

    /// `true` when the index records which sub-tree roots absorbed inserts
    /// or removes since the last [`CsvIntegrable::csv_mark_clean`].
    ///
    /// Indexes without tracking keep the default `false` and must treat
    /// *every* sub-tree as dirty (the default
    /// [`CsvIntegrable::csv_dirty_subtrees_at_level`] does), so
    /// [`CsvOptimizer::plan_dirty`] degrades gracefully to a full
    /// [`CsvOptimizer::plan`].
    fn csv_tracks_dirty(&self) -> bool {
        false
    }

    /// The sub-tree roots at `level` whose sub-trees absorbed inserts or
    /// removes since the last [`CsvIntegrable::csv_mark_clean`] (a freshly
    /// built index is fully dirty: it has never been considered).
    ///
    /// Must return a subset of [`CsvIntegrable::csv_subtrees_at_level`];
    /// the default returns all of them (everything dirty).
    fn csv_dirty_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
        self.csv_subtrees_at_level(level)
    }

    /// Marks the whole index clean: subsequent
    /// [`CsvIntegrable::csv_dirty_subtrees_at_level`] calls report only
    /// sub-trees touched by inserts/removes that happen *after* this call.
    /// Called by [`CsvOptimizer::optimize_dirty`] (and the concurrent
    /// maintenance engine) once a dirty plan has been applied. A no-op for
    /// indexes without tracking.
    fn csv_mark_clean(&mut self) {}
}

/// Where CSV starts its bottom-up sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StartLevel {
    /// Start at the deepest level containing sub-trees (ALEX behaviour).
    Deepest,
    /// Start at a fixed level (the paper starts LIPP/SALI at level 2 so each
    /// smoothing step benefits more keys).
    Fixed(usize),
}

/// Configuration of a CSV run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsvConfig {
    /// Parameters forwarded to Algorithm 1 for every sub-tree.
    pub smoothing: SmoothingConfig,
    /// Rebuild decision rule.
    pub condition: CostCondition,
    /// First level of the bottom-up sweep.
    pub start_level: StartLevel,
    /// Last level processed (inclusive); the paper stops at level 2 so the
    /// root itself is never merged.
    pub stop_level: usize,
    /// Sub-trees with more keys than this are skipped (guards the O(λ·n)
    /// smoothing cost on pathological sub-trees).
    pub max_subtree_keys: usize,
}

impl CsvConfig {
    /// Default configuration for LIPP-style indexes (no leaf search): sweep
    /// only level 2 sub-trees with a loss-based condition.
    ///
    /// Uses the lazy-heap greedy driver: it matches Rescan's result (falling
    /// back to a full rescan whenever its pruning invariant breaks) while
    /// performing a small fraction of the model refits, which dominates the
    /// pre-processing cost on production-sized sub-trees.
    pub fn for_lipp(alpha: f64) -> Self {
        Self {
            smoothing: SmoothingConfig {
                mode: crate::single::GreedyMode::Lazy,
                ..SmoothingConfig::with_alpha(alpha)
            },
            condition: CostCondition::LossBased {
                min_relative_improvement: 0.0,
            },
            start_level: StartLevel::Fixed(2),
            stop_level: 2,
            max_subtree_keys: 1 << 20,
        }
    }

    /// Default configuration for SALI (shares LIPP's structure).
    pub fn for_sali(alpha: f64) -> Self {
        Self::for_lipp(alpha)
    }

    /// Default configuration for ALEX-style indexes: full bottom-up sweep
    /// with the Eq. 22 cost model (lazy greedy driver, like
    /// [`CsvConfig::for_lipp`]).
    pub fn for_alex(alpha: f64, model: crate::cost::CostModel) -> Self {
        Self {
            smoothing: SmoothingConfig {
                mode: crate::single::GreedyMode::Lazy,
                ..SmoothingConfig::with_alpha(alpha)
            },
            condition: CostCondition::Model(model),
            start_level: StartLevel::Deepest,
            stop_level: 2,
            max_subtree_keys: 1 << 20,
        }
    }

    /// A builder seeded with the LIPP defaults; see [`CsvConfigBuilder`] for
    /// the index-family entry points.
    pub fn builder() -> CsvConfigBuilder {
        CsvConfigBuilder::lipp()
    }

    /// The smoothing threshold α.
    pub fn alpha(&self) -> f64 {
        self.smoothing.alpha
    }

    /// The lazy driver's diminishing-returns drift tolerance (default 0:
    /// exact fallback behaviour; see
    /// [`SmoothingConfig::drift_tolerance`](crate::single::SmoothingConfig)).
    pub fn drift_tolerance(&self) -> f64 {
        self.smoothing.drift_tolerance
    }
}

impl Default for CsvConfig {
    fn default() -> Self {
        Self::for_lipp(0.1)
    }
}

/// Fluent construction of a [`CsvConfig`] starting from one of the paper's
/// per-index-family presets, so callers (the CLI in particular) never
/// hand-assemble the config struct field by field.
///
/// ```
/// use csv_core::csv::CsvConfigBuilder;
/// use csv_core::single::GreedyMode;
///
/// let config = CsvConfigBuilder::lipp().alpha(0.2).greedy(GreedyMode::Rescan).build();
/// assert_eq!(config.alpha(), 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct CsvConfigBuilder {
    config: CsvConfig,
}

impl CsvConfigBuilder {
    /// Starts from [`CsvConfig::for_lipp`] with the paper's default α = 0.1.
    pub fn lipp() -> Self {
        Self {
            config: CsvConfig::for_lipp(0.1),
        }
    }

    /// Starts from [`CsvConfig::for_sali`] with the paper's default α = 0.1.
    pub fn sali() -> Self {
        Self {
            config: CsvConfig::for_sali(0.1),
        }
    }

    /// Starts from [`CsvConfig::for_alex`] with the paper's default α = 0.1.
    pub fn alex(model: crate::cost::CostModel) -> Self {
        Self {
            config: CsvConfig::for_alex(0.1, model),
        }
    }

    /// Sets the smoothing threshold α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.smoothing.alpha = alpha;
        self
    }

    /// Selects the Algorithm 1 greedy driver.
    pub fn greedy(mut self, mode: crate::single::GreedyMode) -> Self {
        self.config.smoothing.mode = mode;
        self
    }

    /// Sets the lazy driver's diminishing-returns drift tolerance (0 keeps
    /// the exact fallback behaviour).
    pub fn drift_tolerance(mut self, drift_tolerance: f64) -> Self {
        self.config.smoothing.drift_tolerance = drift_tolerance;
        self
    }

    /// Replaces the whole Algorithm 1 configuration.
    pub fn smoothing(mut self, smoothing: SmoothingConfig) -> Self {
        self.config.smoothing = smoothing;
        self
    }

    /// Replaces the rebuild decision rule.
    pub fn condition(mut self, condition: CostCondition) -> Self {
        self.config.condition = condition;
        self
    }

    /// Sets the first level of the bottom-up sweep.
    pub fn start_level(mut self, start_level: StartLevel) -> Self {
        self.config.start_level = start_level;
        self
    }

    /// Sets the last level processed (inclusive).
    pub fn stop_level(mut self, stop_level: usize) -> Self {
        self.config.stop_level = stop_level;
        self
    }

    /// Sets the per-sub-tree key-count guard.
    pub fn max_subtree_keys(mut self, max_subtree_keys: usize) -> Self {
        self.config.max_subtree_keys = max_subtree_keys;
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> CsvConfig {
        self.config
    }
}

/// What happened to one inspected sub-tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// The sub-tree that was inspected.
    pub subtree: SubtreeRef,
    /// Number of keys collected from the sub-tree.
    pub num_keys: usize,
    /// Loss before smoothing (0 for skipped sub-trees, which are never
    /// smoothed).
    pub loss_before: f64,
    /// Loss (over real + virtual points) after smoothing (0 for skipped
    /// sub-trees).
    pub loss_after: f64,
    /// Number of virtual points the smoothing inserted.
    pub virtual_points: usize,
    /// How the sub-tree was resolved.
    pub decision: Decision,
}

impl NodeOutcome {
    /// `true` when the sub-tree was rebuilt.
    pub fn rebuilt(&self) -> bool {
        self.decision.is_rebuilt()
    }
}

/// Aggregate report of a CSV run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CsvReport {
    /// Per-sub-tree outcomes, in processing order. Every considered
    /// sub-tree appears here, including the ones skipped before smoothing
    /// (`Decision::Skipped`).
    pub outcomes: Vec<NodeOutcome>,
    /// Sub-trees rebuilt as flat nodes.
    pub subtrees_rebuilt: usize,
    /// Real keys contained in rebuilt sub-trees.
    pub keys_rebuilt: usize,
    /// Virtual points added across all rebuilt sub-trees.
    pub virtual_points_added: usize,
    /// Closed-form candidate refits spent by Algorithm 1 across all
    /// sub-trees (see [`crate::single::SmoothingCounters::gap_refits`]).
    pub gap_refits: usize,
    /// Full Algorithm-1 work counters aggregated over every considered
    /// sub-tree (refits, stale revalidations, exact-fallback rescans, heap
    /// pushes) — `smoothing.gap_refits` always equals
    /// [`CsvReport::gap_refits`], which is kept for compatibility.
    pub smoothing: SmoothingCounters,
    /// Wall-clock pre-processing time of the whole CSV run (planning plus
    /// applying).
    pub preprocessing_time: Duration,
}

impl CsvReport {
    /// Sub-trees inspected — every one leaves an outcome, so the count is
    /// derived rather than maintained.
    pub fn subtrees_considered(&self) -> usize {
        self.outcomes.len()
    }

    /// Fraction of inspected sub-trees that were rebuilt.
    pub fn rebuild_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.subtrees_rebuilt as f64 / self.outcomes.len() as f64
        }
    }

    /// Sub-trees skipped before smoothing (too small or over the size
    /// guard).
    pub fn subtrees_skipped(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.decision, Decision::Skipped(_)))
            .count()
    }

    /// Accepted rebuilds the index refused to perform.
    pub fn rebuilds_declined(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.decision, Decision::Declined(_)))
            .count()
    }
}

/// The planned resolution of one sub-tree: rebuild with an accepted layout,
/// or a typed record of why no rebuild will happen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlannedAction {
    /// The cost condition accepted this smoothed layout; applying the plan
    /// rebuilds the sub-tree from it.
    Rebuild(SmoothedLayout),
    /// Smoothing ran but the cost condition rejected the rebuild.
    CostRejected,
    /// The sub-tree was skipped before smoothing.
    Skipped(SkipReason),
}

/// The read-phase result for one considered sub-tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedSubtree {
    /// The sub-tree the decision is about.
    pub subtree: SubtreeRef,
    /// Number of keys collected from the sub-tree.
    pub num_keys: usize,
    /// Loss before smoothing (0 for skipped sub-trees).
    pub loss_before: f64,
    /// Loss (over real + virtual points) after smoothing (0 for skipped
    /// sub-trees).
    pub loss_after: f64,
    /// Number of virtual points the smoothing inserted.
    pub virtual_points: usize,
    /// Work counters Algorithm 1 spent on this sub-tree (refits, stale
    /// re-validations, fallback rescans, heap pushes).
    pub counters: SmoothingCounters,
    /// The planned resolution.
    pub action: PlannedAction,
}

impl PlannedSubtree {
    /// Closed-form candidate refits Algorithm 1 spent on this sub-tree.
    pub fn gap_refits(&self) -> usize {
        self.counters.gap_refits
    }
}

/// The read-only half of a CSV run: per-sub-tree decisions (with accepted
/// layouts) computed without mutating the index. Produced by
/// [`CsvOptimizer::plan`] / [`CsvOptimizer::plan_parallel`] /
/// [`CsvOptimizer::plan_level`]; consumed by [`CsvPlan::apply`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CsvPlan {
    decisions: Vec<PlannedSubtree>,
    planning_time: Duration,
}

impl CsvPlan {
    /// Per-sub-tree decisions, in deterministic Algorithm-2 order (levels
    /// descending, sub-trees in enumeration order within a level).
    pub fn decisions(&self) -> &[PlannedSubtree] {
        &self.decisions
    }

    /// Number of considered sub-trees.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// `true` when no sub-tree was considered.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Number of sub-trees the plan will rebuild.
    pub fn num_rebuilds(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.action, PlannedAction::Rebuild(_)))
            .count()
    }

    /// Wall-clock time the read phase took.
    pub fn planning_time(&self) -> Duration {
        self.planning_time
    }

    /// Aggregate Algorithm-1 work counters over every considered sub-tree —
    /// the planning cost of the read phase, available without applying
    /// anything (the dirty-planning benches and `--dry-run` consume this).
    pub fn counters(&self) -> SmoothingCounters {
        let mut total = SmoothingCounters::default();
        for d in &self.decisions {
            total.gap_refits += d.counters.gap_refits;
            total.stale_revalidations += d.counters.stale_revalidations;
            total.fallback_rescans += d.counters.fallback_rescans;
            total.heap_pushes += d.counters.heap_pushes;
        }
        total
    }

    /// Closed-form candidate refits spent planning (the dominant unit of
    /// smoothing work).
    pub fn gap_refits(&self) -> usize {
        self.decisions.iter().map(|d| d.counters.gap_refits).sum()
    }

    /// The mutate phase: performs the planned rebuilds in plan order and
    /// returns the run report. The report's `preprocessing_time` covers
    /// planning plus applying.
    ///
    /// Applying is tolerant of the index having changed since planning: a
    /// layout that no longer matches its sub-tree is refused by the index
    /// ([`RebuildRefusal::StaleLayout`]) and recorded as
    /// [`Decision::Declined`] instead of corrupting anything.
    pub fn apply<I: CsvIntegrable + ?Sized>(&self, index: &mut I) -> CsvReport {
        let started = Instant::now();
        let mut report = CsvReport::default();
        self.apply_into(index, &mut report);
        report.preprocessing_time = self.planning_time + started.elapsed();
        report
    }

    /// [`CsvPlan::apply`] accumulating into an existing report; does not
    /// touch `preprocessing_time` (the caller owns the clock).
    pub fn apply_into<I: CsvIntegrable + ?Sized>(&self, index: &mut I, report: &mut CsvReport) {
        for planned in &self.decisions {
            apply_planned(index, planned, report);
        }
    }

    /// Renders the plan as a JSON document (accepted layouts summarised by
    /// slot counts and the refitted model, so the output stays readable for
    /// production-sized plans; the full layouts travel with the plan value
    /// itself, e.g. through serde once the vendored stubs are swapped for
    /// the real crates).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + 160 * self.decisions.len());
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"planning_time_ms\": {:.3},\n",
            self.planning_time.as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "  \"subtrees_considered\": {},\n",
            self.decisions.len()
        ));
        out.push_str(&format!(
            "  \"subtrees_to_rebuild\": {},\n",
            self.num_rebuilds()
        ));
        // Per-level smoothing-work aggregates: the refit/fallback counters
        // make planning cost observable (e.g. dirty-planning wins) without
        // applying the plan. Levels appear in plan order (descending).
        out.push_str("  \"levels\": [");
        let mut levels: Vec<(usize, usize, usize, SmoothingCounters)> = Vec::new();
        for d in &self.decisions {
            let level = d.subtree.level;
            if levels.last().map(|l| l.0) != Some(level) {
                levels.push((level, 0, 0, SmoothingCounters::default()));
            }
            let entry = levels.last_mut().expect("pushed above");
            entry.1 += 1;
            entry.2 += usize::from(matches!(d.action, PlannedAction::Rebuild(_)));
            entry.3.gap_refits += d.counters.gap_refits;
            entry.3.stale_revalidations += d.counters.stale_revalidations;
            entry.3.fallback_rescans += d.counters.fallback_rescans;
            entry.3.heap_pushes += d.counters.heap_pushes;
        }
        for (i, (level, considered, rebuilds, counters)) in levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"level\": {level}, \"subtrees_considered\": {considered}, \
                 \"subtrees_to_rebuild\": {rebuilds}, \"gap_refits\": {}, \
                 \"stale_revalidations\": {}, \"fallback_rescans\": {}, \"heap_pushes\": {}}}",
                counters.gap_refits,
                counters.stale_revalidations,
                counters.fallback_rescans,
                counters.heap_pushes
            ));
        }
        if !levels.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"decisions\": [");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"node_id\": {}, \"level\": {}, \"num_keys\": {}",
                d.subtree.node_id, d.subtree.level, d.num_keys
            ));
            match &d.action {
                PlannedAction::Skipped(reason) => {
                    out.push_str(&format!(", \"action\": \"skip\", \"reason\": \"{reason}\""));
                }
                PlannedAction::CostRejected => {
                    out.push_str(&format!(
                        ", \"action\": \"cost-rejected\", \"loss_before\": {:.6}, \"loss_after\": {:.6}",
                        d.loss_before, d.loss_after
                    ));
                }
                PlannedAction::Rebuild(layout) => {
                    out.push_str(&format!(
                        ", \"action\": \"rebuild\", \"loss_before\": {:.6}, \"loss_after\": {:.6}, \
                         \"virtual_points\": {}, \"layout\": {{\"slots\": {}, \"model\": \
                         {{\"slope\": {:.9}, \"intercept\": {:.9}}}}}",
                        d.loss_before,
                        d.loss_after,
                        d.virtual_points,
                        layout.num_slots(),
                        layout.model().slope,
                        layout.model().intercept
                    ));
                }
            }
            out.push('}');
        }
        if !self.decisions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

/// The mutate phase for one planned sub-tree: perform (or record) its
/// resolution and account for it in `report`. Shared by [`CsvPlan`]'s batch
/// apply and the streaming sequential sweep of [`CsvOptimizer::optimize`].
fn apply_planned<I: CsvIntegrable + ?Sized>(
    index: &mut I,
    planned: &PlannedSubtree,
    report: &mut CsvReport,
) {
    let decision = match &planned.action {
        PlannedAction::Skipped(reason) => Decision::Skipped(*reason),
        PlannedAction::CostRejected => Decision::CostRejected,
        PlannedAction::Rebuild(layout) => {
            match index.csv_rebuild_subtree(&planned.subtree, layout) {
                Ok(()) => {
                    report.subtrees_rebuilt += 1;
                    report.keys_rebuilt += planned.num_keys;
                    report.virtual_points_added += planned.virtual_points;
                    Decision::Rebuilt
                }
                Err(refusal) => Decision::Declined(refusal),
            }
        }
    };
    report.gap_refits += planned.counters.gap_refits;
    report.smoothing.gap_refits += planned.counters.gap_refits;
    report.smoothing.stale_revalidations += planned.counters.stale_revalidations;
    report.smoothing.fallback_rescans += planned.counters.fallback_rescans;
    report.smoothing.heap_pushes += planned.counters.heap_pushes;
    report.outcomes.push(NodeOutcome {
        subtree: planned.subtree,
        num_keys: planned.num_keys,
        loss_before: planned.loss_before,
        loss_after: planned.loss_after,
        virtual_points: planned.virtual_points,
        decision,
    });
}

/// Drives Algorithm 2 over any [`CsvIntegrable`] index.
#[derive(Debug, Clone, Default)]
pub struct CsvOptimizer {
    config: CsvConfig,
}

thread_local! {
    /// Per-worker scratch buffer for key collection: reused across every
    /// sub-tree a worker plans, so the read phase performs no per-sub-tree
    /// key allocations.
    static KEY_SCRATCH: RefCell<Vec<Key>> = const { RefCell::new(Vec::new()) };
}

impl CsvOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: CsvConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CsvConfig {
        &self.config
    }

    /// The level range `(start, stop)` of the bottom-up sweep for `index`,
    /// or `None` when the index is too flat to optimise. Levels are
    /// processed from `start` down to `stop` (both inclusive).
    pub fn sweep_levels<I: CsvIntegrable + ?Sized>(&self, index: &I) -> Option<(usize, usize)> {
        let max_level = index.csv_max_level();
        if max_level < self.config.stop_level {
            return None;
        }
        let start_level = match self.config.start_level {
            StartLevel::Deepest => max_level,
            StartLevel::Fixed(l) => l.min(max_level),
        };
        if start_level < self.config.stop_level {
            return None;
        }
        Some((start_level, self.config.stop_level))
    }

    /// The read phase for one sub-tree: evaluate the skip guards from the
    /// cost statistics, then collect the keys into the scratch buffer,
    /// smooth them and evaluate the cost condition.
    fn plan_subtree<I: CsvIntegrable + ?Sized>(
        &self,
        index: &I,
        subtree: SubtreeRef,
        keys: &mut Vec<Key>,
    ) -> PlannedSubtree {
        // The guards use the cost statistics' key count so a skipped
        // sub-tree is never materialised: an over-size-guard sub-tree can
        // hold orders of magnitude more keys than the guard allows, and
        // collecting it would both waste the walk and permanently grow the
        // reused scratch buffer past every bound the config promises.
        let before_cost = index.csv_subtree_cost(&subtree);
        let skip = if before_cost.num_keys < 2 {
            Some(SkipReason::TooSmall)
        } else if before_cost.num_keys > self.config.max_subtree_keys {
            Some(SkipReason::OverSizeGuard)
        } else {
            None
        };
        if let Some(reason) = skip {
            return PlannedSubtree {
                subtree,
                num_keys: before_cost.num_keys,
                loss_before: 0.0,
                loss_after: 0.0,
                virtual_points: 0,
                counters: SmoothingCounters::default(),
                action: PlannedAction::Skipped(reason),
            };
        }
        keys.clear();
        index.csv_collect_keys_into(&subtree, keys);
        let smoothed: SmoothingResult = smooth_segment(keys, &self.config.smoothing);
        let after_cost = SubtreeCostStats::of_layout(&smoothed.layout);
        let rebuild = self.config.condition.should_rebuild(
            smoothed.loss_before,
            smoothed.loss_after_all,
            &before_cost,
            &after_cost,
        );
        PlannedSubtree {
            subtree,
            num_keys: keys.len(),
            loss_before: smoothed.loss_before,
            loss_after: smoothed.loss_after_all,
            virtual_points: smoothed.virtual_points.len(),
            counters: smoothed.counters,
            // Rejected evaluations drop the layout right here, so a
            // level-wide batch never holds a second copy of every sub-tree's
            // keys — only of the ones it is about to rebuild.
            action: if rebuild {
                PlannedAction::Rebuild(smoothed.layout)
            } else {
                PlannedAction::CostRejected
            },
        }
    }

    /// The read phase over an explicit sub-tree list, sequentially.
    fn plan_subtrees<I: CsvIntegrable + ?Sized>(
        &self,
        index: &I,
        subtrees: Vec<SubtreeRef>,
    ) -> CsvPlan {
        let started = Instant::now();
        let mut buf = Vec::new();
        let decisions = subtrees
            .into_iter()
            .map(|subtree| self.plan_subtree(index, subtree, &mut buf))
            .collect();
        CsvPlan {
            decisions,
            planning_time: started.elapsed(),
        }
    }

    /// The read phase over an explicit sub-tree list, fanned out across the
    /// rayon pool with per-worker scratch buffers.
    fn plan_subtrees_parallel<I: CsvIntegrable + Sync + ?Sized>(
        &self,
        index: &I,
        subtrees: Vec<SubtreeRef>,
    ) -> CsvPlan {
        let started = Instant::now();
        let decisions = subtrees
            .par_iter()
            .map(|subtree| {
                KEY_SCRATCH.with(|buf| self.plan_subtree(index, *subtree, &mut buf.borrow_mut()))
            })
            .collect();
        CsvPlan {
            decisions,
            planning_time: started.elapsed(),
        }
    }

    /// Plans one level of the sweep sequentially. This is the building block
    /// of the short-lock pattern: call it under a shared lock, then apply
    /// the returned plan under the exclusive lock, level by level.
    pub fn plan_level<I: CsvIntegrable + ?Sized>(&self, index: &I, level: usize) -> CsvPlan {
        self.plan_subtrees(index, index.csv_subtrees_at_level(level))
    }

    /// Plans one level with the per-sub-tree work fanned out across the
    /// rayon pool. Sub-trees at one level root disjoint key ranges (§5), so
    /// their read phases are independent; each worker reuses a thread-local
    /// scratch buffer for key collection.
    pub fn plan_level_parallel<I: CsvIntegrable + Sync + ?Sized>(
        &self,
        index: &I,
        level: usize,
    ) -> CsvPlan {
        self.plan_subtrees_parallel(index, index.csv_subtrees_at_level(level))
    }

    /// [`CsvOptimizer::plan_level`] restricted to the sub-trees that
    /// absorbed inserts/removes since the index was last marked clean
    /// ([`CsvIntegrable::csv_dirty_subtrees_at_level`]).
    pub fn plan_dirty_level<I: CsvIntegrable + ?Sized>(&self, index: &I, level: usize) -> CsvPlan {
        self.plan_subtrees(index, index.csv_dirty_subtrees_at_level(level))
    }

    /// [`CsvOptimizer::plan_dirty_level`] with the per-sub-tree work fanned
    /// out across the rayon pool.
    pub fn plan_dirty_level_parallel<I: CsvIntegrable + Sync + ?Sized>(
        &self,
        index: &I,
        level: usize,
    ) -> CsvPlan {
        self.plan_subtrees_parallel(index, index.csv_dirty_subtrees_at_level(level))
    }

    /// The read phase of a whole CSV run: plans every sweep level against
    /// the index's *current* structure and returns the concatenated plan.
    ///
    /// For single-level sweeps (the LIPP/SALI configuration) the plan is
    /// exactly what [`CsvOptimizer::optimize`] would decide. For multi-level
    /// sweeps the cost statistics of levels above the deepest are computed
    /// before any deeper rebuild has happened — a one-shot approximation;
    /// use `optimize` (one plan → apply round per level) when exact
    /// multi-level behaviour matters.
    pub fn plan<I: CsvIntegrable + ?Sized>(&self, index: &I) -> CsvPlan {
        self.plan_with(index, Self::plan_level)
    }

    /// [`CsvOptimizer::plan`] with every level's sub-trees fanned out across
    /// the rayon pool.
    pub fn plan_parallel<I: CsvIntegrable + Sync + ?Sized>(&self, index: &I) -> CsvPlan {
        self.plan_with(index, Self::plan_level_parallel)
    }

    /// The *incremental* read phase: like [`CsvOptimizer::plan`], but key
    /// collection, smoothing and the cost condition are restricted to the
    /// sub-tree roots that absorbed inserts/removes since the index was
    /// last marked clean. The smoothing work is therefore proportional to
    /// the dirty fraction of the index instead of its total size (the
    /// `maintenance` bench quantifies this via [`CsvPlan::counters`]).
    ///
    /// On a fully dirty index — a freshly built one, or any index whose
    /// backend does not track dirtiness — the result equals
    /// [`CsvOptimizer::plan`] decision for decision (property-pinned in the
    /// crate tests).
    pub fn plan_dirty<I: CsvIntegrable + ?Sized>(&self, index: &I) -> CsvPlan {
        self.plan_with(index, Self::plan_dirty_level)
    }

    /// [`CsvOptimizer::plan_dirty`] with every level's dirty sub-trees
    /// fanned out across the rayon pool.
    pub fn plan_dirty_parallel<I: CsvIntegrable + Sync + ?Sized>(&self, index: &I) -> CsvPlan {
        self.plan_with(index, Self::plan_dirty_level_parallel)
    }

    /// The one sweep loop behind [`CsvOptimizer::plan`] and
    /// [`CsvOptimizer::plan_parallel`], parameterised by the per-level
    /// planner.
    fn plan_with<I: CsvIntegrable + ?Sized>(
        &self,
        index: &I,
        plan_level: impl Fn(&Self, &I, usize) -> CsvPlan,
    ) -> CsvPlan {
        let started = Instant::now();
        let mut plan = CsvPlan::default();
        if let Some((start_level, stop_level)) = self.sweep_levels(index) {
            for level in (stop_level..=start_level).rev() {
                plan.decisions
                    .extend(plan_level(self, index, level).decisions);
            }
        }
        plan.planning_time = started.elapsed();
        plan
    }

    /// Runs CSV on `index` sequentially and returns the run report: levels
    /// deepest first (Algorithm 2, lines 5–15), each sub-tree planned and
    /// applied in one streamed step — so rebuilds at level `l` are visible
    /// to the planning of level `l − 1`, and at most one accepted layout is
    /// held in memory at a time.
    ///
    /// Prefer [`CsvOptimizer::optimize_parallel`] when the index type is
    /// `Sync`; this entry point exists for trait objects and single-threaded
    /// contexts and processes sub-trees in the exact order of Algorithm 2.
    pub fn optimize<I: CsvIntegrable + ?Sized>(&self, index: &mut I) -> CsvReport {
        let started = Instant::now();
        let mut report = CsvReport::default();
        if let Some((start_level, stop_level)) = self.sweep_levels(index) {
            let mut buf = Vec::new();
            for level in (stop_level..=start_level).rev() {
                // Stream plan → apply per sub-tree: at most one accepted
                // layout is alive at a time, unlike the per-level batch of
                // `optimize_parallel`. Sub-trees at one level root disjoint
                // key ranges, so the interleaving produces the same result.
                for subtree in index.csv_subtrees_at_level(level) {
                    let planned = self.plan_subtree(index, subtree, &mut buf);
                    apply_planned(index, &planned, &mut report);
                }
            }
        }
        report.preprocessing_time = started.elapsed();
        report
    }

    /// The incremental counterpart of [`CsvOptimizer::optimize`]: one
    /// plan-dirty → apply round per level (so rebuilds at level `l` are
    /// visible to the planning of level `l − 1`, exactly like the full
    /// sweep), after which the index is marked clean. On a fully dirty
    /// index this is identical to [`CsvOptimizer::optimize`]; on a clean
    /// one it considers nothing and costs only the level enumeration.
    pub fn optimize_dirty<I: CsvIntegrable + ?Sized>(&self, index: &mut I) -> CsvReport {
        let started = Instant::now();
        let mut report = CsvReport::default();
        if let Some((start_level, stop_level)) = self.sweep_levels(index) {
            for level in (stop_level..=start_level).rev() {
                self.plan_dirty_level(index, level)
                    .apply_into(index, &mut report);
            }
        }
        index.csv_mark_clean();
        report.preprocessing_time = started.elapsed();
        report
    }

    /// Runs CSV on `index`, fanning the per-sub-tree planning work of every
    /// level out across the rayon thread pool.
    ///
    /// Sub-trees at one level are independent by construction (§5 of the
    /// paper): they root disjoint key ranges, so collecting keys, smoothing
    /// and evaluating the cost condition are pure reads that can run
    /// concurrently. Rebuilds mutate the arena and are applied sequentially
    /// afterwards, in the same sub-tree order as [`CsvOptimizer::optimize`],
    /// so both entry points produce identical reports and identical rebuilt
    /// indexes. Levels still run one after another because a rebuild at
    /// level `l` changes which sub-trees exist at `l − 1`.
    pub fn optimize_parallel<I: CsvIntegrable + Sync + ?Sized>(&self, index: &mut I) -> CsvReport {
        let started = Instant::now();
        let mut report = CsvReport::default();
        if let Some((start_level, stop_level)) = self.sweep_levels(index) {
            for level in (stop_level..=start_level).rev() {
                // One plan → apply round per level, so rebuilds at level `l`
                // are visible to the planning of level `l − 1`.
                self.plan_level_parallel(index, level)
                    .apply_into(index, &mut report);
            }
        }
        report.preprocessing_time = started.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    /// A miniature two-level "index": a root with child nodes, each child
    /// holding a key segment. Used to exercise the optimizer without pulling
    /// in a real index crate. Tracks dirty children the way the real
    /// backends do: everything starts dirty (never considered), inserts
    /// mark their child dirty, `csv_mark_clean` wipes the marks.
    struct ToyIndex {
        children: Vec<Vec<Key>>,
        flattened: Vec<Option<SmoothedLayout>>,
        dirty: Vec<bool>,
        capacity_limit: usize,
    }

    impl ToyIndex {
        fn new(children: Vec<Vec<Key>>) -> Self {
            let n = children.len();
            Self {
                children,
                flattened: vec![None; n],
                dirty: vec![true; n],
                capacity_limit: usize::MAX,
            }
        }

        /// Simulates an insert landing in child `i`.
        fn touch(&mut self, i: usize, key: Key) {
            self.children[i].push(key);
            self.children[i].sort_unstable();
            self.flattened[i] = None;
            self.dirty[i] = true;
        }
    }

    impl CsvIntegrable for ToyIndex {
        fn csv_max_level(&self) -> usize {
            2
        }
        fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
            if level != 2 {
                return Vec::new();
            }
            (0..self.children.len())
                .filter(|&i| self.flattened[i].is_none())
                .map(|i| SubtreeRef {
                    node_id: i,
                    level: 2,
                })
                .collect()
        }
        fn csv_collect_keys_into(&self, subtree: &SubtreeRef, buf: &mut Vec<Key>) {
            buf.extend_from_slice(&self.children[subtree.node_id]);
        }
        fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats {
            SubtreeCostStats {
                num_keys: self.children[subtree.node_id].len(),
                mean_key_depth: 2.0,
                expected_searches: 3.0,
            }
        }
        fn csv_rebuild_subtree(
            &mut self,
            subtree: &SubtreeRef,
            layout: &SmoothedLayout,
        ) -> Result<(), RebuildRefusal> {
            if layout.num_slots() > self.capacity_limit {
                return Err(RebuildRefusal::CapacityExceeded);
            }
            self.flattened[subtree.node_id] = Some(layout.clone());
            Ok(())
        }
        fn csv_tracks_dirty(&self) -> bool {
            true
        }
        fn csv_dirty_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
            self.csv_subtrees_at_level(level)
                .into_iter()
                .filter(|s| self.dirty[s.node_id])
                .collect()
        }
        fn csv_mark_clean(&mut self) {
            self.dirty.iter_mut().for_each(|d| *d = false);
        }
    }

    fn skewed_segment(offset: Key) -> Vec<Key> {
        // A hard-to-fit segment: dense run then large jumps.
        let mut keys: Vec<Key> = (0..40).map(|i| offset + i).collect();
        keys.extend((1..10).map(|i| offset + 100 + i * 97));
        keys
    }

    #[test]
    fn optimizer_rebuilds_improvable_subtrees() {
        let mut index = ToyIndex::new(vec![skewed_segment(0), skewed_segment(10_000)]);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let report = optimizer.optimize(&mut index);
        assert_eq!(report.subtrees_considered(), 2);
        assert_eq!(report.subtrees_rebuilt, 2);
        assert!(report.virtual_points_added > 0);
        assert!(report.keys_rebuilt > 0);
        assert!((report.rebuild_rate() - 1.0).abs() < 1e-12);
        assert!(index.flattened.iter().all(|f| f.is_some()));
        for outcome in &report.outcomes {
            assert!(outcome.loss_after <= outcome.loss_before);
            assert_eq!(outcome.decision, Decision::Rebuilt);
            assert!(outcome.rebuilt());
        }
    }

    #[test]
    fn linear_subtrees_are_left_alone() {
        let linear: Vec<Key> = (0..50).map(|i| i * 10).collect();
        let mut index = ToyIndex::new(vec![linear]);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let report = optimizer.optimize(&mut index);
        assert_eq!(report.subtrees_rebuilt, 0);
        assert_eq!(report.outcomes[0].decision, Decision::CostRejected);
        assert!(index.flattened[0].is_none());
    }

    #[test]
    fn capacity_refusal_is_reported() {
        let mut index = ToyIndex::new(vec![skewed_segment(0)]);
        index.capacity_limit = 10; // refuse every rebuild
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let report = optimizer.optimize(&mut index);
        assert_eq!(report.subtrees_rebuilt, 0);
        assert_eq!(
            report.outcomes[0].decision,
            Decision::Declined(RebuildRefusal::CapacityExceeded)
        );
        assert!(!report.outcomes[0].rebuilt());
        assert_eq!(report.rebuilds_declined(), 1);
    }

    #[test]
    fn cost_model_condition_can_reject() {
        let mut index = ToyIndex::new(vec![skewed_segment(0)]);
        // A sub-tree whose current cost is already excellent: claim depth 1
        // and 1 expected search, so flattening cannot help.
        struct CheapIndex(ToyIndex);
        impl CsvIntegrable for CheapIndex {
            fn csv_max_level(&self) -> usize {
                self.0.csv_max_level()
            }
            fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
                self.0.csv_subtrees_at_level(level)
            }
            fn csv_collect_keys_into(&self, s: &SubtreeRef, buf: &mut Vec<Key>) {
                self.0.csv_collect_keys_into(s, buf)
            }
            fn csv_subtree_cost(&self, _s: &SubtreeRef) -> SubtreeCostStats {
                SubtreeCostStats {
                    num_keys: 49,
                    mean_key_depth: 1.0,
                    expected_searches: 1.0,
                }
            }
            fn csv_rebuild_subtree(
                &mut self,
                s: &SubtreeRef,
                l: &SmoothedLayout,
            ) -> Result<(), RebuildRefusal> {
                self.0.csv_rebuild_subtree(s, l)
            }
        }
        let mut cheap = CheapIndex(ToyIndex::new(vec![skewed_segment(0)]));
        let config = CsvConfig::for_alex(0.2, CostModel::new(1.0, 2.5, -0.5));
        let optimizer = CsvOptimizer::new(config);
        let report = optimizer.optimize(&mut cheap);
        assert_eq!(
            report.subtrees_rebuilt, 0,
            "already-cheap sub-tree must not be merged"
        );

        // The same configuration on the expensive toy index does rebuild.
        let report = optimizer.optimize(&mut index);
        assert_eq!(report.subtrees_rebuilt, 1);
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        let segments: Vec<Vec<Key>> = (0..24).map(|i| skewed_segment(i * 50_000)).collect();
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));

        let mut sequential = ToyIndex::new(segments.clone());
        let sequential_report = optimizer.optimize(&mut sequential);

        let mut parallel = ToyIndex::new(segments);
        let parallel_report = optimizer.optimize_parallel(&mut parallel);

        assert_eq!(sequential_report.outcomes, parallel_report.outcomes);
        assert_eq!(
            sequential_report.subtrees_considered(),
            parallel_report.subtrees_considered()
        );
        assert_eq!(
            sequential_report.subtrees_rebuilt,
            parallel_report.subtrees_rebuilt
        );
        assert_eq!(sequential_report.keys_rebuilt, parallel_report.keys_rebuilt);
        assert_eq!(
            sequential_report.virtual_points_added,
            parallel_report.virtual_points_added
        );
        assert_eq!(sequential_report.gap_refits, parallel_report.gap_refits);
        assert_eq!(sequential.flattened, parallel.flattened);
    }

    #[test]
    fn plan_apply_roundtrip_matches_fused_optimize() {
        let segments: Vec<Vec<Key>> = (0..8)
            .map(|i| {
                if i % 3 == 0 {
                    // A linear segment the cost condition rejects.
                    (0..50).map(|j| i as Key * 100_000 + j * 10).collect()
                } else {
                    skewed_segment(i * 100_000)
                }
            })
            .collect();
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));

        let mut fused = ToyIndex::new(segments.clone());
        let fused_report = optimizer.optimize(&mut fused);

        let mut staged = ToyIndex::new(segments);
        let plan = optimizer.plan(&staged);
        // Planning never mutates.
        assert!(staged.flattened.iter().all(|f| f.is_none()));
        assert_eq!(plan.len(), fused_report.subtrees_considered());
        assert_eq!(plan.num_rebuilds(), fused_report.subtrees_rebuilt);
        let staged_report = plan.apply(&mut staged);

        assert_eq!(fused_report.outcomes, staged_report.outcomes);
        assert_eq!(
            fused_report.subtrees_considered(),
            staged_report.subtrees_considered()
        );
        assert_eq!(
            fused_report.subtrees_rebuilt,
            staged_report.subtrees_rebuilt
        );
        assert_eq!(fused_report.keys_rebuilt, staged_report.keys_rebuilt);
        assert_eq!(
            fused_report.virtual_points_added,
            staged_report.virtual_points_added
        );
        assert_eq!(fused_report.gap_refits, staged_report.gap_refits);
        assert_eq!(fused.flattened, staged.flattened);
    }

    #[test]
    fn plan_parallel_matches_plan() {
        let segments: Vec<Vec<Key>> = (0..24).map(|i| skewed_segment(i * 50_000)).collect();
        let index = ToyIndex::new(segments);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let sequential = optimizer.plan(&index);
        let parallel = optimizer.plan_parallel(&index);
        assert_eq!(sequential.decisions(), parallel.decisions());
    }

    #[test]
    fn plan_json_describes_every_decision() {
        let mut segments = vec![skewed_segment(0)];
        segments.push(vec![7]); // too small
        segments.push((0..50).map(|j| 900_000 + j * 10).collect()); // cost-rejected
        let index = ToyIndex::new(segments);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let plan = optimizer.plan(&index);
        let json = plan.to_json();
        assert!(json.contains("\"action\": \"rebuild\""));
        assert!(json.contains("\"action\": \"skip\""));
        assert!(json.contains("\"reason\": \"too-small\""));
        assert!(json.contains("\"action\": \"cost-rejected\""));
        assert!(json.contains("\"subtrees_considered\": 3"));
        assert!(json.contains("\"subtrees_to_rebuild\": 1"));
        // Per-level smoothing counters are part of the plan surface.
        assert!(json.contains("\"levels\": ["));
        assert!(json.contains(&format!("\"gap_refits\": {}", plan.gap_refits())));
        assert!(json.contains("\"fallback_rescans\":"));
        assert!(json.contains("\"stale_revalidations\":"));
        // Well-formed enough for a JSON parser: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn stale_plans_are_declined_not_applied_blindly() {
        let segments = vec![skewed_segment(0)];
        let mut index = ToyIndex::new(segments);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let plan = optimizer.plan(&index);
        assert_eq!(plan.num_rebuilds(), 1);
        // The index shrinks its capacity between plan and apply; the rebuild
        // is refused and typed, not silently dropped.
        index.capacity_limit = 1;
        let report = plan.apply(&mut index);
        assert_eq!(report.subtrees_rebuilt, 0);
        assert_eq!(
            report.outcomes[0].decision,
            Decision::Declined(RebuildRefusal::CapacityExceeded)
        );
    }

    #[test]
    fn stop_level_above_max_level_is_a_noop() {
        let mut index = ToyIndex::new(vec![skewed_segment(0)]);
        let config = CsvConfig {
            stop_level: 5,
            ..CsvConfig::for_lipp(0.2)
        };
        let report = CsvOptimizer::new(config).optimize(&mut index);
        assert_eq!(report.subtrees_considered(), 0);
        assert!(CsvOptimizer::new(config).plan(&index).is_empty());
    }

    #[test]
    fn skipped_subtrees_leave_a_trace_in_the_report() {
        // Over the size guard.
        let mut index = ToyIndex::new(vec![skewed_segment(0)]);
        let config = CsvConfig {
            max_subtree_keys: 10,
            ..CsvConfig::for_lipp(0.2)
        };
        let report = CsvOptimizer::new(config).optimize(&mut index);
        assert_eq!(report.subtrees_rebuilt, 0);
        assert_eq!(report.subtrees_considered(), 1);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(
            report.outcomes[0].decision,
            Decision::Skipped(SkipReason::OverSizeGuard)
        );
        assert_eq!(report.outcomes[0].num_keys, 49);
        assert_eq!(report.subtrees_skipped(), 1);

        // Too small to smooth.
        let mut tiny = ToyIndex::new(vec![vec![42]]);
        let report = CsvOptimizer::new(CsvConfig::for_lipp(0.2)).optimize(&mut tiny);
        assert_eq!(report.subtrees_considered(), 1);
        assert_eq!(
            report.outcomes[0].decision,
            Decision::Skipped(SkipReason::TooSmall)
        );
        assert_eq!(report.outcomes[0].num_keys, 1);
        assert_eq!(report.outcomes[0].loss_before, 0.0);
    }

    #[test]
    fn plan_dirty_on_a_fully_dirty_index_equals_plan() {
        // Freshly built (never considered) — every sub-tree is dirty, so the
        // incremental read phase must reproduce the full one decision for
        // decision.
        let segments: Vec<Vec<Key>> = (0..12).map(|i| skewed_segment(i * 60_000)).collect();
        let index = ToyIndex::new(segments);
        assert!(index.csv_tracks_dirty());
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let full = optimizer.plan(&index);
        let dirty = optimizer.plan_dirty(&index);
        assert_eq!(full.decisions(), dirty.decisions());
        assert_eq!(full.counters(), dirty.counters());
        let dirty_parallel = optimizer.plan_dirty_parallel(&index);
        assert_eq!(full.decisions(), dirty_parallel.decisions());
    }

    #[test]
    fn plan_dirty_restricts_smoothing_work_to_dirty_roots() {
        let segments: Vec<Vec<Key>> = (0..10).map(|i| skewed_segment(i * 60_000)).collect();
        let mut index = ToyIndex::new(segments);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        optimizer.optimize_dirty(&mut index);
        // Quiesced and clean: nothing to plan.
        assert!(optimizer.plan_dirty(&index).is_empty());

        // Dirty two children; only those are re-planned, and the smoothing
        // work is bounded by theirs alone.
        index.touch(3, 3 * 60_000 + 57);
        index.touch(7, 7 * 60_000 + 57);
        let dirty = optimizer.plan_dirty(&index);
        assert_eq!(dirty.len(), 2);
        assert!(dirty
            .decisions()
            .iter()
            .all(|d| [3, 7].contains(&d.subtree.node_id)));
        let full = optimizer.plan(&index);
        assert_eq!(full.len(), 2, "flattened children leave the candidate set");
        assert!(dirty.gap_refits() <= full.gap_refits());
    }

    #[test]
    fn optimize_dirty_matches_optimize_on_a_fresh_index_and_is_then_a_noop() {
        let segments: Vec<Vec<Key>> = (0..8).map(|i| skewed_segment(i * 70_000)).collect();
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));

        let mut fused = ToyIndex::new(segments.clone());
        let fused_report = optimizer.optimize(&mut fused);

        let mut incremental = ToyIndex::new(segments);
        let incremental_report = optimizer.optimize_dirty(&mut incremental);
        assert_eq!(fused_report.outcomes, incremental_report.outcomes);
        assert_eq!(fused.flattened, incremental.flattened);

        // The index is now clean and quiesced: a second round considers
        // nothing at all.
        let idle = optimizer.optimize_dirty(&mut incremental);
        assert_eq!(idle.subtrees_considered(), 0);
    }

    #[test]
    fn builder_composes_presets_and_overrides() {
        let config = CsvConfig::builder()
            .alpha(0.3)
            .greedy(crate::single::GreedyMode::Rescan)
            .drift_tolerance(0.25)
            .max_subtree_keys(123)
            .stop_level(3)
            .start_level(StartLevel::Fixed(4))
            .build();
        assert_eq!(config.alpha(), 0.3);
        assert_eq!(config.drift_tolerance(), 0.25);
        assert_eq!(CsvConfig::default().drift_tolerance(), 0.0);
        assert_eq!(config.smoothing.mode, crate::single::GreedyMode::Rescan);
        assert_eq!(config.max_subtree_keys, 123);
        assert_eq!(config.stop_level, 3);
        assert_eq!(config.start_level, StartLevel::Fixed(4));
        // Family presets seed the right condition.
        let alex = CsvConfigBuilder::alex(CostModel::default())
            .alpha(0.2)
            .build();
        assert!(matches!(alex.condition, CostCondition::Model(_)));
        assert_eq!(alex.start_level, StartLevel::Deepest);
        let sali = CsvConfigBuilder::sali().build();
        assert_eq!(sali, CsvConfig::for_sali(0.1));
    }
}
