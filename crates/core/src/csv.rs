//! Algorithm 2 — **CSV**, CDF smoothing for hierarchical learned indexes.
//!
//! CSV walks a built index bottom-up. At every level it visits each node
//! that roots a sub-tree, collects the keys stored in the node and its
//! descendants, smooths that key segment with Algorithm 1, and — if the cost
//! condition of §5.1 is satisfied — rebuilds the sub-tree as a single flat
//! node laid out according to the smoothed ranks (virtual points become
//! gaps). Keys that used to live several levels deep are thereby *promoted*
//! to upper levels, cutting traversal time; the cost model prevents merges
//! that would pay for the promotion with excessive leaf-node search time.
//!
//! The coupling to a concrete index goes through [`CsvIntegrable`], which the
//! ALEX, LIPP and SALI crates implement.

use crate::cost::{CostCondition, SubtreeCostStats};
use crate::layout::SmoothedLayout;
use crate::single::{smooth_segment, SmoothingConfig, SmoothingResult};
use csv_common::Key;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A reference to a sub-tree of a hierarchical index: the arena id of its
/// root node plus that node's 1-based level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubtreeRef {
    /// Index-specific node identifier (arena slot).
    pub node_id: usize,
    /// 1-based level of the node (1 = index root).
    pub level: usize,
}

/// The hooks an index must expose so CSV can optimise it.
pub trait CsvIntegrable {
    /// Deepest level that contains nodes with sub-trees (i.e. internal
    /// nodes whose children exist). Returns 0/1 for a flat index.
    fn csv_max_level(&self) -> usize;

    /// The sub-tree roots at `level` that are candidates for merging: nodes
    /// at that level which have at least one child node.
    fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef>;

    /// Collects every (real) key stored in the sub-tree, in ascending order.
    fn csv_collect_keys(&self, subtree: &SubtreeRef) -> Vec<Key>;

    /// Query-cost statistics of the sub-tree as currently structured.
    fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats;

    /// Replaces the sub-tree with a single flat node laid out according to
    /// `layout`. Returns `false` when the index declines the rebuild (e.g.
    /// the layout exceeds a node-capacity limit).
    fn csv_rebuild_subtree(&mut self, subtree: &SubtreeRef, layout: &SmoothedLayout) -> bool;
}

/// Where CSV starts its bottom-up sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StartLevel {
    /// Start at the deepest level containing sub-trees (ALEX behaviour).
    Deepest,
    /// Start at a fixed level (the paper starts LIPP/SALI at level 2 so each
    /// smoothing step benefits more keys).
    Fixed(usize),
}

/// Configuration of a CSV run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsvConfig {
    /// Parameters forwarded to Algorithm 1 for every sub-tree.
    pub smoothing: SmoothingConfig,
    /// Rebuild decision rule.
    pub condition: CostCondition,
    /// First level of the bottom-up sweep.
    pub start_level: StartLevel,
    /// Last level processed (inclusive); the paper stops at level 2 so the
    /// root itself is never merged.
    pub stop_level: usize,
    /// Sub-trees with more keys than this are skipped (guards the O(λ·n)
    /// smoothing cost on pathological sub-trees).
    pub max_subtree_keys: usize,
}

impl CsvConfig {
    /// Default configuration for LIPP-style indexes (no leaf search): sweep
    /// only level 2 sub-trees with a loss-based condition.
    ///
    /// Uses the lazy-heap greedy driver: it matches Rescan's result (falling
    /// back to a full rescan whenever its pruning invariant breaks) while
    /// performing a small fraction of the model refits, which dominates the
    /// pre-processing cost on production-sized sub-trees.
    pub fn for_lipp(alpha: f64) -> Self {
        Self {
            smoothing: SmoothingConfig {
                mode: crate::single::GreedyMode::Lazy,
                ..SmoothingConfig::with_alpha(alpha)
            },
            condition: CostCondition::LossBased { min_relative_improvement: 0.0 },
            start_level: StartLevel::Fixed(2),
            stop_level: 2,
            max_subtree_keys: 1 << 20,
        }
    }

    /// Default configuration for SALI (shares LIPP's structure).
    pub fn for_sali(alpha: f64) -> Self {
        Self::for_lipp(alpha)
    }

    /// Default configuration for ALEX-style indexes: full bottom-up sweep
    /// with the Eq. 22 cost model (lazy greedy driver, like
    /// [`CsvConfig::for_lipp`]).
    pub fn for_alex(alpha: f64, model: crate::cost::CostModel) -> Self {
        Self {
            smoothing: SmoothingConfig {
                mode: crate::single::GreedyMode::Lazy,
                ..SmoothingConfig::with_alpha(alpha)
            },
            condition: CostCondition::Model(model),
            start_level: StartLevel::Deepest,
            stop_level: 2,
            max_subtree_keys: 1 << 20,
        }
    }

    /// The smoothing threshold α.
    pub fn alpha(&self) -> f64 {
        self.smoothing.alpha
    }
}

impl Default for CsvConfig {
    fn default() -> Self {
        Self::for_lipp(0.1)
    }
}

/// What happened to one inspected sub-tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// The sub-tree that was inspected.
    pub subtree: SubtreeRef,
    /// Number of keys collected from the sub-tree.
    pub num_keys: usize,
    /// Loss before smoothing.
    pub loss_before: f64,
    /// Loss (over real + virtual points) after smoothing.
    pub loss_after: f64,
    /// Number of virtual points the smoothing inserted.
    pub virtual_points: usize,
    /// Whether the sub-tree was rebuilt.
    pub rebuilt: bool,
}

/// Aggregate report of a CSV run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CsvReport {
    /// Per-sub-tree outcomes, in processing order.
    pub outcomes: Vec<NodeOutcome>,
    /// Sub-trees inspected.
    pub subtrees_considered: usize,
    /// Sub-trees rebuilt as flat nodes.
    pub subtrees_rebuilt: usize,
    /// Real keys contained in rebuilt sub-trees.
    pub keys_rebuilt: usize,
    /// Virtual points added across all rebuilt sub-trees.
    pub virtual_points_added: usize,
    /// Closed-form candidate refits spent by Algorithm 1 across all
    /// sub-trees (see [`crate::single::SmoothingCounters::gap_refits`]).
    pub gap_refits: usize,
    /// Wall-clock pre-processing time of the whole CSV run.
    pub preprocessing_time: Duration,
}

impl CsvReport {
    /// Fraction of inspected sub-trees that were rebuilt.
    pub fn rebuild_rate(&self) -> f64 {
        if self.subtrees_considered == 0 {
            0.0
        } else {
            self.subtrees_rebuilt as f64 / self.subtrees_considered as f64
        }
    }
}

/// Drives Algorithm 2 over any [`CsvIntegrable`] index.
#[derive(Debug, Clone, Default)]
pub struct CsvOptimizer {
    config: CsvConfig,
}

impl CsvOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: CsvConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CsvConfig {
        &self.config
    }

    /// The level range of the bottom-up sweep, or `None` when the index is
    /// too flat to optimise.
    fn sweep_levels<I: CsvIntegrable + ?Sized>(&self, index: &I) -> Option<(usize, usize)> {
        let max_level = index.csv_max_level();
        if max_level < self.config.stop_level {
            return None;
        }
        let start_level = match self.config.start_level {
            StartLevel::Deepest => max_level,
            StartLevel::Fixed(l) => l.min(max_level),
        };
        if start_level < self.config.stop_level {
            return None;
        }
        Some((start_level, self.config.stop_level))
    }

    /// The read-only half of one Algorithm 2 step: collect the sub-tree's
    /// keys, smooth them and evaluate the cost condition. Returns `None`
    /// when the sub-tree is skipped (too small or over the size guard).
    fn evaluate_subtree<I: CsvIntegrable + ?Sized>(
        &self,
        index: &I,
        subtree: SubtreeRef,
    ) -> Option<SubtreeEvaluation> {
        let keys = index.csv_collect_keys(&subtree);
        if keys.len() < 2 || keys.len() > self.config.max_subtree_keys {
            return None;
        }
        let before_cost = index.csv_subtree_cost(&subtree);
        let smoothed: SmoothingResult = smooth_segment(&keys, &self.config.smoothing);
        let after_cost = SubtreeCostStats::of_layout(&smoothed.layout);
        let rebuild = self.config.condition.should_rebuild(
            smoothed.loss_before,
            smoothed.loss_after_all,
            &before_cost,
            &after_cost,
        );
        Some(SubtreeEvaluation {
            subtree,
            num_keys: keys.len(),
            loss_before: smoothed.loss_before,
            loss_after: smoothed.loss_after_all,
            virtual_points: smoothed.virtual_points.len(),
            gap_refits: smoothed.counters.gap_refits,
            // Rejected evaluations drop the layout right here, so a
            // level-wide parallel batch never holds a second copy of every
            // sub-tree's keys — only of the ones it is about to rebuild.
            layout: rebuild.then_some(smoothed.layout),
        })
    }

    /// The mutating half of one Algorithm 2 step: apply the rebuild decision
    /// and record the outcome.
    fn apply_evaluation<I: CsvIntegrable + ?Sized>(
        &self,
        index: &mut I,
        evaluation: SubtreeEvaluation,
        report: &mut CsvReport,
    ) {
        let SubtreeEvaluation {
            subtree,
            num_keys,
            loss_before,
            loss_after,
            virtual_points,
            gap_refits,
            layout,
        } = evaluation;
        let mut rebuilt = false;
        if let Some(layout) = layout {
            rebuilt = index.csv_rebuild_subtree(&subtree, &layout);
            if rebuilt {
                report.subtrees_rebuilt += 1;
                report.keys_rebuilt += num_keys;
                report.virtual_points_added += virtual_points;
            }
        }
        report.gap_refits += gap_refits;
        report.outcomes.push(NodeOutcome {
            subtree,
            num_keys,
            loss_before,
            loss_after,
            virtual_points,
            rebuilt,
        });
    }

    /// Runs CSV on `index` sequentially and returns the run report.
    ///
    /// Prefer [`CsvOptimizer::optimize_parallel`] when the index type is
    /// `Sync`; this entry point exists for trait objects and single-threaded
    /// contexts and processes sub-trees in the exact order of Algorithm 2.
    pub fn optimize<I: CsvIntegrable + ?Sized>(&self, index: &mut I) -> CsvReport {
        let started = Instant::now();
        let mut report = CsvReport::default();
        if let Some((start_level, stop_level)) = self.sweep_levels(index) {
            // Bottom-up sweep: deepest level first (Algorithm 2, lines 5–15).
            for level in (stop_level..=start_level).rev() {
                for subtree in index.csv_subtrees_at_level(level) {
                    report.subtrees_considered += 1;
                    if let Some(evaluation) = self.evaluate_subtree(index, subtree) {
                        self.apply_evaluation(index, evaluation, &mut report);
                    }
                }
            }
        }
        report.preprocessing_time = started.elapsed();
        report
    }

    /// Runs CSV on `index`, fanning the per-sub-tree work of every level out
    /// across the rayon thread pool.
    ///
    /// Sub-trees at one level are independent by construction (§5 of the
    /// paper): they root disjoint key ranges, so collecting keys, smoothing
    /// and evaluating the cost condition are pure reads that can run
    /// concurrently. Rebuilds mutate the arena and are applied sequentially
    /// afterwards, in the same sub-tree order as [`CsvOptimizer::optimize`],
    /// so both entry points produce identical reports and identical rebuilt
    /// indexes. Levels still run one after another because a rebuild at
    /// level `l` changes which sub-trees exist at `l − 1`.
    pub fn optimize_parallel<I: CsvIntegrable + Sync + ?Sized>(&self, index: &mut I) -> CsvReport {
        let started = Instant::now();
        let mut report = CsvReport::default();
        if let Some((start_level, stop_level)) = self.sweep_levels(index) {
            for level in (stop_level..=start_level).rev() {
                let subtrees = index.csv_subtrees_at_level(level);
                report.subtrees_considered += subtrees.len();
                let shared: &I = index;
                let evaluations: Vec<Option<SubtreeEvaluation>> = subtrees
                    .par_iter()
                    .map(|subtree| self.evaluate_subtree(shared, *subtree))
                    .collect();
                for evaluation in evaluations.into_iter().flatten() {
                    self.apply_evaluation(index, evaluation, &mut report);
                }
            }
        }
        report.preprocessing_time = started.elapsed();
        report
    }
}

/// The outcome of the read-only half of one Algorithm 2 step.
struct SubtreeEvaluation {
    subtree: SubtreeRef,
    num_keys: usize,
    loss_before: f64,
    loss_after: f64,
    virtual_points: usize,
    gap_refits: usize,
    /// Present only when the cost condition accepted the rebuild.
    layout: Option<SmoothedLayout>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    /// A miniature two-level "index": a root with child nodes, each child
    /// holding a key segment. Used to exercise the optimizer without pulling
    /// in a real index crate.
    struct ToyIndex {
        children: Vec<Vec<Key>>,
        flattened: Vec<Option<SmoothedLayout>>,
        capacity_limit: usize,
    }

    impl ToyIndex {
        fn new(children: Vec<Vec<Key>>) -> Self {
            let n = children.len();
            Self { children, flattened: vec![None; n], capacity_limit: usize::MAX }
        }
    }

    impl CsvIntegrable for ToyIndex {
        fn csv_max_level(&self) -> usize {
            2
        }
        fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
            if level != 2 {
                return Vec::new();
            }
            (0..self.children.len())
                .filter(|&i| self.flattened[i].is_none())
                .map(|i| SubtreeRef { node_id: i, level: 2 })
                .collect()
        }
        fn csv_collect_keys(&self, subtree: &SubtreeRef) -> Vec<Key> {
            self.children[subtree.node_id].clone()
        }
        fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats {
            SubtreeCostStats {
                num_keys: self.children[subtree.node_id].len(),
                mean_key_depth: 2.0,
                expected_searches: 3.0,
            }
        }
        fn csv_rebuild_subtree(&mut self, subtree: &SubtreeRef, layout: &SmoothedLayout) -> bool {
            if layout.num_slots() > self.capacity_limit {
                return false;
            }
            self.flattened[subtree.node_id] = Some(layout.clone());
            true
        }
    }

    fn skewed_segment(offset: Key) -> Vec<Key> {
        // A hard-to-fit segment: dense run then large jumps.
        let mut keys: Vec<Key> = (0..40).map(|i| offset + i).collect();
        keys.extend((1..10).map(|i| offset + 100 + i * 97));
        keys
    }

    #[test]
    fn optimizer_rebuilds_improvable_subtrees() {
        let mut index = ToyIndex::new(vec![skewed_segment(0), skewed_segment(10_000)]);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let report = optimizer.optimize(&mut index);
        assert_eq!(report.subtrees_considered, 2);
        assert_eq!(report.subtrees_rebuilt, 2);
        assert!(report.virtual_points_added > 0);
        assert!(report.keys_rebuilt > 0);
        assert!((report.rebuild_rate() - 1.0).abs() < 1e-12);
        assert!(index.flattened.iter().all(|f| f.is_some()));
        for outcome in &report.outcomes {
            assert!(outcome.loss_after <= outcome.loss_before);
            assert!(outcome.rebuilt);
        }
    }

    #[test]
    fn linear_subtrees_are_left_alone() {
        let linear: Vec<Key> = (0..50).map(|i| i * 10).collect();
        let mut index = ToyIndex::new(vec![linear]);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let report = optimizer.optimize(&mut index);
        assert_eq!(report.subtrees_rebuilt, 0);
        assert!(index.flattened[0].is_none());
    }

    #[test]
    fn capacity_refusal_is_reported() {
        let mut index = ToyIndex::new(vec![skewed_segment(0)]);
        index.capacity_limit = 10; // refuse every rebuild
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));
        let report = optimizer.optimize(&mut index);
        assert_eq!(report.subtrees_rebuilt, 0);
        assert!(!report.outcomes[0].rebuilt);
    }

    #[test]
    fn cost_model_condition_can_reject() {
        let mut index = ToyIndex::new(vec![skewed_segment(0)]);
        // A sub-tree whose current cost is already excellent: claim depth 1
        // and 1 expected search, so flattening cannot help.
        struct CheapIndex(ToyIndex);
        impl CsvIntegrable for CheapIndex {
            fn csv_max_level(&self) -> usize {
                self.0.csv_max_level()
            }
            fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
                self.0.csv_subtrees_at_level(level)
            }
            fn csv_collect_keys(&self, s: &SubtreeRef) -> Vec<Key> {
                self.0.csv_collect_keys(s)
            }
            fn csv_subtree_cost(&self, _s: &SubtreeRef) -> SubtreeCostStats {
                SubtreeCostStats { num_keys: 49, mean_key_depth: 1.0, expected_searches: 1.0 }
            }
            fn csv_rebuild_subtree(&mut self, s: &SubtreeRef, l: &SmoothedLayout) -> bool {
                self.0.csv_rebuild_subtree(s, l)
            }
        }
        let mut cheap = CheapIndex(ToyIndex::new(vec![skewed_segment(0)]));
        let config = CsvConfig::for_alex(0.2, CostModel::new(1.0, 2.5, -0.5));
        let optimizer = CsvOptimizer::new(config);
        let report = optimizer.optimize(&mut cheap);
        assert_eq!(report.subtrees_rebuilt, 0, "already-cheap sub-tree must not be merged");

        // The same configuration on the expensive toy index does rebuild.
        let report = optimizer.optimize(&mut index);
        assert_eq!(report.subtrees_rebuilt, 1);
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        let segments: Vec<Vec<Key>> =
            (0..24).map(|i| skewed_segment(i * 50_000)).collect();
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));

        let mut sequential = ToyIndex::new(segments.clone());
        let sequential_report = optimizer.optimize(&mut sequential);

        let mut parallel = ToyIndex::new(segments);
        let parallel_report = optimizer.optimize_parallel(&mut parallel);

        assert_eq!(sequential_report.outcomes, parallel_report.outcomes);
        assert_eq!(sequential_report.subtrees_considered, parallel_report.subtrees_considered);
        assert_eq!(sequential_report.subtrees_rebuilt, parallel_report.subtrees_rebuilt);
        assert_eq!(sequential_report.keys_rebuilt, parallel_report.keys_rebuilt);
        assert_eq!(sequential_report.virtual_points_added, parallel_report.virtual_points_added);
        assert_eq!(sequential_report.gap_refits, parallel_report.gap_refits);
        assert_eq!(sequential.flattened, parallel.flattened);
    }

    #[test]
    fn stop_level_above_max_level_is_a_noop() {
        let mut index = ToyIndex::new(vec![skewed_segment(0)]);
        let config = CsvConfig { stop_level: 5, ..CsvConfig::for_lipp(0.2) };
        let report = CsvOptimizer::new(config).optimize(&mut index);
        assert_eq!(report.subtrees_considered, 0);
    }

    #[test]
    fn oversized_subtrees_are_skipped() {
        let mut index = ToyIndex::new(vec![skewed_segment(0)]);
        let config = CsvConfig { max_subtree_keys: 10, ..CsvConfig::for_lipp(0.2) };
        let report = CsvOptimizer::new(config).optimize(&mut index);
        assert_eq!(report.subtrees_rebuilt, 0);
        assert_eq!(report.subtrees_considered, 1);
        assert!(report.outcomes.is_empty());
    }
}
