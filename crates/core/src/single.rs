//! Algorithm 1 — greedy CDF smoothing of a single key segment.
//!
//! Given a segment of keys and a smoothing threshold `α`, the algorithm
//! inserts up to `λ = ⌊α·n⌋` virtual points one at a time; every iteration it
//! picks, over all gaps, the candidate whose insertion (with the indexing
//! function refitted) yields the smallest loss, and stops early once no
//! candidate reduces the loss any further.
//!
//! Two driver modes are provided:
//!
//! * [`GreedyMode::Rescan`] — the faithful transcription of Algorithm 1:
//!   every iteration re-evaluates every gap, so each of the λ iterations
//!   costs one closed-form refit per gap.
//! * [`GreedyMode::Lazy`] — a CELF-style lazy-greedy driver. Per-gap best
//!   candidates live in a max-heap keyed by *marginal gain* (the loss
//!   improvement the candidate would deliver), with entries tagged by the
//!   insertion epoch they were computed at. Each iteration pops entries off
//!   the top: stale entries (computed before the latest insertion) are
//!   re-evaluated against the current sufficient statistics and pushed back
//!   with the current epoch; a fresh top entry wins the iteration. Only
//!   entries that surface near the top are ever re-evaluated, so most gaps
//!   are never refit after their initial evaluation.
//!
//!   The lazy selection equals the Rescan selection whenever the stored
//!   (stale) gains behave as *upper bounds* of the current gains — the
//!   diminishing-returns property lazy greedy relies on. The driver checks
//!   that invariant on every re-validation: if a refreshed entry comes back
//!   with a *larger* gain than its stored value (beyond fp tolerance), the
//!   upper-bound argument is void and the driver falls back to a full
//!   rescan of every gap for that iteration, which is exact by
//!   construction. When no fallback triggers (re-validation "converged"),
//!   the chosen candidate provably matches what Rescan would have chosen
//!   *provided the invariant holds for the entries that never surfaced*:
//!   the winner was evaluated at the current epoch, every remaining entry
//!   stores a gain ≤ the winner's (heap order), and under the invariant its
//!   current gain is no larger than its stored one. Violations confined to
//!   buried entries are undetectable without paying the full rescan they
//!   would avoid; on datasets that provoke them (heavily clustered key
//!   spaces) the lazy driver can insert a slightly different — still
//!   strictly loss-reducing — point sequence. The `smoothing_scaling` bench
//!   quantifies both the refits avoided and any divergence.
//!
//! Both drivers expose [`SmoothingCounters`] so benches can quantify how
//! many refits the lazy heap avoids.

use crate::candidates::{best_candidate_in_gap, enumerate_gaps, GapBounds};
use crate::layout::SmoothedLayout;
use crate::segment::SegmentState;
use csv_common::{Key, LinearModel};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which greedy driver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GreedyMode {
    /// Re-evaluate every gap on every iteration (Algorithm 1 as published).
    #[default]
    Rescan,
    /// CELF-style lazy-greedy with stale-entry re-validation and an exact
    /// full-rescan fallback when the lower-bound invariant breaks.
    Lazy,
}

/// Relative tolerance for the lazy driver's invariant check: stored gains
/// must remain upper bounds of current gains, so a re-validated entry whose
/// refreshed gain exceeds its stored gain by more than this (relative)
/// margin counts as a genuine violation rather than floating-point noise
/// and triggers the exact fallback rescan. User-visible drift tolerance is
/// layered on top via [`SmoothingConfig::drift_tolerance`].
const LAZY_DRIFT_TOLERANCE: f64 = 1e-9;

/// Instrumentation counters of one smoothing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmoothingCounters {
    /// Closed-form candidate refits: evaluations of a gap's best candidate
    /// against the current sufficient statistics. This is the unit of work
    /// both greedy drivers spend almost all their time on.
    pub gap_refits: usize,
    /// Refits that re-validated a stale heap entry (lazy driver only).
    pub stale_revalidations: usize,
    /// Iterations the lazy driver resolved with a full rescan because the
    /// lower-bound invariant was violated.
    pub fallback_rescans: usize,
    /// Heap entries pushed across the run (lazy driver only).
    pub heap_pushes: usize,
}

/// Configuration of the single-segment smoothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothingConfig {
    /// Smoothing threshold `α ∈ (0, 1]`: the budget is `⌊α·n⌋` points.
    pub alpha: f64,
    /// Greedy driver mode.
    pub mode: GreedyMode,
    /// Optional hard cap on the number of virtual points regardless of `α`.
    pub max_budget: Option<usize>,
    /// Minimum relative loss improvement per inserted point; insertion stops
    /// when the best candidate improves the loss by less than this fraction.
    pub min_relative_gain: f64,
    /// Bounded diminishing-returns drift the lazy driver tolerates before
    /// triggering its exact fallback rescan (relative to the stored gain).
    ///
    /// The lazy heap's pruning argument requires stored gains to be upper
    /// bounds of current gains. With tolerance `t`, a re-validated entry
    /// whose gain grew by at most `t · (1 + |stored gain|)` is accepted as
    /// "still bounded" (the refreshed entry re-enters the heap with its
    /// current gain) instead of forcing the full-rescan fallback. On heavily
    /// clustered key spaces most violations are tiny, so a small tolerance
    /// removes most fallbacks at the cost of a bounded deviation from the
    /// exact greedy choice — every inserted point still strictly reduces the
    /// loss. The default `0.0` keeps the driver bit-identical to the exact
    /// fallback behaviour (only floating-point noise is tolerated).
    pub drift_tolerance: f64,
}

impl Default for SmoothingConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            mode: GreedyMode::Rescan,
            max_budget: None,
            min_relative_gain: 0.0,
            drift_tolerance: 0.0,
        }
    }
}

impl SmoothingConfig {
    /// Creates a configuration with the given smoothing threshold and
    /// defaults for everything else (the paper's default `α = 0.1`).
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            alpha,
            ..Self::default()
        }
    }

    /// The smoothing budget λ for a segment of `n` keys.
    pub fn budget(&self, n: usize) -> usize {
        let lambda = (self.alpha * n as f64).floor() as usize;
        match self.max_budget {
            Some(cap) => lambda.min(cap),
            None => lambda,
        }
    }
}

/// The outcome of smoothing one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothingResult {
    /// The smoothed layout (real keys at their new ranks, virtual gaps).
    pub layout: SmoothedLayout,
    /// Loss of the original segment under its own OLS fit, `L_f(K)`.
    pub loss_before: f64,
    /// Loss of the refitted model over the real keys only, `L_{f'}(K)`.
    pub loss_after_real: f64,
    /// Loss of the refitted model over real + virtual points, `L_{f'}(K ∪ V)`.
    pub loss_after_all: f64,
    /// Model fitted to the original segment.
    pub model_before: LinearModel,
    /// The virtual points inserted, in insertion order.
    pub virtual_points: Vec<Key>,
    /// Number of greedy iterations executed (≤ budget).
    pub iterations: usize,
    /// The budget λ that was available.
    pub budget: usize,
    /// Work counters of the greedy driver.
    pub counters: SmoothingCounters,
}

impl SmoothingResult {
    /// Relative loss improvement over the real keys, in percent.
    pub fn improvement_percent(&self) -> f64 {
        if self.loss_before <= 0.0 {
            0.0
        } else {
            (self.loss_before - self.loss_after_real) / self.loss_before * 100.0
        }
    }
}

/// Runs Algorithm 1 on a strictly increasing key slice.
pub fn smooth_segment(keys: &[Key], config: &SmoothingConfig) -> SmoothingResult {
    let model_before = LinearModel::fit_cdf(keys);
    let loss_before = model_before.sse_cdf(keys);
    let budget = config.budget(keys.len());
    let mut state = SegmentState::from_keys(keys);
    let mut virtual_points = Vec::new();
    let mut counters = SmoothingCounters::default();

    let iterations = if budget == 0 || keys.len() < 2 {
        0
    } else {
        match config.mode {
            GreedyMode::Rescan => run_rescan(
                &mut state,
                budget,
                config.min_relative_gain,
                &mut virtual_points,
                &mut counters,
            ),
            GreedyMode::Lazy => run_lazy(
                &mut state,
                budget,
                config,
                &mut virtual_points,
                &mut counters,
            ),
        }
    };

    let loss_after_real = state.loss_real_only();
    let loss_after_all = state.loss();
    SmoothingResult {
        layout: state.into_layout(),
        loss_before,
        loss_after_real,
        loss_after_all,
        model_before,
        virtual_points,
        iterations,
        budget,
        counters,
    }
}

/// One full pass over every gap: evaluates each gap's best candidate
/// against the current statistics, in key order. Shared by the Rescan
/// driver and the lazy driver's exact fallback.
fn evaluate_all_gaps(
    state: &SegmentState,
    counters: &mut SmoothingCounters,
) -> Vec<(crate::candidates::Candidate, GapBounds)> {
    let mut evaluated = Vec::new();
    for gap in enumerate_gaps(state) {
        if let Some(c) = best_candidate_in_gap(state, &gap) {
            counters.gap_refits += 1;
            evaluated.push((c, gap));
        }
    }
    evaluated
}

/// Index of the minimal-loss evaluation; ties keep the first gap in key
/// order, matching Algorithm 1's scan order and
/// [`crate::candidates::best_candidate_counted`] (the streamed form the
/// Rescan driver uses). The lazy fallback's "exact by construction" claim
/// rests on these agreeing, and the lazy heap's tie-break ([`HeapEntry`]'s
/// `Ord`) mirrors the same rule for fresh-top wins.
fn first_minimum(evaluated: &[(crate::candidates::Candidate, GapBounds)]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, (c, _)) in evaluated.iter().enumerate() {
        match best {
            Some(b) if evaluated[b].0.loss <= c.loss => {}
            _ => best = Some(i),
        }
    }
    best
}

fn run_rescan(
    state: &mut SegmentState,
    budget: usize,
    min_relative_gain: f64,
    virtual_points: &mut Vec<Key>,
    counters: &mut SmoothingCounters,
) -> usize {
    let mut iterations = 0;
    let mut previous_loss = state.loss();
    while virtual_points.len() < budget {
        let Some(best) = crate::candidates::best_candidate_counted(state, &mut counters.gap_refits)
        else {
            break;
        };
        if !improves(previous_loss, best.loss, min_relative_gain) {
            break;
        }
        state.insert_virtual(best.value);
        virtual_points.push(best.value);
        previous_loss = best.loss;
        iterations += 1;
    }
    iterations
}

/// Heap entry for the lazy driver, ordered by descending marginal gain and
/// tagged with the insertion epoch it was computed at.
///
/// The heap is keyed on the *gain* (current total loss minus the candidate's
/// refitted loss) rather than the absolute loss: gains are comparable across
/// epochs, while absolute losses shrink globally with every insertion and
/// would bury stale-but-good entries under fresher ones.
struct HeapEntry {
    /// `loss(current state) − loss(state ∪ {value})` at evaluation time.
    gain: f64,
    /// The candidate's refitted loss at evaluation time.
    loss: f64,
    /// Loss-minimising candidate value inside `gap` at evaluation time.
    value: Key,
    gap: GapBounds,
    /// Number of virtual points inserted when the entry was evaluated; an
    /// entry is *fresh* while this matches the driver's current epoch and
    /// *stale* afterwards.
    epoch: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.gap.lo == other.gap.lo
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: the largest gain pops first. Equal
        // gains pop the gap earliest in key order — the same tie rule as
        // `first_minimum`, so fresh-top wins stay deterministic and aligned
        // with the Rescan driver.
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.gap.lo.cmp(&self.gap.lo))
    }
}

fn run_lazy(
    state: &mut SegmentState,
    budget: usize,
    config: &SmoothingConfig,
    virtual_points: &mut Vec<Key>,
    counters: &mut SmoothingCounters,
) -> usize {
    let min_relative_gain = config.min_relative_gain;
    // The fp-noise floor plus the user-selected drift tolerance; with the
    // default `drift_tolerance = 0.0` this is exactly the historical
    // constant, so the default pipeline is bit-identical.
    let violation_margin = LAZY_DRIFT_TOLERANCE + config.drift_tolerance.max(0.0);
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    let mut epoch = 0usize;
    let mut previous_loss = state.loss();
    for gap in enumerate_gaps(state) {
        if let Some(c) = best_candidate_in_gap(state, &gap) {
            counters.gap_refits += 1;
            counters.heap_pushes += 1;
            heap.push(HeapEntry {
                gain: previous_loss - c.loss,
                loss: c.loss,
                value: c.value,
                gap,
                epoch,
            });
        }
    }
    let mut iterations = 0;
    while virtual_points.len() < budget {
        // Pop until the top entry is fresh, re-validating stale entries
        // against the current statistics (CELF). Each gap is re-validated at
        // most once per epoch, so this terminates; in the worst case it does
        // the same work as one Rescan iteration.
        let winner: Option<(Key, f64, GapBounds)> = loop {
            let Some(entry) = heap.pop() else { break None };
            if entry.epoch == epoch {
                break Some((entry.value, entry.loss, entry.gap));
            }
            // The gap may have been shrunk by earlier insertions at its
            // ends; re-derive bounds before re-evaluating.
            let Some(gap) = refresh_gap(state, &entry.gap) else {
                continue;
            };
            let Some(current) = best_candidate_in_gap(state, &gap) else {
                continue;
            };
            counters.gap_refits += 1;
            counters.stale_revalidations += 1;
            let current_gain = previous_loss - current.loss;
            if current_gain > entry.gain + violation_margin * (1.0 + entry.gain.abs()) {
                // This gap's marginal gain *grew* since it was stored: the
                // stored gains are no longer upper bounds, so the lazy
                // selection argument is void. Resolve this iteration with a
                // full rescan — exact by construction — and reseed the heap
                // with the freshly evaluated non-winning gaps in one O(n)
                // heapify (`BinaryHeap::from`) instead of n·log n pushes.
                // They carry the *current* epoch (valid for this
                // pre-insertion state), go stale with the insertion below,
                // and are re-validated on demand as usual.
                counters.fallback_rescans += 1;
                let evaluated = evaluate_all_gaps(state, counters);
                let Some(best_idx) = first_minimum(&evaluated) else {
                    break None;
                };
                let reseeded: Vec<HeapEntry> = evaluated
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != best_idx)
                    .map(|(_, (c, gap))| HeapEntry {
                        gain: previous_loss - c.loss,
                        loss: c.loss,
                        value: c.value,
                        gap: *gap,
                        epoch,
                    })
                    .collect();
                counters.heap_pushes += reseeded.len();
                heap = BinaryHeap::from(reseeded);
                let (winner_candidate, winner_gap) = evaluated[best_idx];
                break Some((winner_candidate.value, winner_candidate.loss, winner_gap));
            }
            counters.heap_pushes += 1;
            heap.push(HeapEntry {
                gain: current_gain,
                loss: current.loss,
                value: current.value,
                gap,
                epoch,
            });
        };
        let Some((inserted, winner_loss, gap)) = winner else {
            break;
        };
        if !improves(previous_loss, winner_loss, min_relative_gain) {
            break;
        }
        state.insert_virtual(inserted);
        virtual_points.push(inserted);
        previous_loss = winner_loss;
        iterations += 1;
        epoch += 1;
        // The insertion splits the winning gap into (at most) two new gaps;
        // their candidates are evaluated against the post-insertion state
        // and therefore enter the heap fresh.
        if inserted > gap.lo {
            let left = GapBounds {
                lo: gap.lo,
                hi: inserted - 1,
                rank: gap.rank,
            };
            if let Some(c) = best_candidate_in_gap(state, &left) {
                counters.gap_refits += 1;
                counters.heap_pushes += 1;
                heap.push(HeapEntry {
                    gain: previous_loss - c.loss,
                    loss: c.loss,
                    value: c.value,
                    gap: left,
                    epoch,
                });
            }
        }
        if inserted < gap.hi {
            let right = GapBounds {
                lo: inserted + 1,
                hi: gap.hi,
                rank: gap.rank + 1,
            };
            if let Some(c) = best_candidate_in_gap(state, &right) {
                counters.gap_refits += 1;
                counters.heap_pushes += 1;
                heap.push(HeapEntry {
                    gain: previous_loss - c.loss,
                    loss: c.loss,
                    value: c.value,
                    gap: right,
                    epoch,
                });
            }
        }
    }
    iterations
}

/// Re-derives a gap's bounds and rank against the current state; returns
/// `None` when the gap no longer contains any candidate.
///
/// A stale gap can only have been narrowed by virtual points inserted at
/// its ends, and those occupy *consecutive* ranks in the entry array. One
/// binary search therefore anchors the low end, and both ends are trimmed
/// by linear scans over adjacent entries — the earlier form paid one
/// binary search (`contains`) per trimmed value plus a final `rank_of`,
/// which dominated the lazy driver's re-validation cost on clustered data.
fn refresh_gap(state: &SegmentState, gap: &GapBounds) -> Option<GapBounds> {
    let entries = state.entries();
    let mut lo = gap.lo;
    let mut hi = gap.hi;
    // `rank` tracks rank_of(lo) as lo advances past occupied values.
    let mut rank = state.rank_of(lo);
    while lo <= hi && rank < entries.len() && entries[rank].key() == lo {
        lo += 1;
        rank += 1;
    }
    if lo > hi {
        return None;
    }
    // Fast path — and the expected case, since insertions land either in a
    // gap whose heap entry was just consumed or at a gap's ends: no entry
    // lies in [lo, hi], so the high end needs no trimming and the one
    // binary search above is the whole re-validation cost.
    if rank >= entries.len() || entries[rank].key() > hi {
        return Some(GapBounds { lo, hi, rank });
    }
    // Entries inside [lo, hi]: trim the high end. Occupied values at the
    // high end sit at consecutive ranks just below the first entry past the
    // gap, so after locating rank_of(hi) the walk is over adjacent entries.
    let mut hi_rank = rank + entries[rank..].partition_point(|e| e.key() < hi);
    while hi >= lo && hi_rank < entries.len() && entries[hi_rank].key() == hi {
        if hi == lo {
            return None;
        }
        hi -= 1;
        // rank >= 1 because every gap lies strictly above the segment's
        // first entry, so this cannot underflow.
        hi_rank -= 1;
    }
    Some(GapBounds { lo, hi, rank })
}

fn improves(previous: f64, candidate: f64, min_relative_gain: f64) -> bool {
    if candidate >= previous {
        return false;
    }
    if previous <= 0.0 {
        return false;
    }
    (previous - candidate) / previous >= min_relative_gain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_keys() -> Vec<Key> {
        vec![2, 3, 5, 9, 14, 20, 26, 27, 29, 30]
    }

    #[test]
    fn budget_computation() {
        let cfg = SmoothingConfig::with_alpha(0.5);
        assert_eq!(cfg.budget(10), 5);
        assert_eq!(cfg.budget(3), 1);
        assert_eq!(cfg.budget(1), 0);
        let capped = SmoothingConfig {
            max_budget: Some(2),
            ..cfg
        };
        assert_eq!(capped.budget(10), 2);
    }

    #[test]
    fn smoothing_reduces_loss_and_respects_budget() {
        let keys = example_keys();
        for alpha in [0.1, 0.2, 0.5, 0.8] {
            let cfg = SmoothingConfig::with_alpha(alpha);
            let result = smooth_segment(&keys, &cfg);
            assert!(result.virtual_points.len() <= cfg.budget(keys.len()));
            assert!(
                result.loss_after_all <= result.loss_before + 1e-9,
                "alpha {alpha}: all-loss {} vs before {}",
                result.loss_after_all,
                result.loss_before
            );
            assert_eq!(result.layout.num_real(), keys.len());
            assert_eq!(result.layout.real_keys(), keys);
            assert_eq!(result.layout.num_virtual(), result.virtual_points.len());
            assert_eq!(result.iterations, result.virtual_points.len());
        }
    }

    #[test]
    fn larger_budget_never_hurts() {
        let keys = example_keys();
        let small = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.1));
        let large = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.8));
        assert!(large.loss_after_all <= small.loss_after_all + 1e-9);
        assert!(large.virtual_points.len() >= small.virtual_points.len());
    }

    #[test]
    fn already_linear_keys_gain_nothing() {
        let keys: Vec<Key> = (0..50).map(|i| 100 + i * 10).collect();
        let result = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.5));
        // Perfectly linear CDF: loss is ~0 and no insertion can improve it.
        assert!(result.loss_before < 1e-9);
        assert!(result.virtual_points.is_empty());
        assert_eq!(result.improvement_percent(), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let cfg = SmoothingConfig::with_alpha(0.5);
        let r = smooth_segment(&[], &cfg);
        assert_eq!(r.layout.num_slots(), 0);
        let r = smooth_segment(&[42], &cfg);
        assert_eq!(r.layout.num_slots(), 1);
        assert!(r.virtual_points.is_empty());
        let r = smooth_segment(&[3, 4], &cfg);
        assert!(
            r.virtual_points.is_empty(),
            "adjacent integers leave no gap"
        );
    }

    #[test]
    fn rescan_mode_matches_paper_example_shape() {
        // With α = 0.5 on the 10-key example the paper inserts 5 virtual
        // points and reduces the loss substantially (Fig. 2: 8.33 → 2.29 for
        // K ∪ V). Our reconstructed key set differs slightly, but the
        // qualitative behaviour must hold: ≥ 60% loss reduction.
        let keys = example_keys();
        let result = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.5));
        assert!(
            result.improvement_percent() > 40.0,
            "{}",
            result.improvement_percent()
        );
        assert!(!result.virtual_points.is_empty());
    }

    #[test]
    fn lazy_mode_close_to_rescan() {
        let keys = example_keys();
        let rescan = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.5));
        let lazy = smooth_segment(
            &keys,
            &SmoothingConfig {
                mode: GreedyMode::Lazy,
                ..SmoothingConfig::with_alpha(0.5)
            },
        );
        assert!(lazy.loss_after_all <= rescan.loss_before);
        // The lazy approximation must stay within 25% of the faithful driver.
        assert!(
            lazy.loss_after_all <= rescan.loss_after_all * 1.25 + 1e-9,
            "lazy {} vs rescan {}",
            lazy.loss_after_all,
            rescan.loss_after_all
        );
    }

    #[test]
    fn lazy_matches_rescan_loss_across_alphas() {
        let keys = example_keys();
        for alpha in [0.1, 0.2, 0.5, 0.8] {
            let rescan = smooth_segment(&keys, &SmoothingConfig::with_alpha(alpha));
            let lazy = smooth_segment(
                &keys,
                &SmoothingConfig {
                    mode: GreedyMode::Lazy,
                    ..SmoothingConfig::with_alpha(alpha)
                },
            );
            assert!(
                (lazy.loss_after_all - rescan.loss_after_all).abs()
                    <= 1e-9 * (1.0 + rescan.loss_after_all),
                "alpha {alpha}: lazy {} vs rescan {}",
                lazy.loss_after_all,
                rescan.loss_after_all
            );
            assert_eq!(
                lazy.virtual_points.len(),
                rescan.virtual_points.len(),
                "alpha {alpha}"
            );
        }
    }

    #[test]
    fn lazy_refits_strictly_fewer_times_on_large_segments() {
        // A synthetic hard segment: clustered runs with irregular jumps, the
        // regime where smoothing inserts many points. The lazy driver must
        // reach the same loss with strictly fewer closed-form refits.
        let mut keys: Vec<Key> = Vec::new();
        let mut k = 0u64;
        for i in 0..5_000u64 {
            k += 1 + (i * i) % 97 + if i % 50 == 0 { 1_000 } else { 0 };
            keys.push(k);
        }
        let base = SmoothingConfig {
            alpha: 1.0,
            max_budget: Some(64),
            ..SmoothingConfig::default()
        };
        let rescan = smooth_segment(&keys, &base);
        let lazy = smooth_segment(
            &keys,
            &SmoothingConfig {
                mode: GreedyMode::Lazy,
                ..base
            },
        );
        assert!(
            rescan.iterations > 0,
            "the segment must actually get smoothed"
        );
        assert!(
            (lazy.loss_after_all - rescan.loss_after_all).abs()
                <= 1e-6 * (1.0 + rescan.loss_after_all),
            "lazy {} vs rescan {}",
            lazy.loss_after_all,
            rescan.loss_after_all
        );
        assert!(
            lazy.counters.gap_refits < rescan.counters.gap_refits,
            "lazy refits {} must beat rescan refits {}",
            lazy.counters.gap_refits,
            rescan.counters.gap_refits
        );
        // The whole point of the heap: most gaps are never touched again.
        assert!(lazy.counters.stale_revalidations < rescan.counters.gap_refits / 2);
    }

    #[test]
    fn streaming_selection_matches_first_minimum() {
        let keys = example_keys();
        let mut state = SegmentState::from_keys(&keys);
        for _ in 0..4 {
            let mut c1 = SmoothingCounters::default();
            let mut refits = 0usize;
            let evaluated = evaluate_all_gaps(&state, &mut c1);
            let via_index = first_minimum(&evaluated).map(|i| evaluated[i].0);
            let via_stream = crate::candidates::best_candidate_counted(&state, &mut refits);
            assert_eq!(via_stream, via_index);
            assert_eq!(c1.gap_refits, refits);
            let Some(best) = via_stream else { break };
            state.insert_virtual(best.value);
        }
    }

    #[test]
    fn counters_reflect_rescan_work() {
        let keys = example_keys();
        let result = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.5));
        // Rescan evaluates every gap once per iteration plus the final
        // iteration that finds no improvement.
        assert!(result.counters.gap_refits >= result.iterations);
        assert_eq!(result.counters.stale_revalidations, 0);
        assert_eq!(result.counters.fallback_rescans, 0);
        assert_eq!(result.counters.heap_pushes, 0);
    }

    /// Clustered key space (dense runs, orders-of-magnitude jumps) — the
    /// regime where the lazy driver's diminishing-returns invariant breaks
    /// and the exact fallback fires.
    fn clustered_keys(n: u64) -> Vec<Key> {
        let mut keys = Vec::new();
        let mut base = 7u64;
        let mut i = 0u64;
        while (keys.len() as u64) < n {
            let run = 8 + (i * 13) % 40;
            for j in 0..run {
                keys.push(base + j);
            }
            base += run + 1_000 * (1 + i % 17) * (1 + i % 3) * (i % 5 + 1);
            i += 1;
        }
        keys.truncate(n as usize);
        keys
    }

    #[test]
    fn drift_tolerance_defaults_to_zero_and_is_bit_identical() {
        let keys = clustered_keys(3_000);
        let base = SmoothingConfig {
            mode: GreedyMode::Lazy,
            alpha: 1.0,
            max_budget: Some(48),
            ..SmoothingConfig::default()
        };
        assert_eq!(base.drift_tolerance, 0.0);
        let explicit = SmoothingConfig {
            drift_tolerance: 0.0,
            ..base
        };
        let a = smooth_segment(&keys, &base);
        let b = smooth_segment(&keys, &explicit);
        assert_eq!(a, b, "tolerance 0 must be bit-identical to the default");
    }

    #[test]
    fn drift_tolerance_trades_fallbacks_for_bounded_loss_drift() {
        let keys = clustered_keys(3_000);
        let base = SmoothingConfig {
            mode: GreedyMode::Lazy,
            alpha: 1.0,
            max_budget: Some(48),
            ..SmoothingConfig::default()
        };
        let exact = smooth_segment(&keys, &base);
        assert!(
            exact.counters.fallback_rescans > 0,
            "the clustered segment must provoke fallbacks for this test to mean anything"
        );
        let tolerant = smooth_segment(
            &keys,
            &SmoothingConfig {
                drift_tolerance: 0.2,
                ..base
            },
        );
        assert!(
            tolerant.counters.fallback_rescans < exact.counters.fallback_rescans,
            "tolerance 0.2 kept all {} fallbacks",
            exact.counters.fallback_rescans
        );
        // The tolerant run is still a strictly loss-reducing greedy sequence.
        assert!(tolerant.loss_after_all <= tolerant.loss_before + 1e-9);
        // And its result stays within the tolerance-sized neighbourhood of
        // the exact lazy result.
        assert!(
            tolerant.loss_after_all <= exact.loss_after_all * 1.10 + 1e-9,
            "tolerant loss {} drifted too far from exact {}",
            tolerant.loss_after_all,
            exact.loss_after_all
        );
    }

    #[test]
    fn min_relative_gain_stops_early() {
        let keys = example_keys();
        let strict = SmoothingConfig {
            min_relative_gain: 0.5,
            ..SmoothingConfig::with_alpha(0.8)
        };
        let relaxed = SmoothingConfig::with_alpha(0.8);
        let a = smooth_segment(&keys, &strict);
        let b = smooth_segment(&keys, &relaxed);
        assert!(a.virtual_points.len() <= b.virtual_points.len());
    }

    #[test]
    fn virtual_points_fall_inside_key_range() {
        let keys = example_keys();
        let result = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.8));
        let min = *keys.first().unwrap();
        let max = *keys.last().unwrap();
        for &v in &result.virtual_points {
            assert!(
                v > min && v < max,
                "virtual point {v} escapes ({min}, {max})"
            );
            assert!(
                !keys.contains(&v),
                "virtual point {v} duplicates a real key"
            );
        }
    }
}
