//! Algorithm 1 — greedy CDF smoothing of a single key segment.
//!
//! Given a segment of keys and a smoothing threshold `α`, the algorithm
//! inserts up to `λ = ⌊α·n⌋` virtual points one at a time; every iteration it
//! picks, over all gaps, the candidate whose insertion (with the indexing
//! function refitted) yields the smallest loss, and stops early once no
//! candidate reduces the loss any further.
//!
//! Two driver modes are provided:
//!
//! * [`GreedyMode::Rescan`] — the faithful transcription of Algorithm 1:
//!   every iteration re-evaluates every gap. This is the default and the
//!   mode used for all paper experiments.
//! * [`GreedyMode::Lazy`] — a lazy-greedy variant that keeps per-gap best
//!   candidates in a max-improvement heap and only re-evaluates the top
//!   entry. Because refitting changes every gap's loss slightly, this is an
//!   approximation; the `greedy_mode` ablation bench quantifies the
//!   difference.

use crate::candidates::{best_candidate_in_gap, enumerate_gaps, GapBounds};
use crate::layout::SmoothedLayout;
use crate::segment::SegmentState;
use csv_common::{Key, LinearModel};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which greedy driver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GreedyMode {
    /// Re-evaluate every gap on every iteration (Algorithm 1 as published).
    #[default]
    Rescan,
    /// Lazy-greedy with stale-entry re-validation (approximate, faster).
    Lazy,
}

/// Configuration of the single-segment smoothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothingConfig {
    /// Smoothing threshold `α ∈ (0, 1]`: the budget is `⌊α·n⌋` points.
    pub alpha: f64,
    /// Greedy driver mode.
    pub mode: GreedyMode,
    /// Optional hard cap on the number of virtual points regardless of `α`.
    pub max_budget: Option<usize>,
    /// Minimum relative loss improvement per inserted point; insertion stops
    /// when the best candidate improves the loss by less than this fraction.
    pub min_relative_gain: f64,
}

impl Default for SmoothingConfig {
    fn default() -> Self {
        Self { alpha: 0.1, mode: GreedyMode::Rescan, max_budget: None, min_relative_gain: 0.0 }
    }
}

impl SmoothingConfig {
    /// Creates a configuration with the given smoothing threshold and
    /// defaults for everything else (the paper's default `α = 0.1`).
    pub fn with_alpha(alpha: f64) -> Self {
        Self { alpha, ..Self::default() }
    }

    /// The smoothing budget λ for a segment of `n` keys.
    pub fn budget(&self, n: usize) -> usize {
        let lambda = (self.alpha * n as f64).floor() as usize;
        match self.max_budget {
            Some(cap) => lambda.min(cap),
            None => lambda,
        }
    }
}

/// The outcome of smoothing one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothingResult {
    /// The smoothed layout (real keys at their new ranks, virtual gaps).
    pub layout: SmoothedLayout,
    /// Loss of the original segment under its own OLS fit, `L_f(K)`.
    pub loss_before: f64,
    /// Loss of the refitted model over the real keys only, `L_{f'}(K)`.
    pub loss_after_real: f64,
    /// Loss of the refitted model over real + virtual points, `L_{f'}(K ∪ V)`.
    pub loss_after_all: f64,
    /// Model fitted to the original segment.
    pub model_before: LinearModel,
    /// The virtual points inserted, in insertion order.
    pub virtual_points: Vec<Key>,
    /// Number of greedy iterations executed (≤ budget).
    pub iterations: usize,
    /// The budget λ that was available.
    pub budget: usize,
}

impl SmoothingResult {
    /// Relative loss improvement over the real keys, in percent.
    pub fn improvement_percent(&self) -> f64 {
        if self.loss_before <= 0.0 {
            0.0
        } else {
            (self.loss_before - self.loss_after_real) / self.loss_before * 100.0
        }
    }
}

/// Runs Algorithm 1 on a strictly increasing key slice.
pub fn smooth_segment(keys: &[Key], config: &SmoothingConfig) -> SmoothingResult {
    let model_before = LinearModel::fit_cdf(keys);
    let loss_before = model_before.sse_cdf(keys);
    let budget = config.budget(keys.len());
    let mut state = SegmentState::from_keys(keys);
    let mut virtual_points = Vec::new();

    let iterations = if budget == 0 || keys.len() < 2 {
        0
    } else {
        match config.mode {
            GreedyMode::Rescan => run_rescan(&mut state, budget, config.min_relative_gain, &mut virtual_points),
            GreedyMode::Lazy => run_lazy(&mut state, budget, config.min_relative_gain, &mut virtual_points),
        }
    };

    let loss_after_real = state.loss_real_only();
    let loss_after_all = state.loss();
    SmoothingResult {
        layout: state.into_layout(),
        loss_before,
        loss_after_real,
        loss_after_all,
        model_before,
        virtual_points,
        iterations,
        budget,
    }
}

fn run_rescan(
    state: &mut SegmentState,
    budget: usize,
    min_relative_gain: f64,
    virtual_points: &mut Vec<Key>,
) -> usize {
    let mut iterations = 0;
    let mut previous_loss = state.loss();
    while virtual_points.len() < budget {
        let Some(best) = crate::candidates::best_candidate(state) else { break };
        if !improves(previous_loss, best.loss, min_relative_gain) {
            break;
        }
        state.insert_virtual(best.value);
        virtual_points.push(best.value);
        previous_loss = best.loss;
        iterations += 1;
    }
    iterations
}

/// Heap entry for the lazy driver, ordered by ascending candidate loss.
struct HeapEntry {
    loss: f64,
    gap: GapBounds,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.loss == other.loss
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest loss pops first.
        other.loss.partial_cmp(&self.loss).unwrap_or(Ordering::Equal)
    }
}

fn run_lazy(
    state: &mut SegmentState,
    budget: usize,
    min_relative_gain: f64,
    virtual_points: &mut Vec<Key>,
) -> usize {
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for gap in enumerate_gaps(state) {
        if let Some(c) = best_candidate_in_gap(state, &gap) {
            heap.push(HeapEntry { loss: c.loss, gap });
        }
    }
    let mut iterations = 0;
    let mut previous_loss = state.loss();
    while virtual_points.len() < budget {
        let Some(entry) = heap.pop() else { break };
        // The stored loss may be stale; recompute for the gap as it is now.
        // The gap may also have been split by an earlier insertion, in which
        // case re-deriving it from the current state keeps bounds valid.
        let gap = refresh_gap(state, &entry.gap);
        let Some(gap) = gap else { continue };
        let Some(current) = best_candidate_in_gap(state, &gap) else { continue };
        let is_still_best = match heap.peek() {
            Some(next) => current.loss <= next.loss,
            None => true,
        };
        if !is_still_best {
            heap.push(HeapEntry { loss: current.loss, gap });
            continue;
        }
        if !improves(previous_loss, current.loss, min_relative_gain) {
            break;
        }
        let inserted = current.value;
        state.insert_virtual(inserted);
        virtual_points.push(inserted);
        previous_loss = current.loss;
        iterations += 1;
        // The insertion splits the gap into (at most) two new gaps.
        if inserted > gap.lo {
            let left = GapBounds { lo: gap.lo, hi: inserted - 1, rank: gap.rank };
            if let Some(c) = best_candidate_in_gap(state, &left) {
                heap.push(HeapEntry { loss: c.loss, gap: left });
            }
        }
        if inserted < gap.hi {
            let right = GapBounds { lo: inserted + 1, hi: gap.hi, rank: gap.rank + 1 };
            if let Some(c) = best_candidate_in_gap(state, &right) {
                heap.push(HeapEntry { loss: c.loss, gap: right });
            }
        }
    }
    iterations
}

/// Re-derives a gap's bounds and rank against the current state; returns
/// `None` when the gap no longer contains any candidate.
fn refresh_gap(state: &SegmentState, gap: &GapBounds) -> Option<GapBounds> {
    let mut lo = gap.lo;
    let mut hi = gap.hi;
    while lo <= hi && state.contains(lo) {
        lo += 1;
    }
    while hi >= lo && state.contains(hi) {
        hi -= 1;
    }
    if lo > hi {
        return None;
    }
    Some(GapBounds { lo, hi, rank: state.rank_of(lo) })
}

fn improves(previous: f64, candidate: f64, min_relative_gain: f64) -> bool {
    if candidate >= previous {
        return false;
    }
    if previous <= 0.0 {
        return false;
    }
    (previous - candidate) / previous >= min_relative_gain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_keys() -> Vec<Key> {
        vec![2, 3, 5, 9, 14, 20, 26, 27, 29, 30]
    }

    #[test]
    fn budget_computation() {
        let cfg = SmoothingConfig::with_alpha(0.5);
        assert_eq!(cfg.budget(10), 5);
        assert_eq!(cfg.budget(3), 1);
        assert_eq!(cfg.budget(1), 0);
        let capped = SmoothingConfig { max_budget: Some(2), ..cfg };
        assert_eq!(capped.budget(10), 2);
    }

    #[test]
    fn smoothing_reduces_loss_and_respects_budget() {
        let keys = example_keys();
        for alpha in [0.1, 0.2, 0.5, 0.8] {
            let cfg = SmoothingConfig::with_alpha(alpha);
            let result = smooth_segment(&keys, &cfg);
            assert!(result.virtual_points.len() <= cfg.budget(keys.len()));
            assert!(
                result.loss_after_all <= result.loss_before + 1e-9,
                "alpha {alpha}: all-loss {} vs before {}",
                result.loss_after_all,
                result.loss_before
            );
            assert_eq!(result.layout.num_real(), keys.len());
            assert_eq!(result.layout.real_keys(), keys);
            assert_eq!(result.layout.num_virtual(), result.virtual_points.len());
            assert_eq!(result.iterations, result.virtual_points.len());
        }
    }

    #[test]
    fn larger_budget_never_hurts() {
        let keys = example_keys();
        let small = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.1));
        let large = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.8));
        assert!(large.loss_after_all <= small.loss_after_all + 1e-9);
        assert!(large.virtual_points.len() >= small.virtual_points.len());
    }

    #[test]
    fn already_linear_keys_gain_nothing() {
        let keys: Vec<Key> = (0..50).map(|i| 100 + i * 10).collect();
        let result = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.5));
        // Perfectly linear CDF: loss is ~0 and no insertion can improve it.
        assert!(result.loss_before < 1e-9);
        assert!(result.virtual_points.is_empty());
        assert_eq!(result.improvement_percent(), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let cfg = SmoothingConfig::with_alpha(0.5);
        let r = smooth_segment(&[], &cfg);
        assert_eq!(r.layout.num_slots(), 0);
        let r = smooth_segment(&[42], &cfg);
        assert_eq!(r.layout.num_slots(), 1);
        assert!(r.virtual_points.is_empty());
        let r = smooth_segment(&[3, 4], &cfg);
        assert!(r.virtual_points.is_empty(), "adjacent integers leave no gap");
    }

    #[test]
    fn rescan_mode_matches_paper_example_shape() {
        // With α = 0.5 on the 10-key example the paper inserts 5 virtual
        // points and reduces the loss substantially (Fig. 2: 8.33 → 2.29 for
        // K ∪ V). Our reconstructed key set differs slightly, but the
        // qualitative behaviour must hold: ≥ 60% loss reduction.
        let keys = example_keys();
        let result = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.5));
        assert!(result.improvement_percent() > 40.0, "{}", result.improvement_percent());
        assert!(!result.virtual_points.is_empty());
    }

    #[test]
    fn lazy_mode_close_to_rescan() {
        let keys = example_keys();
        let rescan = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.5));
        let lazy = smooth_segment(
            &keys,
            &SmoothingConfig { mode: GreedyMode::Lazy, ..SmoothingConfig::with_alpha(0.5) },
        );
        assert!(lazy.loss_after_all <= rescan.loss_before);
        // The lazy approximation must stay within 25% of the faithful driver.
        assert!(
            lazy.loss_after_all <= rescan.loss_after_all * 1.25 + 1e-9,
            "lazy {} vs rescan {}",
            lazy.loss_after_all,
            rescan.loss_after_all
        );
    }

    #[test]
    fn min_relative_gain_stops_early() {
        let keys = example_keys();
        let strict = SmoothingConfig {
            min_relative_gain: 0.5,
            ..SmoothingConfig::with_alpha(0.8)
        };
        let relaxed = SmoothingConfig::with_alpha(0.8);
        let a = smooth_segment(&keys, &strict);
        let b = smooth_segment(&keys, &relaxed);
        assert!(a.virtual_points.len() <= b.virtual_points.len());
    }

    #[test]
    fn virtual_points_fall_inside_key_range() {
        let keys = example_keys();
        let result = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.8));
        let min = *keys.first().unwrap();
        let max = *keys.last().unwrap();
        for &v in &result.virtual_points {
            assert!(v > min && v < max, "virtual point {v} escapes ({min}, {max})");
            assert!(!keys.contains(&v), "virtual point {v} duplicates a real key");
        }
    }
}
