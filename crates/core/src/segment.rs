//! Incremental loss bookkeeping for one key segment (§4.1 of the paper).
//!
//! The greedy smoothing algorithm repeatedly asks: *if I inserted a virtual
//! point with value `v`, what would the refitted model's loss be?* Answering
//! that naïvely costs a pass over the segment per candidate. Following the
//! paper, [`SegmentState`] separates the terms that only depend on the
//! current key set (sufficient statistics plus prefix key sums) from the
//! terms contributed by the candidate, so each candidate evaluation is O(1)
//! and the derivative of the loss with respect to the candidate value
//! (Eq. 17–21) is available in closed form.
//!
//! Rank bookkeeping: ranks are the positions `0..m-1` of the current entries
//! (original keys plus previously inserted virtual points). Inserting a
//! candidate at rank `r` shifts every rank `>= r` up by one; the effect of
//! that shift on the sufficient statistics only needs the suffix key sum at
//! `r` (Eq. 14), which the prefix-sum array provides in O(1).

use crate::layout::{LayoutEntry, SmoothedLayout};
use csv_common::linear::FitStats;
use csv_common::{Key, LinearModel};

/// Closed-form coefficients describing how the refitted loss varies with the
/// value `v` of a candidate virtual point inserted at a fixed rank.
///
/// With `n1 = m + 1` points after insertion, the centred moments become
/// `A(v) = a2·v² + a1·v + a0` (the x-variance term), `B(v) = b1·v + b0`
/// (the xy-covariance term) and a constant `c_yy` (the y-variance term), so
/// the refitted sum of squared errors is `loss(v) = c_yy − B(v)²/A(v)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapCoefficients {
    /// Insertion rank shared by every candidate in the gap.
    pub rank: usize,
    /// Key-space origin: the coefficients operate on `v − origin` so that
    /// datasets with huge absolute key values (e.g. Snowflake IDs) do not
    /// lose the fit signal to floating-point cancellation.
    pub origin: Key,
    /// Constant term of `A(v)`.
    pub a0: f64,
    /// Linear term of `A(v)`.
    pub a1: f64,
    /// Quadratic term of `A(v)`.
    pub a2: f64,
    /// Constant term of `B(v)`.
    pub b0: f64,
    /// Linear term of `B(v)`.
    pub b1: f64,
    /// Centred sum of squares of the ranks after insertion (`S_yy`).
    pub c_yy: f64,
}

impl GapCoefficients {
    #[inline]
    fn shift(&self, v: f64) -> f64 {
        v - self.origin as f64
    }

    /// `A(v)`, the centred x-variance after inserting (absolute) value `v`.
    #[inline]
    pub fn a(&self, v: f64) -> f64 {
        let v = self.shift(v);
        self.a2 * v * v + self.a1 * v + self.a0
    }

    /// `B(v)`, the centred xy-covariance after inserting (absolute) value `v`.
    #[inline]
    pub fn b(&self, v: f64) -> f64 {
        self.b1 * self.shift(v) + self.b0
    }

    /// Refitted loss `L(K ∪ {v})` (Eq. 5 with the refit of Eq. 15/16).
    #[inline]
    pub fn loss(&self, v: f64) -> f64 {
        let a = self.a(v);
        if a <= f64::EPSILON {
            return self.c_yy.max(0.0);
        }
        let b = self.b(v);
        (self.c_yy - b * b / a).max(0.0)
    }

    /// First derivative of the loss with respect to the candidate value
    /// (the quantity plotted in Fig. 4 / Eq. 17).
    #[inline]
    pub fn loss_derivative(&self, v: f64) -> f64 {
        let a = self.a(v);
        if a <= f64::EPSILON {
            return 0.0;
        }
        let b = self.b(v);
        let vs = self.shift(v);
        let a_prime = 2.0 * self.a2 * vs + self.a1;
        let b_prime = self.b1;
        -(2.0 * b_prime * b * a - b * b * a_prime) / (a * a)
    }

    /// The (absolute) candidate value minimising the loss on the real line,
    /// if the closed-form stationary point exists.
    ///
    /// Setting the derivative to zero factors as
    /// `B(v)·[(2·b1·a0 − a1·b0) + (2·b1·a1 − 2·a2·b0 − a1·b1)·v] = 0`;
    /// the root of `B` is a loss *maximum* (the covariance vanishes there),
    /// so the interesting root comes from the linear factor.
    pub fn interior_minimum(&self) -> Option<f64> {
        let denom = 2.0 * self.b1 * self.a1 - 2.0 * self.a2 * self.b0 - self.a1 * self.b1;
        if denom.abs() < 1e-30 || !denom.is_finite() {
            return None;
        }
        let num = 2.0 * self.b1 * self.a0 - self.a1 * self.b0;
        let v = -num / denom;
        if v.is_finite() {
            Some(v + self.origin as f64)
        } else {
            None
        }
    }
}

/// The evolving state of a key segment during smoothing.
#[derive(Debug, Clone)]
pub struct SegmentState {
    entries: Vec<LayoutEntry>,
    /// `prefix_key_sums[i]` = sum of the first `i` (origin-shifted) keys.
    prefix_key_sums: Vec<f64>,
    /// Sufficient statistics over (origin-shifted key, rank).
    stats: FitStats,
    /// Key-space origin (the smallest key); all floating-point arithmetic is
    /// carried out on `key − origin` for numerical stability.
    origin: Key,
}

impl SegmentState {
    /// Creates the state for a strictly increasing key slice.
    pub fn from_keys(keys: &[Key]) -> Self {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly increasing"
        );
        let entries: Vec<LayoutEntry> = keys.iter().copied().map(LayoutEntry::Real).collect();
        let origin = keys.first().copied().unwrap_or(0);
        let mut state = Self {
            entries,
            prefix_key_sums: Vec::new(),
            stats: FitStats::new(),
            origin,
        };
        state.refresh();
        state
    }

    #[inline]
    fn shift(&self, key: Key) -> f64 {
        (key - self.origin) as f64
    }

    fn refresh(&mut self) {
        let m = self.entries.len();
        self.prefix_key_sums.clear();
        self.prefix_key_sums.reserve(m + 1);
        self.prefix_key_sums.push(0.0);
        self.stats = FitStats::new();
        let mut acc = 0.0;
        for (rank, entry) in self.entries.iter().enumerate() {
            let k = self.shift(entry.key());
            acc += k;
            self.prefix_key_sums.push(acc);
            self.stats.push(k, rank as f64);
        }
    }

    /// Number of entries (real + virtual) currently in the segment.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the segment holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current entries in rank order.
    pub fn entries(&self) -> &[LayoutEntry] {
        &self.entries
    }

    /// Number of virtual points inserted so far.
    pub fn num_virtual(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_real()).count()
    }

    /// The OLS model refitted over the current entries (in absolute key
    /// coordinates).
    pub fn model(&self) -> LinearModel {
        self.stats.fit().uncenter(self.origin)
    }

    /// Loss (SSE of the refitted model) over the current entries, i.e.
    /// `L(K ∪ V)` for the virtual points inserted so far.
    pub fn loss(&self) -> f64 {
        self.stats.sse_of_fit()
    }

    /// Loss of the refitted model restricted to the real keys only
    /// (`L_{f'}(K)` in the paper's Fig. 2).
    pub fn loss_real_only(&self) -> f64 {
        let model = self.model();
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_real())
            .map(|(rank, e)| {
                let err = model.predict_f64(e.key()) - rank as f64;
                err * err
            })
            .sum()
    }

    /// Smallest key currently stored.
    pub fn min_key(&self) -> Option<Key> {
        self.entries.first().map(|e| e.key())
    }

    /// Largest key currently stored.
    pub fn max_key(&self) -> Option<Key> {
        self.entries.last().map(|e| e.key())
    }

    /// Insertion rank of a value: the number of entries with a key `< v`.
    pub fn rank_of(&self, v: Key) -> usize {
        self.entries.partition_point(|e| e.key() < v)
    }

    /// `true` when `v` is already present (as a real key or virtual point).
    pub fn contains(&self, v: Key) -> bool {
        let r = self.rank_of(v);
        r < self.entries.len() && self.entries[r].key() == v
    }

    /// Closed-form loss coefficients for a candidate inserted at `rank`.
    pub fn gap_coefficients(&self, rank: usize) -> GapCoefficients {
        let m = self.stats.n;
        let n1 = m + 1.0;
        let t = m - rank as f64; // number of shifted entries
                                 // Sum of the shifted ranks  r .. m-1.
        let shifted_rank_sum = if t > 0.0 {
            (rank as f64 + m - 1.0) * t / 2.0
        } else {
            0.0
        };
        let suffix_key_sum = self.prefix_key_sums[self.entries.len()] - self.prefix_key_sums[rank];

        let sum_y = self.stats.sum_y + t + rank as f64;
        let sum_yy = self.stats.sum_yy + 2.0 * shifted_rank_sum + t + (rank as f64) * (rank as f64);
        let sum_xy_base = self.stats.sum_xy + suffix_key_sum;
        let sum_x_base = self.stats.sum_x;
        let sum_xx_base = self.stats.sum_xx;
        let origin = self.origin;

        // A(v) = (sum_xx + v²) − (sum_x + v)²/n1
        let a0 = sum_xx_base - sum_x_base * sum_x_base / n1;
        let a1 = -2.0 * sum_x_base / n1;
        let a2 = 1.0 - 1.0 / n1;
        // B(v) = (sum_xy_base + r·v) − (sum_x + v)·sum_y/n1
        let b0 = sum_xy_base - sum_x_base * sum_y / n1;
        let b1 = rank as f64 - sum_y / n1;
        // C = sum_yy − sum_y²/n1
        let c_yy = sum_yy - sum_y * sum_y / n1;

        GapCoefficients {
            rank,
            origin,
            a0,
            a1,
            a2,
            b0,
            b1,
            c_yy,
        }
    }

    /// Loss after inserting candidate value `v` (not currently present) and
    /// refitting the model — O(1) thanks to the cached statistics.
    pub fn candidate_loss(&self, v: Key) -> f64 {
        let rank = self.rank_of(v);
        self.gap_coefficients(rank).loss(v as f64)
    }

    /// Derivative of the loss with respect to the candidate value at `v`.
    pub fn candidate_loss_derivative(&self, v: Key) -> f64 {
        let rank = self.rank_of(v);
        self.gap_coefficients(rank).loss_derivative(v as f64)
    }

    /// Inserts a virtual point with value `v`. Panics if `v` already exists.
    pub fn insert_virtual(&mut self, v: Key) {
        let rank = self.rank_of(v);
        assert!(
            rank >= self.entries.len() || self.entries[rank].key() != v,
            "virtual point {v} already present"
        );
        self.entries.insert(rank, LayoutEntry::Virtual(v));
        // O(m) refresh; the greedy driver already scans all gaps each
        // iteration, so this does not change the asymptotic cost.
        self.refresh();
    }

    /// Finalises the segment into a [`SmoothedLayout`].
    pub fn into_layout(self) -> SmoothedLayout {
        let model = self.stats.fit().uncenter(self.origin);
        SmoothedLayout::new(self.entries, model)
    }

    /// Naive loss recomputation (used by tests to validate the O(1) path).
    pub fn naive_candidate_loss(&self, v: Key) -> f64 {
        let mut keys: Vec<Key> = self.entries.iter().map(|e| e.key()).collect();
        let rank = self.rank_of(v);
        keys.insert(rank, v);
        let model = LinearModel::fit_cdf(&keys);
        model.sse_cdf(&keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    fn example_keys() -> Vec<Key> {
        vec![2, 3, 5, 9, 14, 20, 26, 27, 29, 30]
    }

    #[test]
    fn initial_loss_matches_direct_fit() {
        let keys = example_keys();
        let state = SegmentState::from_keys(&keys);
        let model = LinearModel::fit_cdf(&keys);
        assert!(close(state.loss(), model.sse_cdf(&keys)));
        assert!(close(state.loss(), state.loss_real_only()));
        assert_eq!(state.len(), keys.len());
        assert_eq!(state.min_key(), Some(2));
        assert_eq!(state.max_key(), Some(30));
        assert_eq!(state.num_virtual(), 0);
        assert!(!state.is_empty());
    }

    #[test]
    fn candidate_loss_matches_naive_recomputation() {
        let keys = example_keys();
        let state = SegmentState::from_keys(&keys);
        for v in 1..=31u64 {
            if state.contains(v) {
                continue;
            }
            let fast = state.candidate_loss(v);
            let naive = state.naive_candidate_loss(v);
            assert!(close(fast, naive), "v={v}: fast {fast} naive {naive}");
        }
    }

    #[test]
    fn candidate_loss_matches_naive_after_insertions() {
        let keys = example_keys();
        let mut state = SegmentState::from_keys(&keys);
        state.insert_virtual(23);
        state.insert_virtual(11);
        assert_eq!(state.num_virtual(), 2);
        for v in [4u64, 7, 12, 17, 22, 25, 28] {
            if state.contains(v) {
                continue;
            }
            let fast = state.candidate_loss(v);
            let naive = state.naive_candidate_loss(v);
            assert!(close(fast, naive), "v={v}: fast {fast} naive {naive}");
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let keys = example_keys();
        let state = SegmentState::from_keys(&keys);
        for v in [11u64, 16, 22, 24] {
            let rank = state.rank_of(v);
            let coeffs = state.gap_coefficients(rank);
            let h = 1e-4;
            let numeric = (coeffs.loss(v as f64 + h) - coeffs.loss(v as f64 - h)) / (2.0 * h);
            let analytic = state.candidate_loss_derivative(v);
            assert!(
                (numeric - analytic).abs() < 1e-3 * (1.0 + analytic.abs()),
                "v={v}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn interior_minimum_is_a_stationary_point() {
        let keys = example_keys();
        let state = SegmentState::from_keys(&keys);
        // Gap between 20 and 26 (candidates 21..=25).
        let rank = state.rank_of(21);
        let coeffs = state.gap_coefficients(rank);
        if let Some(v_star) = coeffs.interior_minimum() {
            let d = coeffs.loss_derivative(v_star);
            assert!(d.abs() < 1e-6, "derivative at interior minimum = {d}");
        } else {
            panic!("expected an interior stationary point");
        }
    }

    #[test]
    fn inserting_best_candidate_reduces_loss() {
        let keys = example_keys();
        let mut state = SegmentState::from_keys(&keys);
        let before = state.loss();
        // Find the best integer candidate by brute force.
        let (mut best_v, mut best_loss) = (0u64, f64::INFINITY);
        for v in 3..30u64 {
            if state.contains(v) {
                continue;
            }
            let l = state.candidate_loss(v);
            if l < best_loss {
                best_loss = l;
                best_v = v;
            }
        }
        state.insert_virtual(best_v);
        assert!(close(state.loss(), best_loss));
        assert!(state.loss() < before);
    }

    #[test]
    fn huge_key_offsets_stay_numerically_stable() {
        // Snowflake-ID-like segment: large offset, small spread, one outlier.
        let offset: Key = 665_600_000_000_000;
        let mut keys: Vec<Key> = (0..64u64).map(|i| offset + i * 1000).collect();
        keys.push(offset + 500_000);
        let state = SegmentState::from_keys(&keys);
        for v in [
            offset + 1500,
            offset + 70_000,
            offset + 200_000,
            offset + 400_000,
        ] {
            if state.contains(v) {
                continue;
            }
            let fast = state.candidate_loss(v);
            let naive = state.naive_candidate_loss(v);
            assert!(
                (fast - naive).abs() < 1e-3 * (1.0 + naive),
                "v={v}: fast {fast} naive {naive}"
            );
        }
        // The initial loss must match the centred direct fit.
        let model = LinearModel::fit_cdf(&keys);
        assert!(close(state.loss(), model.sse_cdf(&keys)));
    }

    #[test]
    fn rank_and_contains() {
        let state = SegmentState::from_keys(&[10, 20, 30]);
        assert_eq!(state.rank_of(5), 0);
        assert_eq!(state.rank_of(10), 0);
        assert_eq!(state.rank_of(11), 1);
        assert_eq!(state.rank_of(35), 3);
        assert!(state.contains(20));
        assert!(!state.contains(21));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_virtual_point_panics() {
        let mut state = SegmentState::from_keys(&[10, 20, 30]);
        state.insert_virtual(20);
    }

    #[test]
    fn into_layout_preserves_real_and_virtual_keys() {
        let keys = example_keys();
        let mut state = SegmentState::from_keys(&keys);
        state.insert_virtual(23);
        state.insert_virtual(11);
        let loss_all = state.loss();
        let layout = state.into_layout();
        assert_eq!(layout.num_real(), keys.len());
        assert_eq!(layout.num_virtual(), 2);
        assert_eq!(layout.real_keys(), keys);
        assert_eq!(layout.virtual_keys(), vec![11, 23]);
        assert!(close(layout.loss_all(), loss_all));
    }
}
