//! CDF smoothing under a quadratic indexing function.
//!
//! The paper (§1) notes that CDF smoothing "can naturally extend to more
//! complex (e.g., quadratic) functions"; this module carries out that
//! extension for parabolic indexing functions `f(k) = a·k² + b·k + c`.
//!
//! The structure mirrors Algorithm 1: a greedy loop inserts up to `λ = ⌊α·n⌋`
//! virtual points, each iteration picking the candidate whose insertion (with
//! the quadratic model refitted) minimises the sum of squared errors.
//! The incremental bookkeeping follows §4.1 exactly, just with higher-order
//! moments: the segment keeps `n, Σx, Σx², Σx³, Σx⁴, Σy, Σxy, Σx²y, Σy²`
//! plus prefix sums of the keys and squared keys, so evaluating a candidate
//! (which shifts every rank at or above its insertion rank by one) is O(1).
//!
//! One difference from the linear case: the per-gap loss as a function of the
//! candidate value is no longer guaranteed to be convex, so the derivative
//! sign test of §4.2 does not apply. Instead each gap proposes its two
//! endpoints plus a small set of evenly spaced interior probes
//! ([`QuadraticSmoothingConfig::probes_per_gap`]); this keeps the per-gap
//! work constant while catching interior minima in practice (the ablation
//! bench `smoothing_model_class` quantifies the remaining gap to brute
//! force).

use crate::layout::LayoutEntry;
use csv_common::quadratic::{QuadFitStats, QuadraticModel};
use csv_common::Key;

/// Configuration of the quadratic smoothing extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticSmoothingConfig {
    /// Smoothing threshold `α ∈ (0, 1]`: the budget is `⌊α·n⌋` points.
    pub alpha: f64,
    /// Optional hard cap on the number of virtual points regardless of `α`.
    pub max_budget: Option<usize>,
    /// Number of evenly spaced interior candidates evaluated per gap in
    /// addition to the gap's endpoints.
    pub probes_per_gap: usize,
}

impl Default for QuadraticSmoothingConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            max_budget: None,
            probes_per_gap: 3,
        }
    }
}

impl QuadraticSmoothingConfig {
    /// Creates a configuration with the given smoothing threshold.
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            alpha,
            ..Self::default()
        }
    }

    /// The smoothing budget λ for a segment of `n` keys.
    pub fn budget(&self, n: usize) -> usize {
        let lambda = (self.alpha * n as f64).floor() as usize;
        match self.max_budget {
            Some(cap) => lambda.min(cap),
            None => lambda,
        }
    }
}

/// The outcome of smoothing one segment under a quadratic model.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticSmoothingResult {
    /// Entries (real keys + virtual points) in rank order.
    pub entries: Vec<LayoutEntry>,
    /// Quadratic model fitted to the original segment.
    pub model_before: QuadraticModel,
    /// Quadratic model refitted over real + virtual points.
    pub model_after: QuadraticModel,
    /// Loss of the original segment under its own quadratic OLS fit.
    pub loss_before: f64,
    /// Loss of the refitted model over real + virtual points.
    pub loss_after_all: f64,
    /// Loss of the refitted model over the real keys only (at their smoothed
    /// ranks).
    pub loss_after_real: f64,
    /// The virtual points inserted, in insertion order.
    pub virtual_points: Vec<Key>,
    /// The budget λ that was available.
    pub budget: usize,
}

impl QuadraticSmoothingResult {
    /// Relative loss improvement over the real keys, in percent.
    pub fn improvement_percent(&self) -> f64 {
        if self.loss_before <= 0.0 {
            0.0
        } else {
            (self.loss_before - self.loss_after_real) / self.loss_before * 100.0
        }
    }
}

/// Incremental state of a segment being smoothed under a quadratic model.
#[derive(Debug, Clone)]
struct QuadSegmentState {
    entries: Vec<LayoutEntry>,
    origin: Key,
    /// `prefix_x[i]` = sum of the first `i` shifted keys.
    prefix_x: Vec<f64>,
    /// `prefix_x2[i]` = sum of the first `i` shifted squared keys.
    prefix_x2: Vec<f64>,
    stats: QuadFitStats,
}

impl QuadSegmentState {
    fn from_keys(keys: &[Key]) -> Self {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly increasing"
        );
        let origin = keys.first().copied().unwrap_or(0);
        let entries = keys.iter().copied().map(LayoutEntry::Real).collect();
        let mut state = Self {
            entries,
            origin,
            prefix_x: Vec::new(),
            prefix_x2: Vec::new(),
            stats: QuadFitStats::with_origin(origin),
        };
        state.refresh();
        state
    }

    #[inline]
    fn shift(&self, key: Key) -> f64 {
        if key >= self.origin {
            (key - self.origin) as f64
        } else {
            -((self.origin - key) as f64)
        }
    }

    fn refresh(&mut self) {
        let m = self.entries.len();
        self.prefix_x.clear();
        self.prefix_x2.clear();
        self.prefix_x.reserve(m + 1);
        self.prefix_x2.reserve(m + 1);
        self.prefix_x.push(0.0);
        self.prefix_x2.push(0.0);
        self.stats = QuadFitStats::with_origin(self.origin);
        let (mut acc_x, mut acc_x2) = (0.0, 0.0);
        for (rank, entry) in self.entries.iter().enumerate() {
            let x = self.shift(entry.key());
            acc_x += x;
            acc_x2 += x * x;
            self.prefix_x.push(acc_x);
            self.prefix_x2.push(acc_x2);
            self.stats.push(x, rank as f64);
        }
    }

    fn rank_of(&self, v: Key) -> usize {
        self.entries.partition_point(|e| e.key() < v)
    }

    #[cfg(test)]
    fn contains(&self, v: Key) -> bool {
        let r = self.rank_of(v);
        r < self.entries.len() && self.entries[r].key() == v
    }

    fn model(&self) -> QuadraticModel {
        self.stats.fit()
    }

    fn loss(&self) -> f64 {
        self.stats.sse_of_fit()
    }

    fn loss_real_only(&self) -> f64 {
        let model = self.model();
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_real())
            .map(|(rank, e)| {
                let err = model.predict_f64(e.key()) - rank as f64;
                err * err
            })
            .sum()
    }

    /// Statistics after hypothetically inserting value `v` (not present) at
    /// its rank, with every rank at or above it shifted up by one — O(1).
    fn stats_with_candidate(&self, v: Key) -> QuadFitStats {
        let rank = self.rank_of(v);
        let m = self.entries.len();
        let t = (m - rank) as f64; // entries whose rank shifts by one
                                   // Sum of the shifted ranks rank..m-1.
        let shifted_rank_sum = if t > 0.0 {
            (rank as f64 + m as f64 - 1.0) * t / 2.0
        } else {
            0.0
        };
        let suffix_x = self.prefix_x[m] - self.prefix_x[rank];
        let suffix_x2 = self.prefix_x2[m] - self.prefix_x2[rank];
        let x = self.shift(v);
        let (x2, y) = (x * x, rank as f64);

        let mut s = self.stats;
        // Rank shift of existing entries: y_i -> y_i + 1 for ranks >= rank.
        s.sum_y += t;
        s.sum_yy += 2.0 * shifted_rank_sum + t;
        s.sum_xy += suffix_x;
        s.sum_x2y += suffix_x2;
        // The candidate itself.
        s.n += 1.0;
        s.sum_x += x;
        s.sum_x2 += x2;
        s.sum_x3 += x2 * x;
        s.sum_x4 += x2 * x2;
        s.sum_y += y;
        s.sum_yy += y * y;
        s.sum_xy += x * y;
        s.sum_x2y += x2 * y;
        s
    }

    fn candidate_loss(&self, v: Key) -> f64 {
        self.stats_with_candidate(v).sse_of_fit()
    }

    /// Naive recomputation used by tests to validate the O(1) path.
    #[cfg(test)]
    fn naive_candidate_loss(&self, v: Key) -> f64 {
        let mut keys: Vec<Key> = self.entries.iter().map(|e| e.key()).collect();
        keys.insert(self.rank_of(v), v);
        QuadraticModel::fit_cdf(&keys).sse_cdf(&keys)
    }

    fn insert_virtual(&mut self, v: Key) {
        let rank = self.rank_of(v);
        assert!(
            rank >= self.entries.len() || self.entries[rank].key() != v,
            "virtual point {v} already present"
        );
        self.entries.insert(rank, LayoutEntry::Virtual(v));
        self.refresh();
    }

    /// Candidate values proposed by one gap: its endpoints plus up to
    /// `probes` evenly spaced interior values.
    fn gap_candidates(lo: Key, hi: Key, probes: usize) -> Vec<Key> {
        let mut out = vec![lo];
        if hi > lo {
            let width = hi - lo;
            for i in 1..=probes as u64 {
                let v = lo + width * i / (probes as u64 + 1);
                if v > lo && v < hi {
                    out.push(v);
                }
            }
            out.push(hi);
        }
        out.dedup();
        out
    }

    /// The candidate with the smallest refitted loss across all gaps.
    fn best_candidate(&self, probes: usize) -> Option<(Key, f64)> {
        let mut best: Option<(Key, f64)> = None;
        for pair in self.entries.windows(2) {
            let (lo_key, hi_key) = (pair[0].key(), pair[1].key());
            if hi_key <= lo_key + 1 {
                continue;
            }
            for v in Self::gap_candidates(lo_key + 1, hi_key - 1, probes) {
                let loss = self.candidate_loss(v);
                match best {
                    Some((_, b)) if b <= loss => {}
                    _ => best = Some((v, loss)),
                }
            }
        }
        best
    }
}

/// Runs the quadratic variant of Algorithm 1 on a strictly increasing key
/// slice.
pub fn smooth_segment_quadratic(
    keys: &[Key],
    config: &QuadraticSmoothingConfig,
) -> QuadraticSmoothingResult {
    let model_before = QuadraticModel::fit_cdf(keys);
    let loss_before = model_before.sse_cdf(keys);
    let budget = config.budget(keys.len());
    let mut state = QuadSegmentState::from_keys(keys);
    let mut virtual_points = Vec::new();

    if keys.len() >= 3 {
        while virtual_points.len() < budget {
            let Some((value, loss)) = state.best_candidate(config.probes_per_gap) else {
                break;
            };
            if loss >= state.loss() {
                break;
            }
            state.insert_virtual(value);
            virtual_points.push(value);
        }
    }

    let loss_after_all = state.loss();
    let loss_after_real = state.loss_real_only();
    let model_after = state.model();
    QuadraticSmoothingResult {
        entries: state.entries,
        model_before,
        model_after,
        loss_before,
        loss_after_all,
        loss_after_real,
        virtual_points,
        budget,
    }
}

/// Convenience comparison of the linear and quadratic smoothing extensions on
/// the same segment and budget; returns `(linear_loss, quadratic_loss)`
/// measured over real + virtual points after smoothing.
pub fn compare_model_classes(keys: &[Key], alpha: f64) -> (f64, f64) {
    let linear =
        crate::single::smooth_segment(keys, &crate::single::SmoothingConfig::with_alpha(alpha));
    let quadratic = smooth_segment_quadratic(keys, &QuadraticSmoothingConfig::with_alpha(alpha));
    (linear.loss_after_all, quadratic.loss_after_all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_keys() -> Vec<Key> {
        vec![2, 3, 5, 9, 14, 20, 26, 27, 29, 30]
    }

    /// Keys whose CDF is genuinely curved (rank ≈ sqrt of the key offset).
    fn curved_keys(n: u64) -> Vec<Key> {
        (0..n).map(|i| 1_000 + i * i).collect()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn candidate_loss_matches_naive_recomputation() {
        let keys = example_keys();
        let state = QuadSegmentState::from_keys(&keys);
        for v in 1..=31u64 {
            if state.contains(v) {
                continue;
            }
            let fast = state.candidate_loss(v);
            let naive = state.naive_candidate_loss(v);
            assert!(close(fast, naive), "v={v}: fast {fast} naive {naive}");
        }
    }

    #[test]
    fn candidate_loss_matches_naive_after_insertions() {
        let keys = example_keys();
        let mut state = QuadSegmentState::from_keys(&keys);
        state.insert_virtual(23);
        state.insert_virtual(11);
        for v in [4u64, 7, 12, 17, 22, 25, 28] {
            if state.contains(v) {
                continue;
            }
            let fast = state.candidate_loss(v);
            let naive = state.naive_candidate_loss(v);
            assert!(close(fast, naive), "v={v}: fast {fast} naive {naive}");
        }
    }

    #[test]
    fn smoothing_reduces_loss_and_respects_budget() {
        let keys = example_keys();
        for alpha in [0.1, 0.5, 0.8] {
            let cfg = QuadraticSmoothingConfig::with_alpha(alpha);
            let result = smooth_segment_quadratic(&keys, &cfg);
            assert!(result.virtual_points.len() <= cfg.budget(keys.len()));
            assert!(
                result.loss_after_all <= result.loss_before + 1e-9,
                "alpha {alpha}: {} vs {}",
                result.loss_after_all,
                result.loss_before
            );
            let real: Vec<Key> = result
                .entries
                .iter()
                .filter(|e| e.is_real())
                .map(|e| e.key())
                .collect();
            assert_eq!(real, keys, "real keys must be preserved in order");
        }
    }

    #[test]
    fn quadratic_baseline_beats_linear_on_curved_cdf() {
        let keys = curved_keys(120);
        let quad = QuadraticModel::fit_cdf(&keys).sse_cdf(&keys);
        let lin = csv_common::LinearModel::fit_cdf(&keys).sse_cdf(&keys);
        assert!(
            quad < lin * 0.5,
            "quadratic {quad} should be well below linear {lin}"
        );
    }

    #[test]
    fn quadratic_smoothing_not_worse_than_linear_smoothing_on_curved_cdf() {
        let keys = curved_keys(80);
        let (linear, quadratic) = compare_model_classes(&keys, 0.2);
        assert!(
            quadratic <= linear + 1e-6,
            "quadratic smoothing ({quadratic}) should not lose to linear ({linear}) on a curved CDF"
        );
    }

    #[test]
    fn virtual_points_fall_inside_key_range() {
        let keys = example_keys();
        let result = smooth_segment_quadratic(&keys, &QuadraticSmoothingConfig::with_alpha(0.8));
        let (min, max) = (keys[0], *keys.last().unwrap());
        for &v in &result.virtual_points {
            assert!(v > min && v < max);
            assert!(!keys.contains(&v));
        }
    }

    #[test]
    fn degenerate_inputs() {
        let cfg = QuadraticSmoothingConfig::with_alpha(0.5);
        let r = smooth_segment_quadratic(&[], &cfg);
        assert!(r.entries.is_empty());
        let r = smooth_segment_quadratic(&[5], &cfg);
        assert_eq!(r.entries.len(), 1);
        let r = smooth_segment_quadratic(&[5, 6], &cfg);
        assert!(r.virtual_points.is_empty());
        // Dense segment: no gaps, nothing to insert.
        let dense: Vec<Key> = (10..40).collect();
        let r = smooth_segment_quadratic(&dense, &cfg);
        assert!(r.virtual_points.is_empty());
        assert!(r.loss_before < 1e-9);
    }

    #[test]
    fn improvement_percent_reported() {
        let keys = example_keys();
        let r = smooth_segment_quadratic(&keys, &QuadraticSmoothingConfig::with_alpha(0.5));
        assert!(r.improvement_percent() >= 0.0);
        assert!(r.improvement_percent() <= 100.0);
    }

    #[test]
    fn gap_candidates_are_within_bounds_and_unique() {
        let cands = QuadSegmentState::gap_candidates(10, 30, 3);
        assert!(cands.iter().all(|&v| (10..=30).contains(&v)));
        let mut sorted = cands.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), cands.len());
        assert_eq!(QuadSegmentState::gap_candidates(7, 7, 3), vec![7]);
    }
}
