//! Exhaustive (optimal) CDF smoothing, used as the quality baseline of
//! Table 2 in the paper.
//!
//! The exact problem is NP-hard (Lemma 3.1), so this module simply enumerates
//! every subset of candidate virtual points with size up to the budget λ and
//! keeps the subset whose refitted loss is smallest. It is only feasible for
//! tiny segments (tens of candidates) and exists purely to measure how close
//! the greedy Algorithm 1 gets to the optimum.

use crate::layout::SmoothedLayout;
use crate::segment::SegmentState;
use csv_common::{Key, LinearModel};

/// The outcome of the exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveResult {
    /// Loss of the original segment.
    pub loss_before: f64,
    /// Best loss over real + virtual points found by the enumeration.
    pub loss_after_all: f64,
    /// Loss of the best refitted model over the real keys only.
    pub loss_after_real: f64,
    /// The optimal virtual point subset (sorted ascending).
    pub virtual_points: Vec<Key>,
    /// The resulting layout.
    pub layout: SmoothedLayout,
    /// How many subsets were evaluated.
    pub subsets_evaluated: usize,
}

/// Enumerates every candidate subset of size `0..=λ` where `λ = ⌊α·n⌋`.
///
/// Returns `None` when the number of candidate values exceeds
/// `max_candidates` (the enumeration would be intractable).
pub fn exhaustive_smooth(
    keys: &[Key],
    alpha: f64,
    max_candidates: usize,
) -> Option<ExhaustiveResult> {
    if keys.len() < 2 {
        return None;
    }
    let model_before = LinearModel::fit_cdf(keys);
    let loss_before = model_before.sse_cdf(keys);
    let lambda = (alpha * keys.len() as f64).floor() as usize;

    // Candidate values: every integer strictly between min and max that is
    // not an existing key.
    let min = *keys.first().unwrap();
    let max = *keys.last().unwrap();
    let mut candidates = Vec::new();
    for v in (min + 1)..max {
        if keys.binary_search(&v).is_err() {
            candidates.push(v);
        }
    }
    if candidates.len() > max_candidates {
        return None;
    }

    // Depth-first enumeration of subsets of size <= lambda.
    struct Search<'a> {
        candidates: &'a [Key],
        keys: &'a [Key],
        chosen: Vec<Key>,
        best_loss: f64,
        best_subset: Vec<Key>,
        subsets_evaluated: usize,
    }

    impl Search<'_> {
        fn recurse(&mut self, start: usize, remaining: usize) {
            if remaining == 0 {
                return;
            }
            for i in start..self.candidates.len() {
                self.chosen.push(self.candidates[i]);
                let loss = loss_of_subset(self.keys, &self.chosen);
                self.subsets_evaluated += 1;
                if loss < self.best_loss {
                    self.best_loss = loss;
                    self.best_subset = self.chosen.clone();
                }
                self.recurse(i + 1, remaining - 1);
                self.chosen.pop();
            }
        }
    }

    let mut search = Search {
        candidates: &candidates,
        keys,
        chosen: Vec::with_capacity(lambda),
        best_loss: loss_before,
        best_subset: Vec::new(),
        subsets_evaluated: 1, // the empty subset
    };
    search.recurse(0, lambda);
    let Search {
        best_subset,
        subsets_evaluated,
        ..
    } = search;

    // Materialise the winning layout.
    let mut state = SegmentState::from_keys(keys);
    for &v in &best_subset {
        state.insert_virtual(v);
    }
    let loss_after_all = state.loss();
    let loss_after_real = state.loss_real_only();
    Some(ExhaustiveResult {
        loss_before,
        loss_after_all,
        loss_after_real,
        virtual_points: best_subset,
        layout: state.into_layout(),
        subsets_evaluated,
    })
}

/// Loss of the OLS refit after inserting `subset` (need not be sorted) into
/// `keys`.
fn loss_of_subset(keys: &[Key], subset: &[Key]) -> f64 {
    let mut merged: Vec<Key> = Vec::with_capacity(keys.len() + subset.len());
    merged.extend_from_slice(keys);
    merged.extend_from_slice(subset);
    merged.sort_unstable();
    let model = LinearModel::fit_cdf(&merged);
    model.sse_cdf(&merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::{smooth_segment, SmoothingConfig};

    fn example_keys() -> Vec<Key> {
        vec![4, 5, 6, 8, 9, 10, 15, 20, 26, 30]
    }

    #[test]
    fn exhaustive_never_worse_than_greedy() {
        let keys = example_keys();
        let greedy = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.5));
        let exact = exhaustive_smooth(&keys, 0.5, 64).expect("example is small enough");
        assert!(exact.loss_after_all <= greedy.loss_after_all + 1e-9);
        assert!(exact.loss_after_all <= exact.loss_before);
        assert!(exact.virtual_points.len() <= 5);
        assert!(exact.subsets_evaluated > 1);
    }

    #[test]
    fn greedy_is_close_to_optimal_on_the_example() {
        // Table 2 reports greedy 2.293 vs exhaustive 2.118 (within ~10%).
        let keys = example_keys();
        let greedy = smooth_segment(&keys, &SmoothingConfig::with_alpha(0.5));
        let exact = exhaustive_smooth(&keys, 0.5, 64).unwrap();
        assert!(
            greedy.loss_after_all <= exact.loss_after_all * 1.35 + 1e-9,
            "greedy {} vs exact {}",
            greedy.loss_after_all,
            exact.loss_after_all
        );
    }

    #[test]
    fn rejects_oversized_candidate_sets() {
        let keys: Vec<Key> = (0..50).map(|i| i * 100).collect();
        assert!(exhaustive_smooth(&keys, 0.2, 64).is_none());
        assert!(exhaustive_smooth(&[7], 0.5, 64).is_none());
    }

    #[test]
    fn zero_budget_returns_original() {
        let keys = example_keys();
        let exact = exhaustive_smooth(&keys, 0.05, 64).unwrap();
        assert!(exact.virtual_points.is_empty());
        assert!((exact.loss_after_all - exact.loss_before).abs() < 1e-9);
    }
}
