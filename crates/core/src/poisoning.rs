//! Data poisoning of learned-index CDFs (§2.3 of the paper).
//!
//! The CDF-smoothing idea is rooted in *poisoning attacks* on learned indexes
//! (Kornaropoulos et al., SIGMOD 2022): an adversary who can insert keys can
//! pick values that *maximise* the indexing function's loss, degrading query
//! performance. CDF smoothing is the benign dual — it inserts points that
//! *minimise* the loss.
//!
//! This module implements the greedy poisoning attack over a single key
//! segment using the same incremental machinery as Algorithm 1
//! ([`crate::segment::SegmentState`]): per gap the refitted
//! loss is a convex function of the inserted value, so the loss-*maximising*
//! candidate of a gap is always one of its two endpoints, and the greedy
//! attack repeatedly inserts the globally worst endpoint.
//!
//! Having both directions in one crate enables two things the paper only
//! alludes to:
//!
//! 1. quantifying how vulnerable a key segment is to poisoning (the
//!    [`PoisoningResult::degradation_factor`]), and
//! 2. measuring how well CDF smoothing *repairs* a poisoned segment
//!    ([`smoothing_counteracts_poisoning`]), i.e. the defensive reading of
//!    the technique.

use crate::candidates::enumerate_gaps;
use crate::segment::SegmentState;
use crate::single::{smooth_segment, SmoothingConfig};
use csv_common::{Key, LinearModel};

/// Configuration of a greedy poisoning attack on one key segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoisoningConfig {
    /// Fraction of the segment size the attacker may insert (the poisoning
    /// budget is `⌊alpha · n⌋`, mirroring the smoothing threshold).
    pub alpha: f64,
    /// Optional hard cap on the number of poison points regardless of `alpha`.
    pub max_budget: Option<usize>,
}

impl Default for PoisoningConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            max_budget: None,
        }
    }
}

impl PoisoningConfig {
    /// Creates a configuration with the given budget fraction.
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            alpha,
            ..Self::default()
        }
    }

    /// The poisoning budget for a segment of `n` keys.
    pub fn budget(&self, n: usize) -> usize {
        let b = (self.alpha * n as f64).floor() as usize;
        match self.max_budget {
            Some(cap) => b.min(cap),
            None => b,
        }
    }
}

/// The outcome of poisoning one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisoningResult {
    /// Loss of the original segment under its own OLS fit.
    pub loss_before: f64,
    /// Loss of the refitted model over the original keys only, after the
    /// poison points are inserted (what legitimate queries experience).
    pub loss_after_real: f64,
    /// Loss of the refitted model over original + poison points.
    pub loss_after_all: f64,
    /// Model fitted to the original segment.
    pub model_before: LinearModel,
    /// Model refitted after the attack.
    pub model_after: LinearModel,
    /// The poison keys, in insertion order.
    pub poison_points: Vec<Key>,
    /// The available budget.
    pub budget: usize,
}

impl PoisoningResult {
    /// Multiplicative loss degradation experienced by the original keys:
    /// `loss_after_real / loss_before` (≥ 1 in practice, 1 when the attack
    /// found nothing to exploit). Returns 1 for perfectly linear segments
    /// whose original loss is 0 but which also cannot be degraded, and +∞
    /// when a zero-loss segment *was* degraded.
    pub fn degradation_factor(&self) -> f64 {
        if self.loss_before <= f64::EPSILON {
            if self.loss_after_real <= f64::EPSILON {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.loss_after_real / self.loss_before
        }
    }
}

/// Runs the greedy poisoning attack on a strictly increasing key slice.
///
/// Every iteration evaluates, for every gap between adjacent stored keys, the
/// refitted loss at the gap's two endpoints (the per-gap loss is convex in
/// the inserted value, so its maximum over the gap is attained at an
/// endpoint) and inserts the candidate with the globally largest loss. The
/// attack stops early when no candidate increases the loss.
pub fn poison_segment(keys: &[Key], config: &PoisoningConfig) -> PoisoningResult {
    let model_before = LinearModel::fit_cdf(keys);
    let loss_before = model_before.sse_cdf(keys);
    let budget = config.budget(keys.len());
    let mut state = SegmentState::from_keys(keys);
    let mut poison_points = Vec::new();

    if keys.len() >= 2 {
        while poison_points.len() < budget {
            let Some((value, loss)) = worst_candidate(&state) else {
                break;
            };
            if loss <= state.loss() {
                break;
            }
            state.insert_virtual(value);
            poison_points.push(value);
        }
    }

    let loss_after_real = state.loss_real_only();
    let loss_after_all = state.loss();
    let model_after = state.model();
    PoisoningResult {
        loss_before,
        loss_after_real,
        loss_after_all,
        model_before,
        model_after,
        poison_points,
        budget,
    }
}

/// The candidate value with the largest refitted loss across all gaps, if any
/// gap exists.
fn worst_candidate(state: &SegmentState) -> Option<(Key, f64)> {
    let mut worst: Option<(Key, f64)> = None;
    for gap in enumerate_gaps(state) {
        let coeffs = state.gap_coefficients(gap.rank);
        for v in [gap.lo, gap.hi] {
            let loss = coeffs.loss(v as f64);
            match worst {
                Some((_, w)) if w >= loss => {}
                _ => worst = Some((v, loss)),
            }
        }
    }
    worst
}

/// The defensive experiment: poison a segment with budget `poison_alpha`,
/// then smooth the poisoned key set (original keys ∪ poison keys, which is
/// what the index actually stores) with budget `smooth_alpha`. Returns
/// `(loss_poisoned, loss_repaired)` measured over the stored keys, so the
/// caller can verify that smoothing claws back most of the damage.
pub fn smoothing_counteracts_poisoning(
    keys: &[Key],
    poison_alpha: f64,
    smooth_alpha: f64,
) -> (f64, f64) {
    let attack = poison_segment(keys, &PoisoningConfig::with_alpha(poison_alpha));
    // The index cannot distinguish poison keys from legitimate ones: the
    // stored key set is the union.
    let mut stored: Vec<Key> = keys.to_vec();
    stored.extend(attack.poison_points.iter().copied());
    stored.sort_unstable();
    stored.dedup();
    let poisoned_loss = LinearModel::fit_cdf(&stored).sse_cdf(&stored);
    let repaired = smooth_segment(&stored, &SmoothingConfig::with_alpha(smooth_alpha));
    (poisoned_loss, repaired.loss_after_all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_keys() -> Vec<Key> {
        vec![2, 3, 5, 9, 14, 20, 26, 27, 29, 30]
    }

    #[test]
    fn budget_computation() {
        let cfg = PoisoningConfig::with_alpha(0.5);
        assert_eq!(cfg.budget(10), 5);
        assert_eq!(cfg.budget(1), 0);
        let capped = PoisoningConfig {
            max_budget: Some(2),
            ..cfg
        };
        assert_eq!(capped.budget(10), 2);
    }

    #[test]
    fn poisoning_increases_loss_for_real_keys() {
        let keys = example_keys();
        let result = poison_segment(&keys, &PoisoningConfig::with_alpha(0.5));
        assert!(!result.poison_points.is_empty());
        assert!(result.poison_points.len() <= result.budget);
        assert!(
            result.loss_after_real > result.loss_before,
            "poisoning must degrade the fit for the original keys: {} -> {}",
            result.loss_before,
            result.loss_after_real
        );
        assert!(result.degradation_factor() > 1.0);
    }

    #[test]
    fn poison_points_avoid_existing_keys_and_stay_in_range() {
        let keys = example_keys();
        let result = poison_segment(&keys, &PoisoningConfig::with_alpha(0.8));
        let min = *keys.first().unwrap();
        let max = *keys.last().unwrap();
        for &p in &result.poison_points {
            assert!(
                p > min && p < max,
                "poison point {p} escapes ({min}, {max})"
            );
            assert!(!keys.contains(&p), "poison point {p} duplicates a real key");
        }
        // No duplicates among the poison points themselves.
        let mut sorted = result.poison_points.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), result.poison_points.len());
    }

    #[test]
    fn larger_budget_degrades_at_least_as_much() {
        let keys = example_keys();
        let small = poison_segment(&keys, &PoisoningConfig::with_alpha(0.1));
        let large = poison_segment(&keys, &PoisoningConfig::with_alpha(0.8));
        assert!(large.loss_after_real >= small.loss_after_real - 1e-9);
        assert!(large.poison_points.len() >= small.poison_points.len());
    }

    #[test]
    fn greedy_choice_is_the_worst_single_candidate() {
        // The first inserted poison point must match the brute-force worst
        // single insertion.
        let keys = example_keys();
        let state = SegmentState::from_keys(&keys);
        let mut brute_worst = (0u64, f64::MIN);
        for v in 3..30u64 {
            if state.contains(v) {
                continue;
            }
            let l = state.candidate_loss(v);
            if l > brute_worst.1 {
                brute_worst = (v, l);
            }
        }
        let result = poison_segment(
            &keys,
            &PoisoningConfig {
                alpha: 0.1,
                max_budget: Some(1),
            },
        );
        assert_eq!(result.poison_points.len(), 1);
        assert!(
            (result.loss_after_all - brute_worst.1).abs() < 1e-6 * (1.0 + brute_worst.1),
            "greedy {} vs brute force {} ({})",
            result.loss_after_all,
            brute_worst.1,
            brute_worst.0
        );
    }

    #[test]
    fn dense_segments_cannot_be_poisoned() {
        // No gaps between adjacent keys: the attacker has no place to insert.
        let keys: Vec<Key> = (100..200).collect();
        let result = poison_segment(&keys, &PoisoningConfig::with_alpha(0.5));
        assert!(result.poison_points.is_empty());
        assert!((result.degradation_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let cfg = PoisoningConfig::with_alpha(0.5);
        let r = poison_segment(&[], &cfg);
        assert!(r.poison_points.is_empty());
        let r = poison_segment(&[7], &cfg);
        assert!(r.poison_points.is_empty());
        assert_eq!(r.degradation_factor(), 1.0);
    }

    #[test]
    fn smoothing_repairs_a_poisoned_segment() {
        let keys = example_keys();
        let (poisoned, repaired) = smoothing_counteracts_poisoning(&keys, 0.3, 0.5);
        assert!(poisoned > 0.0);
        assert!(
            repaired < poisoned,
            "smoothing must reduce the poisoned loss: {poisoned} -> {repaired}"
        );
        // The repair recovers a substantial share of the damage.
        assert!(
            repaired <= poisoned * 0.8,
            "only recovered {poisoned} -> {repaired}"
        );
    }

    #[test]
    fn poisoning_then_smoothing_on_a_wide_segment() {
        // A larger, irregular segment (mixture of dense runs and jumps).
        let mut keys = Vec::new();
        let mut base = 1_000u64;
        for block in 0..20u64 {
            for i in 0..30u64 {
                keys.push(base + i * (1 + block % 3));
            }
            base += 30 * (1 + block % 3) + 5_000 + block * 137;
        }
        keys.sort_unstable();
        keys.dedup();
        let attack = poison_segment(&keys, &PoisoningConfig::with_alpha(0.05));
        assert!(attack.loss_after_real >= attack.loss_before);
        let (poisoned, repaired) = smoothing_counteracts_poisoning(&keys, 0.05, 0.2);
        assert!(repaired <= poisoned);
    }
}
