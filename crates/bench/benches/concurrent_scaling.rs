//! Multi-threaded read throughput of the sharded index wrapper — locked vs.
//! RCU read paths, original vs. CSV-enhanced shards (the scalability
//! dimension SALI targets), plus the pinned-snapshot fast path for
//! read-mostly batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use csv_common::key::identity_records;
use csv_concurrent::{
    run_read_throughput, run_read_throughput_pinned, ReadPath, ShardedIndex, ShardingConfig,
};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{Dataset, ReadOnlyWorkload};
use csv_lipp::LippIndex;
use std::hint::black_box;
use std::time::Duration;

const KEYS: usize = 200_000;
const QUERIES: usize = 100_000;

fn bench_concurrent_scaling(c: &mut Criterion) {
    let keys = Dataset::Genome.generate(KEYS, 3);
    let records = identity_records(&keys);
    let queries = ReadOnlyWorkload::uniform(keys.clone(), QUERIES, 9).queries;

    let build = |read_path: ReadPath, csv: bool| {
        let config = ShardingConfig::with_shards(16).with_read_path(read_path);
        let index = ShardedIndex::<LippIndex>::bulk_load(&records, config);
        if csv {
            index.optimize(&CsvOptimizer::new(CsvConfig::for_lipp(0.1)));
        }
        index
    };

    let mut group = c.benchmark_group("concurrent_read_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(QUERIES as u64));
    for (path_name, read_path) in [("locked", ReadPath::Locked), ("rcu", ReadPath::Rcu)] {
        for (csv_name, csv) in [("", false), ("_csv", true)] {
            let index = build(read_path, csv);
            for &threads in &[1usize, 4, 8] {
                group.bench_with_input(
                    BenchmarkId::new(format!("lipp_sharded_{path_name}{csv_name}"), threads),
                    &threads,
                    |b, &t| {
                        b.iter(|| black_box(run_read_throughput(&index, &queries, t)));
                    },
                );
            }
            // The pinned-view fast path only exists on the RCU path (it
            // falls back to per-lookup gets on the locked one, which the
            // plain benchmark already measures).
            if read_path == ReadPath::Rcu {
                for &threads in &[1usize, 4, 8] {
                    group.bench_with_input(
                        BenchmarkId::new(format!("lipp_sharded_rcu_pinned{csv_name}"), threads),
                        &threads,
                        |b, &t| {
                            b.iter(|| black_box(run_read_throughput_pinned(&index, &queries, t)));
                        },
                    );
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_scaling);
criterion_main!(benches);
