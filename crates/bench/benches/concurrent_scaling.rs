//! Multi-threaded read throughput of the sharded index wrapper, original vs.
//! CSV-enhanced shards (the scalability dimension SALI targets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use csv_common::key::identity_records;
use csv_concurrent::{run_read_throughput, ShardedIndex, ShardingConfig};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{Dataset, ReadOnlyWorkload};
use csv_lipp::LippIndex;
use std::hint::black_box;
use std::time::Duration;

const KEYS: usize = 200_000;
const QUERIES: usize = 100_000;

fn bench_concurrent_scaling(c: &mut Criterion) {
    let keys = Dataset::Genome.generate(KEYS, 3);
    let records = identity_records(&keys);
    let queries = ReadOnlyWorkload::uniform(keys.clone(), QUERIES, 9).queries;

    let plain = ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig { num_shards: 16 });
    let enhanced =
        ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig { num_shards: 16 });
    enhanced.with_shards_mut(|shard| {
        CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(shard);
    });

    let mut group = c.benchmark_group("concurrent_read_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(QUERIES as u64));
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("lipp_sharded", threads),
            &threads,
            |b, &t| {
                b.iter(|| black_box(run_read_throughput(&plain, &queries, t)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lipp_sharded_csv", threads),
            &threads,
            |b, &t| {
                b.iter(|| black_box(run_read_throughput(&enhanced, &queries, t)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_scaling);
criterion_main!(benches);
