//! YCSB-style mixed-operation throughput for the original and CSV-enhanced
//! indexes (reads / inserts / removals / short scans).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_alex::AlexIndex;
use csv_btree::BPlusTree;
use csv_common::key::identity_records;
use csv_common::traits::{LearnedIndex, RangeIndex, RemovableIndex};
use csv_concurrent::{OverlayRepr, ReadPath, ShardedIndex, ShardingConfig};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{
    Dataset, MixedWorkload, MixedWorkloadSpec, Operation, OperationMix, Popularity,
};
use csv_lipp::LippIndex;
use std::hint::black_box;
use std::time::Duration;

const KEYS: usize = 100_000;
const OPS: usize = 20_000;

fn replay<I: LearnedIndex + RangeIndex + RemovableIndex>(
    index: &mut I,
    workload: &MixedWorkload,
) -> usize {
    let mut touched = 0usize;
    for op in &workload.operations {
        match *op {
            Operation::Read(k) => touched += usize::from(index.get(k).is_some()),
            Operation::Insert(k) => touched += usize::from(index.insert(k, k)),
            Operation::Remove(k) => touched += usize::from(index.remove(k).is_some()),
            Operation::Scan(lo, hi) => touched += index.range(lo, hi).len(),
        }
    }
    touched
}

/// The same replay against the sharded wrapper, whose mutating operations
/// go through shared references (per-shard locks or RCU publications).
fn replay_sharded(index: &ShardedIndex<LippIndex>, workload: &MixedWorkload) -> usize {
    let mut touched = 0usize;
    for op in &workload.operations {
        match *op {
            Operation::Read(k) => touched += usize::from(index.get(k).is_some()),
            Operation::Insert(k) => touched += usize::from(index.insert(k, k)),
            Operation::Remove(k) => touched += usize::from(index.remove(k).is_some()),
            Operation::Scan(lo, hi) => touched += index.range(lo, hi).len(),
        }
    }
    touched
}

fn bench_mixed_workload(c: &mut Criterion) {
    let keys = Dataset::Osm.generate(KEYS, 5);
    let records = identity_records(&keys);
    let mut group = c.benchmark_group("mixed_workload");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for (mix_name, mix) in [
        ("ycsb_b", OperationMix::ycsb_b()),
        ("churn", OperationMix::churn()),
    ] {
        let workload = MixedWorkload::generate(
            &keys,
            &MixedWorkloadSpec {
                num_operations: OPS,
                mix,
                popularity: Popularity::Zipfian(0.9),
                scan_width: 50,
                seed: 21,
            },
        );
        group.bench_with_input(BenchmarkId::new("btree", mix_name), &workload, |b, wl| {
            b.iter_batched(
                || BPlusTree::bulk_load(&records),
                |mut index| black_box(replay(&mut index, wl)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("lipp", mix_name), &workload, |b, wl| {
            b.iter_batched(
                || LippIndex::bulk_load(&records),
                |mut index| black_box(replay(&mut index, wl)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(
            BenchmarkId::new("lipp_csv", mix_name),
            &workload,
            |b, wl| {
                b.iter_batched(
                    || {
                        let mut index = LippIndex::bulk_load(&records);
                        CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut index);
                        index
                    },
                    |mut index| black_box(replay(&mut index, wl)),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(BenchmarkId::new("alex", mix_name), &workload, |b, wl| {
            b.iter_batched(
                || AlexIndex::bulk_load(&records),
                |mut index| black_box(replay(&mut index, wl)),
                criterion::BatchSize::LargeInput,
            );
        });
        // The sharded wrapper across its concurrency A/B knobs: what a
        // single-threaded mixed stream pays for the locked layout vs. the
        // RCU copy-on-write one, and — within RCU — for the flat-vec
        // overlay (every write clones up to `overlay_capacity` entries)
        // vs. the persistent structurally shared one (every write copies
        // one chunk path). The flat row keeps its PR-4 capacity (512) and
        // the persistent rows use the raised default (4096) plus a
        // 512-capacity row that isolates the representation change from
        // the capacity change.
        let sharded_configs = [
            (
                "lipp_sharded_locked",
                ShardingConfig::with_shards(16).with_read_path(ReadPath::Locked),
            ),
            (
                "lipp_sharded_rcu_vec",
                ShardingConfig::with_shards(16)
                    .with_read_path(ReadPath::Rcu)
                    .with_overlay(OverlayRepr::Vec),
            ),
            (
                "lipp_sharded_rcu_pmap512",
                ShardingConfig::with_shards(16)
                    .with_read_path(ReadPath::Rcu)
                    .with_overlay(OverlayRepr::Persistent)
                    .with_overlay_capacity(512),
            ),
            (
                "lipp_sharded_rcu_pmap",
                ShardingConfig::with_shards(16)
                    .with_read_path(ReadPath::Rcu)
                    .with_overlay(OverlayRepr::Persistent),
            ),
        ];
        for (row_name, config) in sharded_configs {
            group.bench_with_input(BenchmarkId::new(row_name, mix_name), &workload, |b, wl| {
                b.iter_batched(
                    || ShardedIndex::<LippIndex>::bulk_load(&records, config),
                    |index| black_box(replay_sharded(&index, wl)),
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

/// The isolated tentpole measurement: RCU point-write cost at *full*
/// overlay occupancy, where the representations actually diverge. The
/// mixed rows above rarely fill an overlay (a 20k-op YCSB-B run spreads
/// ~60 writes per shard), so their per-write copy term is dominated by
/// snapshot-publication overhead. Here a single shard's overlay is
/// pre-filled to `capacity` entries and every measured write overwrites an
/// overlay slot without folding: the flat vec clones all `capacity`
/// entries per write, the persistent map copies one chunk path.
fn bench_overlay_write_cost(c: &mut Criterion) {
    const CAPACITY: usize = 4096;
    let keys = Dataset::Osm.generate(KEYS, 5);
    let records = identity_records(&keys);
    let fresh_base = *keys.last().unwrap() + 1;
    let mut group = c.benchmark_group("overlay_write_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .throughput(criterion::Throughput::Elements(CAPACITY as u64));

    for (repr_name, overlay) in [
        ("vec", OverlayRepr::Vec),
        ("persistent", OverlayRepr::Persistent),
    ] {
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &records,
            ShardingConfig::with_shards(1)
                .with_read_path(ReadPath::Rcu)
                .with_overlay(overlay)
                .with_overlay_capacity(CAPACITY),
        );
        // Fill the overlay to capacity; the measured overwrites below keep
        // it exactly there (an overwrite never grows the overlay, so the
        // fold never triggers).
        for i in 0..CAPACITY as u64 {
            index.insert(fresh_base + i, i);
        }
        let mut bump = 0u64;
        group.bench_function(repr_name, |b| {
            b.iter(|| {
                bump += 1;
                for i in 0..CAPACITY as u64 {
                    black_box(index.insert(fresh_base + i, bump));
                }
            });
        });
    }
    // The locked path's cost for the same op stream, as the baseline the
    // RCU write path is measured against.
    {
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &records,
            ShardingConfig::with_shards(1).with_read_path(ReadPath::Locked),
        );
        for i in 0..CAPACITY as u64 {
            index.insert(fresh_base + i, i);
        }
        let mut bump = 0u64;
        group.bench_function("locked", |b| {
            b.iter(|| {
                bump += 1;
                for i in 0..CAPACITY as u64 {
                    black_box(index.insert(fresh_base + i, bump));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mixed_workload, bench_overlay_write_cost);
criterion_main!(benches);
