//! YCSB-style mixed-operation throughput for the original and CSV-enhanced
//! indexes (reads / inserts / removals / short scans).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_alex::AlexIndex;
use csv_btree::BPlusTree;
use csv_common::key::identity_records;
use csv_common::sync::{AtomicUsize, Ordering};
use csv_common::traits::{LearnedIndex, RangeIndex, RemovableIndex};
use csv_common::KeyValue;
use csv_concurrent::{OverlayRepr, ReadPath, ShardedIndex, ShardingConfig, WriteOp};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{
    Dataset, MixedWorkload, MixedWorkloadSpec, Operation, OperationMix, Popularity,
};
use csv_durability::{recover, DurabilityConfig, FileSink, FsyncPolicy};
use csv_lipp::LippIndex;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const KEYS: usize = 100_000;
const OPS: usize = 20_000;

fn replay<I: LearnedIndex + RangeIndex + RemovableIndex>(
    index: &mut I,
    workload: &MixedWorkload,
) -> usize {
    let mut touched = 0usize;
    for op in &workload.operations {
        match *op {
            Operation::Read(k) => touched += usize::from(index.get(k).is_some()),
            Operation::Insert(k) => touched += usize::from(index.insert(k, k)),
            Operation::Remove(k) => touched += usize::from(index.remove(k).is_some()),
            Operation::Scan(lo, hi) => touched += index.range(lo, hi).len(),
        }
    }
    touched
}

/// The same replay against the sharded wrapper, whose mutating operations
/// go through shared references (per-shard locks or RCU publications).
fn replay_sharded(index: &ShardedIndex<LippIndex>, workload: &MixedWorkload) -> usize {
    let mut touched = 0usize;
    for op in &workload.operations {
        match *op {
            Operation::Read(k) => touched += usize::from(index.get(k).is_some()),
            Operation::Insert(k) => touched += usize::from(index.insert(k, k)),
            Operation::Remove(k) => touched += usize::from(index.remove(k).is_some()),
            Operation::Scan(lo, hi) => touched += index.range(lo, hi).len(),
        }
    }
    touched
}

/// How many consecutive writes the batched replay groups into one
/// `write_batch` call.
const WRITE_BATCH: usize = 64;

/// The replay a group-committing server performs: writes buffer until
/// [`WRITE_BATCH`] accumulate and commit as one `write_batch` (one overlay
/// update, one publication, one durability frame per touched shard); reads
/// and scans meanwhile hit the published snapshot — exactly the bounded
/// staleness a batching front-end exhibits between group commits.
fn replay_sharded_batched(index: &ShardedIndex<LippIndex>, workload: &MixedWorkload) -> usize {
    let mut touched = 0usize;
    let mut buffer: Vec<WriteOp> = Vec::with_capacity(WRITE_BATCH);
    for op in &workload.operations {
        match *op {
            Operation::Read(k) => touched += usize::from(index.get(k).is_some()),
            Operation::Insert(k) => buffer.push(WriteOp::Insert { key: k, value: k }),
            Operation::Remove(k) => buffer.push(WriteOp::Remove { key: k }),
            Operation::Scan(lo, hi) => touched += index.range(lo, hi).len(),
        }
        if buffer.len() >= WRITE_BATCH {
            let outcome = index.write_batch(&buffer);
            touched += outcome.fresh_inserts + outcome.removed;
            buffer.clear();
        }
    }
    let outcome = index.write_batch(&buffer);
    touched + outcome.fresh_inserts + outcome.removed
}

fn bench_mixed_workload(c: &mut Criterion) {
    let keys = Dataset::Osm.generate(KEYS, 5);
    let records = identity_records(&keys);
    let mut group = c.benchmark_group("mixed_workload");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for (mix_name, mix) in [
        ("ycsb_b", OperationMix::ycsb_b()),
        // YCSB-E: 95% short scans / 5% inserts, scans starting at
        // Zipfian-popular keys — the scan-heavy row the streaming read
        // path is priced on.
        ("ycsb_e", OperationMix::ycsb_e()),
        ("churn", OperationMix::churn()),
    ] {
        let workload = MixedWorkload::generate(
            &keys,
            &MixedWorkloadSpec {
                num_operations: OPS,
                mix,
                popularity: Popularity::Zipfian(0.9),
                scan_width: 50,
                seed: 21,
            },
        );
        group.bench_with_input(BenchmarkId::new("btree", mix_name), &workload, |b, wl| {
            b.iter_batched(
                || BPlusTree::bulk_load(&records),
                |mut index| black_box(replay(&mut index, wl)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("lipp", mix_name), &workload, |b, wl| {
            b.iter_batched(
                || LippIndex::bulk_load(&records),
                |mut index| black_box(replay(&mut index, wl)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(
            BenchmarkId::new("lipp_csv", mix_name),
            &workload,
            |b, wl| {
                b.iter_batched(
                    || {
                        let mut index = LippIndex::bulk_load(&records);
                        CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut index);
                        index
                    },
                    |mut index| black_box(replay(&mut index, wl)),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(BenchmarkId::new("alex", mix_name), &workload, |b, wl| {
            b.iter_batched(
                || AlexIndex::bulk_load(&records),
                |mut index| black_box(replay(&mut index, wl)),
                criterion::BatchSize::LargeInput,
            );
        });
        // The sharded wrapper across its concurrency A/B knobs: what a
        // single-threaded mixed stream pays for the locked layout vs. the
        // RCU copy-on-write one, and — within RCU — for the flat-vec
        // overlay (every write clones up to `overlay_capacity` entries)
        // vs. the persistent structurally shared one (every write copies
        // one chunk path). The flat row keeps its PR-4 capacity (512) and
        // the persistent rows use the raised default (4096) plus a
        // 512-capacity row that isolates the representation change from
        // the capacity change.
        let sharded_configs = [
            (
                "lipp_sharded_locked",
                ShardingConfig::with_shards(16).with_read_path(ReadPath::Locked),
            ),
            (
                "lipp_sharded_rcu_vec",
                ShardingConfig::with_shards(16)
                    .with_read_path(ReadPath::Rcu)
                    .with_overlay(OverlayRepr::Vec),
            ),
            (
                "lipp_sharded_rcu_pmap512",
                ShardingConfig::with_shards(16)
                    .with_read_path(ReadPath::Rcu)
                    .with_overlay(OverlayRepr::Persistent)
                    .with_overlay_capacity(512),
            ),
            (
                "lipp_sharded_rcu_pmap",
                ShardingConfig::with_shards(16)
                    .with_read_path(ReadPath::Rcu)
                    .with_overlay(OverlayRepr::Persistent),
            ),
        ];
        for (row_name, config) in sharded_configs {
            group.bench_with_input(BenchmarkId::new(row_name, mix_name), &workload, |b, wl| {
                b.iter_batched(
                    || ShardedIndex::<LippIndex>::bulk_load(&records, config),
                    |index| black_box(replay_sharded(&index, wl)),
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        // The group-committed write path (PR 8): the default RCU/pmap row
        // again, but writes grouped into `WRITE_BATCH`-op `write_batch`
        // calls — one overlay update and one publication per touched shard
        // per group instead of one of each per write.
        group.bench_with_input(
            BenchmarkId::new("lipp_sharded_rcu_pmap_batched", mix_name),
            &workload,
            |b, wl| {
                b.iter_batched(
                    || {
                        ShardedIndex::<LippIndex>::bulk_load(
                            &records,
                            ShardingConfig::with_shards(16)
                                .with_read_path(ReadPath::Rcu)
                                .with_overlay(OverlayRepr::Persistent),
                        )
                    },
                    |index| black_box(replay_sharded_batched(&index, wl)),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        // WAL-append overhead: the default RCU/pmap row again, but with
        // the per-shard checkpoint + WAL sink attached (fsync off, so the
        // delta is serialisation + page-cache appends, not disk stalls).
        // Compare against `lipp_sharded_rcu_pmap` to price durability.
        group.bench_with_input(
            BenchmarkId::new("lipp_sharded_rcu_pmap_wal", mix_name),
            &workload,
            |b, wl| {
                b.iter_batched(
                    || {
                        let dir = fresh_store_dir("mixed");
                        let sink = Arc::new(
                            FileSink::create(
                                DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never),
                            )
                            .expect("fresh bench store"),
                        );
                        ShardedIndex::<LippIndex>::bulk_load_durable(
                            &records,
                            ShardingConfig::with_shards(16)
                                .with_read_path(ReadPath::Rcu)
                                .with_overlay(OverlayRepr::Persistent),
                            sink,
                        )
                    },
                    |index| black_box(replay_sharded(&index, wl)),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        // The same durable configuration driven through the batched replay:
        // each group commit is one checksummed WAL frame and one `write(2)`
        // instead of `WRITE_BATCH` framed appends — repricing the PR 6
        // per-record `write(2)` term under group commit.
        group.bench_with_input(
            BenchmarkId::new("lipp_sharded_rcu_pmap_wal_batched", mix_name),
            &workload,
            |b, wl| {
                b.iter_batched(
                    || {
                        let dir = fresh_store_dir("mixed");
                        let sink = Arc::new(
                            FileSink::create(
                                DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never),
                            )
                            .expect("fresh bench store"),
                        );
                        ShardedIndex::<LippIndex>::bulk_load_durable(
                            &records,
                            ShardingConfig::with_shards(16)
                                .with_read_path(ReadPath::Rcu)
                                .with_overlay(OverlayRepr::Persistent),
                            sink,
                        )
                    },
                    |index| black_box(replay_sharded_batched(&index, wl)),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
    std::fs::remove_dir_all(store_root()).ok();
}

/// Root for every throwaway store the durability benches create; wiped at
/// the end of each bench function.
fn store_root() -> PathBuf {
    std::env::temp_dir().join(format!("csv_bench_durability_{}", std::process::id()))
}

/// A unique empty directory under [`store_root`].
fn fresh_store_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = store_root().join(format!("{tag}-{}", NEXT.fetch_add(1, Ordering::Relaxed)));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Copies a (flat) store directory, preserving the master so every
/// recovery iteration replays the same crash image.
fn copy_store(master: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create store copy dir");
    for entry in std::fs::read_dir(master).expect("read master store") {
        let entry = entry.expect("store entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
    }
}

/// Recovery-time rows: rebuild the sharded index from a crash image with
/// (a) clean checkpoints only and (b) a WAL tail of `OPS` unfolded writes,
/// so the replay term is priced separately from checkpoint loading. The
/// master image is built once; every iteration recovers a fresh copy
/// (recovery re-checkpoints the store, so recovering in place would
/// measure a different image after the first iteration).
fn bench_recovery(c: &mut Criterion) {
    let keys = Dataset::Osm.generate(KEYS, 5);
    let records = identity_records(&keys);
    // An overlay deeper than the logged tail: none of the post-checkpoint
    // writes fold, so they all stay in the WAL for replay.
    let sharding = || {
        ShardingConfig::with_shards(16)
            .with_read_path(ReadPath::Rcu)
            .with_overlay(OverlayRepr::Persistent)
            .with_overlay_capacity(2 * OPS)
    };
    let build_master = |logged: usize| -> PathBuf {
        let dir = fresh_store_dir("master");
        let sink = Arc::new(
            FileSink::create(DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never))
                .expect("fresh bench store"),
        );
        let index = ShardedIndex::<LippIndex>::bulk_load_durable(&records, sharding(), sink);
        let base = *keys.last().unwrap() + 1;
        for i in 0..logged as u64 {
            index.insert(base + i, i);
        }
        // Simulated crash: drop without checkpointing, leaving the logged
        // tail in the WALs.
        dir
    };

    let mut group = c.benchmark_group("recovery");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (row_name, logged) in [("checkpoint_only", 0), ("wal_replay_20k", OPS)] {
        let master = build_master(logged);
        group.bench_function(row_name, |b| {
            b.iter_batched(
                || {
                    let dir = fresh_store_dir("recover");
                    copy_store(&master, &dir);
                    dir
                },
                |dir| {
                    let recovered = recover::<LippIndex>(DurabilityConfig::new(&dir), sharding())
                        .expect("bench store must recover");
                    black_box(recovered.report.replayed())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
    std::fs::remove_dir_all(store_root()).ok();
}

/// The isolated tentpole measurement: RCU point-write cost at *full*
/// overlay occupancy, where the representations actually diverge. The
/// mixed rows above rarely fill an overlay (a 20k-op YCSB-B run spreads
/// ~60 writes per shard), so their per-write copy term is dominated by
/// snapshot-publication overhead. Here a single shard's overlay is
/// pre-filled to `capacity` entries and every measured write overwrites an
/// overlay slot without folding: the flat vec clones all `capacity`
/// entries per write, the persistent map copies one chunk path.
fn bench_overlay_write_cost(c: &mut Criterion) {
    const CAPACITY: usize = 4096;
    let keys = Dataset::Osm.generate(KEYS, 5);
    let records = identity_records(&keys);
    let fresh_base = *keys.last().unwrap() + 1;
    let mut group = c.benchmark_group("overlay_write_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .throughput(criterion::Throughput::Elements(CAPACITY as u64));

    for (repr_name, overlay) in [
        ("vec", OverlayRepr::Vec),
        ("persistent", OverlayRepr::Persistent),
    ] {
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &records,
            ShardingConfig::with_shards(1)
                .with_read_path(ReadPath::Rcu)
                .with_overlay(overlay)
                .with_overlay_capacity(CAPACITY),
        );
        // Fill the overlay to capacity; the measured overwrites below keep
        // it exactly there (an overwrite never grows the overlay, so the
        // fold never triggers).
        for i in 0..CAPACITY as u64 {
            index.insert(fresh_base + i, i);
        }
        let mut bump = 0u64;
        group.bench_function(repr_name, |b| {
            b.iter(|| {
                bump += 1;
                for i in 0..CAPACITY as u64 {
                    black_box(index.insert(fresh_base + i, bump));
                }
            });
        });
    }
    // The locked path's cost for the same op stream, as the baseline the
    // RCU write path is measured against.
    {
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &records,
            ShardingConfig::with_shards(1).with_read_path(ReadPath::Locked),
        );
        for i in 0..CAPACITY as u64 {
            index.insert(fresh_base + i, i);
        }
        let mut bump = 0u64;
        group.bench_function("locked", |b| {
            b.iter(|| {
                bump += 1;
                for i in 0..CAPACITY as u64 {
                    black_box(index.insert(fresh_base + i, bump));
                }
            });
        });
    }
    // The group-committed write path (PR 8) over the identical overwrite
    // stream: the same `CAPACITY` writes per iteration, grouped into
    // `insert_batch` calls of 1/16/64/256 ops. On the RCU path a group is
    // one overlay pass and one publication, so the per-write amortised
    // cost should fall toward the locked baseline as the batch grows; the
    // batch-1 rows price the batch API's fixed overhead against the point
    // rows above.
    for (repr_name, config) in [
        (
            "vec_batched",
            ShardingConfig::with_shards(1)
                .with_read_path(ReadPath::Rcu)
                .with_overlay(OverlayRepr::Vec)
                .with_overlay_capacity(CAPACITY),
        ),
        (
            "persistent_batched",
            ShardingConfig::with_shards(1)
                .with_read_path(ReadPath::Rcu)
                .with_overlay(OverlayRepr::Persistent)
                .with_overlay_capacity(CAPACITY),
        ),
        (
            "locked_batched",
            ShardingConfig::with_shards(1).with_read_path(ReadPath::Locked),
        ),
    ] {
        let index = ShardedIndex::<LippIndex>::bulk_load(&records, config);
        for i in 0..CAPACITY as u64 {
            index.insert(fresh_base + i, i);
        }
        for batch in [1usize, 16, 64, 256] {
            let mut bump = 0u64;
            group.bench_with_input(BenchmarkId::new(repr_name, batch), &batch, |b, &batch| {
                let mut buffer: Vec<KeyValue> = Vec::with_capacity(batch);
                b.iter(|| {
                    bump += 1;
                    for start in (0..CAPACITY as u64).step_by(batch) {
                        buffer.clear();
                        let end = (start + batch as u64).min(CAPACITY as u64);
                        buffer.extend((start..end).map(|i| KeyValue::new(fresh_base + i, bump)));
                        black_box(index.insert_batch(&buffer));
                    }
                });
            });
        }
    }
    group.finish();
}

/// The tentpole A/B: what one scan costs materialised (`range`, allocate
/// and fill a `Vec`) vs streamed (`range_visit`, fold records into an
/// accumulator with no allocation), at widths from 64 records up. Runs
/// against the RCU sharded index with overlays deliberately dirtied so
/// the scan pays the real base+overlay merge, and against a plain LIPP
/// index to isolate the single-index cost. The streamed row must be
/// strictly cheaper at every width ≥ 64.
fn bench_scan_cost(c: &mut Criterion) {
    let keys = Dataset::Osm.generate(KEYS, 5);
    let records = identity_records(&keys);
    let mut group = c.benchmark_group("scan_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let sharded = ShardedIndex::<LippIndex>::bulk_load(
        &records,
        ShardingConfig::with_shards(16)
            .with_read_path(ReadPath::Rcu)
            .with_overlay(OverlayRepr::Persistent),
    );
    // Dirty the overlays (upserts and tombstones) without triggering the
    // fold, so scans run the merge-join rather than the base fast path.
    for &k in keys.iter().step_by(61) {
        sharded.insert(k, k ^ 0xF00D);
    }
    for &k in keys.iter().step_by(131) {
        sharded.remove(k);
    }
    let plain = LippIndex::bulk_load(&records);

    for width in [64usize, 256, 1024, 4096] {
        // Deterministic start positions spread over the key space; each
        // iteration scans the same 64 windows of `width` records.
        let starts: Vec<u64> = (0..64)
            .map(|i| keys[(i * 997) % (keys.len() - width)])
            .collect();
        let hi_for = |lo: u64, width: usize| {
            let pos = keys.partition_point(|&k| k < lo);
            keys[(pos + width - 1).min(keys.len() - 1)]
        };
        let windows: Vec<(u64, u64)> = starts.iter().map(|&lo| (lo, hi_for(lo, width))).collect();

        group.bench_with_input(
            BenchmarkId::new("sharded_materialised", width),
            &windows,
            |b, windows| {
                b.iter(|| {
                    let mut sum = 0u64;
                    for &(lo, hi) in windows {
                        for rec in sharded.range(lo, hi) {
                            sum = sum.wrapping_add(rec.value);
                        }
                    }
                    black_box(sum)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded_streaming", width),
            &windows,
            |b, windows| {
                b.iter(|| {
                    let mut sum = 0u64;
                    for &(lo, hi) in windows {
                        let _ = sharded.range_visit(lo, hi, &mut |_, value| {
                            sum = sum.wrapping_add(value);
                            core::ops::ControlFlow::Continue(())
                        });
                    }
                    black_box(sum)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lipp_materialised", width),
            &windows,
            |b, windows| {
                b.iter(|| {
                    let mut sum = 0u64;
                    for &(lo, hi) in windows {
                        for rec in plain.range(lo, hi) {
                            sum = sum.wrapping_add(rec.value);
                        }
                    }
                    black_box(sum)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lipp_streaming", width),
            &windows,
            |b, windows| {
                b.iter(|| {
                    let mut sum = 0u64;
                    for &(lo, hi) in windows {
                        let _ = plain.range_visit(lo, hi, &mut |_, value| {
                            sum = sum.wrapping_add(value);
                            core::ops::ControlFlow::Continue(())
                        });
                    }
                    black_box(sum)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mixed_workload,
    bench_scan_cost,
    bench_overlay_write_cost,
    bench_recovery
);
criterion_main!(benches);
