//! YCSB-style mixed-operation throughput for the original and CSV-enhanced
//! indexes (reads / inserts / removals / short scans).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_alex::AlexIndex;
use csv_btree::BPlusTree;
use csv_common::key::identity_records;
use csv_common::traits::{LearnedIndex, RangeIndex, RemovableIndex};
use csv_concurrent::{ReadPath, ShardedIndex, ShardingConfig};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{
    Dataset, MixedWorkload, MixedWorkloadSpec, Operation, OperationMix, Popularity,
};
use csv_lipp::LippIndex;
use std::hint::black_box;
use std::time::Duration;

const KEYS: usize = 100_000;
const OPS: usize = 20_000;

fn replay<I: LearnedIndex + RangeIndex + RemovableIndex>(
    index: &mut I,
    workload: &MixedWorkload,
) -> usize {
    let mut touched = 0usize;
    for op in &workload.operations {
        match *op {
            Operation::Read(k) => touched += usize::from(index.get(k).is_some()),
            Operation::Insert(k) => touched += usize::from(index.insert(k, k)),
            Operation::Remove(k) => touched += usize::from(index.remove(k).is_some()),
            Operation::Scan(lo, hi) => touched += index.range(lo, hi).len(),
        }
    }
    touched
}

/// The same replay against the sharded wrapper, whose mutating operations
/// go through shared references (per-shard locks or RCU publications).
fn replay_sharded(index: &ShardedIndex<LippIndex>, workload: &MixedWorkload) -> usize {
    let mut touched = 0usize;
    for op in &workload.operations {
        match *op {
            Operation::Read(k) => touched += usize::from(index.get(k).is_some()),
            Operation::Insert(k) => touched += usize::from(index.insert(k, k)),
            Operation::Remove(k) => touched += usize::from(index.remove(k).is_some()),
            Operation::Scan(lo, hi) => touched += index.range(lo, hi).len(),
        }
    }
    touched
}

fn bench_mixed_workload(c: &mut Criterion) {
    let keys = Dataset::Osm.generate(KEYS, 5);
    let records = identity_records(&keys);
    let mut group = c.benchmark_group("mixed_workload");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for (mix_name, mix) in [
        ("ycsb_b", OperationMix::ycsb_b()),
        ("churn", OperationMix::churn()),
    ] {
        let workload = MixedWorkload::generate(
            &keys,
            &MixedWorkloadSpec {
                num_operations: OPS,
                mix,
                popularity: Popularity::Zipfian(0.9),
                scan_width: 50,
                seed: 21,
            },
        );
        group.bench_with_input(BenchmarkId::new("btree", mix_name), &workload, |b, wl| {
            b.iter_batched(
                || BPlusTree::bulk_load(&records),
                |mut index| black_box(replay(&mut index, wl)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("lipp", mix_name), &workload, |b, wl| {
            b.iter_batched(
                || LippIndex::bulk_load(&records),
                |mut index| black_box(replay(&mut index, wl)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(
            BenchmarkId::new("lipp_csv", mix_name),
            &workload,
            |b, wl| {
                b.iter_batched(
                    || {
                        let mut index = LippIndex::bulk_load(&records);
                        CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut index);
                        index
                    },
                    |mut index| black_box(replay(&mut index, wl)),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(BenchmarkId::new("alex", mix_name), &workload, |b, wl| {
            b.iter_batched(
                || AlexIndex::bulk_load(&records),
                |mut index| black_box(replay(&mut index, wl)),
                criterion::BatchSize::LargeInput,
            );
        });
        // The sharded wrapper on both read paths: what a single-threaded
        // mixed stream pays for the locked layout vs. the RCU copy-on-write
        // one (the RCU path buys its lock-free reads with per-write overlay
        // copies — this measures that trade without any concurrency).
        for (path_name, read_path) in [("locked", ReadPath::Locked), ("rcu", ReadPath::Rcu)] {
            group.bench_with_input(
                BenchmarkId::new(format!("lipp_sharded_{path_name}"), mix_name),
                &workload,
                |b, wl| {
                    b.iter_batched(
                        || {
                            ShardedIndex::<LippIndex>::bulk_load(
                                &records,
                                ShardingConfig::with_shards(16).with_read_path(read_path),
                            )
                        },
                        |index| black_box(replay_sharded(&index, wl)),
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mixed_workload);
criterion_main!(benches);
