//! Ablation benches for the smoothing model class and the poisoning dual.
//!
//! * `smoothing_model_class` — Algorithm 1 with the paper's linear indexing
//!   functions vs. the quadratic extension (§1) on easy and hard dataset
//!   analogues, same budget.
//! * `poisoning_attack` — cost of the greedy poisoning attack (§2.3) that
//!   motivated CDF smoothing, for context on the pre-processing budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_core::poisoning::{poison_segment, PoisoningConfig};
use csv_core::{
    smooth_segment, smooth_segment_quadratic, QuadraticSmoothingConfig, SmoothingConfig,
};
use csv_datasets::Dataset;
use std::hint::black_box;
use std::time::Duration;

fn bench_model_class(c: &mut Criterion) {
    let mut group = c.benchmark_group("smoothing_model_class");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for dataset in [Dataset::Covid, Dataset::Genome] {
        let keys = dataset.generate(1_024, 7);
        group.bench_with_input(
            BenchmarkId::new("linear", dataset.name()),
            &keys,
            |b, keys| {
                b.iter(|| black_box(smooth_segment(keys, &SmoothingConfig::with_alpha(0.1))));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("quadratic", dataset.name()),
            &keys,
            |b, keys| {
                b.iter(|| {
                    black_box(smooth_segment_quadratic(
                        keys,
                        &QuadraticSmoothingConfig::with_alpha(0.1),
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_poisoning(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisoning_attack");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &size in &[512usize, 2_048] {
        let keys = Dataset::Osm.generate(size, 3);
        group.bench_with_input(BenchmarkId::from_parameter(size), &keys, |b, keys| {
            b.iter(|| black_box(poison_segment(keys, &PoisoningConfig::with_alpha(0.05))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_class, bench_poisoning);
criterion_main!(benches);
