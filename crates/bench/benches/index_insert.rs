//! Criterion benchmarks for insert throughput, original vs CSV-enhanced
//! (the microscopic view of Fig. 10's insertion-time panel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_bench::{build_enhanced, build_plain, IndexKind};
use csv_common::Key;
use csv_datasets::{Dataset, ReadWriteWorkload};
use std::hint::black_box;
use std::time::Duration;

const NUM_KEYS: usize = 100_000;

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_after_bulk_load");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let keys = Dataset::Osm.generate(NUM_KEYS, 13);
    let workload = ReadWriteWorkload::split(&keys, 1, 0.05, 100, 21);
    let batch: &Vec<Key> = &workload.insert_batches[0];

    for kind in [IndexKind::Lipp, IndexKind::Alex] {
        group.bench_with_input(
            BenchmarkId::new("original", kind.name()),
            batch,
            |b, batch| {
                b.iter_batched(
                    || build_plain(kind, &workload.initial_keys),
                    |mut index| {
                        for &k in batch {
                            black_box(index.insert(k, k));
                        }
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("csv_enhanced", kind.name()),
            batch,
            |b, batch| {
                b.iter_batched(
                    || build_enhanced(kind, &workload.initial_keys, 0.1).0,
                    |mut index| {
                        for &k in batch {
                            black_box(index.insert(k, k));
                        }
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inserts);
criterion_main!(benches);
