//! Scan-tail latency under churn: the streaming-scan acceptance benchmark.
//!
//! A sharded, CSV-optimised LIPP index serves short range scans from the
//! main thread while (a) a writer thread streams fresh inserts —
//! continuously re-dirtying shards so scans cross live overlays and the
//! fold keeps firing — and (b) the engine-owned background thread
//! splits/merges/re-smooths. Each scan's latency lands in a
//! p50/p99/p99.9 histogram, for the locked baseline and the RCU path,
//! each measured twice: materialised (`range`, allocate a `Vec` per scan)
//! and streaming (`range_visit`, fold into an accumulator, zero
//! allocation). The streaming rows should shave the median (no
//! allocator on the hot path) and the RCU rows should keep maintenance
//! pauses out of the tail (on a single-core container the comparison
//! still includes plain CPU competition — run on a multicore host for
//! the isolation the design provides).
//!
//! Hand-rolled harness (no criterion): tail percentiles need
//! per-operation timestamps, not aggregate iteration timing.

use csv_common::key::identity_records;
use csv_common::sync::{AtomicBool, Ordering};
use csv_common::LatencyHistogram;
use csv_concurrent::{
    MaintenanceConfig, MaintenanceEngine, OverlayRepr, ReadPath, ShardedIndex, ShardingConfig,
};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::Dataset;
use csv_lipp::LippIndex;
use std::hint::black_box;
use std::sync::Arc;

const KEYS: usize = 200_000;
const SCANS: usize = 20_000;
const WIDTH: usize = 100;

struct Row {
    path: &'static str,
    mode: &'static str,
    scans: LatencyHistogram,
    passes: usize,
    shards: usize,
}

fn run_one(
    records: &[csv_common::KeyValue],
    windows: &[(u64, u64)],
    path: &'static str,
    config: ShardingConfig,
    streaming: bool,
) -> Row {
    let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));
    let index = Arc::new(ShardedIndex::<LippIndex>::bulk_load(records, config));
    index.optimize(&optimizer);

    let engine = MaintenanceEngine::new(optimizer, MaintenanceConfig::default());
    let handle = engine.spawn(Arc::clone(&index));

    let stop_writer = AtomicBool::new(false);
    let fresh_base = records.last().map_or(0, |r| r.key) + 1;
    let mut scans = LatencyHistogram::new();
    crossbeam::thread::scope(|scope| {
        // The write stream: fresh keys re-dirtying shards so the engine
        // has real work and scans race live overlay churn.
        let index_ref = &index;
        let stop = &stop_writer;
        scope.spawn(move |_| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                index_ref.insert(fresh_base + i, i);
                i += 1;
            }
        });
        for &(lo, hi) in windows {
            let started = std::time::Instant::now();
            if streaming {
                let mut sum = 0u64;
                let _ = index.range_visit(lo, hi, &mut |_, value| {
                    sum = sum.wrapping_add(value);
                    core::ops::ControlFlow::Continue(())
                });
                black_box(sum);
            } else {
                black_box(index.range(lo, hi).len());
            }
            scans.record(started.elapsed());
        }
        stop_writer.store(true, Ordering::Relaxed);
    })
    .expect("threads must not panic");

    let stats = handle.stop();
    Row {
        path,
        mode: if streaming {
            "streaming"
        } else {
            "materialised"
        },
        scans,
        passes: stats.maintain_passes,
        shards: index.num_shards(),
    }
}

fn main() {
    let keys = Dataset::Osm.generate(KEYS, 7);
    let records = identity_records(&keys);
    // Deterministic scan windows of ~WIDTH loaded records each, cycled
    // over the measurement; hi is the WIDTH-th loaded key so every scan
    // returns a full window regardless of key-space gaps.
    let windows: Vec<(u64, u64)> = (0..SCANS)
        .map(|i| {
            let start = (i * 4099) % (keys.len() - WIDTH);
            (keys[start], keys[start + WIDTH - 1])
        })
        .collect();

    println!(
        "scan_tail: {KEYS} OSM keys, LIPP x16 shards, alpha 0.1, {SCANS} {WIDTH}-record scans vs a continuous insert stream + background maintenance"
    );
    println!(
        "{:<10} {:<14} {:>9} {:>9} {:>9} {:>16}",
        "path", "mode", "p50(ns)", "p99(ns)", "p99.9(ns)", "engine passes"
    );
    let base = ShardingConfig::with_shards(16);
    let configs = [
        ("locked", base.with_read_path(ReadPath::Locked)),
        (
            "rcu/pmap",
            base.with_read_path(ReadPath::Rcu)
                .with_overlay(OverlayRepr::Persistent),
        ),
    ];
    for (path, config) in configs {
        for streaming in [false, true] {
            let row = run_one(&records, &windows, path, config, streaming);
            println!(
                "{:<10} {:<14} {:>9} {:>9} {:>9} {:>16} ({} shards)",
                row.path,
                row.mode,
                row.scans.p50_ns(),
                row.scans.p99_ns(),
                row.scans.quantile_ns(0.999),
                row.passes,
                row.shards,
            );
        }
    }
}
