//! Criterion micro-benchmarks for Algorithm 1 (single-segment CDF smoothing):
//! throughput vs segment size and the Rescan vs Lazy greedy-driver ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_core::{smooth_segment, GreedyMode, SmoothingConfig};
use csv_datasets::Dataset;
use std::hint::black_box;
use std::time::Duration;

fn bench_smoothing_segment_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("smooth_segment_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &size in &[256usize, 1024, 4096] {
        let keys = Dataset::Genome.generate(size, 7);
        group.bench_with_input(BenchmarkId::new("alpha_0.1", size), &keys, |b, keys| {
            b.iter(|| black_box(smooth_segment(keys, &SmoothingConfig::with_alpha(0.1))));
        });
    }
    group.finish();
}

fn bench_greedy_mode_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_mode_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let keys = Dataset::Osm.generate(2048, 11);
    for (label, mode) in [("rescan", GreedyMode::Rescan), ("lazy", GreedyMode::Lazy)] {
        group.bench_function(label, |b| {
            let config = SmoothingConfig {
                mode,
                ..SmoothingConfig::with_alpha(0.2)
            };
            b.iter(|| black_box(smooth_segment(&keys, &config)));
        });
    }
    group.finish();
}

fn bench_alpha_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("smoothing_alpha");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let keys = Dataset::Genome.generate(1024, 3);
    for &alpha in &[0.05, 0.2, 0.8] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            b.iter(|| black_box(smooth_segment(&keys, &SmoothingConfig::with_alpha(alpha))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_smoothing_segment_size,
    bench_greedy_mode_ablation,
    bench_alpha_scaling
);
criterion_main!(benches);
