//! Read-tail latency under active maintenance: the acceptance benchmark for
//! the RCU read path.
//!
//! A sharded, CSV-optimised LIPP index serves point lookups from the main
//! thread while (a) a writer thread streams fresh inserts — continuously
//! re-dirtying shards so the maintenance engine has real work — and (b) the
//! engine-owned background thread splits/merges/re-smooths. The lookup
//! latency distribution (p50/p99/p99.9) is recorded for each read path,
//! with and without the engine running. On the locked path maintenance's
//! apply phase and splits hold locks readers must wait for; on the RCU path
//! they publish copy-on-write snapshots, so the read tail should not
//! inherit maintenance pauses (on the single-core container the comparison
//! still includes plain CPU competition — run on a multicore host for the
//! isolation the design provides).
//!
//! Hand-rolled harness (no criterion): tail percentiles need per-operation
//! timestamps, not aggregate iteration timing.

use csv_common::key::identity_records;
use csv_common::sync::{AtomicBool, Ordering};
use csv_common::LatencyHistogram;
use csv_concurrent::{
    MaintenanceConfig, MaintenanceEngine, OverlayRepr, ReadPath, ShardedIndex, ShardingConfig,
};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{Dataset, ReadOnlyWorkload};
use csv_lipp::LippIndex;
use std::sync::Arc;

const KEYS: usize = 200_000;
const LOOKUPS: usize = 200_000;

struct Row {
    label: &'static str,
    maintained: bool,
    lookups: LatencyHistogram,
    passes: usize,
    splits: usize,
    merges: usize,
    shards: usize,
}

fn run_one(
    records: &[csv_common::KeyValue],
    queries: &[u64],
    label: &'static str,
    config: ShardingConfig,
    maintain: bool,
) -> Row {
    let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));
    let index = Arc::new(ShardedIndex::<LippIndex>::bulk_load(records, config));
    index.optimize(&optimizer);

    let engine = MaintenanceEngine::new(optimizer, MaintenanceConfig::default());
    let handle = maintain.then(|| engine.spawn(Arc::clone(&index)));

    let stop_writer = AtomicBool::new(false);
    let fresh_base = records.last().map_or(0, |r| r.key) + 1;
    let mut lookups = LatencyHistogram::new();
    crossbeam::thread::scope(|scope| {
        // The write stream: fresh keys spread over a few shards, fast
        // enough to keep the engine busy for the whole measurement.
        let index_ref = &index;
        let stop = &stop_writer;
        scope.spawn(move |_| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                index_ref.insert(fresh_base + i, i);
                i += 1;
            }
        });
        for &q in queries {
            let started = std::time::Instant::now();
            let hit = index.get(q).is_some();
            lookups.record(started.elapsed());
            assert!(hit, "loaded keys must stay visible under maintenance");
        }
        stop_writer.store(true, Ordering::Relaxed);
    })
    .expect("threads must not panic");

    let stats = handle.map(|h| h.stop()).unwrap_or_default();
    Row {
        label,
        maintained: maintain,
        lookups,
        passes: stats.maintain_passes,
        splits: stats.splits,
        merges: stats.merges,
        shards: index.num_shards(),
    }
}

fn main() {
    let keys = Dataset::Osm.generate(KEYS, 7);
    let records = identity_records(&keys);
    let queries = ReadOnlyWorkload::uniform(keys, LOOKUPS, 13).queries;

    println!(
        "read_tail: {KEYS} OSM keys, LIPP x16 shards, alpha 0.1, {LOOKUPS} lookups vs a continuous insert stream"
    );
    println!(
        "{:<10} {:<12} {:>9} {:>9} {:>9} {:>22}",
        "path", "maintenance", "p50(ns)", "p99(ns)", "p99.9(ns)", "engine (passes/sp/me)"
    );
    // The locked baseline plus the RCU path under both overlay
    // representations: the overlay is a write-side knob, but a bigger
    // persistent overlay also shifts the read tail (deeper overlay probes,
    // far rarer folds).
    let base = ShardingConfig::with_shards(16);
    let configs = [
        ("locked", base.with_read_path(ReadPath::Locked)),
        (
            "rcu/vec",
            base.with_read_path(ReadPath::Rcu)
                .with_overlay(OverlayRepr::Vec),
        ),
        (
            "rcu/pmap",
            base.with_read_path(ReadPath::Rcu)
                .with_overlay(OverlayRepr::Persistent),
        ),
    ];
    for (label, config) in configs {
        for maintain in [false, true] {
            let row = run_one(&records, &queries, label, config, maintain);
            println!(
                "{:<10} {:<12} {:>9} {:>9} {:>9} {:>14}/{}/{} ({} shards)",
                row.label,
                if row.maintained { "background" } else { "off" },
                row.lookups.p50_ns(),
                row.lookups.p99_ns(),
                row.lookups.quantile_ns(0.999),
                row.passes,
                row.splits,
                row.merges,
                row.shards,
            );
        }
    }
}
