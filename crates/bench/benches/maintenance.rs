//! Dirty-planning cost vs. the dirty fraction.
//!
//! The maintenance engine's value proposition is that re-planning after a
//! write burst costs O(dirty fraction) of a full plan, not O(index). This
//! bench pins that: a 100k-key LIPP is optimised and marked clean, then a
//! varying fraction of its level-2 sub-trees is dirtied (one remove +
//! re-insert each, which flags the sub-tree without changing its key set)
//! and `CsvOptimizer::plan_dirty` is measured against the full
//! `CsvOptimizer::plan` — both in wall-clock and in `SmoothingCounters`
//! refits, which are asserted to scale with the dirty fraction.
//!
//! Run with `cargo bench --bench maintenance`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_common::key::identity_records;
use csv_common::traits::{LearnedIndex, RemovableIndex};
use csv_core::{CsvConfig, CsvIntegrable, CsvOptimizer};
use csv_datasets::Dataset;
use csv_lipp::LippIndex;
use std::hint::black_box;
use std::time::Duration;

/// Builds an optimised, clean 100k-key LIPP and dirties `fraction` of its
/// level-2 sub-trees (evenly strided across the key space) without changing
/// any key set.
fn dirtied_index(keys: &[u64], optimizer: &CsvOptimizer, fraction: f64) -> LippIndex {
    let mut index = LippIndex::bulk_load(&identity_records(keys));
    optimizer.optimize(&mut index);
    index.csv_mark_clean();
    let subtrees = index.csv_subtrees_at_level(2);
    let dirty_count = ((subtrees.len() as f64 * fraction).round() as usize).min(subtrees.len());
    if dirty_count == 0 {
        return index;
    }
    let stride = (subtrees.len() / dirty_count).max(1);
    for subtree in subtrees.into_iter().step_by(stride).take(dirty_count) {
        let key = index.csv_collect_keys(&subtree)[0];
        let value = index.get(key).expect("collected keys are stored");
        index.remove(key);
        index.insert(key, value);
    }
    index
}

fn bench_dirty_fraction(c: &mut Criterion) {
    let keys = Dataset::Osm.generate(100_000, 7);
    let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

    // The asserted pin — dirty planning does O(k) of the full plan's
    // smoothing work: with k% of the sub-trees dirty it considers exactly
    // those sub-trees and spends exactly the refits the full plan spends on
    // them (per-sub-tree refit cost is wildly non-uniform on clustered
    // data, so the *work* pin is against the same sub-trees' share, not
    // against k× the total).
    for &fraction in &[0.0f64, 0.1, 0.5, 1.0] {
        let index = dirtied_index(&keys, &optimizer, fraction);
        let full = optimizer.plan(&index);
        let dirty_plan = optimizer.plan_dirty(&index);
        let expected_count = ((full.len() as f64 * fraction).round() as usize).min(full.len());
        assert_eq!(dirty_plan.len(), expected_count, "fraction {fraction}");
        let dirty_ids: std::collections::HashSet<usize> = dirty_plan
            .decisions()
            .iter()
            .map(|d| d.subtree.node_id)
            .collect();
        let expected_refits: usize = full
            .decisions()
            .iter()
            .filter(|d| dirty_ids.contains(&d.subtree.node_id))
            .map(|d| d.counters.gap_refits)
            .sum();
        assert_eq!(
            dirty_plan.gap_refits(),
            expected_refits,
            "fraction {fraction}: dirty planning must spend exactly its sub-trees' share"
        );
        eprintln!(
            "# plan_dirty fraction={fraction}: subtrees={}/{} refits={} ({:.1}% of full plan's {})",
            dirty_plan.len(),
            full.len(),
            dirty_plan.gap_refits(),
            dirty_plan.gap_refits() as f64 / full.gap_refits().max(1) as f64 * 100.0,
            full.gap_refits(),
        );
        if fraction >= 1.0 {
            assert_eq!(dirty_plan.gap_refits(), full.gap_refits());
            assert_eq!(dirty_plan.decisions(), full.decisions());
        }
    }

    let mut group = c.benchmark_group("maintenance_dirty_planning");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("plan_full", |b| {
        let index = dirtied_index(&keys, &optimizer, 1.0);
        b.iter(|| black_box(optimizer.plan(&index)));
    });
    for &fraction in &[0.1f64, 0.5, 1.0] {
        let index = dirtied_index(&keys, &optimizer, fraction);
        group.bench_with_input(
            BenchmarkId::new("plan_dirty", format!("{fraction}")),
            &fraction,
            |b, _| {
                b.iter(|| black_box(optimizer.plan_dirty(&index)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dirty_fraction);
criterion_main!(benches);
