//! Criterion benchmarks for point-lookup latency: every index in the
//! workspace, original vs CSV-enhanced (the microscopic view of Figs. 6–7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_bench::{build_enhanced, build_plain, IndexKind};
use csv_btree::BPlusTree;
use csv_common::key::identity_records;
use csv_common::rng::XorShift64;
use csv_common::traits::LearnedIndex;
use csv_common::Key;
use csv_datasets::Dataset;
use csv_pgm::PgmIndex;
use std::hint::black_box;
use std::time::Duration;

const NUM_KEYS: usize = 200_000;
const NUM_QUERIES: usize = 2_000;

fn queries(keys: &[Key]) -> Vec<Key> {
    let mut rng = XorShift64::new(99);
    (0..NUM_QUERIES)
        .map(|_| keys[rng.next_below(keys.len() as u64) as usize])
        .collect()
}

fn bench_learned_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_lookup");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let keys = Dataset::Genome.generate(NUM_KEYS, 5);
    let qs = queries(&keys);
    for kind in IndexKind::all() {
        let plain = build_plain(kind, &keys);
        group.bench_with_input(BenchmarkId::new("original", kind.name()), &qs, |b, qs| {
            b.iter(|| {
                for &q in qs {
                    black_box(plain.get(q));
                }
            });
        });
        let (enhanced, _) = build_enhanced(kind, &keys, 0.1);
        group.bench_with_input(
            BenchmarkId::new("csv_enhanced", kind.name()),
            &qs,
            |b, qs| {
                b.iter(|| {
                    for &q in qs {
                        black_box(enhanced.get(q));
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_lookup_baselines");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let keys = Dataset::Genome.generate(NUM_KEYS, 5);
    let qs = queries(&keys);
    let records = identity_records(&keys);
    let btree = BPlusTree::bulk_load(&records);
    let pgm = PgmIndex::bulk_load(&records);
    group.bench_function("btree", |b| {
        b.iter(|| {
            for &q in &qs {
                black_box(btree.get(q));
            }
        })
    });
    group.bench_function("pgm", |b| {
        b.iter(|| {
            for &q in &qs {
                black_box(pgm.get(q));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_learned_indexes, bench_baselines);
criterion_main!(benches);
