//! The two scaling dimensions of the optimisation pipeline:
//!
//! 1. `smoothing_refit_scaling` — Rescan vs the CELF-style lazy-heap driver
//!    on large single segments. The per-run counters are printed so the
//!    refits avoided by the heap are visible next to the wall-clock numbers.
//! 2. `parallel_level_sweep` — `CsvOptimizer::optimize` (sequential) vs
//!    `optimize_parallel` at several thread-pool widths on a 1M-key LIPP
//!    index.
//!
//! Run with `cargo bench --bench smoothing_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_common::key::identity_records;
use csv_common::traits::LearnedIndex;
use csv_core::{smooth_segment, CsvConfig, CsvOptimizer, GreedyMode, SmoothingConfig};
use csv_datasets::Dataset;
use csv_lipp::LippIndex;
use std::hint::black_box;
use std::time::Duration;

fn bench_refit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("smoothing_refit_scaling");
    group
        .sample_size(5)
        .measurement_time(Duration::from_secs(2));
    for &size in &[10_000usize, 100_000] {
        let keys = Dataset::Genome.generate(size, 7);
        let base = SmoothingConfig {
            alpha: 1.0,
            max_budget: Some(64),
            ..SmoothingConfig::default()
        };
        for (label, mode) in [("rescan", GreedyMode::Rescan), ("lazy", GreedyMode::Lazy)] {
            let config = SmoothingConfig { mode, ..base };
            let result = smooth_segment(&keys, &config);
            eprintln!(
                "# {label}/{size}: points={} refits={} revalidations={} fallbacks={} loss={:.6}",
                result.virtual_points.len(),
                result.counters.gap_refits,
                result.counters.stale_revalidations,
                result.counters.fallback_rescans,
                result.loss_after_all,
            );
            group.bench_with_input(BenchmarkId::new(label, size), &config, |b, config| {
                b.iter(|| black_box(smooth_segment(&keys, config)));
            });
        }
    }
    group.finish();
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let keys = Dataset::Osm.generate(1_000_000, 3);
    let records = identity_records(&keys);
    let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

    let mut group = c.benchmark_group("parallel_level_sweep");
    group
        .sample_size(3)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("sequential", |b| {
        b.iter_batched(
            || LippIndex::bulk_load(&records),
            |mut index| black_box(optimizer.optimize(&mut index)),
            criterion::BatchSize::LargeInput,
        );
    });
    for &threads in &[2usize, 4, 8] {
        // A scoped pool per width: the global pool can only be built once
        // per process, so the width comparison must not go through it.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build bench thread pool");
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, _| {
            b.iter_batched(
                || LippIndex::bulk_load(&records),
                |mut index| pool.install(|| black_box(optimizer.optimize_parallel(&mut index))),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refit_scaling, bench_parallel_sweep);
criterion_main!(benches);
