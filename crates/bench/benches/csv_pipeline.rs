//! Criterion benchmarks for the CSV pre-processing pipeline itself
//! (the microscopic view of Tables 3 and 4): bulk load + Algorithm 2 at
//! different smoothing thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csv_bench::IndexKind;
use csv_common::key::identity_records;
use csv_common::traits::LearnedIndex;
use csv_core::cost::CostModel;
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::Dataset;
use std::hint::black_box;
use std::time::Duration;

const NUM_KEYS: usize = 100_000;

fn bench_csv_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("csv_preprocessing");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let keys = Dataset::Genome.generate(NUM_KEYS, 17);
    let records = identity_records(&keys);
    for &alpha in &[0.05, 0.1, 0.4] {
        group.bench_with_input(BenchmarkId::new("lipp", alpha), &alpha, |b, &alpha| {
            b.iter_batched(
                || csv_lipp::LippIndex::bulk_load(&records),
                |mut index| {
                    black_box(CsvOptimizer::new(CsvConfig::for_lipp(alpha)).optimize(&mut index))
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("alex", alpha), &alpha, |b, &alpha| {
            b.iter_batched(
                || csv_alex::AlexIndex::bulk_load(&records),
                |mut index| {
                    let config = CsvConfig::for_alex(alpha, CostModel::default());
                    black_box(CsvOptimizer::new(config).optimize(&mut index))
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_load");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let keys = Dataset::Facebook.generate(NUM_KEYS, 19);
    for kind in IndexKind::all() {
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(csv_bench::build_plain(kind, &keys)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_csv_preprocessing, bench_bulk_load);
criterion_main!(benches);
