//! Batched point reads: `multi_get` vs N individual `get`s.
//!
//! The serving front-end turns a `MultiGet` frame into one
//! `ShardedIndex::multi_get` call, which routes the whole batch first
//! (shard-partitioning the keys) and then resolves each shard's slice in
//! one visit — amortising shard routing and, on the RCU path, snapshot
//! acquisition across the batch. This benchmark measures that amortisation
//! directly, per read path and batch size, against the loop-of-gets a
//! naive server would run. The pinned-`ReadView` rows show the zero-atomic
//! fast path a server worker actually uses between re-pins.
//!
//! Hand-rolled harness (no criterion): the comparison is a simple
//! keys-per-second ratio over identical batches, and one table reads
//! better than six criterion groups.

use csv_common::key::identity_records;
use csv_concurrent::{ReadPath, ShardedIndex, ShardingConfig};
use csv_core::{CsvConfig, CsvOptimizer};
use csv_datasets::{Dataset, Zipfian};
use csv_lipp::LippIndex;
use std::time::Instant;

const KEYS: usize = 400_000;
const TOTAL_LOOKUPS: usize = 1 << 20;
const BATCH_SIZES: [usize; 3] = [16, 64, 256];

fn keys_per_sec(total: usize, elapsed: std::time::Duration) -> f64 {
    total as f64 / elapsed.as_secs_f64()
}

fn main() {
    let keys = Dataset::Osm.generate(KEYS, 7);
    let records = identity_records(&keys);
    // Zipfian batches mirror what the load generator sends: hot keys
    // repeat within and across batches, misses come from beyond the space.
    let mut queries = Zipfian::new(keys.len(), 0.99, 13).sample_keys(&keys, TOTAL_LOOKUPS);
    for slot in queries.iter_mut().step_by(64) {
        *slot = keys.last().unwrap() + (*slot % 1024) + 1; // ~1.5% misses
    }

    println!(
        "multi_get: {KEYS} OSM keys, LIPP x16 shards, alpha 0.1, {TOTAL_LOOKUPS} Zipfian lookups per cell"
    );
    println!(
        "{:<8} {:<6} {:>15} {:>15} {:>15} {:>8}",
        "path", "batch", "loop-get (k/s)", "multi_get (k/s)", "view-multi (k/s)", "speedup"
    );

    for read_path in [ReadPath::Locked, ReadPath::Rcu] {
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &records,
            ShardingConfig::with_shards(16).with_read_path(read_path),
        );
        index.optimize(&CsvOptimizer::new(CsvConfig::for_lipp(0.1)));

        for batch in BATCH_SIZES {
            let batches: Vec<&[u64]> = queries.chunks_exact(batch).collect();
            let total = batches.len() * batch;

            let started = Instant::now();
            let mut hits = 0usize;
            for chunk in &batches {
                for &k in *chunk {
                    hits += usize::from(index.get(k).is_some());
                }
            }
            let loop_rate = keys_per_sec(total, started.elapsed());

            let started = Instant::now();
            let mut batched_hits = 0usize;
            for chunk in &batches {
                batched_hits += index
                    .multi_get(chunk)
                    .iter()
                    .filter(|v| v.is_some())
                    .count();
            }
            let multi_rate = keys_per_sec(total, started.elapsed());
            assert_eq!(hits, batched_hits, "multi_get must agree with get");

            // The server worker's fast path: resolve against a pinned
            // ReadView (RCU only — the locked path has no snapshots).
            let view_rate = index.read_view().map(|view| {
                let started = Instant::now();
                let mut view_hits = 0usize;
                for chunk in &batches {
                    view_hits += view.multi_get(chunk).iter().filter(|v| v.is_some()).count();
                }
                assert_eq!(view_hits, hits, "the pinned view must agree too");
                keys_per_sec(total, started.elapsed())
            });

            println!(
                "{:<8} {:<6} {:>15.0} {:>15.0} {:>15} {:>7.2}x",
                match read_path {
                    ReadPath::Locked => "locked",
                    ReadPath::Rcu => "rcu",
                },
                batch,
                loop_rate,
                multi_rate,
                view_rate.map_or_else(|| "-".to_string(), |r| format!("{r:.0}")),
                multi_rate / loop_rate,
            );
        }
    }
}
