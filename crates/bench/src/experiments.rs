//! One function per table/figure of the paper's evaluation section.
//!
//! Every function prints a tab-separated table to stdout; the `experiments`
//! binary dispatches on the experiment name. Scales are configurable via
//! [`ExperimentConfig`]; the defaults are laptop-sized (see DESIGN.md §3).

use crate::harness::{
    build_enhanced_with, build_plain, key_levels, measure_inserts, measure_queries, promoted_keys,
    IndexKind,
};
use csv_common::key::identity_records;
use csv_common::rng::XorShift64;
use csv_common::traits::LearnedIndex;
use csv_common::Key;
use csv_core::competitors::GapInsertionLayout;
use csv_core::exhaustive_smooth;
use csv_core::paper_example::{fig2_keys, reported, FIG2_ALPHA};
use csv_core::segment::SegmentState;
use csv_core::{smooth_segment, CsvConfig, CsvOptimizer, SmoothingConfig};
use csv_datasets::{
    cdf::ZoomedWindow, downsample::cardinality_chain, CdfStats, Dataset, ReadWriteWorkload,
};
use csv_lipp::LippIndex;
use std::time::Instant;

/// Names accepted by [`run_experiment`] (and the `experiments` binary).
pub const EXPERIMENT_NAMES: &[&str] = &[
    "fig1", "fig2", "fig3", "fig4", "fig5", "table1", "table2", "fig6", "fig7", "fig8", "table3",
    "table4", "fig9", "fig10", "all",
];

/// Scale parameters shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Keys per dataset (the paper uses 200 M; default here is 400 k).
    pub num_keys: usize,
    /// Lookups per measurement.
    pub num_queries: usize,
    /// RNG seed for dataset generation and query sampling.
    pub seed: u64,
    /// Worker threads for CSV optimisation sweeps (0 = one per core).
    pub threads: usize,
    /// Algorithm 1 greedy driver: the lazy heap (default) or the
    /// paper-faithful full rescan.
    pub greedy: csv_core::GreedyMode,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            num_keys: 400_000,
            num_queries: 20_000,
            seed: 42,
            threads: 0,
            greedy: csv_core::GreedyMode::Lazy,
        }
    }
}

/// The smoothing thresholds swept by the α experiments (paper §6.2.1).
pub const ALPHAS: [f64; 5] = [0.05, 0.1, 0.2, 0.4, 0.8];

/// Runs one experiment by name. Unknown names return `false`.
pub fn run_experiment(name: &str, config: &ExperimentConfig) -> bool {
    csv_core::configure_global_threads(config.threads);
    match name {
        "fig1" => fig1_level_latency(config),
        "fig2" => fig2_running_example(),
        "fig3" => fig3_loss_curve(),
        "fig4" => fig4_derivative_curve(),
        "fig5" => fig5_dataset_cdfs(config),
        "table1" => table1_technique_comparison(config),
        "table2" => table2_approximation_quality(),
        "fig6" | "fig7" | "fig8" => alpha_sweep(config),
        "table3" => table3_4_preprocessing(config, IndexKind::Lipp),
        "table4" => table3_4_preprocessing(config, IndexKind::Alex),
        "fig9" => fig9_cardinality(config),
        "fig10" => fig10_read_write(config),
        "all" => {
            for name in EXPERIMENT_NAMES.iter().filter(|n| **n != "all") {
                println!("\n############ {name} ############");
                run_experiment(name, config);
            }
            true
        }
        _ => return false,
    };
    true
}

fn sample_queries(keys: &[Key], count: usize, seed: u64) -> Vec<Key> {
    let mut rng = XorShift64::new(seed);
    (0..count)
        .map(|_| keys[rng.next_below(keys.len() as u64) as usize])
        .collect()
}

/// Fig. 1 — average query time per level of the (plain) LIPP index.
pub fn fig1_level_latency(config: &ExperimentConfig) -> bool {
    println!("dataset\tlevel\tkeys_at_level\tavg_ns\tavg_abstract_cost");
    for dataset in Dataset::paper_datasets() {
        let keys = dataset.generate(config.num_keys, config.seed);
        let index = LippIndex::bulk_load(&identity_records(&keys));
        let stats = csv_common::traits::LearnedIndex::stats(&index);
        // Bucket a query sample by the level of the queried key.
        let queries = sample_queries(&keys, config.num_queries, config.seed ^ 1);
        let mut buckets: Vec<Vec<Key>> = vec![Vec::new(); stats.height + 1];
        for q in queries {
            if let Some(l) = csv_common::traits::LearnedIndex::level_of_key(&index, q) {
                buckets[l].push(q);
            }
        }
        for (level, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let m = measure_queries(&index, bucket);
            println!(
                "{}\t{}\t{}\t{:.1}\t{:.2}",
                dataset.name(),
                level,
                stats.level_histogram.at(level),
                m.avg_ns,
                m.avg_cost
            );
        }
    }
    true
}

/// Fig. 2 — the running example's loss before/after smoothing.
pub fn fig2_running_example() -> bool {
    let keys = fig2_keys();
    let result = smooth_segment(&keys, &SmoothingConfig::with_alpha(FIG2_ALPHA));
    println!("metric\tmeasured\tpaper");
    println!(
        "loss_before\t{:.3}\t{:.2}",
        result.loss_before,
        reported::LOSS_BEFORE
    );
    println!(
        "loss_after_real\t{:.3}\t{:.2}",
        result.loss_after_real,
        reported::LOSS_AFTER_REAL
    );
    println!(
        "loss_after_all\t{:.3}\t{:.2}",
        result.loss_after_all,
        reported::LOSS_AFTER_ALL
    );
    println!("virtual_points\t{}\t5", result.virtual_points.len());
    true
}

/// Fig. 3 — loss as a function of the candidate virtual-point value.
pub fn fig3_loss_curve() -> bool {
    let keys = fig2_keys();
    let state = SegmentState::from_keys(&keys);
    println!("candidate_value\tloss");
    println!("original\t{:.4}", state.loss());
    let (min, max) = (*keys.first().unwrap(), *keys.last().unwrap());
    for v in (min + 1)..max {
        if !state.contains(v) {
            println!("{v}\t{:.4}", state.candidate_loss(v));
        }
    }
    true
}

/// Fig. 4 — first derivative of the loss w.r.t. the candidate value.
pub fn fig4_derivative_curve() -> bool {
    let keys = fig2_keys();
    let state = SegmentState::from_keys(&keys);
    println!("candidate_value\tloss_derivative");
    let (min, max) = (*keys.first().unwrap(), *keys.last().unwrap());
    for v in (min + 1)..max {
        if !state.contains(v) {
            println!("{v}\t{:.6}", state.candidate_loss_derivative(v));
        }
    }
    true
}

/// Fig. 5 — CDF linearity of the datasets, globally and zoomed in.
pub fn fig5_dataset_cdfs(config: &ExperimentConfig) -> bool {
    println!("dataset\tscope\tnormalized_rmse\tnormalized_max_error\tr_squared");
    for dataset in Dataset::paper_datasets() {
        let keys = dataset.generate(config.num_keys, config.seed);
        let global = CdfStats::of(&keys);
        let window = ZoomedWindow::paper_default(keys.len());
        let local = window.stats(&keys);
        println!(
            "{}\tglobal\t{:.6}\t{:.6}\t{:.6}",
            dataset.name(),
            global.normalized_rmse,
            global.normalized_max_error,
            global.r_squared
        );
        println!(
            "{}\tzoomed\t{:.6}\t{:.6}\t{:.6}",
            dataset.name(),
            local.normalized_rmse,
            local.normalized_max_error,
            local.r_squared
        );
    }
    true
}

/// Table 1 — qualitative technique comparison, backed by measured storage
/// overheads for CSV and the Gap-Insertion competitor.
pub fn table1_technique_comparison(config: &ExperimentConfig) -> bool {
    let keys = Dataset::Genome.generate(config.num_keys.min(200_000), config.seed);
    let mut index = LippIndex::bulk_load(&identity_records(&keys));
    let before = csv_common::traits::LearnedIndex::stats(&index).size_bytes as f64;
    CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut index);
    let csv_overhead =
        (csv_common::traits::LearnedIndex::stats(&index).size_bytes as f64 / before - 1.0) * 100.0;
    let gi = GapInsertionLayout::build(&keys, 1.8);
    println!("technique\tquery_transform\tstorage_overhead_pct\tintegrable\trobust");
    println!("CSV\tno\t{csv_overhead:.1}\tyes\tyes");
    println!("NFL\tyes\t(not reproduced: generative flow)\tyes\tno");
    println!("GI\tno\t{:.1}\tno\tyes", gi.storage_overhead_percent());
    true
}

/// Table 2 — approximation quality and runtime of greedy CSV vs exhaustive.
pub fn table2_approximation_quality() -> bool {
    let keys = fig2_keys();
    let start = Instant::now();
    let greedy = smooth_segment(&keys, &SmoothingConfig::with_alpha(FIG2_ALPHA));
    let greedy_time = start.elapsed();
    let start = Instant::now();
    let exact = exhaustive_smooth(&keys, FIG2_ALPHA, 64).expect("example is small");
    let exact_time = start.elapsed();
    println!("method\tloss\ttime_ns\tpaper_loss");
    println!(
        "Original\t{:.3}\t-\t{:.3}",
        greedy.loss_before,
        reported::TABLE2_ORIGINAL
    );
    println!(
        "CSV (greedy)\t{:.3}\t{}\t{:.3}",
        greedy.loss_after_all,
        greedy_time.as_nanos(),
        reported::TABLE2_CSV
    );
    println!(
        "Exhaustive\t{:.3}\t{}\t{:.3}",
        exact.loss_after_all,
        exact_time.as_nanos(),
        reported::TABLE2_EXHAUSTIVE
    );
    true
}

/// Figs. 6, 7 and 8 plus the storage/node metrics: sweep the smoothing
/// threshold α for all three indexes and all four datasets.
pub fn alpha_sweep(config: &ExperimentConfig) -> bool {
    println!(
        "index\tdataset\talpha\ttotal_time_saved_ns\tquery_improvement_pct\tpromoted_pct\t\
         storage_increase_pct\tnode_reduction_pct\tpreprocessing_s"
    );
    for kind in IndexKind::all() {
        for dataset in Dataset::paper_datasets() {
            let keys = dataset.generate(config.num_keys, config.seed);
            for alpha in ALPHAS {
                let row = alpha_sweep_row(kind, dataset, &keys, alpha, config);
                println!("{row}");
            }
        }
    }
    true
}

fn alpha_sweep_row(
    kind: IndexKind,
    dataset: Dataset,
    keys: &[Key],
    alpha: f64,
    config: &ExperimentConfig,
) -> String {
    let plain = build_plain(kind, keys);
    let plain_stats = plain.stats();
    let levels_before = key_levels(plain.as_ref(), keys);

    let (enhanced, report) = build_enhanced_with(kind, keys, alpha, config.greedy);
    let enhanced_stats = enhanced.stats();
    let levels_after = key_levels(enhanced.as_ref(), keys);

    let (promoted, promotable) = promoted_keys(keys, &levels_before, &levels_after);
    let promoted_pct = if promotable == 0 {
        0.0
    } else {
        promoted.len() as f64 / promotable as f64 * 100.0
    };

    // Query improvement measured over the promoted keys (the paper's focus).
    let sample: Vec<Key> = if promoted.is_empty() {
        Vec::new()
    } else {
        let mut rng = XorShift64::new(config.seed ^ 77);
        (0..config.num_queries.min(promoted.len() * 4))
            .map(|_| promoted[rng.next_below(promoted.len() as u64) as usize])
            .collect()
    };
    let (saved_total, improvement_pct) = if sample.is_empty() {
        (0.0, 0.0)
    } else {
        let before = measure_queries(plain.as_ref(), &sample);
        let after = measure_queries(enhanced.as_ref(), &sample);
        let per_query_saved = before.avg_ns - after.avg_ns;
        (
            per_query_saved * promoted.len() as f64,
            per_query_saved / before.avg_ns * 100.0,
        )
    };

    let storage_increase =
        (enhanced_stats.size_bytes as f64 / plain_stats.size_bytes as f64 - 1.0) * 100.0;
    let node_reduction = if plain_stats.deep_node_count == 0 {
        0.0
    } else {
        (plain_stats
            .node_count
            .saturating_sub(enhanced_stats.node_count)) as f64
            / plain_stats.deep_node_count as f64
            * 100.0
    };

    format!(
        "{}\t{}\t{}\t{:.0}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.3}",
        kind.name(),
        dataset.name(),
        alpha,
        saved_total,
        improvement_pct,
        promoted_pct,
        storage_increase,
        node_reduction,
        report.preprocessing_time.as_secs_f64()
    )
}

/// Tables 3 and 4 — CSV pre-processing time per dataset and α.
pub fn table3_4_preprocessing(config: &ExperimentConfig, kind: IndexKind) -> bool {
    println!("index\tdataset\talpha\tpreprocessing_s\tsubtrees_rebuilt\tvirtual_points");
    for dataset in Dataset::paper_datasets() {
        let keys = dataset.generate(config.num_keys, config.seed);
        for alpha in ALPHAS {
            let (_, report) = build_enhanced_with(kind, &keys, alpha, config.greedy);
            println!(
                "{}\t{}\t{}\t{:.3}\t{}\t{}",
                kind.name(),
                dataset.name(),
                alpha,
                report.preprocessing_time.as_secs_f64(),
                report.subtrees_rebuilt,
                report.virtual_points_added
            );
        }
    }
    true
}

/// Fig. 9 — total time saved vs dataset cardinality (α = 0.1).
pub fn fig9_cardinality(config: &ExperimentConfig) -> bool {
    println!("index\tdataset\tnum_keys\ttotal_time_saved_ns\tpromoted_keys");
    for kind in IndexKind::all() {
        for dataset in Dataset::paper_datasets() {
            let full = dataset.generate(config.num_keys, config.seed);
            for keys in cardinality_chain(&full, 4) {
                let plain = build_plain(kind, &keys);
                let levels_before = key_levels(plain.as_ref(), &keys);
                let (enhanced, _) = build_enhanced_with(kind, &keys, 0.1, config.greedy);
                let levels_after = key_levels(enhanced.as_ref(), &keys);
                let (promoted, _) = promoted_keys(&keys, &levels_before, &levels_after);
                let saved = if promoted.is_empty() {
                    0.0
                } else {
                    let sample: Vec<Key> =
                        promoted.iter().copied().take(config.num_queries).collect();
                    let before = measure_queries(plain.as_ref(), &sample);
                    let after = measure_queries(enhanced.as_ref(), &sample);
                    (before.avg_ns - after.avg_ns) * promoted.len() as f64
                };
                println!(
                    "{}\t{}\t{}\t{:.0}\t{}",
                    kind.name(),
                    dataset.name(),
                    keys.len(),
                    saved,
                    promoted.len()
                );
            }
        }
    }
    true
}

/// Fig. 10 — read-write workload: query time saved, storage increase and
/// insert-time change per insertion batch (LIPP and ALEX, α = 0.1).
pub fn fig10_read_write(config: &ExperimentConfig) -> bool {
    println!(
        "index\tdataset\tbatch\ttotal_time_saved_ns\tstorage_increase_pct\tinsert_time_increase_pct"
    );
    for kind in [IndexKind::Lipp, IndexKind::Alex] {
        for dataset in Dataset::paper_datasets() {
            let keys = dataset.generate(config.num_keys, config.seed);
            let workload =
                ReadWriteWorkload::split(&keys, 5, 0.1, config.num_queries, config.seed ^ 3);

            let mut plain = build_plain(kind, &workload.initial_keys);
            let levels_before = key_levels(plain.as_ref(), &workload.initial_keys);
            let (mut enhanced, _) =
                build_enhanced_with(kind, &workload.initial_keys, 0.1, config.greedy);
            let levels_after = key_levels(enhanced.as_ref(), &workload.initial_keys);
            let (promoted, _) =
                promoted_keys(&workload.initial_keys, &levels_before, &levels_after);
            let sample: Vec<Key> = promoted.iter().copied().take(config.num_queries).collect();

            for (batch_idx, batch) in workload.insert_batches.iter().enumerate() {
                let plain_insert = measure_inserts(plain.as_mut(), batch);
                let enhanced_insert = measure_inserts(enhanced.as_mut(), batch);
                let saved = if sample.is_empty() {
                    0.0
                } else {
                    let before = measure_queries(plain.as_ref(), &sample);
                    let after = measure_queries(enhanced.as_ref(), &sample);
                    (before.avg_ns - after.avg_ns) * promoted.len() as f64
                };
                let storage =
                    (enhanced.stats().size_bytes as f64 / plain.stats().size_bytes as f64 - 1.0)
                        * 100.0;
                let insert_increase = if plain_insert.as_nanos() == 0 {
                    0.0
                } else {
                    (enhanced_insert.as_nanos() as f64 / plain_insert.as_nanos() as f64 - 1.0)
                        * 100.0
                };
                println!(
                    "{}\t{}\t{}\t{:.0}\t{:.1}\t{:.1}",
                    kind.name(),
                    dataset.name(),
                    batch_idx + 1,
                    saved,
                    storage,
                    insert_increase
                );
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            num_keys: 20_000,
            num_queries: 1_000,
            seed: 1,
            threads: 0,
            greedy: csv_core::GreedyMode::Lazy,
        }
    }

    #[test]
    fn small_experiments_run() {
        assert!(run_experiment("fig2", &tiny()));
        assert!(run_experiment("fig3", &tiny()));
        assert!(run_experiment("fig4", &tiny()));
        assert!(run_experiment("table2", &tiny()));
        assert!(run_experiment("fig5", &tiny()));
        assert!(!run_experiment("nonsense", &tiny()));
    }

    #[test]
    fn fig1_and_alpha_row_run_at_small_scale() {
        let cfg = tiny();
        assert!(fig1_level_latency(&cfg));
        let keys = Dataset::Genome.generate(cfg.num_keys, cfg.seed);
        let row = alpha_sweep_row(IndexKind::Lipp, Dataset::Genome, &keys, 0.1, &cfg);
        assert!(row.starts_with("LIPP\tGenome\t0.1"));
    }

    #[test]
    fn experiment_names_cover_every_paper_artifact() {
        for required in [
            "fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "table1", "table2", "table3", "table4",
        ] {
            assert!(EXPERIMENT_NAMES.contains(&required), "{required} missing");
        }
    }
}
