//! Shared measurement helpers used by the experiment binary and the
//! Criterion benches.

use csv_alex::AlexIndex;
use csv_common::key::identity_records;
use csv_common::metrics::CostCounters;
use csv_common::traits::LearnedIndex;
use csv_common::Key;
use csv_core::cost::CostModel;
use csv_core::{CsvConfig, CsvIntegrable, CsvOptimizer, CsvReport};
use csv_lipp::LippIndex;
use csv_sali::SaliIndex;
use std::time::{Duration, Instant};

/// The three indexes the paper integrates CSV with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// LIPP (precise positions, no leaf search).
    Lipp,
    /// SALI (LIPP + workload-aware flattening).
    Sali,
    /// ALEX (gapped arrays + exponential search).
    Alex,
}

impl IndexKind {
    /// All three, in the order the paper's figures list them.
    pub fn all() -> [IndexKind; 3] {
        [IndexKind::Lipp, IndexKind::Sali, IndexKind::Alex]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Lipp => "LIPP",
            IndexKind::Sali => "SALI",
            IndexKind::Alex => "ALEX",
        }
    }

    /// The CSV configuration the paper uses for this index family.
    pub fn csv_config(&self, alpha: f64) -> CsvConfig {
        match self {
            IndexKind::Lipp => CsvConfig::for_lipp(alpha),
            IndexKind::Sali => CsvConfig::for_sali(alpha),
            IndexKind::Alex => CsvConfig::for_alex(alpha, CostModel::default()),
        }
    }
}

/// An index built over a key set, behind one trait object so the experiment
/// loops can treat LIPP/SALI/ALEX uniformly.
pub trait CsvTarget: LearnedIndex + CsvIntegrable + Send + Sync {}
impl<T: LearnedIndex + CsvIntegrable + Send + Sync> CsvTarget for T {}

/// Builds the plain (un-optimised) index of the given kind.
pub fn build_plain(kind: IndexKind, keys: &[Key]) -> Box<dyn CsvTarget> {
    let records = identity_records(keys);
    match kind {
        IndexKind::Lipp => Box::new(LippIndex::bulk_load(&records)),
        IndexKind::Sali => Box::new(SaliIndex::bulk_load(&records)),
        IndexKind::Alex => Box::new(AlexIndex::bulk_load(&records)),
    }
}

/// Builds the index and applies CSV with the given smoothing threshold;
/// returns the optimised index together with the CSV run report. Uses the
/// default (lazy) greedy driver; use [`build_enhanced_with`] to select the
/// paper-faithful Rescan driver.
pub fn build_enhanced(
    kind: IndexKind,
    keys: &[Key],
    alpha: f64,
) -> (Box<dyn CsvTarget>, CsvReport) {
    build_enhanced_with(kind, keys, alpha, csv_core::GreedyMode::Lazy)
}

/// [`build_enhanced`] with an explicit Algorithm 1 greedy driver, so the
/// experiments binary can regenerate the published numbers with the
/// faithful Rescan driver (`--greedy rescan`).
pub fn build_enhanced_with(
    kind: IndexKind,
    keys: &[Key],
    alpha: f64,
    greedy: csv_core::GreedyMode,
) -> (Box<dyn CsvTarget>, CsvReport) {
    let mut index = build_plain(kind, keys);
    let mut config = kind.csv_config(alpha);
    config.smoothing.mode = greedy;
    let report = CsvOptimizer::new(config).optimize_boxed(&mut index);
    (index, report)
}

/// Extension so the optimizer can run on a boxed trait object.
trait OptimizeBoxed {
    fn optimize_boxed(&self, index: &mut Box<dyn CsvTarget>) -> CsvReport;
}

impl OptimizeBoxed for CsvOptimizer {
    fn optimize_boxed(&self, index: &mut Box<dyn CsvTarget>) -> CsvReport {
        struct Shim<'a>(&'a mut dyn CsvTarget);
        impl CsvIntegrable for Shim<'_> {
            fn csv_max_level(&self) -> usize {
                self.0.csv_max_level()
            }
            fn csv_subtrees_at_level(&self, level: usize) -> Vec<csv_core::csv::SubtreeRef> {
                self.0.csv_subtrees_at_level(level)
            }
            fn csv_collect_keys_into(&self, s: &csv_core::csv::SubtreeRef, buf: &mut Vec<Key>) {
                self.0.csv_collect_keys_into(s, buf)
            }
            fn csv_subtree_cost(
                &self,
                s: &csv_core::csv::SubtreeRef,
            ) -> csv_core::cost::SubtreeCostStats {
                self.0.csv_subtree_cost(s)
            }
            fn csv_rebuild_subtree(
                &mut self,
                s: &csv_core::csv::SubtreeRef,
                l: &csv_core::layout::SmoothedLayout,
            ) -> Result<(), csv_core::csv::RebuildRefusal> {
                self.0.csv_rebuild_subtree(s, l)
            }
        }
        let mut shim = Shim(index.as_mut());
        self.optimize_parallel(&mut shim)
    }
}

/// The result of timing a query batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryMeasurement {
    /// Number of lookups issued.
    pub queries: usize,
    /// Average wall-clock nanoseconds per lookup.
    pub avg_ns: f64,
    /// Average machine-independent abstract cost (nodes + comparisons).
    pub avg_cost: f64,
}

/// Times `queries` lookups (all of which must hit) against an index.
pub fn measure_queries(index: &dyn LearnedIndex, queries: &[Key]) -> QueryMeasurement {
    if queries.is_empty() {
        return QueryMeasurement {
            queries: 0,
            avg_ns: 0.0,
            avg_cost: 0.0,
        };
    }
    let mut counters = CostCounters::new();
    let start = Instant::now();
    let mut found = 0usize;
    for &q in queries {
        if index.get_counted(q, &mut counters).is_some() {
            found += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(
        found,
        queries.len(),
        "{}: a query key was missing",
        index.name()
    );
    QueryMeasurement {
        queries: queries.len(),
        avg_ns: elapsed.as_nanos() as f64 / queries.len() as f64,
        avg_cost: counters.abstract_cost() as f64 / queries.len() as f64,
    }
}

/// Per-key levels of a key sample (index of the vec = index into `keys`).
pub fn key_levels(index: &dyn LearnedIndex, keys: &[Key]) -> Vec<u8> {
    keys.iter()
        .map(|&k| {
            index
                .level_of_key(k)
                .unwrap_or(u8::MAX as usize)
                .min(u8::MAX as usize) as u8
        })
        .collect()
}

/// Keys that moved to a strictly shallower level between two level snapshots,
/// together with the number of "promotable" keys (level ≥ 3 before) — the
/// denominators/numerators of the paper's "promoted data (%)" metric.
pub fn promoted_keys(keys: &[Key], before: &[u8], after: &[u8]) -> (Vec<Key>, usize) {
    let mut promoted = Vec::new();
    let mut promotable = 0usize;
    for ((&k, &b), &a) in keys.iter().zip(before.iter()).zip(after.iter()) {
        if b >= 3 {
            promotable += 1;
        }
        if a < b {
            promoted.push(k);
        }
    }
    (promoted, promotable)
}

/// Measures average insert latency over a batch.
pub fn measure_inserts(index: &mut dyn CsvTarget, batch: &[Key]) -> Duration {
    let start = Instant::now();
    for &k in batch {
        index.insert(k, k);
    }
    if batch.is_empty() {
        Duration::ZERO
    } else {
        start.elapsed() / batch.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_datasets::Dataset;

    #[test]
    fn build_and_measure_roundtrip() {
        let keys = Dataset::Genome.generate(20_000, 3);
        for kind in IndexKind::all() {
            let plain = build_plain(kind, &keys);
            assert_eq!(plain.name(), kind.name());
            let queries: Vec<_> = keys.iter().copied().step_by(100).collect();
            let m = measure_queries(plain.as_ref(), &queries);
            assert_eq!(m.queries, queries.len());
            assert!(m.avg_cost >= 1.0);

            let (enhanced, report) = build_enhanced(kind, &keys, 0.1);
            assert_eq!(enhanced.len(), keys.len());
            assert!(report.subtrees_considered() >= report.subtrees_rebuilt);
        }
    }

    #[test]
    fn promotion_accounting() {
        let keys = vec![1u64, 2, 3, 4];
        let before = vec![2u8, 3, 4, 5];
        let after = vec![2u8, 2, 2, 5];
        let (promoted, promotable) = promoted_keys(&keys, &before, &after);
        assert_eq!(promoted, vec![2, 3]);
        assert_eq!(promotable, 3);
    }
}
