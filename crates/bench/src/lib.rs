//! Experiment harness regenerating every table and figure of the CSV paper's
//! evaluation (§6), plus shared helpers for the Criterion micro-benchmarks.
//!
//! Each `fig*` / `table*` function prints a tab-separated table whose rows
//! correspond to the series of the original figure; EXPERIMENTS.md records
//! the paper-reported values next to values measured with this harness. The
//! harness is deliberately scale-parametric: the paper uses 200 M keys on a
//! large server, the default here is a laptop-friendly subset (see
//! DESIGN.md §3 for the substitution rationale).

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;

pub use csv_core::GreedyMode;
pub use experiments::{run_experiment, ExperimentConfig, EXPERIMENT_NAMES};
pub use harness::{
    build_enhanced, build_enhanced_with, build_plain, measure_queries, promoted_keys, IndexKind,
    QueryMeasurement,
};
