//! Command-line driver regenerating the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments <name> [--size N] [--queries Q] [--seed S] [--threads T] [--greedy lazy|rescan]
//! experiments all --size 200000 --threads 8
//! experiments table3 --greedy rescan        # paper-faithful Algorithm 1 driver
//! ```
//!
//! `<name>` is one of: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//! table1 table2 table3 table4 all (fig6/fig7/fig8 share one α sweep).

#![forbid(unsafe_code)]

use csv_bench::{run_experiment, ExperimentConfig, EXPERIMENT_NAMES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExperimentConfig::default();
    let mut name: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                config.num_keys = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.num_keys);
                i += 2;
            }
            "--queries" => {
                config.num_queries = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.num_queries);
                i += 2;
            }
            "--seed" => {
                config.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.seed);
                i += 2;
            }
            "--threads" => {
                config.threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.threads);
                i += 2;
            }
            "--greedy" => {
                config.greedy = match args.get(i + 1).map(|v| v.to_ascii_lowercase()) {
                    Some(ref v) if v == "rescan" => csv_bench::GreedyMode::Rescan,
                    Some(ref v) if v == "lazy" => csv_bench::GreedyMode::Lazy,
                    other => {
                        eprintln!("--greedy expects rescan|lazy, got {other:?}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            other if name.is_none() && !other.starts_with("--") => {
                name = Some(other.to_string());
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                i += 1;
            }
        }
    }
    let Some(name) = name else {
        eprintln!(
            "usage: experiments <name> [--size N] [--queries Q] [--seed S] [--threads T] [--greedy lazy|rescan]"
        );
        eprintln!("experiments: {}", EXPERIMENT_NAMES.join(" "));
        std::process::exit(2);
    };
    eprintln!(
        "# experiment={name} num_keys={} num_queries={} seed={} threads={} greedy={:?}",
        config.num_keys,
        config.num_queries,
        config.seed,
        if config.threads == 0 {
            "auto".to_string()
        } else {
            config.threads.to_string()
        },
        config.greedy,
    );
    if !run_experiment(&name, &config) {
        eprintln!(
            "unknown experiment '{name}'; available: {}",
            EXPERIMENT_NAMES.join(" ")
        );
        std::process::exit(2);
    }
}
