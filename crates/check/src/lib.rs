//! A loom-lite deterministic concurrency checker.
//!
//! The workspace's correctness rests on a hand-rolled epoch-parity RCU cell
//! and a copy-on-write publish protocol whose dangerous interleavings a
//! normal multi-threaded stress test samples at the mercy of the OS
//! scheduler — one interleaving per run, usually the boring one. This crate
//! makes the schedule a *controlled input* instead: test threads run as
//! real OS threads, but only one holds the run token at a time, and every
//! touch of an instrumented synchronization primitive (the
//! `csv_common::sync` shims, compiled against this crate under the `check`
//! feature) is a *yield point* where a scheduler decides who runs next.
//!
//! Two exploration strategies are provided:
//!
//! * [`explore_exhaustive`] — depth-first enumeration of **every** distinct
//!   schedule of the test body, for small thread/op counts (the 2-thread
//!   publish-vs-read grace-period race fits comfortably). The DFS
//!   backtracks over the recorded choice trace, so completion means the
//!   whole schedule tree was visited.
//! * [`explore_random`] — seeded PCT-style random scheduling for bodies
//!   whose schedule tree is too big to enumerate; distinct schedules are
//!   counted by hashing the choice trace, and the same seed always
//!   reproduces the same schedule.
//!
//! A failing schedule panics with its choice trace; [`replay`] re-runs
//! exactly that trace under a debugger or with extra logging.
//!
//! The checker explores interleavings at instrumented-operation
//! granularity under *sequentially consistent* semantics (one thread runs
//! at a time, every operation is globally ordered). It therefore validates
//! protocol-level races — use-after-free windows, lost publications,
//! ordering contracts — but cannot distinguish weak memory orderings; the
//! ThreadSanitizer CI job covers that axis.

#![forbid(unsafe_code)]

mod rng;
mod scheduler;

pub use scheduler::{
    explore_exhaustive, explore_random, is_controlled, parse_trace, replay, spawn, yield_now,
    yield_point, Exhaustive, JoinHandle, Random, Report,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
    use std::sync::{Arc, Mutex};

    /// Two threads, two instrumented steps each: the exhaustive driver
    /// must visit every one of the C(4,2) = 6 interleavings of AABB.
    #[test]
    fn exhaustive_exploration_visits_every_interleaving() {
        let observed: Arc<Mutex<HashSet<Vec<u8>>>> = Arc::new(Mutex::new(HashSet::new()));
        let observed_in = Arc::clone(&observed);
        let report = explore_exhaustive(Exhaustive::default(), move || {
            let log: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
            let log_b = Arc::clone(&log);
            let b = spawn(move || {
                for _ in 0..2 {
                    yield_point();
                    log_b.lock().unwrap().push(b'B');
                }
            });
            for _ in 0..2 {
                yield_point();
                log.lock().unwrap().push(b'A');
            }
            b.join();
            let order = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
            observed_in.lock().unwrap().insert(order);
        });
        assert!(report.complete, "the schedule tree must be fully explored");
        assert!(report.schedules >= 6, "at least one run per interleaving");
        assert_eq!(report.schedules, report.distinct);
        let observed = observed.lock().unwrap();
        assert_eq!(
            observed.len(),
            6,
            "all C(4,2) orderings of AABB must be observed, got {observed:?}"
        );
    }

    /// A classic check-then-act race: both threads read the counter, then
    /// both write back `read + 1`, and one increment is lost — but only on
    /// the interleavings where the reads overlap. The exhaustive driver
    /// must find such a schedule and fail.
    #[test]
    fn exhaustive_exploration_finds_a_seeded_race() {
        let caught = std::panic::catch_unwind(|| {
            explore_exhaustive(Exhaustive::default(), || {
                let counter = Arc::new(AtomicUsize::new(0));
                let c2 = Arc::clone(&counter);
                let t = spawn(move || {
                    yield_point();
                    let seen = c2.load(SeqCst);
                    yield_point();
                    c2.store(seen + 1, SeqCst);
                });
                yield_point();
                let seen = counter.load(SeqCst);
                yield_point();
                counter.store(seen + 1, SeqCst);
                t.join();
                assert_eq!(counter.load(SeqCst), 2, "an increment was lost");
            });
        });
        assert!(
            caught.is_err(),
            "the checker must surface the lost-update interleaving"
        );
    }

    /// The same racy body passes when the race window is closed (an RMW
    /// instead of check-then-act): zero false positives over the whole
    /// schedule tree.
    #[test]
    fn exhaustive_exploration_passes_a_correct_program() {
        let report = explore_exhaustive(Exhaustive::default(), || {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            let t = spawn(move || {
                yield_point();
                c2.fetch_add(1, SeqCst);
            });
            yield_point();
            counter.fetch_add(1, SeqCst);
            t.join();
            assert_eq!(counter.load(SeqCst), 2);
        });
        assert!(report.complete);
        assert!(report.schedules >= 2);
    }

    /// A spin-until-flag loop must terminate under the scheduler:
    /// `yield_now` deprioritizes the spinner until another thread has been
    /// scheduled, so the flag-setter always gets through. This is the
    /// termination property the RCU grace-period drain relies on.
    #[test]
    fn yielding_spin_loops_terminate() {
        let report = explore_exhaustive(Exhaustive::default(), || {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            let t = spawn(move || {
                yield_point();
                f2.store(1, SeqCst);
            });
            loop {
                yield_point();
                if flag.load(SeqCst) == 1 {
                    break;
                }
                yield_now();
            }
            t.join();
        });
        assert!(report.complete);
        assert_eq!(report.schedules, report.distinct);
    }

    /// The random driver is deterministic in its seed: the same seed
    /// explores the same schedules (same distinct count, same traces).
    #[test]
    fn random_exploration_is_seed_deterministic() {
        let body = || {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            let t = spawn(move || {
                for _ in 0..4 {
                    yield_point();
                    c2.fetch_add(1, SeqCst);
                }
            });
            for _ in 0..4 {
                yield_point();
                counter.fetch_add(1, SeqCst);
            }
            t.join();
            assert_eq!(counter.load(SeqCst), 8);
        };
        let opts = Random {
            schedules: 64,
            seed: 0xC5,
            ..Random::default()
        };
        let a = explore_random(opts, body);
        let b = explore_random(opts, body);
        assert_eq!(a.schedules, 64);
        assert_eq!(a.distinct, b.distinct);
        assert!(a.distinct > 1, "64 seeds must reach more than one schedule");
    }

    /// `replay` reproduces a failing schedule from its printed trace: the
    /// panic message of a failing exploration carries the choice vector,
    /// and feeding it back fails deterministically.
    #[test]
    fn replay_reproduces_a_failing_trace() {
        let body = || {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            let t = spawn(move || {
                yield_point();
                let seen = c2.load(SeqCst);
                yield_point();
                c2.store(seen + 1, SeqCst);
            });
            yield_point();
            let seen = counter.load(SeqCst);
            yield_point();
            counter.store(seen + 1, SeqCst);
            t.join();
            assert_eq!(counter.load(SeqCst), 2);
        };
        let caught = std::panic::catch_unwind(|| explore_exhaustive(Exhaustive::default(), body));
        let message = match caught {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("panic payload is a String"),
            Ok(_) => panic!("the racy body must fail"),
        };
        let trace = scheduler::parse_trace(&message)
            .expect("the failure message must embed a replayable trace");
        let replayed = std::panic::catch_unwind(|| replay(&trace, body));
        assert!(replayed.is_err(), "replaying the trace must fail again");
    }

    /// Outside a controlled run the hooks are no-ops, so instrumented code
    /// keeps working in ordinary tests and binaries.
    #[test]
    fn hooks_are_noops_outside_a_run() {
        assert!(!is_controlled());
        yield_point();
        yield_now();
        let t = spawn(|| 7usize);
        assert_eq!(t.join(), 7);
    }

    /// A deadlock (every live thread blocked on a join cycle via mutexes
    /// is impossible here, so: joining a thread that never finishes
    /// because it joins us back is the simplest cycle) is reported, not
    /// hung. Built from two threads joining each other through a relay.
    #[test]
    fn livelock_budget_is_reported() {
        let caught = std::panic::catch_unwind(|| {
            explore_exhaustive(
                Exhaustive {
                    max_steps: 200,
                    ..Exhaustive::default()
                },
                || {
                    let stop = Arc::new(AtomicUsize::new(0));
                    // Nobody ever sets the flag: the spin loop exhausts the
                    // step budget and the run must fail loudly.
                    loop {
                        yield_point();
                        if stop.load(SeqCst) == 1 {
                            break;
                        }
                        yield_now();
                    }
                },
            );
        });
        let message = match caught {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(_) => panic!("the unbounded spin must fail"),
        };
        assert!(
            message.contains("step budget"),
            "failure must name the step budget, got: {message}"
        );
    }
}
