//! A tiny deterministic RNG for schedule choices.
//!
//! The checker cannot depend on `csv_common` (the sync shims there depend
//! on *this* crate), so the SplitMix64 step is duplicated here rather than
//! shared. SplitMix64 is robust under sequential seeds, which is exactly
//! how [`crate::explore_random`] derives one stream per schedule.

/// SplitMix64: one multiply-xorshift avalanche per output.
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a stream from `seed`; distinct seeds (even consecutive
    /// integers) yield statistically independent streams.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let mut c = SplitMix64::new(2);
        let first_a = a.next_u64();
        assert_eq!(first_a, b.next_u64());
        assert_ne!(first_a, c.next_u64());
    }
}
