//! The controlled cooperative scheduler.
//!
//! One run executes the test body on real OS threads, but only the thread
//! holding the *run token* (`Inner::current`) makes progress; everyone else
//! waits on a condvar. At every yield point the running thread picks a
//! successor among the eligible threads — the pick is the schedule's unit
//! of choice, recorded as `(chosen index, eligible count)` so the driver
//! can replay or enumerate schedules.
//!
//! Eligibility rules:
//!
//! * `Runnable` threads are always eligible.
//! * A thread that called [`yield_now`] becomes `Yielded`: ineligible for
//!   exactly one pick, so some *other* thread is guaranteed to execute at
//!   least one operation before the yielder is reconsidered. This is what
//!   bounds spin loops (`while x.load() != 0 { yield_now() }`) to at most
//!   one iteration per step of the other threads — and therefore keeps the
//!   exhaustive schedule tree finite for terminating programs.
//! * `Joining(t)` threads are ineligible until `t` finishes.
//!
//! Failures (an assertion panic in any controlled thread, a deadlock, a
//! blown step budget, replay divergence) poison the run: every thread
//! unwinds at its next interaction with the scheduler, the run drains, and
//! the driver panics with the choice trace for [`replay`].

use crate::rng::SplitMix64;
use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Default per-run step budget: a run exceeding this many yield points is
/// reported as a livelock instead of hanging the exploration.
const DEFAULT_MAX_STEPS: usize = 1 << 20;

/// Options for [`explore_exhaustive`].
#[derive(Clone, Copy, Debug)]
pub struct Exhaustive {
    /// Stop (reporting `complete: false`) after this many schedules even
    /// if the tree has unexplored branches.
    pub max_schedules: usize,
    /// Per-run step budget (livelock guard).
    pub max_steps: usize,
}

impl Default for Exhaustive {
    fn default() -> Self {
        Self {
            max_schedules: 1 << 20,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }
}

/// Options for [`explore_random`].
#[derive(Clone, Copy, Debug)]
pub struct Random {
    /// How many seeded schedules to run.
    pub schedules: usize,
    /// Base seed; schedule `i` runs under `seed + i`, so a failure report
    /// names the exact seed to re-run.
    pub seed: u64,
    /// Per-run step budget (livelock guard).
    pub max_steps: usize,
}

impl Default for Random {
    fn default() -> Self {
        Self {
            schedules: 1024,
            seed: 0x5EED,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }
}

/// What an exploration covered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// Distinct schedules among them (every exhaustive schedule is
    /// distinct by construction; random schedules are deduplicated by
    /// their choice-trace fingerprint).
    pub distinct: usize,
    /// Whether the whole schedule tree was enumerated (exhaustive mode
    /// only; random exploration never claims completeness).
    pub complete: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Runnable,
    /// Deprioritized for one pick (see the module docs).
    Yielded,
    /// Blocked until the given thread finishes.
    Joining(usize),
    Finished,
}

enum Mode {
    /// Follow the forced choice prefix, then always pick index 0. An empty
    /// prefix is the DFS root; replay passes a full trace.
    Replay { forced: Vec<u32> },
    /// Pick uniformly among eligible threads from a seeded stream.
    Random(SplitMix64),
}

struct Inner {
    states: Vec<State>,
    /// Which thread holds the run token.
    current: usize,
    /// The schedule so far: `(chosen index, eligible count)` per pick.
    trace: Vec<(u32, u32)>,
    mode: Mode,
    steps: usize,
    max_steps: usize,
    failure: Option<String>,
    finished: usize,
}

struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
}

#[derive(Clone)]
struct Ctx {
    shared: Arc<Shared>,
    id: usize,
}

thread_local! {
    /// The controlled-thread identity of the current OS thread, if any.
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling thread runs under a controlled schedule. The
/// `csv_common::sync` shims use this to stay no-ops in uncontrolled code
/// (ordinary tests and binaries compiled with the `check` feature on).
pub fn is_controlled() -> bool {
    current_ctx().is_some()
}

fn lock(shared: &Shared) -> MutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a>(shared: &'a Shared, guard: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
    shared
        .cv
        .wait(guard)
        .unwrap_or_else(PoisonError::into_inner)
}

/// Records a failure (first one wins) together with the choice trace that
/// reached it, formatted so [`parse_trace`] can extract it for [`replay`].
fn fail_locked(inner: &mut Inner, message: String) {
    if inner.failure.is_none() {
        let choices: Vec<u32> = inner.trace.iter().map(|&(c, _)| c).collect();
        inner.failure = Some(format!("{message}; schedule trace: {choices:?}"));
    }
}

/// Extracts the choice vector embedded in a failure message, for feeding
/// back into [`replay`].
pub fn parse_trace(message: &str) -> Option<Vec<usize>> {
    let marker = "schedule trace: [";
    let start = message.rfind(marker)? + marker.len();
    let end = start + message[start..].find(']')?;
    let body = message[start..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|t| t.trim().parse().ok()).collect()
}

/// Picks the next token holder and records the choice. `self_eligible` is
/// false when the caller is finishing, yielding, or blocking.
fn choose_next_locked(inner: &mut Inner, me: usize, self_eligible: bool) {
    if inner.failure.is_some() {
        return;
    }
    let mut eligible: Vec<usize> = (0..inner.states.len())
        .filter(|&i| inner.states[i] == State::Runnable && (self_eligible || i != me))
        .collect();
    if eligible.is_empty() {
        // Nothing plainly runnable: promote the yielders (their "let
        // someone else run first" debt is unpayable) and pick among them.
        eligible = (0..inner.states.len())
            .filter(|&i| inner.states[i] == State::Yielded)
            .collect();
        for &i in &eligible {
            inner.states[i] = State::Runnable;
        }
    }
    if eligible.is_empty() {
        let blocked: Vec<usize> = (0..inner.states.len())
            .filter(|&i| matches!(inner.states[i], State::Joining(_)))
            .collect();
        fail_locked(
            inner,
            format!("deadlock: no eligible thread (threads blocked in join: {blocked:?})"),
        );
        return;
    }
    let n = eligible.len() as u32;
    let pos = inner.trace.len();
    let pick = match &mut inner.mode {
        Mode::Random(rng) => Ok((rng.next_u64() % u64::from(n)) as u32),
        Mode::Replay { forced } => {
            if pos < forced.len() {
                let c = forced[pos];
                if c >= n {
                    Err(format!(
                        "non-deterministic replay: forced choice {c} of {n} eligible at step {pos} \
                         (the body must be deterministic apart from the schedule)"
                    ))
                } else {
                    Ok(c)
                }
            } else {
                Ok(0)
            }
        }
    };
    let idx = match pick {
        Ok(idx) => idx,
        Err(message) => {
            fail_locked(inner, message);
            return;
        }
    };
    inner.trace.push((idx, n));
    inner.current = eligible[idx as usize];
    // Scheduling anyone pays every yielder's debt: another thread is about
    // to execute, so yielders become plainly runnable for the next pick.
    for state in inner.states.iter_mut() {
        if *state == State::Yielded {
            *state = State::Runnable;
        }
    }
}

/// Panics out of the run with the recorded failure. Must be called with
/// the guard held; consumes it so the condvar can be notified after.
fn abort_run(shared: &Shared, inner: MutexGuard<'_, Inner>) -> ! {
    let message = inner
        .failure
        .clone()
        .unwrap_or_else(|| "run aborted".into());
    drop(inner);
    shared.cv.notify_all();
    panic!("{message}");
}

/// Blocks until the token comes back to `ctx.id` (or the run fails).
fn wait_for_turn<'a>(ctx: &'a Ctx, mut inner: MutexGuard<'a, Inner>) {
    if inner.failure.is_some() {
        abort_run(&ctx.shared, inner);
    }
    if inner.current == ctx.id {
        return;
    }
    ctx.shared.cv.notify_all();
    loop {
        inner = wait(&ctx.shared, inner);
        if inner.failure.is_some() {
            abort_run(&ctx.shared, inner);
        }
        if inner.current == ctx.id {
            return;
        }
    }
}

/// Charges one step against the run budget; fails the run when exhausted.
fn charge_step(inner: &mut MutexGuard<'_, Inner>) -> bool {
    inner.steps += 1;
    if inner.steps > inner.max_steps {
        let message = format!(
            "step budget of {} exceeded (livelock or unbounded spin)",
            inner.max_steps
        );
        fail_locked(inner, message);
        return false;
    }
    true
}

/// A schedule point: the calling controlled thread offers the scheduler a
/// chance to run someone else. No-op on uncontrolled threads and during
/// unwinding (a panicking thread must not yield — its drop handlers would
/// double-panic once the run is poisoned).
pub fn yield_point() {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else { return };
    let mut inner = lock(&ctx.shared);
    if inner.failure.is_some() {
        abort_run(&ctx.shared, inner);
    }
    if !charge_step(&mut inner) {
        abort_run(&ctx.shared, inner);
    }
    choose_next_locked(&mut inner, ctx.id, true);
    wait_for_turn(&ctx, inner);
}

/// A deprioritizing schedule point: the caller is ineligible for the next
/// pick, so another thread executes at least one operation first. Maps
/// from spin hints (`std::hint::spin_loop`, `std::thread::yield_now`) in
/// the shims; falls back to the real `yield_now` on uncontrolled threads.
pub fn yield_now() {
    if std::thread::panicking() {
        return;
    }
    let Some(ctx) = current_ctx() else {
        std::thread::yield_now();
        return;
    };
    let mut inner = lock(&ctx.shared);
    if inner.failure.is_some() {
        abort_run(&ctx.shared, inner);
    }
    if !charge_step(&mut inner) {
        abort_run(&ctx.shared, inner);
    }
    inner.states[ctx.id] = State::Yielded;
    choose_next_locked(&mut inner, ctx.id, false);
    wait_for_turn(&ctx, inner);
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Marks `me` finished, unblocks its joiners, and hands the token on.
fn finish_locked(inner: &mut Inner, me: usize) {
    inner.states[me] = State::Finished;
    inner.finished += 1;
    for state in inner.states.iter_mut() {
        if *state == State::Joining(me) {
            *state = State::Runnable;
        }
    }
    if inner.failure.is_none() && inner.finished < inner.states.len() {
        choose_next_locked(inner, me, false);
    }
}

/// Body of every controlled OS thread: wait for the first turn, run, and
/// hand the token on.
fn run_controlled(shared: Arc<Shared>, id: usize, body: impl FnOnce() + Send) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: Arc::clone(&shared),
            id,
        })
    });
    let should_run = {
        let mut inner = lock(&shared);
        loop {
            if inner.failure.is_some() {
                break false;
            }
            if inner.current == id {
                break true;
            }
            inner = wait(&shared, inner);
        }
    };
    if should_run {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            let mut inner = lock(&shared);
            fail_locked(
                &mut inner,
                format!(
                    "controlled thread {id} panicked: {}",
                    payload_message(payload.as_ref())
                ),
            );
        }
    }
    let mut inner = lock(&shared);
    finish_locked(&mut inner, id);
    drop(inner);
    shared.cv.notify_all();
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// A handle to a thread started with [`spawn`].
pub struct JoinHandle<T> {
    imp: JoinImpl<T>,
}

enum JoinImpl<T> {
    /// Spawned outside a controlled run: a plain OS thread.
    Os(std::thread::JoinHandle<T>),
    Controlled {
        shared: Arc<Shared>,
        id: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Panics if
    /// the joined thread panicked (mirroring a `.join().unwrap()`).
    pub fn join(self) -> T {
        match self.imp {
            JoinImpl::Os(handle) => handle.join().expect("joined thread panicked"),
            JoinImpl::Controlled { shared, id, slot } => {
                let me = current_ctx();
                let mut inner = lock(&shared);
                loop {
                    if inner.states[id] == State::Finished {
                        break;
                    }
                    match &me {
                        Some(ctx) => {
                            if inner.failure.is_some() {
                                abort_run(&shared, inner);
                            }
                            inner.states[ctx.id] = State::Joining(id);
                            choose_next_locked(&mut inner, ctx.id, false);
                            wait_for_turn(ctx, inner);
                            inner = lock(&shared);
                        }
                        // An uncontrolled thread (the harness) just waits
                        // for the state change.
                        None => inner = wait(&shared, inner),
                    }
                }
                drop(inner);
                let value = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
                value.expect("joined controlled thread panicked")
            }
        }
    }
}

/// Spawns a thread. Inside a controlled run the thread is registered with
/// the scheduler (runnable, but it executes nothing until a pick hands it
/// the token); outside one it degrades to `std::thread::spawn`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let Some(ctx) = current_ctx() else {
        return JoinHandle {
            imp: JoinImpl::Os(std::thread::spawn(f)),
        };
    };
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let id = {
        let mut inner = lock(&ctx.shared);
        let id = inner.states.len();
        inner.states.push(State::Runnable);
        id
    };
    let shared = Arc::clone(&ctx.shared);
    let out = Arc::clone(&slot);
    std::thread::spawn(move || {
        run_controlled(shared, id, move || {
            let value = f();
            *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
        });
    });
    JoinHandle {
        imp: JoinImpl::Controlled {
            shared: ctx.shared,
            id,
            slot,
        },
    }
}

struct RunOutcome {
    trace: Vec<(u32, u32)>,
    failure: Option<String>,
}

/// Executes one schedule of `f` and waits for every controlled thread —
/// including any it spawned — to drain.
fn run_schedule(mode: Mode, max_steps: usize, f: Arc<dyn Fn() + Send + Sync>) -> RunOutcome {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            states: vec![State::Runnable],
            current: 0,
            trace: Vec::new(),
            mode,
            steps: 0,
            max_steps,
            failure: None,
            finished: 0,
        }),
        cv: Condvar::new(),
    });
    {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || run_controlled(shared, 0, move || f()));
    }
    let mut inner = lock(&shared);
    while inner.finished < inner.states.len() {
        inner = wait(&shared, inner);
    }
    RunOutcome {
        trace: std::mem::take(&mut inner.trace),
        failure: inner.failure.take(),
    }
}

/// Enumerates the schedule tree of `f` depth-first: every distinct
/// interleaving of its controlled threads' yield points, up to
/// `opts.max_schedules`. Panics (with the choice trace) on the first
/// failing schedule.
pub fn explore_exhaustive<F>(opts: Exhaustive, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut forced: Vec<u32> = Vec::new();
    let mut schedules = 0usize;
    let mut complete = false;
    loop {
        let out = run_schedule(
            Mode::Replay {
                forced: forced.clone(),
            },
            opts.max_steps,
            Arc::clone(&f),
        );
        schedules += 1;
        if let Some(message) = out.failure {
            panic!("csv_check: schedule {schedules} failed: {message}");
        }
        // Backtrack: bump the deepest choice that still has an unexplored
        // sibling; everything above it replays, everything below runs
        // fresh on the default (first-eligible) policy.
        let mut trace = out.trace;
        loop {
            match trace.pop() {
                None => {
                    complete = true;
                    break;
                }
                Some((chosen, count)) if chosen + 1 < count => {
                    trace.push((chosen + 1, count));
                    break;
                }
                Some(_) => {}
            }
        }
        if complete || schedules >= opts.max_schedules {
            break;
        }
        forced = trace.iter().map(|&(chosen, _)| chosen).collect();
    }
    Report {
        schedules,
        distinct: schedules,
        complete,
    }
}

/// FNV-1a over the choice trace: the schedule's identity for dedup.
fn trace_fingerprint(trace: &[(u32, u32)]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &(chosen, count) in trace {
        for byte in chosen.to_le_bytes().into_iter().chain(count.to_le_bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// Runs `opts.schedules` seeded random schedules of `f` (PCT-style: each
/// pick is uniform over the eligible threads, from a per-schedule
/// SplitMix64 stream). Panics (with seed and trace) on the first failing
/// schedule; reports how many *distinct* schedules the seeds reached.
pub fn explore_random<F>(opts: Random, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut distinct: HashSet<u64> = HashSet::new();
    for i in 0..opts.schedules {
        let seed = opts.seed.wrapping_add(i as u64);
        let out = run_schedule(
            Mode::Random(SplitMix64::new(seed)),
            opts.max_steps,
            Arc::clone(&f),
        );
        if let Some(message) = out.failure {
            panic!("csv_check: random schedule under seed {seed} failed: {message}");
        }
        distinct.insert(trace_fingerprint(&out.trace));
    }
    Report {
        schedules: opts.schedules,
        distinct: distinct.len(),
        complete: false,
    }
}

/// Re-runs `f` under exactly the given choice trace (as printed in a
/// failure message; see [`parse_trace`]). Panics if the schedule fails —
/// which is the point: run it under a debugger or with logging added.
pub fn replay<F>(trace: &[usize], f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let forced: Vec<u32> = trace.iter().map(|&c| c as u32).collect();
    let out = run_schedule(Mode::Replay { forced }, DEFAULT_MAX_STEPS, Arc::new(f));
    if let Some(message) = out.failure {
        panic!("csv_check: replayed schedule failed: {message}");
    }
}
