//! LIPP node layout: a linear model over an array of slots, each slot either
//! empty, holding a record, or holding a child node.

use csv_common::{Key, LinearModel, Value};

/// One slot of a LIPP node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Unoccupied slot (either never used or a virtual-point gap).
    Empty,
    /// A record stored at its model-predicted position.
    Data(Key, Value),
    /// A child node created because several keys predicted this slot.
    Child(usize),
}

/// A LIPP node. Nodes are arena-allocated; `Child` slots store arena ids.
///
/// The model operates on `key − key_offset` rather than the raw key: keys in
/// the upper end of the 64-bit space (e.g. S2 cell IDs around 2⁵⁶) can be
/// closer together than one `f64` ULP, and a model over raw keys could never
/// separate them — LIPP, which relies on eventually giving every key its own
/// slot, would recurse forever. Shifting by the node's smallest key keeps the
/// values exactly representable.
#[derive(Debug, Clone)]
pub struct Node {
    /// Linear model mapping `key − key_offset` to a slot in `[0, slots.len())`.
    pub model: LinearModel,
    /// Offset subtracted from every key before evaluating the model.
    pub key_offset: Key,
    /// The slot array.
    pub slots: Vec<Slot>,
    /// 1-based level of this node (1 = root).
    pub level: usize,
    /// Number of real keys stored in this node's entire sub-tree.
    pub subtree_keys: usize,
    /// Number of inserts routed through this node since it was (re)built;
    /// drives the adjustment (sub-tree rebuild) heuristic.
    pub inserts_since_build: usize,
    /// `true` while the node's sub-tree has absorbed inserts/removes (or a
    /// structural rebuild) since CSV last considered it. Nodes start dirty:
    /// a freshly built sub-tree has never been considered. Cleared only by
    /// `CsvIntegrable::csv_mark_clean`.
    pub dirty: bool,
}

impl Node {
    /// Creates an empty node with the given capacity and level.
    pub fn empty(capacity: usize, level: usize) -> Self {
        Self {
            model: LinearModel::default(),
            key_offset: 0,
            slots: vec![Slot::Empty; capacity.max(1)],
            level,
            subtree_keys: 0,
            inserts_since_build: 0,
            dirty: true,
        }
    }

    /// Capacity (number of slots) of the node.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The slot index predicted for `key`.
    #[inline]
    pub fn predict_slot(&self, key: Key) -> usize {
        self.model
            .predict_clamped(key.saturating_sub(self.key_offset), self.slots.len())
    }

    /// Number of `Data` slots in this node (not counting descendants).
    pub fn local_keys(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Data(_, _)))
            .count()
    }

    /// Number of `Child` slots in this node.
    pub fn child_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Child(_)))
            .count()
    }

    /// Estimated in-memory footprint of the node in bytes.
    pub fn size_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>() + std::mem::size_of::<Self>()
    }
}

/// A read-only view of a node, exposed for diagnostics and the experiment
/// harness (e.g. per-level statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LippNodeView {
    /// Arena id of the node.
    pub node_id: usize,
    /// 1-based level.
    pub level: usize,
    /// Slot capacity.
    pub capacity: usize,
    /// Records stored directly in the node.
    pub local_keys: usize,
    /// Child nodes hanging off the node.
    pub children: usize,
    /// Keys in the whole sub-tree.
    pub subtree_keys: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_node_has_no_keys() {
        let node = Node::empty(8, 1);
        assert_eq!(node.capacity(), 8);
        assert_eq!(node.local_keys(), 0);
        assert_eq!(node.child_count(), 0);
        assert!(node.size_bytes() > 8 * std::mem::size_of::<Slot>());
        let tiny = Node::empty(0, 2);
        assert_eq!(
            tiny.capacity(),
            1,
            "capacity is clamped to at least one slot"
        );
    }

    #[test]
    fn slot_counting() {
        let mut node = Node::empty(4, 1);
        node.slots[0] = Slot::Data(1, 1);
        node.slots[2] = Slot::Child(7);
        node.slots[3] = Slot::Data(9, 9);
        assert_eq!(node.local_keys(), 2);
        assert_eq!(node.child_count(), 1);
    }

    #[test]
    fn predict_slot_clamps() {
        let mut node = Node::empty(10, 1);
        node.model = LinearModel::new(1.0, -5.0);
        assert_eq!(node.predict_slot(0), 0);
        assert_eq!(node.predict_slot(7), 2);
        assert_eq!(node.predict_slot(1000), 9);
    }
}
