//! A from-scratch reproduction of **LIPP** — the *Updatable Learned Index
//! with Precise Positions* [Wu et al., VLDB 2021] — plus the CSV integration
//! hooks of the paper under reproduction.
//!
//! LIPP nodes hold a linear model over an array of slots; every key is stored
//! *exactly* at the slot its model predicts, so lookups never perform a local
//! search. Keys whose predictions collide are pushed into a recursively built
//! child node occupying the contested slot, which is precisely how difficult
//! key-space regions end up many levels deep (Fig. 1 of the CSV paper). The
//! CSV optimisation collects such sub-trees, smooths their keys with virtual
//! points, and rebuilds them as a single node whose model now places almost
//! every key without conflicts.
//!
//! Faithfulness notes (documented deviations from the original C++ code):
//!
//! * the build model is a conflict-aware least-squares fit rather than the
//!   full FMCD search; both aim to minimise slot collisions,
//! * the insert-time adjustment strategy rebuilds a sub-tree once the number
//!   of inserts since its construction exceeds half its size, a simplified
//!   form of LIPP's conflict/size-ratio trigger.

#![forbid(unsafe_code)]

mod csv_integration;
mod index;
mod node;

pub use index::{LippConfig, LippIndex};
pub use node::{LippNodeView, Slot};

#[cfg(test)]
mod proptests {
    use super::LippIndex;
    use csv_common::key::identity_records;
    use csv_common::traits::LearnedIndex;
    use csv_core::{CsvConfig, CsvOptimizer};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Bulk-loaded LIPP answers membership queries exactly.
        #[test]
        fn lookup_matches_oracle(mut keys in prop::collection::vec(0u64..2_000_000, 1..500)) {
            keys.sort_unstable();
            keys.dedup();
            let index = LippIndex::bulk_load(&identity_records(&keys));
            prop_assert_eq!(index.len(), keys.len());
            for &k in &keys {
                prop_assert_eq!(index.get(k), Some(k));
            }
            for probe in [1u64, 999_999, 1_999_999] {
                let expected = keys.binary_search(&probe).is_ok();
                prop_assert_eq!(index.get(probe).is_some(), expected);
            }
        }

        /// Random inserts keep LIPP consistent with a BTreeMap oracle.
        #[test]
        fn inserts_match_btreemap(
            mut base in prop::collection::vec(0u64..500_000, 1..200),
            extra in prop::collection::vec((0u64..500_000, 0u64..100), 0..200),
        ) {
            base.sort_unstable();
            base.dedup();
            let mut index = LippIndex::bulk_load(&identity_records(&base));
            let mut oracle: std::collections::BTreeMap<u64, u64> =
                base.iter().map(|&k| (k, k)).collect();
            for (k, v) in extra {
                index.insert(k, v);
                oracle.insert(k, v);
            }
            prop_assert_eq!(index.len(), oracle.len());
            for (&k, &v) in &oracle {
                prop_assert_eq!(index.get(k), Some(v));
            }
        }

        /// CSV optimisation never changes query answers, never loses keys,
        /// and every key keeps a valid level assignment.
        #[test]
        fn csv_preserves_answers(
            mut keys in prop::collection::vec(0u64..3_000_000, 50..400),
        ) {
            keys.sort_unstable();
            keys.dedup();
            let mut index = LippIndex::bulk_load(&identity_records(&keys));
            let report = CsvOptimizer::new(CsvConfig::for_lipp(0.2)).optimize(&mut index);
            prop_assert_eq!(index.len(), keys.len());
            for &k in &keys {
                prop_assert_eq!(index.get(k), Some(k));
                prop_assert!(index.level_of_key(k).is_some());
            }
            prop_assert!(report.subtrees_considered() >= report.subtrees_rebuilt);
            prop_assert_eq!(index.stats().level_histogram.total(), keys.len());
        }
    }
}
