//! The LIPP index: bulk loading, precise-position lookups, inserts with
//! conflict-driven child creation, and adjustment (sub-tree rebuilds).

use crate::node::{LippNodeView, Node, Slot};
use core::ops::ControlFlow;
use csv_common::metrics::CostCounters;
use csv_common::traits::{
    IndexStats, LearnedIndex, LevelHistogram, RangeIndex, RemovableIndex, SnapshotIndex,
};
use csv_common::{Key, KeyValue, LinearModel, Value};

/// Construction/adjustment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LippConfig {
    /// Slots allocated per key when building a node (LIPP uses a sparse slot
    /// array so inserts usually find an empty slot).
    pub expansion: f64,
    /// Minimum node capacity.
    pub min_capacity: usize,
    /// A sub-tree is rebuilt once it has absorbed more than
    /// `subtree_keys / 2` inserts and holds at least this many keys.
    pub adjust_min_keys: usize,
}

impl Default for LippConfig {
    fn default() -> Self {
        Self {
            expansion: 2.0,
            min_capacity: 8,
            adjust_min_keys: 64,
        }
    }
}

/// The LIPP learned index (see the crate docs for the reproduction notes).
#[derive(Debug, Clone)]
pub struct LippIndex {
    pub(crate) nodes: Vec<Node>,
    free: Vec<usize>,
    pub(crate) root: usize,
    len: usize,
    config: LippConfig,
}

impl LippIndex {
    /// Builds an index with a custom configuration.
    pub fn with_config(records: &[KeyValue], config: LippConfig) -> Self {
        debug_assert!(
            records.windows(2).all(|w| w[0].key < w[1].key),
            "records must be sorted by key and unique"
        );
        let mut index = Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: 0,
            len: records.len(),
            config,
        };
        index.root = index.build_subtree(records, 1);
        index
    }

    /// The configuration used to build this index.
    pub fn config(&self) -> &LippConfig {
        &self.config
    }

    pub(crate) fn push_free(&mut self, id: usize) {
        self.free.push(id);
    }

    pub(crate) fn alloc(&mut self, node: Node) -> usize {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            id
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Returns descendant node ids (not including `node_id` itself) to the
    /// free list.
    pub(crate) fn free_descendants(&mut self, node_id: usize) {
        let mut stack: Vec<usize> = self.nodes[node_id]
            .slots
            .iter()
            .filter_map(|s| {
                if let Slot::Child(c) = s {
                    Some(*c)
                } else {
                    None
                }
            })
            .collect();
        while let Some(id) = stack.pop() {
            for slot in &self.nodes[id].slots {
                if let Slot::Child(c) = slot {
                    stack.push(*c);
                }
            }
            self.nodes[id] = Node::empty(1, 0);
            self.free.push(id);
        }
    }

    /// Recursively builds a node over sorted records; returns its arena id.
    pub(crate) fn build_subtree(&mut self, records: &[KeyValue], level: usize) -> usize {
        let n = records.len();
        if n == 0 {
            let node = Node::empty(self.config.min_capacity, level);
            return self.alloc(node);
        }
        if n == 1 {
            let mut node = Node::empty(self.config.min_capacity, level);
            // A constant model maps every key to slot 0.
            node.model = LinearModel::new(0.0, 0.0);
            node.slots[0] = Slot::Data(records[0].key, records[0].value);
            node.subtree_keys = 1;
            return self.alloc(node);
        }
        let capacity = ((n as f64 * self.config.expansion) as usize).max(self.config.min_capacity);
        let keys: Vec<Key> = records.iter().map(|r| r.key).collect();
        let model = Self::conflict_aware_model(&keys, capacity);
        self.build_with_model(records, level, capacity, model)
    }

    /// Builds a node with a caller-supplied capacity and model (used both by
    /// the normal build path and by the CSV rebuild). The model is given in
    /// absolute key coordinates and converted to the node's offset
    /// coordinates internally.
    pub(crate) fn build_with_model(
        &mut self,
        records: &[KeyValue],
        level: usize,
        capacity: usize,
        model: LinearModel,
    ) -> usize {
        let n = records.len();
        let mut node = Node::empty(capacity, level);
        node.key_offset = records[0].key;
        // predict(k) = slope·k + b  ==  slope·(k − off) + (b + slope·off)
        node.model = LinearModel::new(
            model.slope,
            model.intercept + model.slope * node.key_offset as f64,
        );
        node.subtree_keys = n;
        // Group consecutive records by their predicted slot.
        let mut groups: Vec<(usize, usize, usize)> = Vec::new(); // (slot, start, end)
        let mut start = 0usize;
        while start < n {
            let slot = node.predict_slot(records[start].key);
            let mut end = start + 1;
            while end < n && node.predict_slot(records[end].key) == slot {
                end += 1;
            }
            groups.push((slot, start, end));
            start = end;
        }
        // Degenerate model: everything predicted into one slot. Fall back to
        // a spread model mapping [min, max] onto the full slot range. The
        // model is expressed in offset coordinates directly (offset = min),
        // and set in place rather than recursing, so the fallback cannot
        // loop.
        if groups.len() == 1 && n > 1 {
            let min = records[0].key;
            let max = records[n - 1].key;
            if max > min {
                let slope = (capacity - 1) as f64 / (max - min) as f64;
                node.model = LinearModel::new(slope, 0.0);
                debug_assert_eq!(node.key_offset, min);
                groups.clear();
                let mut start = 0usize;
                while start < n {
                    let slot = node.predict_slot(records[start].key);
                    let mut end = start + 1;
                    while end < n && node.predict_slot(records[end].key) == slot {
                        end += 1;
                    }
                    groups.push((slot, start, end));
                    start = end;
                }
            }
        }
        let node_id = self.alloc(node);
        for (slot, start, end) in groups {
            if end - start == 1 {
                self.nodes[node_id].slots[slot] =
                    Slot::Data(records[start].key, records[start].value);
            } else {
                let child = self.build_subtree(&records[start..end], level + 1);
                self.nodes[node_id].slots[slot] = Slot::Child(child);
            }
        }
        node_id
    }

    /// A least-squares CDF model rescaled to the slot range — LIPP's FMCD
    /// model search is approximated by this fit, which already minimises the
    /// squared slot-prediction error and hence most conflicts.
    fn conflict_aware_model(keys: &[Key], capacity: usize) -> LinearModel {
        let n = keys.len();
        let positions: Vec<f64> = (0..n)
            .map(|i| i as f64 * (capacity - 1) as f64 / (n - 1) as f64)
            .collect();
        LinearModel::fit_points(keys, &positions)
    }

    /// Collects the records of a sub-tree in ascending key order.
    pub(crate) fn collect_records(&self, node_id: usize) -> Vec<KeyValue> {
        let mut out = Vec::with_capacity(self.nodes[node_id].subtree_keys);
        self.collect_into(node_id, &mut out);
        out.sort_unstable_by_key(|r| r.key);
        out
    }

    fn collect_into(&self, node_id: usize, out: &mut Vec<KeyValue>) {
        for slot in &self.nodes[node_id].slots {
            match slot {
                Slot::Empty => {}
                Slot::Data(k, v) => out.push(KeyValue::new(*k, *v)),
                Slot::Child(c) => self.collect_into(*c, out),
            }
        }
    }

    /// Rebuilds the sub-tree rooted at `node_id` in place from its own
    /// records (the adjustment step triggered by inserts).
    pub(crate) fn rebuild_in_place(&mut self, node_id: usize) {
        let records = self.collect_records(node_id);
        let level = self.nodes[node_id].level;
        self.free_descendants(node_id);
        let temp = self.build_subtree(&records, level);
        self.nodes.swap(node_id, temp);
        self.nodes[temp] = Node::empty(1, 0);
        self.free.push(temp);
    }

    /// Depth-first views of every reachable node (diagnostics / experiments).
    pub fn node_views(&self) -> Vec<LippNodeView> {
        let mut views = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            views.push(LippNodeView {
                node_id: id,
                level: node.level,
                capacity: node.capacity(),
                local_keys: node.local_keys(),
                children: node.child_count(),
                subtree_keys: node.subtree_keys,
            });
            for slot in &node.slots {
                if let Slot::Child(c) = slot {
                    stack.push(*c);
                }
            }
        }
        views
    }

    /// The deepest level of any reachable node.
    pub fn height(&self) -> usize {
        self.node_views().iter().map(|v| v.level).max().unwrap_or(1)
    }

    /// Average slot occupancy over reachable nodes (diagnostics).
    pub fn occupancy(&self) -> f64 {
        let views = self.node_views();
        let slots: usize = views.iter().map(|v| v.capacity).sum();
        let keys: usize = views.iter().map(|v| v.local_keys).sum();
        if slots == 0 {
            0.0
        } else {
            keys as f64 / slots as f64
        }
    }
}

impl LearnedIndex for LippIndex {
    fn name(&self) -> &'static str {
        "LIPP"
    }

    fn bulk_load(records: &[KeyValue]) -> Self {
        Self::with_config(records, LippConfig::default())
    }

    fn get(&self, key: Key) -> Option<Value> {
        let mut node_id = self.root;
        loop {
            let node = &self.nodes[node_id];
            match node.slots[node.predict_slot(key)] {
                Slot::Empty => return None,
                Slot::Data(k, v) => return if k == key { Some(v) } else { None },
                Slot::Child(c) => node_id = c,
            }
        }
    }

    fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value> {
        let mut node_id = self.root;
        loop {
            counters.nodes_visited += 1;
            counters.model_evals += 1;
            let node = &self.nodes[node_id];
            match node.slots[node.predict_slot(key)] {
                Slot::Empty => return None,
                Slot::Data(k, v) => {
                    counters.comparisons += 1;
                    return if k == key { Some(v) } else { None };
                }
                Slot::Child(c) => node_id = c,
            }
        }
    }

    fn insert(&mut self, key: Key, value: Value) -> bool {
        let mut path = Vec::new();
        let mut node_id = self.root;
        let inserted = loop {
            path.push(node_id);
            let slot_idx = self.nodes[node_id].predict_slot(key);
            match self.nodes[node_id].slots[slot_idx] {
                Slot::Empty => {
                    self.nodes[node_id].slots[slot_idx] = Slot::Data(key, value);
                    break true;
                }
                Slot::Data(k, v) => {
                    if k == key {
                        self.nodes[node_id].slots[slot_idx] = Slot::Data(key, value);
                        break false;
                    }
                    // Conflict: push both records into a new child node.
                    let level = self.nodes[node_id].level + 1;
                    let mut pair = [KeyValue::new(k, v), KeyValue::new(key, value)];
                    pair.sort_unstable_by_key(|r| r.key);
                    let child = self.build_subtree(&pair, level);
                    self.nodes[node_id].slots[slot_idx] = Slot::Child(child);
                    break true;
                }
                Slot::Child(c) => node_id = c,
            }
        };
        if inserted {
            self.len += 1;
            for &id in &path {
                self.nodes[id].subtree_keys += 1;
                self.nodes[id].inserts_since_build += 1;
                // Every node on the path roots a sub-tree that just absorbed
                // this key: flag them for incremental re-optimisation.
                self.nodes[id].dirty = true;
            }
            // Adjustment: rebuild the shallowest non-root sub-tree that has
            // absorbed more inserts than half its size.
            for &id in path.iter().skip(1) {
                let node = &self.nodes[id];
                if node.subtree_keys >= self.config.adjust_min_keys
                    && node.inserts_since_build * 2 > node.subtree_keys
                {
                    self.rebuild_in_place(id);
                    break;
                }
            }
        }
        inserted
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> IndexStats {
        let mut histogram = LevelHistogram::new();
        let mut node_count = 0usize;
        let mut deep_node_count = 0usize;
        let mut size_bytes = 0usize;
        let mut height = 1usize;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            node_count += 1;
            size_bytes += node.size_bytes();
            height = height.max(node.level);
            if node.level >= 3 {
                deep_node_count += 1;
            }
            let local = node.local_keys();
            if local > 0 {
                histogram.record(node.level, local);
            }
            for slot in &node.slots {
                if let Slot::Child(c) = slot {
                    stack.push(*c);
                }
            }
        }
        IndexStats {
            level_histogram: histogram,
            node_count,
            deep_node_count,
            height,
            size_bytes,
            num_keys: self.len,
        }
    }

    fn level_of_key(&self, key: Key) -> Option<usize> {
        let mut node_id = self.root;
        loop {
            let node = &self.nodes[node_id];
            match node.slots[node.predict_slot(key)] {
                Slot::Empty => return None,
                Slot::Data(k, _) => return if k == key { Some(node.level) } else { None },
                Slot::Child(c) => node_id = c,
            }
        }
    }

    fn prefetch_key(&self, key: Key) {
        // Root-model arithmetic only, then one prefetch of the predicted
        // root slot — the first cache line the lookup will touch. No
        // descent: reading slot contents here would *stall* on the very
        // misses the prefetch pass exists to overlap (a dependent-load
        // walk is just the lookup run twice).
        let node = &self.nodes[self.root];
        csv_common::prefetch_slice_at(&node.slots, node.predict_slot(key));
    }
}

impl LippIndex {
    /// In-order streaming scan: slot order within a node is key order (the
    /// routing model is monotone), so a depth-first left-to-right walk visits
    /// records in ascending key order. Monotonicity also lets the walk start
    /// at `predict_slot(lo)` — every key in an earlier slot predicts earlier,
    /// hence is `< lo` — and stop at the first key past `hi`.
    ///
    /// `Break(true)` means the visitor stopped the scan; `Break(false)` means
    /// the walk ran past `hi` (natural exhaustion).
    fn visit_node(
        &self,
        node_id: usize,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<bool> {
        let node = &self.nodes[node_id];
        let start = node.predict_slot(lo);
        for slot in &node.slots[start..] {
            match slot {
                Slot::Empty => {}
                Slot::Data(k, v) => {
                    if *k > hi {
                        return ControlFlow::Break(false);
                    }
                    if *k >= lo && f(*k, *v).is_break() {
                        return ControlFlow::Break(true);
                    }
                }
                Slot::Child(c) => self.visit_node(*c, lo, hi, f)?,
            }
        }
        ControlFlow::Continue(())
    }
}

impl RangeIndex for LippIndex {
    fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        let _ = self.range_visit(lo, hi, &mut |k, v| {
            out.push(KeyValue::new(k, v));
            ControlFlow::Continue(())
        });
        out
    }

    fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if lo > hi {
            return ControlFlow::Continue(());
        }
        match self.visit_node(self.root, lo, hi, f) {
            ControlFlow::Break(true) => ControlFlow::Break(()),
            _ => ControlFlow::Continue(()),
        }
    }
}

/// Snapshot audit: `derive(Clone)` deep-copies the `nodes` arena (every
/// node owns its model and slot `Vec`s), the free list and the scalar
/// metadata. The clone shares nothing with the original — no `Rc`, no
/// interior mutability — so mutating a clone never perturbs concurrent
/// readers of the source, and the cost is O(slots) straight `memcpy`s.
impl SnapshotIndex for LippIndex {}

impl RemovableIndex for LippIndex {
    fn remove(&mut self, key: Key) -> Option<Value> {
        // Walk the precise-position path; a removed record simply leaves an
        // empty slot (which later inserts can reuse). `subtree_keys` is kept
        // in sync along the path so the adjustment heuristic and CSV's
        // statistics stay accurate.
        let mut path = Vec::new();
        let mut node_id = self.root;
        let removed = loop {
            path.push(node_id);
            let slot_idx = self.nodes[node_id].predict_slot(key);
            match self.nodes[node_id].slots[slot_idx] {
                Slot::Empty => break None,
                Slot::Data(k, v) => {
                    if k == key {
                        self.nodes[node_id].slots[slot_idx] = Slot::Empty;
                        break Some(v);
                    }
                    break None;
                }
                Slot::Child(c) => node_id = c,
            }
        };
        if removed.is_some() {
            self.len -= 1;
            for &id in &path {
                self.nodes[id].subtree_keys -= 1;
                self.nodes[id].dirty = true;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::key::identity_records;

    fn skewed_keys(n: u64) -> Vec<Key> {
        // Dense runs separated by widely varying jumps — forces conflicts and
        // therefore a multi-level structure.
        let mut keys = Vec::new();
        let mut base = 0u64;
        for block in 0..n / 50 {
            for i in 0..50u64 {
                keys.push(base + i);
            }
            base += 50 + (block % 7 + 1) * 10_000 * (1 + block % 3);
        }
        keys
    }

    #[test]
    fn bulk_load_and_lookup() {
        let keys = skewed_keys(20_000);
        let index = LippIndex::bulk_load(&identity_records(&keys));
        assert_eq!(index.len(), keys.len());
        assert_eq!(index.name(), "LIPP");
        for &k in keys.iter().step_by(61) {
            assert_eq!(index.get(k), Some(k));
        }
        assert_eq!(index.get(keys[keys.len() - 1] + 12345), None);
        assert!(index.height() >= 2, "skewed keys must create child nodes");
        assert!(index.occupancy() > 0.0 && index.occupancy() <= 1.0);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = LippIndex::bulk_load(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.get(7), None);
        let single = LippIndex::bulk_load(&[KeyValue::new(9, 90)]);
        assert_eq!(single.get(9), Some(90));
        assert_eq!(single.get(8), None);
        assert_eq!(single.level_of_key(9), Some(1));
    }

    #[test]
    fn precise_positions_mean_no_leaf_search() {
        // Every counted lookup must do exactly one comparison (the final
        // key equality check) regardless of depth: that is LIPP's defining
        // property.
        let keys = skewed_keys(10_000);
        let index = LippIndex::bulk_load(&identity_records(&keys));
        for &k in keys.iter().step_by(97) {
            let mut counters = CostCounters::new();
            assert_eq!(index.get_counted(k, &mut counters), Some(k));
            assert_eq!(counters.comparisons, 1);
            assert!(counters.nodes_visited >= 1);
        }
    }

    #[test]
    fn inserts_create_conflicts_and_adjustment_keeps_correctness() {
        let keys: Vec<Key> = (0..5_000u64).map(|i| i * 10).collect();
        let mut index = LippIndex::bulk_load(&identity_records(&keys));
        // Insert keys that collide with existing predictions.
        for i in 0..5_000u64 {
            assert!(index.insert(i * 10 + 1, i));
        }
        assert_eq!(index.len(), 10_000);
        for i in 0..5_000u64 {
            assert_eq!(index.get(i * 10), Some(i * 10));
            assert_eq!(index.get(i * 10 + 1), Some(i));
        }
        // Overwrite does not change the length.
        assert!(!index.insert(0, 42));
        assert_eq!(index.get(0), Some(42));
        assert_eq!(index.len(), 10_000);
    }

    #[test]
    fn level_histogram_accounts_for_every_key() {
        let keys = skewed_keys(30_000);
        let index = LippIndex::bulk_load(&identity_records(&keys));
        let stats = index.stats();
        assert_eq!(stats.level_histogram.total(), keys.len());
        assert_eq!(stats.num_keys, keys.len());
        assert_eq!(stats.height, index.height());
        assert!(stats.node_count >= 1);
        assert!(stats.size_bytes > keys.len() * std::mem::size_of::<Slot>());
        // Deep keys exist for this skewed distribution.
        assert!(stats.level_histogram.max_level() >= 2);
        // level_of_key agrees with the histogram's support.
        for &k in keys.iter().step_by(577) {
            let level = index.level_of_key(k).unwrap();
            assert!(level <= stats.height);
        }
    }

    #[test]
    fn range_scans_match_oracle() {
        let keys = skewed_keys(20_000);
        let index = LippIndex::bulk_load(&identity_records(&keys));
        assert_eq!(index.range(0, u64::MAX).len(), keys.len());
        for (start, span) in [(50usize, 400u64), (10_000, 25), (19_900, 1_000_000)] {
            let lo = keys[start];
            let hi = lo + span;
            let got = index.range(lo, hi);
            let expected: Vec<Key> = keys
                .iter()
                .copied()
                .filter(|&k| k >= lo && k <= hi)
                .collect();
            assert_eq!(
                got.iter().map(|r| r.key).collect::<Vec<_>>(),
                expected,
                "range [{lo}, {hi}]"
            );
        }
        assert!(index.range(17, 3).is_empty());
    }

    #[test]
    fn removals_free_slots_and_keep_counts() {
        let keys = skewed_keys(10_000);
        let mut index = LippIndex::bulk_load(&identity_records(&keys));
        for &k in keys.iter().step_by(5) {
            assert_eq!(index.remove(k), Some(k));
        }
        let removed = keys.iter().step_by(5).count();
        assert_eq!(index.len(), keys.len() - removed);
        for (i, &k) in keys.iter().enumerate() {
            if i % 5 == 0 {
                assert_eq!(index.get(k), None);
                assert_eq!(index.level_of_key(k), None);
            } else if i % 3 == 0 {
                assert_eq!(index.get(k), Some(k));
            }
        }
        assert_eq!(index.remove(keys[0]), None);
        // The root's subtree count stays consistent with the length.
        assert_eq!(index.nodes[index.root].subtree_keys, index.len());
        // Freed slots are reused by later inserts.
        assert!(index.insert(keys[0], 123));
        assert_eq!(index.get(keys[0]), Some(123));
        // Ranges exclude removed keys.
        let hi = keys[30];
        let expected: Vec<Key> = keys
            .iter()
            .enumerate()
            .filter(|&(i, &k)| k <= hi && (i % 5 != 0 || i == 0))
            .map(|(_, &k)| k)
            .collect();
        assert_eq!(
            index.range(0, hi).iter().map(|r| r.key).collect::<Vec<_>>(),
            expected
        );
    }

    #[test]
    fn rebuild_in_place_preserves_contents() {
        let keys = skewed_keys(5_000);
        let mut index = LippIndex::bulk_load(&identity_records(&keys));
        let root = index.root;
        index.rebuild_in_place(root);
        assert_eq!(index.len(), keys.len());
        for &k in keys.iter().step_by(119) {
            assert_eq!(index.get(k), Some(k));
        }
    }

    #[test]
    fn node_views_cover_all_reachable_nodes() {
        let keys = skewed_keys(8_000);
        let index = LippIndex::bulk_load(&identity_records(&keys));
        let views = index.node_views();
        assert_eq!(views.len(), index.stats().node_count);
        let total_local: usize = views.iter().map(|v| v.local_keys).sum();
        assert_eq!(total_local, keys.len());
        let root_view = views.iter().find(|v| v.node_id == index.root).unwrap();
        assert_eq!(root_view.level, 1);
        assert_eq!(root_view.subtree_keys, keys.len());
    }
}
