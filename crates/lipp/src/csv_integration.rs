//! CSV (Algorithm 2) integration for LIPP.
//!
//! LIPP has no leaf-search component, so the paper uses the pure loss
//! condition: any sub-tree whose smoothed key set fits a single model better
//! than before is merged into one flat node. The merged node's capacity is
//! the smoothed layout's slot count — the virtual points become empty slots
//! that both keep the model accurate and absorb future inserts.

use crate::index::LippIndex;
use crate::node::Slot;
use csv_common::{Key, KeyValue};
use csv_core::cost::SubtreeCostStats;
use csv_core::csv::{CsvIntegrable, RebuildRefusal, SubtreeRef};
use csv_core::layout::SmoothedLayout;

impl LippIndex {
    fn subtree_mean_depth(&self, node_id: usize) -> f64 {
        // Mean depth of Data slots relative to the sub-tree root (depth 1).
        let mut total = 0usize;
        let mut count = 0usize;
        let base_level = self.nodes[node_id].level;
        let mut stack = vec![node_id];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            let depth = node.level - base_level + 1;
            for slot in &node.slots {
                match slot {
                    Slot::Data(_, _) => {
                        total += depth;
                        count += 1;
                    }
                    Slot::Child(c) => stack.push(*c),
                    Slot::Empty => {}
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

impl CsvIntegrable for LippIndex {
    fn csv_tracks_dirty(&self) -> bool {
        true
    }

    fn csv_dirty_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
        // Inserts/removes flag every node on their root-to-slot path, so a
        // sub-tree root is dirty iff anything below it changed since the
        // last `csv_mark_clean`.
        self.node_views()
            .iter()
            .filter(|v| v.level == level && v.children > 0 && self.nodes[v.node_id].dirty)
            .map(|v| SubtreeRef {
                node_id: v.node_id,
                level,
            })
            .collect()
    }

    fn csv_mark_clean(&mut self) {
        // Clearing the whole arena (free-listed slots included) is safe:
        // reallocation goes through `Node::empty`, which starts dirty.
        for node in &mut self.nodes {
            node.dirty = false;
        }
    }

    fn csv_max_level(&self) -> usize {
        self.node_views()
            .iter()
            .filter(|v| v.children > 0)
            .map(|v| v.level)
            .max()
            .unwrap_or(0)
    }

    fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
        self.node_views()
            .iter()
            .filter(|v| v.level == level && v.children > 0)
            .map(|v| SubtreeRef {
                node_id: v.node_id,
                level,
            })
            .collect()
    }

    fn csv_collect_keys_into(&self, subtree: &SubtreeRef, buf: &mut Vec<Key>) {
        // Appends straight into the caller's scratch buffer: no intermediate
        // record vector, no per-sub-tree allocation once the buffer has
        // grown to the largest sub-tree of the sweep.
        let start = buf.len();
        buf.reserve(self.nodes[subtree.node_id].subtree_keys);
        let mut stack = vec![subtree.node_id];
        while let Some(id) = stack.pop() {
            for slot in &self.nodes[id].slots {
                match slot {
                    Slot::Empty => {}
                    Slot::Data(k, _) => buf.push(*k),
                    Slot::Child(c) => stack.push(*c),
                }
            }
        }
        buf[start..].sort_unstable();
    }

    fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats {
        SubtreeCostStats {
            num_keys: self.nodes[subtree.node_id].subtree_keys,
            mean_key_depth: self.subtree_mean_depth(subtree.node_id),
            // LIPP performs no leaf-node search: one equality check per
            // lookup, independent of node size.
            expected_searches: 1.0,
        }
    }

    fn csv_rebuild_subtree(
        &mut self,
        subtree: &SubtreeRef,
        layout: &SmoothedLayout,
    ) -> Result<(), RebuildRefusal> {
        // Guard against absurdly large merged nodes.
        if layout.num_slots() > (1 << 26) {
            return Err(RebuildRefusal::CapacityExceeded);
        }
        let node_id = subtree.node_id;
        let level = self.nodes[node_id].level;
        let records = self.collect_records(node_id);
        if records.len() != layout.num_real() {
            // The layout no longer matches the sub-tree contents.
            return Err(RebuildRefusal::StaleLayout);
        }
        // Pair each real key of the layout with its stored value (both are in
        // ascending key order). A key mismatch means the sub-tree's contents
        // changed since the layout was planned (possible in the short-lock
        // sharded path, where inserts can land between plan and apply).
        let mut real_records: Vec<KeyValue> = Vec::with_capacity(records.len());
        let mut idx = 0usize;
        for entry in layout.entries() {
            if entry.is_real() {
                if records[idx].key != entry.key() {
                    return Err(RebuildRefusal::StaleLayout);
                }
                real_records.push(records[idx]);
                idx += 1;
            }
        }
        // Build the merged node from the smoothed layout. The layout's ranks
        // are scaled by LIPP's usual slot expansion so the merged node keeps
        // the same slack per point as a freshly built node — the virtual
        // points make the model accurate, the expansion keeps residual
        // conflicts (which would re-create children) rare.
        let scale = self.config().expansion.max(1.0);
        let capacity =
            ((layout.num_slots() as f64 * scale).ceil() as usize).max(layout.num_slots());
        let model = layout.model();
        let scaled_model =
            csv_common::LinearModel::new(model.slope * scale, model.intercept * scale);
        // Build the candidate first (the old sub-tree stays untouched), then
        // commit only if the merged layout does not place keys deeper than
        // they already were: a smoothed model can still re-create conflicts,
        // and accepting such a rebuild would demote keys instead of
        // promoting them.
        let old_depth = self.subtree_mean_depth(node_id);
        let temp = self.build_with_model(&real_records, level, capacity, scaled_model);
        let new_depth = self.subtree_mean_depth(temp);
        if new_depth > old_depth + 1e-12 {
            self.free_descendants(temp);
            self.nodes[temp] = crate::node::Node::empty(1, 0);
            self.reclaim(temp);
            return Err(RebuildRefusal::WouldDemoteKeys);
        }
        self.free_descendants(node_id);
        self.nodes.swap(node_id, temp);
        self.nodes[temp] = crate::node::Node::empty(1, 0);
        // `temp` now holds a placeholder; hand it back to the allocator.
        self.reclaim(temp);
        Ok(())
    }
}

impl LippIndex {
    pub(crate) fn reclaim(&mut self, node_id: usize) {
        // Small helper kept separate so csv_integration does not need access
        // to the private free list directly.
        self.push_free(node_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::key::identity_records;
    use csv_common::traits::LearnedIndex;
    use csv_core::{CsvConfig, CsvOptimizer};

    fn hard_keys(n: u64) -> Vec<Key> {
        // Three-scale fractal key space (runs → blocks → super-blocks) with
        // gaps growing by several orders of magnitude at every scale. Each
        // scale collapses into a handful of slots of its parent node, so the
        // bulk-loaded LIPP is several levels deep — the structure CSV targets.
        let mut keys = Vec::new();
        let mut super_base = 1_000u64;
        let mut sb = 0u64;
        'outer: loop {
            let mut block_base = super_base;
            for b in 0..24u64 {
                let run = 16 + ((sb * 7 + b * 13) % 48);
                let stride = 1 + ((b * 5 + sb) % 7);
                for i in 0..run {
                    keys.push(block_base + i * stride);
                    if keys.len() as u64 >= n {
                        break 'outer;
                    }
                }
                block_base += run * stride + 100_000 * (1 + (b % 5));
            }
            super_base = block_base + 3_000_000_000 * (1 + sb % 3);
            sb += 1;
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    #[test]
    fn csv_promotes_keys_and_reduces_nodes() {
        let keys = hard_keys(40_000);
        let mut index = LippIndex::bulk_load(&identity_records(&keys));
        let before = index.stats();
        let promotable_before = before.level_histogram.at_or_below(3);
        assert!(
            promotable_before > 0,
            "the workload must have deep keys to promote"
        );

        let report = CsvOptimizer::new(CsvConfig::for_lipp(0.2)).optimize(&mut index);
        let after = index.stats();

        // Correctness is untouched.
        assert_eq!(index.len(), keys.len());
        for &k in keys.iter().step_by(211) {
            assert_eq!(index.get(k), Some(k));
        }
        // Structure improves on aggregate. (Individual keys can be demoted
        // when a merged node re-creates a conflict, so the bounds below are
        // aggregate bounds, matching what the paper reports.)
        assert!(
            report.subtrees_rebuilt > 0,
            "CSV should find sub-trees to merge"
        );
        assert!(
            after.level_histogram.at_or_below(3) as f64 <= promotable_before as f64 * 1.2 + 1.0,
            "deep keys grew substantially: {} -> {}",
            promotable_before,
            after.level_histogram.at_or_below(3)
        );
        assert!(after.mean_key_level() <= before.mean_key_level() + 0.25);
        assert!(report.virtual_points_added > 0);
    }

    #[test]
    fn higher_alpha_promotes_at_least_as_many_keys() {
        let keys = hard_keys(30_000);
        let levels_after = |alpha: f64| {
            let mut index = LippIndex::bulk_load(&identity_records(&keys));
            CsvOptimizer::new(CsvConfig::for_lipp(alpha)).optimize(&mut index);
            index.stats().mean_key_level()
        };
        let low = levels_after(0.05);
        let high = levels_after(0.4);
        assert!(
            high <= low + 0.05,
            "α=0.4 mean level {high} vs α=0.05 {low}"
        );
    }

    #[test]
    fn storage_overhead_is_bounded_by_alpha() {
        let keys = hard_keys(30_000);
        let mut plain = LippIndex::bulk_load(&identity_records(&keys));
        let before_bytes = plain.stats().size_bytes;
        let report = CsvOptimizer::new(CsvConfig::for_lipp(0.1)).optimize(&mut plain);
        let after_bytes = plain.stats().size_bytes;
        assert!(report.subtrees_rebuilt > 0);
        // The virtual points added are bounded by α per rebuilt sub-tree, so
        // the space increase stays moderate (paper: ≤ ~31 % in the worst
        // case; allow head-room because merged nodes keep their slack slots).
        let increase = (after_bytes as f64 - before_bytes as f64) / before_bytes as f64 * 100.0;
        assert!(increase < 60.0, "space increase {increase:.1}% too large");
    }

    #[test]
    fn dirty_tracking_restricts_plan_dirty_to_touched_subtrees() {
        use csv_common::traits::RemovableIndex;
        let keys = hard_keys(20_000);
        let mut index = LippIndex::bulk_load(&identity_records(&keys));
        assert!(index.csv_tracks_dirty());
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.2));

        // A freshly built index is fully dirty: the incremental plan is the
        // full plan.
        let full = optimizer.plan(&index);
        let dirty = optimizer.plan_dirty(&index);
        assert!(!full.is_empty());
        assert_eq!(full.decisions(), dirty.decisions());

        // Once clean, there is nothing to plan.
        index.csv_mark_clean();
        assert!(index.csv_dirty_subtrees_at_level(2).is_empty());
        assert!(optimizer.plan_dirty(&index).is_empty());

        // Removing a deep key dirties exactly the level-2 sub-tree on its
        // path; the incremental plan considers only that root.
        let deep = keys
            .iter()
            .copied()
            .find(|&k| index.level_of_key(k).unwrap_or(1) >= 3)
            .expect("hard keys produce deep levels");
        assert_eq!(index.remove(deep), Some(deep));
        let touched = index.csv_dirty_subtrees_at_level(2);
        assert_eq!(touched.len(), 1);
        let plan = optimizer.plan_dirty(&index);
        assert!(plan.len() <= 1);
        assert!(plan.decisions().iter().all(|d| d.subtree == touched[0]));

        // Re-inserting after another clean flags the same sub-tree again.
        index.csv_mark_clean();
        assert!(index.insert(deep, deep));
        assert_eq!(index.csv_dirty_subtrees_at_level(2), touched);
    }

    #[test]
    fn rebuild_rejects_stale_layouts() {
        let keys = hard_keys(5_000);
        let mut index = LippIndex::bulk_load(&identity_records(&keys));
        let max_level = index.csv_max_level();
        assert!(max_level >= 2);
        let subtree = index.csv_subtrees_at_level(2).into_iter().next().unwrap();
        let mut collected = index.csv_collect_keys(&subtree);
        assert!(!collected.is_empty());
        // Tamper with the key set so the layout no longer matches.
        collected.pop();
        let layout = SmoothedLayout::identity(&collected);
        assert_eq!(
            index.csv_rebuild_subtree(&subtree, &layout),
            Err(RebuildRefusal::StaleLayout)
        );
    }

    #[test]
    fn buffered_key_collection_matches_the_allocating_form() {
        let keys = hard_keys(8_000);
        let index = LippIndex::bulk_load(&identity_records(&keys));
        let mut buf = Vec::new();
        for subtree in index.csv_subtrees_at_level(2) {
            buf.clear();
            index.csv_collect_keys_into(&subtree, &mut buf);
            assert_eq!(buf, index.csv_collect_keys(&subtree));
            assert!(
                buf.windows(2).all(|w| w[0] < w[1]),
                "keys must be strictly ascending"
            );
        }
    }

    #[test]
    fn subtree_cost_reports_precise_position_semantics() {
        let keys = hard_keys(10_000);
        let index = LippIndex::bulk_load(&identity_records(&keys));
        let level = index.csv_max_level();
        for subtree in index.csv_subtrees_at_level(level) {
            let cost = index.csv_subtree_cost(&subtree);
            assert_eq!(cost.expected_searches, 1.0);
            assert!(cost.mean_key_depth >= 1.0);
            assert!(cost.num_keys >= 2);
        }
    }

    #[test]
    fn gaps_left_by_virtual_points_absorb_inserts() {
        let keys = hard_keys(20_000);
        let mut index = LippIndex::bulk_load(&identity_records(&keys));
        CsvOptimizer::new(CsvConfig::for_lipp(0.2)).optimize(&mut index);
        // Insert new keys between existing ones; the smoothed nodes should
        // absorb many of them into empty (virtual) slots without losing any.
        let mut inserted = 0u64;
        for w in keys.windows(2).step_by(17) {
            let candidate = w[0] + (w[1] - w[0]) / 2;
            if candidate != w[0] && candidate != w[1] && index.get(candidate).is_none() {
                assert!(index.insert(candidate, candidate));
                inserted += 1;
            }
        }
        assert!(inserted > 0);
        assert_eq!(index.len(), keys.len() + inserted as usize);
        for &k in keys.iter().step_by(331) {
            assert_eq!(index.get(k), Some(k));
        }
    }
}
