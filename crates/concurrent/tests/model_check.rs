//! Deterministic model checking of the unsafe concurrency core.
//!
//! Compiled only under the `check` feature, where the `csv_common::sync`
//! shims route every atomic operation and lock acquisition through the
//! `csv_check` controlled scheduler. Each test explores interleavings of a
//! small thread population over the RCU cell or the sharded index —
//! exhaustively where the schedule tree is small enough, by seeded random
//! sampling (with distinct-trace deduplication) where it is not. A failure
//! panics with a replayable choice trace (`csv_check::replay`).
//!
//! The properties checked here are exactly the ones the `unsafe` blocks in
//! `rcu.rs` rely on:
//!
//! * a reader never dereferences a reclaimed value (grace periods work),
//! * handles pinned across publications stay alive until released,
//! * the salvaged overlay buffer is never stolen from under a pinned
//!   reader,
//! * a group-committed batch publishes atomically (a pinned view sees all
//!   of it or none of it), across the overlay fold boundary too,
//! * a write observed by any reader was already logged to the durability
//!   sink (write-ahead ordering),
//! * writers that race a split/merge re-route instead of publishing into a
//!   retired shard.
#![cfg(feature = "check")]

use csv_btree::BPlusTree;
use csv_common::sync::{AtomicBool, Mutex, Ordering::SeqCst};
use csv_common::{Key, KeyValue, Value};
use csv_concurrent::{
    DurabilitySink, OverlayRepr, RcuCell, ReadPath, ShardCheckpoint, ShardedIndex, ShardingConfig,
    WriteOp, WriteRecord,
};
use std::collections::HashSet;
use std::sync::Arc;

/// A payload that records its own reclamation through an *instrumented*
/// flag, so the reclamation itself is a schedule point and a
/// use-after-free window cannot hide between two checker steps.
struct Canary {
    value: u64,
    freed: Arc<AtomicBool>,
}

impl Canary {
    fn new(value: u64) -> (Arc<Self>, Arc<AtomicBool>) {
        let freed = Arc::new(AtomicBool::new(false));
        (
            Arc::new(Self {
                value,
                freed: Arc::clone(&freed),
            }),
            freed,
        )
    }
}

impl Drop for Canary {
    fn drop(&mut self) {
        assert!(
            !self.freed.swap(true, SeqCst),
            "a canary must be dropped exactly once"
        );
    }
}

fn records(n: u64) -> Vec<KeyValue> {
    (0..n).map(|i| KeyValue::new(i * 10, i)).collect()
}

fn one_shard_config(capacity: usize) -> ShardingConfig {
    ShardingConfig::with_shards(1)
        .with_read_path(ReadPath::Rcu)
        .with_overlay(OverlayRepr::Vec)
        .with_overlay_capacity(capacity)
}

/// The use-after-free canary at the heart of the grace-period argument,
/// explored **exhaustively**: one reader dereferencing through
/// `RcuCell::read` while one writer publishes a successor. Every
/// interleaving of the entry revalidation, pointer swap, parity flip,
/// drain and reclamation is visited; in none of them may the reader
/// observe a freed value or a value outside the published set.
#[test]
fn exhaustive_publish_vs_read_never_frees_under_a_reader() {
    let report = csv_check::explore_exhaustive(csv_check::Exhaustive::default(), || {
        let (first, _) = Canary::new(1);
        let cell = Arc::new(RcuCell::new(first));
        let reader_cell = Arc::clone(&cell);
        let reader = csv_check::spawn(move || {
            reader_cell.read(|c| {
                assert!(!c.freed.load(SeqCst), "dereferenced a reclaimed value");
                assert!(c.value == 1 || c.value == 2, "unpublished value observed");
            });
        });
        let (second, _) = Canary::new(2);
        cell.publish(second);
        reader.join();
        assert_eq!(cell.read(|c| c.value), 2);
    });
    assert!(report.complete, "the schedule tree must be fully explored");
    assert_eq!(report.schedules, report.distinct);
    eprintln!(
        "exhaustive publish/read: {} schedules (complete: {})",
        report.schedules, report.complete
    );
}

/// The same property under a larger population — two readers (one via
/// `read`, one via `load`) against two chained writers — sampled by
/// seeded random scheduling. The tree is far too big to enumerate; the
/// acceptance bar is ≥10k *distinct* schedules with zero failures.
#[test]
fn randomized_two_readers_two_writers_grace_periods_hold() {
    let opts = csv_check::Random {
        schedules: 12_288,
        seed: 0x5EED_CA5E,
        ..csv_check::Random::default()
    };
    let report = csv_check::explore_random(opts, || {
        let (first, _) = Canary::new(0);
        let cell = Arc::new(RcuCell::new(first));
        let c1 = Arc::clone(&cell);
        let r1 = csv_check::spawn(move || {
            c1.read(|c| {
                assert!(!c.freed.load(SeqCst), "dereferenced a reclaimed value");
            });
        });
        let c2 = Arc::clone(&cell);
        let r2 = csv_check::spawn(move || {
            let snapshot = c2.load();
            assert!(!snapshot.freed.load(SeqCst), "loaded a reclaimed value");
            snapshot.value
        });
        let c3 = Arc::clone(&cell);
        let w = csv_check::spawn(move || {
            let (next, _) = Canary::new(1);
            c3.publish(next);
        });
        let (next, _) = Canary::new(2);
        cell.publish(next);
        r1.join();
        let seen = r2.join();
        assert!(seen <= 2, "unpublished value observed");
        w.join();
    });
    assert!(
        report.distinct >= 10_000,
        "need >=10k distinct schedules, explored {}",
        report.distinct
    );
    eprintln!(
        "randomized 2R+2W publish/read: {} schedules, {} distinct",
        report.schedules, report.distinct
    );
}

/// A handle pinned across **two consecutive publications** must survive
/// both grace periods: `load` bumps the strong count inside the critical
/// section, so later writers wait only for the section, never for the
/// handle — and reclaim generation 0 only when the handle drops. The
/// exhaustive tree here is ~1.02M schedules (verified complete once, ~2
/// minutes); CI samples it randomly to stay inside the suite's budget.
#[test]
fn randomized_reader_pinned_across_two_publishes() {
    let opts = csv_check::Random {
        schedules: 4096,
        seed: 0xD0_0B1E,
        ..csv_check::Random::default()
    };
    let report = csv_check::explore_random(opts, || {
        let (first, first_freed) = Canary::new(0);
        let cell = Arc::new(RcuCell::new(first));
        let reader_cell = Arc::clone(&cell);
        let reader = csv_check::spawn(move || {
            let pinned = reader_cell.load();
            assert!(!pinned.freed.load(SeqCst), "loaded a reclaimed value");
            pinned
        });
        let (second, _) = Canary::new(1);
        cell.publish(second);
        let (third, _) = Canary::new(2);
        cell.publish(third);
        let pinned = reader.join();
        // Whatever generation the reader pinned, it is still alive here —
        // even generation 0, which both publications displaced.
        assert!(
            !pinned.freed.load(SeqCst),
            "a pinned generation was reclaimed while held"
        );
        let held_zero = pinned.value == 0;
        drop(pinned);
        if held_zero {
            assert!(
                first_freed.load(SeqCst),
                "dropping the last handle reclaims the displaced generation"
            );
        }
        assert_eq!(cell.read(|c| c.value), 2);
    });
    eprintln!(
        "randomized double-publish pin: {} schedules, {} distinct",
        report.schedules, report.distinct
    );
}

/// Dropping the cell while a loaded handle is still alive (in another
/// thread, under every interleaving of the load and the drop) reclaims
/// the value exactly once, and only after the last owner lets go.
#[test]
fn exhaustive_drop_with_held_handles() {
    let report = csv_check::explore_exhaustive(csv_check::Exhaustive::default(), || {
        let (value, freed) = Canary::new(9);
        let cell = Arc::new(RcuCell::new(value));
        let reader_cell = Arc::clone(&cell);
        let reader = csv_check::spawn(move || {
            let pinned = reader_cell.load();
            assert!(!pinned.freed.load(SeqCst));
            // The cell (and possibly its last Arc) dies while we hold this.
            pinned
        });
        // An explicit schedule point: without it this thread would run
        // straight to the drop (Arc reference counting is not
        // instrumented), and only one placement of the drop relative to
        // the reader's load would ever be explored.
        csv_check::yield_point();
        drop(cell);
        let pinned = reader.join();
        assert!(
            !pinned.freed.load(SeqCst),
            "the cell's drop reclaimed a value a handle still pins"
        );
        assert_eq!(pinned.value, 9);
        drop(pinned);
        assert!(freed.load(SeqCst), "the value leaked");
    });
    assert!(report.complete);
    eprintln!(
        "exhaustive drop-with-held-handles: {} schedules (complete: {})",
        report.schedules, report.complete
    );
}

/// `publish_salvaging` recycles the displaced snapshot's flat overlay
/// buffer — but only when the grace period hands it back *uniquely
/// owned*. A reader that pinned the displaced generation must keep seeing
/// its original contents, not a cleared or rewritten buffer.
#[test]
fn randomized_salvage_never_steals_a_pinned_overlay() {
    let opts = csv_check::Random {
        schedules: 1024,
        seed: 0x5A1_4A6E,
        ..csv_check::Random::default()
    };
    let report = csv_check::explore_random(opts, || {
        // Flat overlay, capacity high enough that no fold interferes:
        // every insert publishes a successor and tries to salvage the
        // displaced snapshot's buffer.
        let index = Arc::new(ShardedIndex::<BPlusTree>::bulk_load(
            &records(3),
            one_shard_config(8),
        ));
        index.insert(100, 100);
        let reader_index = Arc::clone(&index);
        let reader = csv_check::spawn(move || {
            // Pin the current snapshot (overlay holds key 100), then keep
            // reading through it while the writer publishes successors
            // whose overlays want this buffer back.
            let view = reader_index.read_view().expect("RCU path has views");
            let before = (view.get(100), view.get(0), view.len());
            let after = (view.get(100), view.get(0), view.len());
            assert_eq!(before, after, "a pinned view changed under a reader");
            assert_eq!(view.get(100), Some(100), "pinned overlay lost its slot");
        });
        index.insert(200, 200);
        index.insert(300, 300);
        reader.join();
        assert_eq!(index.get(100), Some(100));
        assert_eq!(index.get(200), Some(200));
        assert_eq!(index.get(300), Some(300));
        assert_eq!(index.len(), 6);
    });
    eprintln!(
        "randomized salvage-vs-pinned-reader: {} schedules, {} distinct",
        report.schedules, report.distinct
    );
}

/// A group-committed `write_batch` that crosses the overlay fold boundary
/// mid-slice still publishes **once**: a concurrently pinned view sees
/// either none of the batch or all of it, never a prefix.
#[test]
fn randomized_write_batch_fold_boundary_is_atomic_to_readers() {
    let opts = csv_check::Random {
        schedules: 1024,
        seed: 0xF01D,
        ..csv_check::Random::default()
    };
    let report = csv_check::explore_random(opts, || {
        // Capacity 2: the 4-op batch folds mid-slice.
        let index = Arc::new(ShardedIndex::<BPlusTree>::bulk_load(
            &records(3),
            one_shard_config(2),
        ));
        let reader_index = Arc::clone(&index);
        let reader = csv_check::spawn(move || {
            let view = reader_index.read_view().expect("RCU path has views");
            let seen: Vec<bool> = [101, 102, 103, 104]
                .iter()
                .map(|&k| view.get(k).is_some())
                .collect();
            assert!(
                seen.iter().all(|&s| s) || seen.iter().all(|&s| !s),
                "a pinned view observed a partial group commit: {seen:?}"
            );
        });
        let ops: Vec<WriteOp> = (101..=104)
            .map(|k| WriteOp::Insert { key: k, value: k })
            .collect();
        let outcome = index.write_batch(&ops);
        assert_eq!(outcome.fresh_inserts, 4);
        reader.join();
        assert_eq!(index.len(), 7);
        for k in 101..=104 {
            assert_eq!(index.get(k), Some(k));
        }
    });
    eprintln!(
        "randomized fold-boundary batch atomicity: {} schedules, {} distinct",
        report.schedules, report.distinct
    );
}

/// A sink that records which keys have been made durable, through
/// instrumented locks so recording itself is part of the explored
/// schedule.
#[derive(Default)]
struct RecordingSink {
    logged: Mutex<HashSet<Key>>,
}

impl RecordingSink {
    fn is_logged(&self, key: Key) -> bool {
        self.logged.lock().contains(&key)
    }
}

impl DurabilitySink for RecordingSink {
    fn log_write(&self, _shard: Key, key: Key, _value: Option<Value>) {
        self.logged.lock().insert(key);
    }

    fn log_writes(&self, _shard: Key, batch: &[WriteRecord]) {
        let mut logged = self.logged.lock();
        for record in batch {
            logged.insert(record.key);
        }
    }

    fn checkpoint(&self, checkpoint: &ShardCheckpoint) {
        // A fold absorbs staged writes into the checkpointed base: they
        // are durable through the checkpoint without an individual log
        // record.
        let mut logged = self.logged.lock();
        for record in &checkpoint.records {
            logged.insert(record.key);
        }
    }

    fn replace_shards(&self, _retired: &[Key], created: &[ShardCheckpoint]) {
        let mut logged = self.logged.lock();
        for checkpoint in created {
            for record in &checkpoint.records {
                logged.insert(record.key);
            }
        }
    }

    fn backlog(&self, _shard: Key) -> u64 {
        0
    }
}

/// The write-ahead contract, model-checked: **no schedule** may publish a
/// snapshot whose writes were not already durable in the sink. The reader
/// asserts the implication "visible ⇒ logged" at every interleaving of
/// the log append, the publication and the read.
#[test]
fn randomized_no_schedule_publishes_before_logging() {
    let opts = csv_check::Random {
        schedules: 2048,
        seed: 0x10_6F17,
        ..csv_check::Random::default()
    };
    let report = csv_check::explore_random(opts, || {
        let sink = Arc::new(RecordingSink::default());
        let index = Arc::new(ShardedIndex::<BPlusTree>::bulk_load_durable(
            &records(3),
            // Capacity 2 so the point write may fold (checkpoint instead
            // of log) and the batch below folds mid-slice: the contract
            // must hold through both sink paths.
            one_shard_config(2),
            Arc::clone(&sink) as Arc<dyn DurabilitySink>,
        ));
        let reader_index = Arc::clone(&index);
        let reader_sink = Arc::clone(&sink);
        let reader = csv_check::spawn(move || {
            for key in [101u64, 102, 103] {
                if reader_index.get(key).is_some() {
                    assert!(
                        reader_sink.is_logged(key),
                        "key {key} became visible before it was durable"
                    );
                }
            }
        });
        index.insert(101, 101);
        let ops = [
            WriteOp::Insert {
                key: 102,
                value: 102,
            },
            WriteOp::Insert {
                key: 103,
                value: 103,
            },
        ];
        index.write_batch(&ops);
        reader.join();
        for key in [101u64, 102, 103] {
            assert_eq!(index.get(key), Some(key));
            assert!(sink.is_logged(key), "an acknowledged write never logged");
        }
    });
    eprintln!(
        "randomized WAL-before-publish: {} schedules, {} distinct",
        report.schedules, report.distinct
    );
}

/// A point writer racing a concurrent split must either land before the
/// re-layout or observe the retired handle and re-route to the successor
/// layout — in no interleaving may its write vanish into an unreachable
/// snapshot.
#[test]
fn randomized_retired_handle_writers_reroute_during_split() {
    let opts = csv_check::Random {
        schedules: 1024,
        seed: 0x5117,
        ..csv_check::Random::default()
    };
    let report = csv_check::explore_random(opts, || {
        let index = Arc::new(ShardedIndex::<BPlusTree>::bulk_load(
            &records(4),
            one_shard_config(8),
        ));
        let writer_index = Arc::clone(&index);
        let writer = csv_check::spawn(move || {
            // Key 35 routes into the half that the split moves to the new
            // upper shard: the race window is the handle lookup vs the
            // layout publication.
            assert!(writer_index.insert(35, 35), "a fresh insert reported stale");
        });
        assert!(index.split_shard(0, 2), "the seeded shard must split");
        writer.join();
        assert_eq!(index.num_shards(), 2);
        assert_eq!(index.get(35), Some(35), "a write vanished during a split");
        assert_eq!(index.len(), 5);
        for record in records(4) {
            assert_eq!(index.get(record.key), Some(record.value));
        }
    });
    eprintln!(
        "randomized writer-vs-split reroute: {} schedules, {} distinct",
        report.schedules, report.distinct
    );
}
