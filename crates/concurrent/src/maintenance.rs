//! The background maintenance engine for [`ShardedIndex`].
//!
//! The paper smooths a *built* index once (Algorithm 2); a long-running
//! system serving mixed traffic erodes that layout with every insert. The
//! engine closes the loop SALI-style: each tick it either **splits** a shard
//! that has grown far past its peers, **merges** a shard whose key range
//! drained back into its neighbour, or picks the **stalest** shard — most
//! structural writes since its last pass, weighted by the level drift its
//! statistics show — and re-optimises just that shard's *dirty* sub-trees
//! through [`ShardedIndex::maintain_shard`]. On the RCU read path every one
//! of those operations publishes a copy-on-write successor, so lookups never
//! wait on maintenance at all; on the locked path rebuilds take short
//! exclusive locks.
//!
//! The engine is synchronous and step-wise ([`MaintenanceEngine::run_once`]):
//! callers own the cadence — the engine-owned background thread
//! ([`MaintenanceEngine::spawn`]), an idle-time hook, or a test loop that
//! drains staleness to quiescence with [`MaintenanceEngine::run_until_idle`].
//! A per-tick latency budget ([`MaintenanceConfig::tick_budget`]) bounds how
//! much planning any single tick performs, carrying both unfinished work and
//! overshoot over to the next tick.

use crate::sharded::ShardedIndex;
use csv_common::sync::{AtomicBool, Mutex, Ordering};
use csv_common::traits::{RangeIndex, SnapshotIndex};
use csv_core::{CsvIntegrable, CsvOptimizer, CsvReport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs of the maintenance engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceConfig {
    /// A shard is only worth maintaining once its staleness score reaches
    /// this many write-equivalents.
    pub min_score: f64,
    /// A shard splits when it holds more than `split_factor ×` the mean
    /// per-shard key count. The mean includes the outgrown shard itself, so
    /// with `n` shards a single hot shard can only trigger a split while
    /// `split_factor < n`.
    pub split_factor: f64,
    /// Never split a shard below this many keys (tiny shards gain nothing
    /// from re-partitioning).
    pub min_split_keys: usize,
    /// Hard ceiling on the shard count; splits stop once it is reached.
    pub max_shards: usize,
    /// A shard merges into its neighbour when it holds fewer than
    /// `merge_factor ×` the mean per-shard key count — the inverse of the
    /// split trigger, for key ranges that drained. The combined shard must
    /// also stay below the split threshold, so a merge can never
    /// immediately re-trigger a split.
    pub merge_factor: f64,
    /// Weight converting per-lookup level drift into write-equivalents in
    /// the staleness score (see
    /// [`ShardStaleness::score`](crate::sharded::ShardStaleness::score)).
    pub drift_weight: f64,
    /// Latency budget per [`MaintenanceEngine::run_once`] tick: a tick
    /// stops planning after the first sweep level that finishes past the
    /// budget, resuming the shard on the next tick, and time overshot
    /// (level granularity is coarse) is deducted from the following ticks'
    /// budgets. `None` — and, degenerately, `Some(Duration::ZERO)` — means
    /// unbudgeted.
    pub tick_budget: Option<Duration>,
    /// How long the engine-owned background thread
    /// ([`MaintenanceEngine::spawn`]) sleeps after an idle or deferred
    /// tick before polling again.
    pub idle_backoff: Duration,
    /// Durable indexes only: once some shard's write-ahead-log backlog
    /// reaches this many records, a tick checkpoints that shard
    /// ([`ShardedIndex::checkpoint_shard`]) instead of polishing structure
    /// — bounding WAL replay length, and therefore recovery time, on
    /// shards whose writes never trip the capacity fold (overwrite-heavy
    /// streams in particular accrue log records without ever looking
    /// stale). `None` disables the tick; without a durability sink it
    /// never fires.
    pub checkpoint_backlog: Option<u64>,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        Self {
            min_score: 1.0,
            split_factor: 4.0,
            min_split_keys: 4_096,
            max_shards: 256,
            merge_factor: 0.1,
            drift_weight: 1.0,
            tick_budget: None,
            idle_backoff: Duration::from_millis(1),
            checkpoint_backlog: Some(1_024),
        }
    }
}

/// What one engine tick did.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceAction {
    /// Shard `shard` had outgrown its peers and was split at its median key.
    Split {
        /// Position of the split shard (its upper half now sits at
        /// `shard + 1`).
        shard: usize,
        /// Keys the shard held when it was split.
        keys: usize,
    },
    /// Shard `shard` had drained below the merge threshold and was merged
    /// with its right neighbour.
    Merged {
        /// Position of the merged shard (its right neighbour is gone).
        shard: usize,
        /// Keys the combined shard holds.
        keys: usize,
    },
    /// Shard `shard` was the stalest and its dirty sub-trees were
    /// re-optimised.
    Maintained {
        /// Position of the maintained shard.
        shard: usize,
        /// The CSV report of the (possibly partial) incremental pass.
        report: CsvReport,
        /// `false` when the tick budget expired mid-sweep; the engine
        /// resumes this shard on its next tick.
        completed: bool,
    },
    /// Shard `shard`'s write-ahead-log backlog had crossed
    /// [`MaintenanceConfig::checkpoint_backlog`] and the shard was durably
    /// checkpointed (overlay folded, log truncated).
    Checkpointed {
        /// Position of the checkpointed shard.
        shard: usize,
        /// Log records the checkpoint retired.
        backlog: u64,
    },
    /// The tick budget was still paying off a previous tick's overshoot;
    /// no work was attempted.
    Deferred,
    /// No shard exceeded a threshold; the index is quiescent.
    Idle,
}

impl MaintenanceAction {
    /// `true` for [`MaintenanceAction::Idle`].
    pub fn is_idle(&self) -> bool {
        matches!(self, MaintenanceAction::Idle)
    }
}

/// Budget/carry-over state threaded between ticks.
#[derive(Debug, Clone, Default)]
struct EngineState {
    /// Time overshot past previous budgets, still to be paid off.
    debt: Duration,
    /// A shard whose budgeted sweep was interrupted: `(shard, next_level)`.
    /// Resumed before any other work so a long shard cannot be starved by
    /// the staleness ranking — and because the resume branch runs before
    /// the split/merge triggers, the engine can never invalidate its own
    /// cursor with a re-layout. The identity is *positional*: if an
    /// external `split_shard`/`merge_shards` call (or a second engine on
    /// the same index) shifts the vector between ticks, the resume lands
    /// on whichever shard now sits at that position — out-of-range indexes
    /// are detected, in-range mismatches are not. The worst case is one
    /// shard marked clean after a partial sweep: a missed optimisation
    /// opportunity (never a correctness issue) that the next writes to the
    /// shard re-surface. Budgeted engines should own their index's
    /// re-layout exclusively, which `MaintenanceEngine::spawn` guarantees.
    cursor: Option<(usize, usize)>,
}

/// The adaptive maintenance engine. Owns the optimizer configuration, the
/// thresholds and the per-tick budget state; borrows the index per tick, so
/// one engine can serve many indexes (budget state is per-engine — give
/// each index its own engine when budgets matter).
#[derive(Debug)]
pub struct MaintenanceEngine {
    optimizer: CsvOptimizer,
    config: MaintenanceConfig,
    state: Mutex<EngineState>,
}

impl Clone for MaintenanceEngine {
    /// Clones the configuration with *fresh* budget state: the clone owes
    /// no debt and resumes no shard.
    fn clone(&self) -> Self {
        Self::new(self.optimizer.clone(), self.config)
    }
}

impl MaintenanceEngine {
    /// Creates an engine driving `optimizer` with the given thresholds.
    pub fn new(optimizer: CsvOptimizer, config: MaintenanceConfig) -> Self {
        Self {
            optimizer,
            config,
            state: Mutex::new(EngineState::default()),
        }
    }

    /// The engine's optimizer.
    pub fn optimizer(&self) -> &CsvOptimizer {
        &self.optimizer
    }

    /// The engine's thresholds.
    pub fn config(&self) -> &MaintenanceConfig {
        &self.config
    }

    /// The effective per-tick budget: `tick_budget` minus accumulated debt.
    /// Returns `None` for "unbudgeted", `Some(None)` for "deferred" (the
    /// whole tick goes toward paying debt), `Some(Some(d))` for a bounded
    /// tick.
    fn take_allowance(&self) -> Option<Option<Duration>> {
        let budget = match self.config.tick_budget {
            Some(b) if !b.is_zero() => b,
            _ => return None,
        };
        let mut state = self.state.lock();
        if state.debt >= budget {
            state.debt -= budget;
            return Some(None);
        }
        let allowance = budget - state.debt;
        state.debt = Duration::ZERO;
        Some(Some(allowance))
    }

    /// Records a tick's overshoot past its allowance.
    fn settle(&self, allowance: Option<Duration>, started: Instant) {
        if let Some(allowance) = allowance {
            let elapsed = started.elapsed();
            if elapsed > allowance {
                let mut state = self.state.lock();
                state.debt += elapsed - allowance;
            }
        }
    }

    /// One maintenance tick: resume a budget-interrupted shard if one is
    /// pending, else split the most outgrown shard, else merge the most
    /// drained one, else incrementally re-optimise the stalest shard, else
    /// report [`MaintenanceAction::Idle`]. With a tick budget configured,
    /// the sweep stops planning once the budget (minus previous overshoot)
    /// is spent.
    pub fn run_once<I>(&self, index: &ShardedIndex<I>) -> MaintenanceAction
    where
        I: SnapshotIndex + RangeIndex + CsvIntegrable,
    {
        let started = Instant::now();
        let allowance = match self.take_allowance() {
            Some(None) => return MaintenanceAction::Deferred,
            Some(Some(d)) => Some(d),
            None => None,
        };
        let deadline = allowance.map(|d| started + d);

        // Resume an interrupted shard before considering anything else.
        let cursor = self.state.lock().cursor.take();
        if let Some((shard, level)) = cursor {
            if let Some(progress) =
                index.maintain_shard_budgeted(shard, &self.optimizer, Some(level), deadline)
            {
                if let Some(next_level) = progress.resume_level {
                    self.state.lock().cursor = Some((shard, next_level));
                }
                self.settle(allowance, started);
                return MaintenanceAction::Maintained {
                    shard,
                    completed: progress.completed(),
                    report: progress.report,
                };
            }
            // The shard vanished in a re-layout; fall through to a normal
            // pick (its data's staleness survives in the successor shards).
        }

        // Skew checks next: re-partitioning rebalances what maintenance
        // would otherwise keep polishing in place.
        let lens = index.shard_lens();
        let mean = lens.iter().sum::<usize>() / lens.len().max(1);
        let split_threshold = (self.config.split_factor * mean.max(1) as f64) as usize;
        if lens.len() < self.config.max_shards {
            if let Some((shard, &keys)) = lens.iter().enumerate().max_by_key(|(_, &l)| l) {
                // The skew bound doubles as `split_shard`'s revalidation
                // threshold: the pick comes from a lock-free snapshot, and a
                // concurrent re-layout can shift the vector, so the split is
                // refused under the lock unless the target still clears it.
                if keys >= self.config.min_split_keys
                    && keys > split_threshold
                    && index.split_shard(shard, split_threshold.max(self.config.min_split_keys))
                {
                    self.settle(allowance, started);
                    return MaintenanceAction::Split { shard, keys };
                }
            }
        }
        if lens.len() > 1 {
            let merge_threshold = (self.config.merge_factor * mean as f64) as usize;
            let drained = lens
                .iter()
                .enumerate()
                .filter(|(_, &l)| l < merge_threshold)
                .min_by_key(|(_, &l)| l);
            if let Some((shard, &keys)) = drained {
                // Merge into whichever neighbour is smaller, keeping the
                // combined shard below the split threshold so the pair of
                // triggers cannot ping-pong.
                let left = shard.checked_sub(1);
                let right = (shard + 1 < lens.len()).then_some(shard);
                let target = match (left, right) {
                    (Some(l), Some(r)) => {
                        if lens[l] <= lens[r + 1] {
                            l
                        } else {
                            r
                        }
                    }
                    (Some(l), None) => l,
                    (None, Some(r)) => r,
                    (None, None) => unreachable!("lens.len() > 1"),
                };
                if index.merge_shards(target, split_threshold.max(1)) {
                    self.settle(allowance, started);
                    return MaintenanceAction::Merged {
                        shard: target,
                        keys: keys + lens[if target == shard { shard + 1 } else { target }],
                    };
                }
            }
        }
        // Durable indexes: retire the largest WAL backlog past the
        // threshold before structural work. This must run *before* the
        // quiescence pre-check — overwrites accrue log records without
        // counting as structural writes, so a backlog can grow on an index
        // the staleness counters consider quiescent.
        if let Some(threshold) = self.config.checkpoint_backlog {
            let pending = index
                .durability_backlog()
                .into_iter()
                .max_by_key(|&(_, backlog)| backlog);
            if let Some((shard, backlog)) = pending {
                if backlog >= threshold.max(1) {
                    if let Some(retired) = index.checkpoint_shard(shard) {
                        self.settle(allowance, started);
                        return MaintenanceAction::Checkpointed {
                            shard,
                            backlog: retired,
                        };
                    }
                }
            }
        }
        // Quiescence pre-check: drift only accumulates through writes, so a
        // maintained shard with zero pending writes cannot be stale. This
        // keeps idle ticks at O(shards) atomic loads instead of the full
        // structure walk `staleness()` performs — important for the
        // engine-owned background thread.
        if index
            .write_counters()
            .iter()
            .all(|&(writes, maintained)| maintained && writes == 0)
        {
            return MaintenanceAction::Idle;
        }
        // Stalest-shard pick: structural writes since the last pass plus
        // key-weighted level drift.
        let staleness = index.staleness();
        let stalest = staleness
            .iter()
            .map(|s| (s.shard, s.score(self.config.drift_weight)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((shard, score)) = stalest {
            if score >= self.config.min_score {
                if let Some(progress) =
                    index.maintain_shard_budgeted(shard, &self.optimizer, None, deadline)
                {
                    if let Some(next_level) = progress.resume_level {
                        self.state.lock().cursor = Some((shard, next_level));
                    }
                    self.settle(allowance, started);
                    return MaintenanceAction::Maintained {
                        shard,
                        completed: progress.completed(),
                        report: progress.report,
                    };
                }
            }
        }
        MaintenanceAction::Idle
    }

    /// Ticks until the index is quiescent (one [`MaintenanceAction::Idle`])
    /// and returns every action taken, in order. `max_ticks` bounds the loop
    /// against a concurrent write stream that keeps re-dirtying shards.
    pub fn run_until_idle<I>(
        &self,
        index: &ShardedIndex<I>,
        max_ticks: usize,
    ) -> Vec<MaintenanceAction>
    where
        I: SnapshotIndex + RangeIndex + CsvIntegrable,
    {
        let mut actions = Vec::new();
        for _ in 0..max_ticks {
            let action = self.run_once(index);
            let idle = action.is_idle();
            actions.push(action);
            if idle {
                break;
            }
        }
        actions
    }

    /// Spawns the engine-owned background thread: ticks [`Self::run_once`]
    /// against `index` forever, sleeping [`MaintenanceConfig::idle_backoff`]
    /// after idle/deferred ticks, until the returned handle is stopped (or
    /// dropped). This is the loop `csv-index --maintain` uses, packaged so
    /// servers stop hand-rolling it.
    ///
    /// A panicking tick does not kill the process and does not die
    /// silently: the thread records the panic message, stops ticking, and
    /// the handle reports it — immediately through
    /// [`MaintenanceHandle::is_healthy`], and at the end through
    /// [`MaintenanceHandle::shutdown`].
    pub fn spawn<I>(self, index: Arc<ShardedIndex<I>>) -> MaintenanceHandle
    where
        I: SnapshotIndex + RangeIndex + CsvIntegrable + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let panic_slot: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let panic_writer = Arc::clone(&panic_slot);
        let thread = std::thread::Builder::new()
            .name("csv-maintenance".into())
            .spawn(move || {
                let mut stats = MaintenanceStats::default();
                while !stop_flag.load(Ordering::Relaxed) {
                    // Catch per tick: a panicking tick (a poisoned shard, a
                    // failing durability sink) is recorded for the handle
                    // to re-report instead of unwinding the thread with no
                    // observer. `AssertUnwindSafe` is sound here because
                    // nothing on this thread observes the closure's state
                    // after the catch — the loop stops.
                    let tick = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.run_once(&index)
                    }));
                    let action = match tick {
                        Ok(action) => action,
                        Err(payload) => {
                            *panic_writer.lock() = Some(panic_message(payload.as_ref()));
                            break;
                        }
                    };
                    match action {
                        MaintenanceAction::Split { .. } => stats.splits += 1,
                        MaintenanceAction::Merged { .. } => stats.merges += 1,
                        MaintenanceAction::Checkpointed { .. } => stats.checkpoints += 1,
                        MaintenanceAction::Maintained { completed, .. } => {
                            stats.maintain_passes += 1;
                            if !completed {
                                stats.interrupted_passes += 1;
                            }
                        }
                        MaintenanceAction::Deferred => {
                            stats.deferred_ticks += 1;
                            std::thread::sleep(self.config.idle_backoff);
                        }
                        MaintenanceAction::Idle => {
                            stats.idle_ticks += 1;
                            std::thread::sleep(self.config.idle_backoff);
                        }
                    }
                }
                stats
            })
            .expect("spawning the maintenance thread must succeed");
        MaintenanceHandle {
            stop,
            panic: panic_slot,
            thread: Some(thread),
        }
    }
}

/// Renders a caught panic payload (the `&str`/`String` forms `panic!`
/// produces; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// A panic caught on the background maintenance thread, re-reported by
/// [`MaintenanceHandle::shutdown`] so a wedged engine is observable instead
/// of a silent stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnginePanic {
    /// The panic's message.
    pub message: String,
}

impl std::fmt::Display for EnginePanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the maintenance thread panicked: {}", self.message)
    }
}

impl std::error::Error for EnginePanic {}

/// Tallies of what a spawned maintenance thread did (see
/// [`MaintenanceEngine::spawn`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Incremental shard-maintenance passes (including interrupted ones).
    pub maintain_passes: usize,
    /// Passes cut short by the tick budget (a subset of `maintain_passes`).
    pub interrupted_passes: usize,
    /// Shard splits performed.
    pub splits: usize,
    /// Shard merges performed.
    pub merges: usize,
    /// Durable checkpoints written by the backlog tick.
    pub checkpoints: usize,
    /// Ticks spent paying off budget debt.
    pub deferred_ticks: usize,
    /// Ticks that found the index quiescent.
    pub idle_ticks: usize,
}

/// Owns the background maintenance thread spawned by
/// [`MaintenanceEngine::spawn`]. Dropping the handle stops the thread;
/// call [`MaintenanceHandle::shutdown`] to also collect its statistics (or
/// the panic that wedged it).
#[derive(Debug)]
pub struct MaintenanceHandle {
    stop: Arc<AtomicBool>,
    /// Set by the thread when a tick panicked (see
    /// [`MaintenanceEngine::spawn`]).
    panic: Arc<Mutex<Option<String>>>,
    thread: Option<std::thread::JoinHandle<MaintenanceStats>>,
}

impl MaintenanceHandle {
    /// `true` while the background thread is live and no tick has
    /// panicked — the probe a server's health endpoint polls. `false`
    /// means the engine is wedged (or already joined): the index keeps
    /// serving reads and writes, but no maintenance happens until a new
    /// engine is spawned.
    pub fn is_healthy(&self) -> bool {
        self.panic.lock().is_none() && self.thread.as_ref().is_some_and(|t| !t.is_finished())
    }

    /// Signals the thread to stop after its current tick and returns its
    /// tallies once it has exited — or, when a tick panicked, re-reports
    /// that panic instead of swallowing it.
    pub fn shutdown(mut self) -> Result<MaintenanceStats, EnginePanic> {
        self.stop.store(true, Ordering::Relaxed);
        let stats = self
            .thread
            .take()
            .expect("shutdown consumes the join handle")
            .join()
            .map_err(|payload| EnginePanic {
                message: panic_message(payload.as_ref()),
            })?;
        if let Some(message) = self.panic.lock().take() {
            return Err(EnginePanic { message });
        }
        Ok(stats)
    }

    /// [`MaintenanceHandle::shutdown`] for callers without an error path:
    /// re-raises a caught engine panic instead of returning it.
    pub fn stop(self) -> MaintenanceStats {
        self.shutdown().unwrap_or_else(|panic| panic!("{panic}"))
    }
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::{DurabilitySink, ShardCheckpoint};
    use crate::sharded::{OverlayRepr, ReadPath, ShardingConfig};
    use csv_common::key::identity_records;
    use csv_common::{Key, Value};
    use csv_core::{CsvConfig, CsvOptimizer};
    use csv_datasets::Dataset;
    use csv_lipp::LippIndex;
    use std::collections::HashMap;

    const BOTH_PATHS: [ReadPath; 2] = [ReadPath::Locked, ReadPath::Rcu];

    fn engine() -> MaintenanceEngine {
        // split_factor must stay below the shard count for a single hot
        // shard to be able to exceed `factor × mean` (the mean includes the
        // hot shard itself).
        MaintenanceEngine::new(
            CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
            MaintenanceConfig {
                min_split_keys: 1_000,
                split_factor: 2.0,
                ..MaintenanceConfig::default()
            },
        )
    }

    fn config(num_shards: usize, read_path: ReadPath) -> ShardingConfig {
        ShardingConfig::with_shards(num_shards).with_read_path(read_path)
    }

    #[test]
    fn fresh_shards_are_maintained_once_then_idle() {
        let keys = Dataset::Osm.generate(30_000, 5);
        for path in BOTH_PATHS {
            let index =
                ShardedIndex::<LippIndex>::bulk_load(&identity_records(&keys), config(4, path));
            let engine = engine();
            let actions = engine.run_until_idle(&index, 100);
            // Every shard starts fully stale (never maintained) and
            // balanced, so the engine maintains each exactly once and then
            // goes idle.
            let maintained: Vec<usize> = actions
                .iter()
                .filter_map(|a| match a {
                    MaintenanceAction::Maintained { shard, .. } => Some(*shard),
                    _ => None,
                })
                .collect();
            assert_eq!(maintained.len(), 4);
            let mut sorted = maintained.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            assert!(actions.last().unwrap().is_idle());
            // Quiescent: another tick does nothing.
            assert!(engine.run_once(&index).is_idle());
            // Lookups are intact throughout.
            for &k in keys.iter().step_by(97) {
                assert_eq!(index.get(k), Some(k));
            }
        }
    }

    #[test]
    fn writes_re_stale_only_the_written_shard() {
        let keys = Dataset::Genome.generate(20_000, 9);
        // Every path × overlay combination (the locked path ignores the
        // overlay knob; running it twice keeps the loop uniform): the
        // staleness the engine ranks by must not depend on how pending
        // writes are buffered, including across fold generations (the
        // tiny capacity folds the 500-write burst dozens of times).
        for path in BOTH_PATHS {
            for overlay in [OverlayRepr::Vec, OverlayRepr::Persistent] {
                writes_re_stale_only_the_written_shard_on(&keys, path, overlay);
            }
        }
    }

    fn writes_re_stale_only_the_written_shard_on(
        keys: &[csv_common::Key],
        path: ReadPath,
        overlay: OverlayRepr,
    ) {
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &identity_records(keys),
            config(4, path)
                .with_overlay(overlay)
                .with_overlay_capacity(16),
        );
        let engine = engine();
        engine.run_until_idle(&index, 100);

        // Hammer one key region with fresh inserts.
        let base = keys[keys.len() / 2];
        for i in 1..=500u64 {
            index.insert(base + i * 3 + 1, i);
        }
        let staleness = index.staleness();
        let hot: Vec<_> = staleness
            .iter()
            .filter(|s| s.writes_since_maintenance > 0)
            .collect();
        assert!(!hot.is_empty(), "the insert burst must register somewhere");
        let hottest = hot
            .iter()
            .max_by_key(|s| s.writes_since_maintenance)
            .unwrap()
            .shard;

        match engine.run_once(&index) {
            MaintenanceAction::Maintained { shard, .. } => assert_eq!(shard, hottest),
            other => panic!("expected a maintenance pass, got {other:?}"),
        }
        assert_eq!(index.staleness()[hottest].writes_since_maintenance, 0);
    }

    #[test]
    fn outgrown_shards_are_split_before_anything_else() {
        let keys = Dataset::Covid.generate(12_000, 3);
        for path in BOTH_PATHS {
            let index =
                ShardedIndex::<LippIndex>::bulk_load(&identity_records(&keys), config(4, path));
            let engine = engine();
            engine.run_until_idle(&index, 100);
            assert_eq!(index.num_shards(), 4);

            // Skewed growth: pour fresh keys into the last shard's range
            // until it dwarfs the others (mean stays ~len/num_shards).
            let top = *keys.last().unwrap();
            for i in 1..=40_000u64 {
                index.insert(top + i, i);
            }
            let action = engine.run_once(&index);
            let MaintenanceAction::Split {
                shard,
                keys: split_keys,
            } = action
            else {
                panic!("expected a split, got {action:?}");
            };
            assert_eq!(shard, 3);
            assert!(split_keys > 40_000);
            assert_eq!(index.num_shards(), 5);
            // The split halves are fresh (never maintained) and get picked
            // up by the following ticks; the index then quiesces.
            let actions = engine.run_until_idle(&index, 100);
            assert!(actions.last().unwrap().is_idle());
            // All data survived the re-partitioning.
            assert_eq!(index.len(), keys.len() + 40_000);
            for &k in keys.iter().step_by(131) {
                assert_eq!(index.get(k), Some(k));
            }
            for i in (1..=40_000u64).step_by(997) {
                assert_eq!(index.get(top + i), Some(i));
            }
        }
    }

    /// The merge trigger: drain one shard's key range and the engine folds
    /// it back into a neighbour — the split's inverse — after which the
    /// contents still match and the index quiesces.
    #[test]
    fn drained_shards_are_merged_back() {
        let keys = Dataset::Genome.generate(20_000, 7);
        for path in BOTH_PATHS {
            let index =
                ShardedIndex::<LippIndex>::bulk_load(&identity_records(&keys), config(4, path));
            let engine = engine();
            engine.run_until_idle(&index, 100);
            assert_eq!(index.num_shards(), 4);

            // Remove ~99% of shard 2's keys (shards hold 5k keys each).
            let per_shard = keys.len() / 4;
            let mut removed = Vec::new();
            for &k in keys[2 * per_shard..3 * per_shard].iter() {
                if removed.len() >= per_shard - 40 {
                    break;
                }
                assert_eq!(index.remove(k), Some(k));
                removed.push(k);
            }
            let actions = engine.run_until_idle(&index, 100);
            assert!(
                actions
                    .iter()
                    .any(|a| matches!(a, MaintenanceAction::Merged { .. })),
                "{path:?}: a drained shard must be merged, got {actions:?}"
            );
            assert!(index.num_shards() < 4);
            assert!(actions.last().unwrap().is_idle());
            // Contents round-trip: removed keys gone, the rest intact.
            assert_eq!(index.len(), keys.len() - removed.len());
            for &k in removed.iter().step_by(37) {
                assert_eq!(index.get(k), None);
            }
            for &k in keys.iter().step_by(83) {
                let expected = (!removed.contains(&k)).then_some(k);
                assert_eq!(index.get(k), expected);
            }
        }
    }

    #[test]
    fn maintenance_runs_while_readers_proceed() {
        let keys = Dataset::Osm.generate(40_000, 11);
        for path in BOTH_PATHS {
            let index =
                ShardedIndex::<LippIndex>::bulk_load(&identity_records(&keys), config(2, path));
            let engine = engine();
            crossbeam::thread::scope(|scope| {
                let idx = &index;
                let eng = &engine;
                let h = scope.spawn(move |_| eng.run_until_idle(idx, 100));
                for &k in keys.iter().step_by(37) {
                    assert_eq!(index.get(k), Some(k));
                }
                let actions = h.join().expect("engine thread must not panic");
                assert!(!actions.is_empty());
            })
            .expect("threads must not panic");
        }
    }

    /// Budget accounting: a tick that overshoots its budget leaves debt,
    /// and the next ticks are deferred until the debt is paid — never
    /// planning more than the budget allows.
    #[test]
    fn tick_budget_defers_after_overshoot() {
        let keys = Dataset::Osm.generate(30_000, 13);
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &identity_records(&keys),
            ShardingConfig::with_shards(2),
        );
        // A 1ns budget: the first tick's single mandatory level overshoots
        // by the full maintenance cost, so following ticks defer while the
        // debt drains at 1ns per tick — observable immediately.
        let engine = MaintenanceEngine::new(
            CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
            MaintenanceConfig {
                tick_budget: Some(Duration::from_nanos(1)),
                ..MaintenanceConfig::default()
            },
        );
        let first = engine.run_once(&index);
        assert!(
            matches!(first, MaintenanceAction::Maintained { .. }),
            "the first budgeted tick still does one level of work, got {first:?}"
        );
        let second = engine.run_once(&index);
        assert_eq!(
            second,
            MaintenanceAction::Deferred,
            "overshoot debt must defer the next tick"
        );
        // A fresh clone owes nothing (Clone resets budget state).
        let fresh = engine.clone();
        assert!(matches!(
            fresh.run_once(&index),
            MaintenanceAction::Maintained { .. }
        ));
    }

    /// An unbudgeted engine and a generously-budgeted engine make the same
    /// decisions: the budget only limits pacing, not outcomes.
    #[test]
    fn generous_budget_matches_unbudgeted_actions() {
        let keys = Dataset::Genome.generate(24_000, 17);
        let records = identity_records(&keys);
        let reference_index =
            ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig::with_shards(4));
        let budgeted_index =
            ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig::with_shards(4));
        let reference = engine();
        let budgeted = MaintenanceEngine::new(
            CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
            MaintenanceConfig {
                tick_budget: Some(Duration::from_secs(3600)),
                min_split_keys: 1_000,
                split_factor: 2.0,
                ..MaintenanceConfig::default()
            },
        );
        let reference_actions = reference.run_until_idle(&reference_index, 100);
        let budgeted_actions = budgeted.run_until_idle(&budgeted_index, 100);
        // Compare decision shapes, not full reports: `preprocessing_time`
        // differs between any two runs.
        let shape = |a: &MaintenanceAction| match a {
            MaintenanceAction::Maintained {
                shard,
                report,
                completed,
            } => format!("maintained {shard} {:?} {completed}", report.outcomes),
            other => format!("{other:?}"),
        };
        assert_eq!(
            reference_actions.iter().map(shape).collect::<Vec<_>>(),
            budgeted_actions.iter().map(shape).collect::<Vec<_>>()
        );
        assert_eq!(reference_index.stats(), budgeted_index.stats());
    }

    /// `Some(Duration::ZERO)` must behave as "unbudgeted", not deadlock
    /// into eternal deferral.
    #[test]
    fn zero_budget_means_unbudgeted() {
        let keys = Dataset::Genome.generate(8_000, 19);
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &identity_records(&keys),
            ShardingConfig::with_shards(2),
        );
        let engine = MaintenanceEngine::new(
            CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
            MaintenanceConfig {
                tick_budget: Some(Duration::ZERO),
                ..MaintenanceConfig::default()
            },
        );
        let actions = engine.run_until_idle(&index, 100);
        assert!(actions.last().unwrap().is_idle());
        assert!(!actions
            .iter()
            .any(|a| matches!(a, MaintenanceAction::Deferred)));
    }

    /// The engine-owned thread: spawn, let it drain the fresh index to
    /// quiescence, stop it, and check the tallies line up with what
    /// `run_until_idle` would have done.
    #[test]
    fn spawned_engine_maintains_and_reports_stats() {
        let keys = Dataset::Osm.generate(20_000, 23);
        for path in BOTH_PATHS {
            let index = Arc::new(ShardedIndex::<LippIndex>::bulk_load(
                &identity_records(&keys),
                config(4, path),
            ));
            let handle = engine().spawn(Arc::clone(&index));
            // Wait until the background thread has drained all four fresh
            // shards (quiescence = all maintained, no pending writes).
            let deadline = Instant::now() + Duration::from_secs(60);
            while !index
                .write_counters()
                .iter()
                .all(|&(writes, maintained)| maintained && writes == 0)
            {
                assert!(
                    Instant::now() < deadline,
                    "background engine never quiesced"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            let stats = handle.stop();
            assert_eq!(stats.maintain_passes, 4, "{path:?}: one pass per shard");
            assert_eq!(stats.splits, 0);
            assert_eq!(stats.merges, 0);
            for &k in keys.iter().step_by(201) {
                assert_eq!(index.get(k), Some(k));
            }
            // Dropping a second handle must also stop its thread (no
            // panic, no leak) — exercised via drop instead of stop.
            let handle = engine().spawn(Arc::clone(&index));
            drop(handle);
        }
    }

    /// An in-memory sink that tallies the calls the index makes — enough to
    /// drive the engine's checkpoint tick without touching a filesystem.
    #[derive(Default)]
    struct CountingSink {
        backlogs: Mutex<HashMap<Key, u64>>,
        checkpoints: Mutex<usize>,
    }

    impl DurabilitySink for CountingSink {
        fn log_write(&self, shard: Key, _key: Key, _value: Option<Value>) {
            *self.backlogs.lock().entry(shard).or_insert(0) += 1;
        }

        fn checkpoint(&self, checkpoint: &ShardCheckpoint) {
            self.backlogs.lock().insert(checkpoint.lower_bound, 0);
            *self.checkpoints.lock() += 1;
        }

        fn replace_shards(&self, retired: &[Key], created: &[ShardCheckpoint]) {
            let mut backlogs = self.backlogs.lock();
            for checkpoint in created {
                backlogs.insert(checkpoint.lower_bound, 0);
            }
            for lower in retired {
                backlogs.remove(lower);
            }
            *self.checkpoints.lock() += created.len();
        }

        fn backlog(&self, shard: Key) -> u64 {
            *self.backlogs.lock().get(&shard).unwrap_or(&0)
        }
    }

    /// The checkpoint tick fires once some shard's log backlog crosses the
    /// threshold — before any structural work, and again after the index
    /// quiesces (overwrites accrue backlog without structural staleness).
    #[test]
    fn backlog_past_threshold_triggers_a_checkpoint_tick() {
        let keys = Dataset::Genome.generate(2_000, 29);
        let sink = Arc::new(CountingSink::default());
        let index = ShardedIndex::<LippIndex>::bulk_load_durable(
            &identity_records(&keys),
            ShardingConfig::with_shards(1)
                .with_read_path(ReadPath::Rcu)
                .with_overlay_capacity(1_000),
            Arc::clone(&sink) as Arc<dyn DurabilitySink>,
        );
        let engine = MaintenanceEngine::new(
            CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
            MaintenanceConfig {
                checkpoint_backlog: Some(8),
                ..MaintenanceConfig::default()
            },
        );
        // Overwrites: plenty of log records, zero structural writes.
        for &k in keys.iter().take(20) {
            index.insert(k, k + 1);
        }
        let action = engine.run_once(&index);
        let MaintenanceAction::Checkpointed { shard, backlog } = action else {
            panic!("expected a checkpoint tick, got {action:?}");
        };
        assert_eq!(shard, 0);
        assert_eq!(backlog, 20);
        assert_eq!(
            index.durability_backlog(),
            vec![(0, 0)],
            "the checkpoint must retire the whole backlog"
        );
        // Below the threshold the tick does not fire and the backlog stays.
        index.insert(keys[0], 7);
        let engine_high = MaintenanceEngine::new(
            CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
            MaintenanceConfig {
                checkpoint_backlog: Some(1_000),
                min_score: f64::MAX, // keep the staleness pick out of the way
                ..MaintenanceConfig::default()
            },
        );
        assert!(engine_high.run_once(&index).is_idle());
        assert_eq!(index.durability_backlog(), vec![(0, 1)]);
    }

    /// A sink that wedges the engine: `backlog` panics, modelling a
    /// durability layer that hit unrecoverable I/O failure mid-flight.
    struct WedgedSink;

    impl DurabilitySink for WedgedSink {
        fn log_write(&self, _shard: Key, _key: Key, _value: Option<Value>) {}
        fn checkpoint(&self, _checkpoint: &ShardCheckpoint) {}
        fn replace_shards(&self, _retired: &[Key], _created: &[ShardCheckpoint]) {}
        fn backlog(&self, _shard: Key) -> u64 {
            panic!("injected durability failure")
        }
    }

    /// A panicking tick must not die silently: the handle turns unhealthy
    /// and `shutdown` re-reports the panic instead of returning stats.
    #[test]
    fn background_engine_panics_are_surfaced() {
        let keys = Dataset::Osm.generate(4_000, 31);
        let index = Arc::new(ShardedIndex::<LippIndex>::bulk_load_durable(
            &identity_records(&keys),
            ShardingConfig::with_shards(2).with_read_path(ReadPath::Rcu),
            Arc::new(WedgedSink),
        ));
        let handle = engine().spawn(Arc::clone(&index));
        // Maintenance passes succeed (the sink's checkpoint is a no-op);
        // the first tick to consult the backlog panics and wedges the
        // engine.
        let deadline = Instant::now() + Duration::from_secs(60);
        while handle.is_healthy() {
            assert!(Instant::now() < deadline, "the engine never wedged");
            std::thread::sleep(Duration::from_millis(1));
        }
        // The index itself still serves reads and writes.
        assert_eq!(index.get(keys[0]), Some(keys[0]));
        index.insert(keys[0], 1);
        assert_eq!(index.get(keys[0]), Some(1));
        let err = handle
            .shutdown()
            .expect_err("the panic must be re-reported");
        assert!(
            err.message.contains("injected durability failure"),
            "unexpected panic message: {}",
            err.message
        );
        assert!(err.to_string().contains("maintenance thread panicked"));
    }
}
