//! The background maintenance engine for [`ShardedIndex`].
//!
//! The paper smooths a *built* index once (Algorithm 2); a long-running
//! system serving mixed traffic erodes that layout with every insert. The
//! engine closes the loop SALI-style: each tick it either **splits** a shard
//! that has grown far past its peers (restoring the balanced partitioning
//! the bulk load chose) or picks the **stalest** shard — most structural
//! writes since its last pass, weighted by the level drift its statistics
//! show — and re-optimises just that shard's *dirty* sub-trees through
//! [`ShardedIndex::maintain_shard`]. Planning happens under the shard's
//! shared lock and rebuilds under its short exclusive lock, so lookups keep
//! flowing while maintenance runs.
//!
//! The engine is deliberately synchronous and step-wise ([`
//! MaintenanceEngine::run_once`]): callers own the cadence — a background
//! thread, an idle-time hook, or a test loop that drains staleness to
//! quiescence with [`MaintenanceEngine::run_until_idle`].

use crate::sharded::ShardedIndex;
use csv_common::traits::{LearnedIndex, RangeIndex};
use csv_core::{CsvIntegrable, CsvOptimizer, CsvReport};

/// Tuning knobs of the maintenance engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceConfig {
    /// A shard is only worth maintaining once its staleness score reaches
    /// this many write-equivalents.
    pub min_score: f64,
    /// A shard splits when it holds more than `split_factor ×` the mean
    /// per-shard key count. The mean includes the outgrown shard itself, so
    /// with `n` shards a single hot shard can only trigger a split while
    /// `split_factor < n`.
    pub split_factor: f64,
    /// Never split a shard below this many keys (tiny shards gain nothing
    /// from re-partitioning).
    pub min_split_keys: usize,
    /// Hard ceiling on the shard count; splits stop once it is reached.
    pub max_shards: usize,
    /// Weight converting per-lookup level drift into write-equivalents in
    /// the staleness score (see
    /// [`ShardStaleness::score`](crate::sharded::ShardStaleness::score)).
    pub drift_weight: f64,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        Self {
            min_score: 1.0,
            split_factor: 4.0,
            min_split_keys: 4_096,
            max_shards: 256,
            drift_weight: 1.0,
        }
    }
}

/// What one engine tick did.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceAction {
    /// Shard `shard` had outgrown its peers and was split at its median key.
    Split {
        /// Position of the split shard (its upper half now sits at
        /// `shard + 1`).
        shard: usize,
        /// Keys the shard held when it was split.
        keys: usize,
    },
    /// Shard `shard` was the stalest and its dirty sub-trees were
    /// re-optimised.
    Maintained {
        /// Position of the maintained shard.
        shard: usize,
        /// The CSV report of the incremental pass.
        report: CsvReport,
    },
    /// No shard exceeded a threshold; the index is quiescent.
    Idle,
}

impl MaintenanceAction {
    /// `true` for [`MaintenanceAction::Idle`].
    pub fn is_idle(&self) -> bool {
        matches!(self, MaintenanceAction::Idle)
    }
}

/// The adaptive maintenance engine. Owns the optimizer configuration and the
/// thresholds; borrows the index per tick, so one engine can serve many
/// indexes (or many engines one index — every decision is taken under the
/// index's own locks).
#[derive(Debug, Clone)]
pub struct MaintenanceEngine {
    optimizer: CsvOptimizer,
    config: MaintenanceConfig,
}

impl MaintenanceEngine {
    /// Creates an engine driving `optimizer` with the given thresholds.
    pub fn new(optimizer: CsvOptimizer, config: MaintenanceConfig) -> Self {
        Self { optimizer, config }
    }

    /// The engine's optimizer.
    pub fn optimizer(&self) -> &CsvOptimizer {
        &self.optimizer
    }

    /// The engine's thresholds.
    pub fn config(&self) -> &MaintenanceConfig {
        &self.config
    }

    /// One maintenance tick: split the most outgrown shard if any exceeds
    /// the skew threshold, otherwise incrementally re-optimise the stalest
    /// shard, otherwise report [`MaintenanceAction::Idle`].
    pub fn run_once<I>(&self, index: &ShardedIndex<I>) -> MaintenanceAction
    where
        I: LearnedIndex + RangeIndex + CsvIntegrable + Send + Sync,
    {
        // Skew check first: splitting rebalances what maintenance would
        // otherwise keep polishing in place.
        let lens = index.map_shards(|i| i.len());
        let mean = lens.iter().sum::<usize>() / lens.len().max(1);
        if lens.len() < self.config.max_shards {
            if let Some((shard, &keys)) = lens.iter().enumerate().max_by_key(|(_, &l)| l) {
                // The skew bound doubles as `split_shard`'s revalidation
                // threshold: the pick comes from a lock-free snapshot, and a
                // concurrent split can shift the vector, so the split is
                // refused under the lock unless the target still clears it.
                let threshold = (self.config.split_factor * mean.max(1) as f64) as usize;
                if keys >= self.config.min_split_keys
                    && keys > threshold
                    && index.split_shard(shard, threshold.max(self.config.min_split_keys))
                {
                    return MaintenanceAction::Split { shard, keys };
                }
            }
        }
        // Quiescence pre-check: drift only accumulates through writes, so a
        // maintained shard with zero pending writes cannot be stale. This
        // keeps idle ticks at O(shards) atomic loads instead of the full
        // structure walk `staleness()` performs — important for callers
        // that loop the engine in a background thread.
        if index
            .write_counters()
            .iter()
            .all(|&(writes, maintained)| maintained && writes == 0)
        {
            return MaintenanceAction::Idle;
        }
        // Stalest-shard pick: structural writes since the last pass plus
        // key-weighted level drift.
        let staleness = index.staleness();
        let stalest = staleness
            .iter()
            .map(|s| (s.shard, s.score(self.config.drift_weight)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((shard, score)) = stalest {
            if score >= self.config.min_score {
                if let Some(report) = index.maintain_shard(shard, &self.optimizer) {
                    return MaintenanceAction::Maintained { shard, report };
                }
            }
        }
        MaintenanceAction::Idle
    }

    /// Ticks until the index is quiescent (one [`MaintenanceAction::Idle`])
    /// and returns every action taken, in order. `max_ticks` bounds the loop
    /// against a concurrent write stream that keeps re-dirtying shards.
    pub fn run_until_idle<I>(
        &self,
        index: &ShardedIndex<I>,
        max_ticks: usize,
    ) -> Vec<MaintenanceAction>
    where
        I: LearnedIndex + RangeIndex + CsvIntegrable + Send + Sync,
    {
        let mut actions = Vec::new();
        for _ in 0..max_ticks {
            let action = self.run_once(index);
            let idle = action.is_idle();
            actions.push(action);
            if idle {
                break;
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardingConfig;
    use csv_common::key::identity_records;
    use csv_core::CsvConfig;
    use csv_datasets::Dataset;
    use csv_lipp::LippIndex;

    fn engine() -> MaintenanceEngine {
        // split_factor must stay below the shard count for a single hot
        // shard to be able to exceed `factor × mean` (the mean includes the
        // hot shard itself).
        MaintenanceEngine::new(
            CsvOptimizer::new(CsvConfig::for_lipp(0.1)),
            MaintenanceConfig {
                min_split_keys: 1_000,
                split_factor: 2.0,
                ..MaintenanceConfig::default()
            },
        )
    }

    #[test]
    fn fresh_shards_are_maintained_once_then_idle() {
        let keys = Dataset::Osm.generate(30_000, 5);
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &identity_records(&keys),
            ShardingConfig { num_shards: 4 },
        );
        let engine = engine();
        let actions = engine.run_until_idle(&index, 100);
        // Every shard starts fully stale (never maintained) and balanced, so
        // the engine maintains each exactly once and then goes idle.
        let maintained: Vec<usize> = actions
            .iter()
            .filter_map(|a| match a {
                MaintenanceAction::Maintained { shard, .. } => Some(*shard),
                _ => None,
            })
            .collect();
        assert_eq!(maintained.len(), 4);
        let mut sorted = maintained.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert!(actions.last().unwrap().is_idle());
        // Quiescent: another tick does nothing.
        assert!(engine.run_once(&index).is_idle());
        // Lookups are intact throughout.
        for &k in keys.iter().step_by(97) {
            assert_eq!(index.get(k), Some(k));
        }
    }

    #[test]
    fn writes_re_stale_only_the_written_shard() {
        let keys = Dataset::Genome.generate(20_000, 9);
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &identity_records(&keys),
            ShardingConfig { num_shards: 4 },
        );
        let engine = engine();
        engine.run_until_idle(&index, 100);

        // Hammer one key region with fresh inserts.
        let base = keys[keys.len() / 2];
        for i in 1..=500u64 {
            index.insert(base + i * 3 + 1, i);
        }
        let staleness = index.staleness();
        let hot: Vec<_> = staleness
            .iter()
            .filter(|s| s.writes_since_maintenance > 0)
            .collect();
        assert!(!hot.is_empty(), "the insert burst must register somewhere");
        let hottest = hot
            .iter()
            .max_by_key(|s| s.writes_since_maintenance)
            .unwrap()
            .shard;

        match engine.run_once(&index) {
            MaintenanceAction::Maintained { shard, .. } => assert_eq!(shard, hottest),
            other => panic!("expected a maintenance pass, got {other:?}"),
        }
        assert_eq!(index.staleness()[hottest].writes_since_maintenance, 0);
    }

    #[test]
    fn outgrown_shards_are_split_before_anything_else() {
        let keys = Dataset::Covid.generate(12_000, 3);
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &identity_records(&keys),
            ShardingConfig { num_shards: 4 },
        );
        let engine = engine();
        engine.run_until_idle(&index, 100);
        assert_eq!(index.num_shards(), 4);

        // Skewed growth: pour fresh keys into the last shard's range until it
        // dwarfs the others (mean stays ~len/num_shards).
        let top = *keys.last().unwrap();
        for i in 1..=40_000u64 {
            index.insert(top + i, i);
        }
        let action = engine.run_once(&index);
        let MaintenanceAction::Split {
            shard,
            keys: split_keys,
        } = action
        else {
            panic!("expected a split, got {action:?}");
        };
        assert_eq!(shard, 3);
        assert!(split_keys > 40_000);
        assert_eq!(index.num_shards(), 5);
        // The split halves are fresh (never maintained) and get picked up by
        // the following ticks; the index then quiesces.
        let actions = engine.run_until_idle(&index, 100);
        assert!(actions.last().unwrap().is_idle());
        // All data survived the re-partitioning.
        assert_eq!(index.len(), keys.len() + 40_000);
        for &k in keys.iter().step_by(131) {
            assert_eq!(index.get(k), Some(k));
        }
        for i in (1..=40_000u64).step_by(997) {
            assert_eq!(index.get(top + i), Some(i));
        }
    }

    #[test]
    fn maintenance_runs_while_readers_proceed() {
        use crossbeam;
        let keys = Dataset::Osm.generate(40_000, 11);
        let index = ShardedIndex::<LippIndex>::bulk_load(
            &identity_records(&keys),
            ShardingConfig { num_shards: 2 },
        );
        let engine = engine();
        crossbeam::thread::scope(|scope| {
            let idx = &index;
            let eng = &engine;
            let h = scope.spawn(move |_| eng.run_until_idle(idx, 100));
            for &k in keys.iter().step_by(37) {
                assert_eq!(index.get(k), Some(k));
            }
            let actions = h.join().expect("engine thread must not panic");
            assert!(!actions.is_empty());
        })
        .expect("threads must not panic");
    }
}
