//! Sharded concurrent access to the workspace's learned indexes.
//!
//! The paper's SALI substrate is explicitly designed for scalable concurrent
//! workloads (its evaluation is multi-threaded), and the benchmark framework
//! the paper builds on drives indexes from several threads. The
//! single-threaded index implementations in this workspace are wrapped by
//! [`ShardedIndex`], which partitions the key space into contiguous shards at
//! bulk-load time and protects each shard with a [`parking_lot::RwLock`]:
//! point lookups and range scans take shared locks (readers scale across
//! cores), while inserts and removals lock only the one shard that owns the
//! key.
//!
//! The wrapper is index-agnostic — any [`LearnedIndex`] (ALEX, LIPP, SALI,
//! PGM, B+-tree) can be sharded. CSV-integrable indexes are re-optimised in
//! place via [`ShardedIndex::optimize`], which plans each shard's smoothing
//! under a shared lock and takes the exclusive lock only to apply the
//! rebuilds, so readers keep flowing during the expensive read phase.
//!
//! [`LearnedIndex`]: csv_common::traits::LearnedIndex

pub mod sharded;
pub mod throughput;

pub use sharded::{ShardedIndex, ShardingConfig};
pub use throughput::{run_read_throughput, ThroughputReport};
