//! Sharded concurrent access to the workspace's learned indexes.
//!
//! The paper's SALI substrate is explicitly designed for scalable concurrent
//! workloads (its evaluation is multi-threaded), and the benchmark framework
//! the paper builds on drives indexes from several threads. The
//! single-threaded index implementations in this workspace are wrapped by
//! [`ShardedIndex`], which partitions the key space into contiguous shards at
//! bulk-load time and protects each shard with a [`parking_lot::RwLock`]:
//! point lookups and range scans take shared locks (readers scale across
//! cores), while inserts and removals lock only the one shard that owns the
//! key.
//!
//! The wrapper is index-agnostic — any [`LearnedIndex`] (ALEX, LIPP, SALI,
//! PGM, B+-tree) can be sharded. CSV-integrable indexes are re-optimised in
//! place via [`ShardedIndex::optimize`], which plans each shard's smoothing
//! under a shared lock and takes the exclusive lock only to apply the
//! rebuilds, so readers keep flowing during the expensive read phase.
//!
//! On top of that one-shot pass sits the *adaptive* layer: every shard
//! counts the structural writes it absorbs ([`ShardedIndex::staleness`]),
//! [`ShardedIndex::maintain_shard`] re-plans only a shard's dirty sub-trees
//! under the same short-lock discipline, and the [`MaintenanceEngine`]
//! drives both — splitting shards that outgrow their peers and repeatedly
//! re-optimising the stalest one — so the smoothed layout survives a
//! sustained mixed workload without ever re-planning untouched sub-trees.
//!
//! [`LearnedIndex`]: csv_common::traits::LearnedIndex

pub mod maintenance;
pub mod sharded;
pub mod throughput;

pub use maintenance::{MaintenanceAction, MaintenanceConfig, MaintenanceEngine};
pub use sharded::{ShardStaleness, ShardedIndex, ShardingConfig};
pub use throughput::{run_read_throughput, ThroughputReport};
