//! Sharded concurrent access to the workspace's learned indexes.
//!
//! The paper's SALI substrate is explicitly designed for scalable concurrent
//! workloads (its evaluation is multi-threaded), and the benchmark framework
//! the paper builds on drives indexes from several threads. The
//! single-threaded index implementations in this workspace are wrapped by
//! [`ShardedIndex`], which partitions the key space into contiguous shards
//! at bulk-load time and serves them through one of two read paths
//! ([`ReadPath`]):
//!
//! * **RCU** (the default): shard snapshots are published through the
//!   hand-rolled [`rcu::RcuCell`] — point lookups perform *zero lock
//!   acquisitions*, and writers/maintenance build copy-on-write successors
//!   published with a single pointer swap, so readers never stall behind
//!   maintenance's apply phase, splits, or merges. Read-mostly batches can
//!   pin a [`ReadView`] and drop even the RCU counter traffic. Pending
//!   point writes buffer in a per-snapshot overlay whose representation is
//!   its own A/B knob ([`OverlayRepr`]): a flat sorted `Vec` baseline, or
//!   (default) the structurally shared persistent map [`pmap::PMap`],
//!   whose path-copying updates keep the per-write copy cost logarithmic
//!   in the buffered state.
//! * **Locked**: the classic per-shard [`csv_common::sync::RwLock`] layout, kept
//!   as the A/B baseline the benchmarks compare against.
//!
//! CSV-integrable indexes are re-optimised in place via
//! [`ShardedIndex::optimize`], which plans each shard's smoothing without
//! excluding readers (shared locks on the locked path, private snapshot
//! clones on the RCU path) and publishes the rebuilds with short exclusive
//! locks or one swap respectively.
//!
//! On top of that one-shot pass sits the *adaptive* layer: every shard
//! counts the structural writes it absorbs ([`ShardedIndex::staleness`]),
//! [`ShardedIndex::maintain_shard`] re-plans only a shard's dirty sub-trees,
//! and the [`MaintenanceEngine`] drives the whole lifecycle — splitting
//! shards that outgrow their peers, merging ones that drained, repeatedly
//! re-optimising the stalest, optionally under a per-tick latency budget
//! ([`MaintenanceConfig::tick_budget`]) — so the smoothed layout survives a
//! sustained mixed workload without ever re-planning untouched sub-trees.
//! [`MaintenanceEngine::spawn`] packages the background-thread loop servers
//! would otherwise hand-roll.
//!
//! [`LearnedIndex`]: csv_common::traits::LearnedIndex

#![deny(unsafe_code)]

pub mod durability;
pub mod maintenance;
pub mod pmap;
// The audited unsafe core: raw-pointer publication + grace-period
// reclamation. `cargo xtask lint` verifies every site carries a SAFETY
// comment and that no other module contains `unsafe`.
#[allow(unsafe_code)]
pub mod rcu;
pub mod sharded;
pub mod throughput;

pub use durability::{DurabilitySink, RecoveredShard, ShardCheckpoint, StaleSeed, WriteRecord};
pub use maintenance::{
    EnginePanic, MaintenanceAction, MaintenanceConfig, MaintenanceEngine, MaintenanceHandle,
    MaintenanceStats,
};
pub use pmap::PMap;
pub use rcu::RcuCell;
pub use sharded::{
    BatchOutcome, MaintainProgress, OverlayRepr, ReadPath, ReadView, ShardStaleness, ShardedIndex,
    ShardingConfig, WriteOp,
};
pub use throughput::{run_read_throughput, run_read_throughput_pinned, ThroughputReport};
