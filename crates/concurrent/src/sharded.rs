//! The sharded concurrent index wrapper.
//!
//! Two read paths are provided, selected by [`ShardingConfig::read_path`]:
//!
//! * [`ReadPath::Locked`] — the classic layout: every shard's index sits
//!   behind a [`csv_common::sync::RwLock`], lookups take the shared lock, writes
//!   the exclusive one. Readers stall whenever maintenance's apply phase or
//!   a split holds an exclusive lock.
//! * [`ReadPath::Rcu`] (the default) — the lock-free layout: both the shard
//!   *vector* and every shard's index are published through
//!   [`crate::rcu::RcuCell`] as immutable snapshots. A lookup is a handful
//!   of atomic reads — **zero lock acquisitions** — and writers/maintenance
//!   build successor snapshots off to the side, publishing them with one
//!   pointer swap. Readers observe either the pre- or the post-publication
//!   index, never a torn state.
//!
//! On the RCU path a shard snapshot is a pair: a big immutable base index
//! plus a small sorted *overlay* of pending upserts/tombstones
//! ([`ShardSnapshot`]). Point writes copy the overlay (cheap), not the
//! base. The overlay's representation is an A/B knob
//! ([`ShardingConfig::overlay`]): a flat sorted `Vec` (every write clones
//! the whole overlay) or, by default, a persistent structurally shared
//! chunk tree ([`crate::pmap::PMap`]) whose point updates copy only the
//! touched root-to-leaf path. A published snapshot's overlay holds at most
//! [`ShardingConfig::overlay_capacity`] entries: the write that would grow
//! it to `capacity + 1` instead *folds* the overlay into a fresh base —
//! by cloning the base and replaying the upserts when there are no
//! tombstones (which preserves the CSV-smoothed layout and the
//! dirty-sub-tree marks), or by a merge-join rebuild when there are — and
//! that triggering write lands in the folded base. Maintenance
//! (`maintain_shard`, `optimize`) plans against the live snapshot, applies
//! onto a clone, and swaps — the apply phase holds no lock any reader can
//! observe.

use crate::durability::{DurabilitySink, RecoveredShard, ShardCheckpoint, StaleSeed, WriteRecord};
use crate::pmap::PMap;
use crate::rcu::RcuCell;
use core::ops::ControlFlow;
use csv_common::sync::{
    spin_loop, yield_now, AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering, RwLock,
};
use csv_common::traits::{IndexStats, LearnedIndex, RangeIndex, RemovableIndex, SnapshotIndex};
use csv_common::{Key, KeyValue, Value};
use csv_core::{CsvIntegrable, CsvOptimizer, CsvReport};
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Which concurrency scheme serves point lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Reader–writer locks per shard (readers block behind maintenance's
    /// apply phase and behind splits).
    Locked,
    /// RCU snapshots per shard (readers never block; writers copy on
    /// write and publish with a pointer swap).
    #[default]
    Rcu,
}

/// How an RCU shard snapshot represents its overlay of pending writes —
/// the write-cost A/B knob mirroring [`ReadPath`]'s read-cost one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlayRepr {
    /// A flat sorted `Vec`: the smallest constant factors per lookup, but
    /// every point write clones the *entire* overlay before republishing —
    /// O(`overlay_capacity`) per write.
    Vec,
    /// A persistent structurally shared chunk tree ([`crate::pmap::PMap`]):
    /// a point write copies only the touched root-to-leaf chunk path —
    /// O(log `overlay_capacity` + chunk) — so a much larger overlay (and
    /// therefore a much rarer, better-amortised base fold) costs writes
    /// nothing extra.
    #[default]
    Persistent,
}

impl OverlayRepr {
    /// The overlay capacity used when [`ShardingConfig::overlay_capacity`]
    /// is `None`. The flat representation folds early because every
    /// buffered entry is re-copied on every subsequent write; the
    /// persistent one buffers 8× more — its per-write copy cost stays
    /// logarithmic, so the only fold pressure left is lookup cost on the
    /// overlay probe.
    pub fn default_capacity(self) -> usize {
        match self {
            Self::Vec => 512,
            Self::Persistent => 4096,
        }
    }
}

/// How the key space is partitioned and served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingConfig {
    /// Number of shards. Each shard owns a contiguous key range.
    pub num_shards: usize,
    /// The concurrency scheme for this index (see [`ReadPath`]).
    pub read_path: ReadPath,
    /// RCU path only: the data structure shard snapshots buffer pending
    /// point writes in (see [`OverlayRepr`]).
    pub overlay: OverlayRepr,
    /// RCU path only: the maximum number of pending point writes a
    /// *published* shard snapshot's overlay holds. The write that would
    /// grow the overlay to `capacity + 1` entries triggers the fold into a
    /// fresh base index and lands there instead, so readers never observe
    /// an overlay past this bound (pinned by the boundary test). `None`
    /// picks the representation's default
    /// ([`OverlayRepr::default_capacity`]). Larger values amortise the
    /// fold further but tax every lookup with a bigger overlay probe.
    pub overlay_capacity: Option<usize>,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        Self {
            num_shards: 16,
            read_path: ReadPath::default(),
            overlay: OverlayRepr::default(),
            overlay_capacity: None,
        }
    }
}

impl ShardingConfig {
    /// A default config with `num_shards` shards.
    pub fn with_shards(num_shards: usize) -> Self {
        Self {
            num_shards,
            ..Self::default()
        }
    }

    /// The same config on the given read path.
    pub fn with_read_path(self, read_path: ReadPath) -> Self {
        Self { read_path, ..self }
    }

    /// The same config with the given overlay representation.
    pub fn with_overlay(self, overlay: OverlayRepr) -> Self {
        Self { overlay, ..self }
    }

    /// The same config with an explicit overlay capacity.
    pub fn with_overlay_capacity(self, capacity: usize) -> Self {
        Self {
            overlay_capacity: Some(capacity),
            ..self
        }
    }

    /// The overlay capacity in effect: the explicit one, else the
    /// representation's default.
    pub fn effective_overlay_capacity(&self) -> usize {
        self.overlay_capacity
            .unwrap_or_else(|| self.overlay.default_capacity())
            .max(1)
    }
}

/// One operation of a [`ShardedIndex::write_batch`] group commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert or overwrite `key` with `value`.
    Insert {
        /// The key to upsert.
        key: Key,
        /// The value to store.
        value: Value,
    },
    /// Remove `key` when present (a no-op otherwise, exactly like
    /// [`ShardedIndex::remove`]).
    Remove {
        /// The key to remove.
        key: Key,
    },
}

impl WriteOp {
    /// The key the operation targets.
    pub fn key(self) -> Key {
        match self {
            Self::Insert { key, .. } | Self::Remove { key } => key,
        }
    }

    /// The overlay slot the operation writes: `Some` upsert, `None`
    /// tombstone.
    fn slot(self) -> Option<Value> {
        match self {
            Self::Insert { value, .. } => Some(value),
            Self::Remove { .. } => None,
        }
    }
}

/// What a [`ShardedIndex::write_batch`] call applied, equivalent to the
/// point-wise return values summed: `fresh_inserts` counts the inserts
/// [`ShardedIndex::insert`] would have returned `true` for, `removed` the
/// removes [`ShardedIndex::remove`] would have returned `Some` for —
/// evaluated sequentially in batch order (an insert followed by a remove of
/// the same key counts once in each).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Inserts whose key was absent when the op applied.
    pub fresh_inserts: usize,
    /// Removes whose key was present when the op applied.
    pub removed: usize,
}

/// Per-shard staleness bookkeeping shared by both read paths: structural
/// writes since the last maintenance pass plus the mean-key-level baseline
/// the drift heuristic compares against.
struct StaleCounters {
    /// Structural writes (new keys, removals) since the last pass. Seeded
    /// with the bulk-loaded key count: a fresh shard has never been
    /// maintained, so its entire content is "unapplied writes" as far as
    /// the maintenance engine is concerned.
    writes: AtomicUsize,
    /// `f64::to_bits` of the mean key level at the last maintenance pass
    /// (meaningless until `maintained` is set).
    mean_level: AtomicU64,
    /// `false` until the first maintenance pass completes.
    maintained: AtomicBool,
}

impl StaleCounters {
    fn seeded(len: usize) -> Self {
        Self {
            writes: AtomicUsize::new(len),
            mean_level: AtomicU64::new(0),
            maintained: AtomicBool::new(false),
        }
    }

    fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the write iff it changed the live key set — a fresh-key
    /// insert (`absent → present`) or a successful removal
    /// (`present → absent`). Overwrites change no structure and do not
    /// count. Both read paths route their accounting through exactly this
    /// predicate, so the counters a maintenance engine ranks shards by are
    /// identical for identical op sequences (pinned by
    /// `staleness_counters_agree_across_paths_and_overlays`).
    fn record_if_structural(&self, was_present: bool, now_present: bool) {
        if was_present != now_present {
            self.record_write();
        }
    }

    /// Group-commit variant of [`StaleCounters::record_if_structural`]:
    /// records `n` structural writes with one atomic add. `n` must already
    /// be the count of ops that individually satisfied the structural
    /// predicate, so a batch lands the exact counter delta its ops applied
    /// point-wise would.
    fn record_structural(&self, n: usize) {
        if n > 0 {
            self.writes.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn reset_writes(&self) {
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Overwrites the counters with recovered state (see
    /// [`ShardedIndex::from_recovered`]).
    fn load_seed(&self, seed: StaleSeed) {
        self.writes.store(seed.writes, Ordering::Relaxed);
        self.mean_level
            .store(seed.mean_level.to_bits(), Ordering::Relaxed);
        self.maintained.store(seed.maintained, Ordering::Relaxed);
    }

    /// The counters as a persistable seed. `extra` accounts for a
    /// structural write that is being made durable in the same operation
    /// but whose `record_if_structural` only runs after publication.
    fn seed_snapshot(&self, extra: usize) -> StaleSeed {
        StaleSeed {
            writes: self.writes.load(Ordering::Relaxed) + extra,
            maintained: self.maintained.load(Ordering::Relaxed),
            mean_level: f64::from_bits(self.mean_level.load(Ordering::Relaxed)),
        }
    }

    fn mark_maintained(&self, mean_level: f64) {
        self.mean_level
            .store(mean_level.to_bits(), Ordering::Relaxed);
        self.maintained.store(true, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (usize, bool) {
        (
            self.writes.load(Ordering::Relaxed),
            self.maintained.load(Ordering::Relaxed),
        )
    }

    /// Mean key level now minus the baseline (0 for never-maintained
    /// shards — their write counter already says everything).
    fn level_drift(&self, current_mean: f64) -> f64 {
        if self.maintained.load(Ordering::Relaxed) {
            current_mean - f64::from_bits(self.mean_level.load(Ordering::Relaxed))
        } else {
            0.0
        }
    }
}

/// A staleness snapshot of one shard, consumed by the maintenance engine to
/// pick its next target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStaleness {
    /// Shard position (valid until the next split/merge changes the
    /// layout).
    pub shard: usize,
    /// Keys currently stored in the shard.
    pub num_keys: usize,
    /// Structural writes (inserts of new keys, removals) absorbed since the
    /// last maintenance pass; a never-maintained shard reports its full key
    /// count.
    pub writes_since_maintenance: usize,
    /// Mean key level now minus mean key level at the last maintenance pass
    /// (0 for never-maintained shards — their write counter already says
    /// everything). Positive drift means lookups got structurally slower.
    pub level_drift: f64,
    /// Whether the shard has ever been maintained.
    pub maintained: bool,
}

impl ShardStaleness {
    /// The scalar the engine ranks shards by: structural writes plus the
    /// key-weighted level drift (`drift_weight` converts "extra levels per
    /// lookup" into write-equivalents).
    pub fn score(&self, drift_weight: f64) -> f64 {
        self.writes_since_maintenance as f64
            + drift_weight * self.level_drift.max(0.0) * self.num_keys as f64
    }
}

/// The partial result of a budget-bounded [`ShardedIndex::maintain_shard_budgeted`]
/// call: the work done so far plus where to pick up next tick.
#[derive(Debug, Clone)]
pub struct MaintainProgress {
    /// The CSV report of the (possibly partial) pass.
    pub report: CsvReport,
    /// `Some(level)` when the deadline expired mid-sweep: the next call
    /// should resume planning at this level. `None` when the shard was
    /// fully maintained (and marked clean).
    pub resume_level: Option<usize>,
}

impl MaintainProgress {
    /// `true` when the shard was fully maintained this call.
    pub fn completed(&self) -> bool {
        self.resume_level.is_none()
    }
}

// ---------------------------------------------------------------------------
// Locked representation
// ---------------------------------------------------------------------------

/// A contiguous key-range shard on the locked path.
struct LockedShard<I> {
    /// Smallest key routed to this shard (the first shard owns everything
    /// below its boundary too).
    lower_bound: Key,
    index: RwLock<I>,
    stale: StaleCounters,
}

impl<I: LearnedIndex> LockedShard<I> {
    fn new(lower_bound: Key, index: I) -> Self {
        let seed = index.len();
        Self {
            lower_bound,
            index: RwLock::new(index),
            stale: StaleCounters::seeded(seed),
        }
    }
}

/// The locked layout: the shard vector lives behind an outer reader–writer
/// lock; every operation takes the cheap shared lock, and only a
/// split/merge takes the exclusive one.
struct LockedRepr<I> {
    shards: RwLock<Vec<LockedShard<I>>>,
}

// ---------------------------------------------------------------------------
// RCU representation
// ---------------------------------------------------------------------------

/// One pending point write in a shard snapshot's overlay: an upsert
/// (`Some`) or a tombstone (`None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OverlayEntry {
    key: Key,
    value: Option<Value>,
}

/// A snapshot's overlay of pending writes, in the representation chosen by
/// [`ShardingConfig::overlay`]. Both variants expose the same sorted-map
/// surface; they differ only in what a point update copies (the whole
/// vector vs. one chunk path).
#[derive(Clone)]
enum Overlay {
    Flat(Vec<OverlayEntry>),
    Tree(PMap<Key, Option<Value>>),
}

impl Overlay {
    fn empty(repr: OverlayRepr) -> Self {
        match repr {
            OverlayRepr::Vec => Self::Flat(Vec::new()),
            OverlayRepr::Persistent => Self::Tree(PMap::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Flat(entries) => entries.len(),
            Self::Tree(map) => map.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The key's overlay slot: `None` when the overlay has no entry for
    /// it, `Some(None)` for a tombstone, `Some(Some(v))` for an upsert.
    fn get(&self, key: Key) -> Option<Option<Value>> {
        match self {
            Self::Flat(entries) => entries
                .binary_search_by_key(&key, |e| e.key)
                .ok()
                .map(|i| entries[i].value),
            Self::Tree(map) => map.get(&key).copied(),
        }
    }

    /// Fills `slots[i]` with the overlay slot for `keys[i]` — a whole
    /// sorted, de-duplicated probe batch in **one** merged pass, the
    /// group-commit analogue of [`Overlay::get`]: the flat representation
    /// sweeps its entries forward once, the tree descends each touched
    /// chunk once via [`PMap::get_many`]. Absent keys leave their slot
    /// untouched (callers pre-fill with `None`).
    fn get_many(&self, keys: &[Key], slots: &mut [Option<Option<Value>>]) {
        debug_assert_eq!(keys.len(), slots.len());
        match self {
            Self::Flat(entries) => {
                let mut at = 0usize;
                for (i, key) in keys.iter().enumerate() {
                    at += entries[at..].partition_point(|e| e.key < *key);
                    match entries.get(at) {
                        Some(e) if e.key == *key => slots[i] = Some(e.value),
                        _ => {}
                    }
                }
            }
            Self::Tree(map) => map.get_many(keys, |i, v| slots[i] = Some(*v)),
        }
    }

    /// A successor overlay with `key`'s slot set to `value`, plus the slot
    /// it displaced — both from a single traversal. This is the per-write
    /// copy the two representations trade on: flat clones every entry, the
    /// tree path-copies O(log n + chunk). `spare` is a recycled entry
    /// buffer (from a retired snapshot, see `RcuShard::spare`) the flat
    /// representation builds its copy into instead of a fresh allocation;
    /// the tree ignores it — its chunks recycle themselves structurally.
    fn with(
        &self,
        key: Key,
        value: Option<Value>,
        spare: Vec<OverlayEntry>,
    ) -> (Self, Option<Option<Value>>) {
        match self {
            Self::Flat(entries) => {
                let mut next = spare;
                next.clear();
                next.extend_from_slice(entries);
                let entry = OverlayEntry { key, value };
                let displaced = match next.binary_search_by_key(&key, |e| e.key) {
                    Ok(i) => Some(std::mem::replace(&mut next[i], entry).value),
                    Err(i) => {
                        next.insert(i, entry);
                        None
                    }
                };
                (Self::Flat(next), displaced)
            }
            Self::Tree(map) => {
                let (next, displaced) = map.insert(key, value);
                (Self::Tree(next), displaced)
            }
        }
    }

    /// A successor overlay with a whole sorted, de-duplicated batch of slot
    /// writes applied in **one** pass — the group-commit analogue of
    /// [`Overlay::with`]: the flat representation pays one merge-join for
    /// the batch instead of one full clone per write, the tree bulk-ingests
    /// via [`PMap::insert_many`], copying each touched chunk once per
    /// batch. `spare` as in [`Overlay::with`].
    fn ingest(&self, batch: &[(Key, Option<Value>)], spare: Vec<OverlayEntry>) -> Self {
        match self {
            Self::Flat(entries) => {
                let mut merged = spare;
                merged.clear();
                merged.reserve(entries.len() + batch.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < entries.len() && j < batch.len() {
                    match entries[i].key.cmp(&batch[j].0) {
                        std::cmp::Ordering::Less => {
                            merged.push(entries[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            let (key, value) = batch[j];
                            merged.push(OverlayEntry { key, value });
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            let (key, value) = batch[j];
                            merged.push(OverlayEntry { key, value });
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&entries[i..]);
                merged.extend(
                    batch[j..]
                        .iter()
                        .map(|&(key, value)| OverlayEntry { key, value }),
                );
                Self::Flat(merged)
            }
            Self::Tree(map) => Self::Tree(map.insert_many(batch)),
        }
    }

    /// Hints the caches about `key`'s overlay slot ahead of a batched
    /// resolve. The flat representation prefetches the midpoint of its
    /// entry array — the first probe of `get`'s binary search; the chunk
    /// tree's root is batch-hot already and deeper chunks cannot be
    /// predicted without descending, so it declines the hint.
    fn prefetch(&self, _key: Key) {
        match self {
            Self::Flat(entries) => csv_common::prefetch_slice_at(entries, entries.len() / 2),
            Self::Tree(_) => {}
        }
    }

    /// Iterates the overlay slots with keys in `[lo, hi]`, ascending —
    /// allocation-free in both representations.
    fn range(&self, lo: Key, hi: Key) -> OverlayIter<'_> {
        match self {
            Self::Flat(entries) => {
                let from = entries.partition_point(|e| e.key < lo);
                let to = entries.partition_point(|e| e.key <= hi);
                OverlayIter::Flat(entries[from..to].iter())
            }
            Self::Tree(map) => OverlayIter::Tree(map.range(&lo, &hi)),
        }
    }
}

/// Streaming iterator over an overlay slice, unifying both representations
/// for the snapshot's merge-join.
enum OverlayIter<'a> {
    Flat(std::slice::Iter<'a, OverlayEntry>),
    Tree(crate::pmap::Iter<'a, Key, Option<Value>>),
}

impl Iterator for OverlayIter<'_> {
    type Item = (Key, Option<Value>);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            Self::Flat(it) => it.next().map(|e| (e.key, e.value)),
            Self::Tree(it) => it.next().map(|(&k, &v)| (k, v)),
        }
    }
}

/// An immutable shard snapshot on the RCU path: a big shared base index
/// plus a small sorted overlay of writes not yet folded into it. Readers
/// consult the overlay first, then the base — both without locks or
/// allocation.
pub struct ShardSnapshot<I> {
    base: Arc<I>,
    overlay: Overlay,
    /// Tombstones currently in the overlay, maintained incrementally by
    /// the write path so the fold can pick its clone+replay fast path
    /// without scanning.
    tombstones: usize,
    /// Live key count (base plus overlay net effect), maintained
    /// incrementally by the write path.
    len: usize,
}

impl<I: LearnedIndex> ShardSnapshot<I> {
    fn clean(base: Arc<I>, repr: OverlayRepr) -> Self {
        let len = base.len();
        Self {
            base,
            overlay: Overlay::empty(repr),
            tombstones: 0,
            len,
        }
    }

    pub(crate) fn get(&self, key: Key) -> Option<Value> {
        match self.overlay.get(key) {
            Some(slot) => slot,
            None => self.base.get(key),
        }
    }

    /// Predicts where `key` would resolve — the overlay slot candidate and
    /// the base index's model-predicted position — and prefetches those
    /// cache lines without resolving the lookup. The batched read path
    /// calls this for a whole block of keys before resolving any of them.
    pub(crate) fn prefetch(&self, key: Key) {
        if !self.overlay.is_empty() {
            self.overlay.prefetch(key);
        }
        self.base.prefetch_key(key);
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Structure statistics. Overlay writes are pending — they have no
    /// level in the base structure yet — so the histogram describes the
    /// base while `num_keys` reports the live count.
    fn stats(&self) -> IndexStats {
        let mut stats = self.base.stats();
        stats.num_keys = self.len;
        stats
    }
}

impl<I: LearnedIndex + RangeIndex> ShardSnapshot<I> {
    /// Every live record of the snapshot (base merged with the overlay), in
    /// ascending key order.
    fn records(&self) -> Vec<KeyValue> {
        self.range(0, Key::MAX)
    }

    /// Records in `[lo, hi]`: the base range merge-joined with the overlay
    /// slice (streamed, not copied), tombstones subtracted.
    fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        let _ = self.range_visit(lo, hi, &mut |k, v| {
            out.push(KeyValue::new(k, v));
            ControlFlow::Continue(())
        });
        out
    }

    /// Streams records in `[lo, hi]` to `f` in ascending key order without
    /// materialising either side: the base index streams through its own
    /// `range_visit` while the overlay slice is pulled lazily from
    /// [`Overlay::range`]'s allocation-free iterator; overlay slots
    /// supersede equal base keys and tombstones are dropped on the fly.
    /// Returns `Break` iff `f` broke.
    fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if self.overlay.is_empty() {
            return self.base.range_visit(lo, hi, f);
        }
        let mut overlay = self.overlay.range(lo, hi).peekable();
        self.base.range_visit(lo, hi, &mut |bk, bv| {
            // Drain overlay entries at or before this base key, then decide
            // whether the base record survives (no overlay slot for its key).
            while let Some(&(ok, oslot)) = overlay.peek() {
                if ok > bk {
                    break;
                }
                overlay.next();
                if ok == bk {
                    // The overlay slot supersedes the base record: an upsert
                    // replaces it, a tombstone drops it.
                    return match oslot {
                        Some(v) => f(ok, v),
                        None => ControlFlow::Continue(()),
                    };
                }
                if let Some(v) = oslot {
                    f(ok, v)?;
                }
            }
            f(bk, bv)
        })?;
        // Overlay keys past the last base record.
        for (ok, oslot) in overlay {
            if let Some(v) = oslot {
                f(ok, v)?;
            }
        }
        ControlFlow::Continue(())
    }
}

impl<I: SnapshotIndex + RangeIndex> ShardSnapshot<I> {
    /// Folds the overlay into a fresh base. With no tombstones the base is
    /// cloned and the upserts replayed — preserving the CSV-smoothed layout
    /// and the dirty-sub-tree marks exactly as in-place writes on the
    /// locked path would. With tombstones the snapshot is rebuilt from its
    /// merged records (bulk loading resets the structure, which the
    /// staleness counters already flag for re-smoothing).
    fn folded_base(&self) -> I {
        if self.tombstones == 0 {
            let mut base = (*self.base).clone();
            for (key, slot) in self.overlay.range(0, Key::MAX) {
                base.insert(key, slot.expect("tombstone count is zero"));
            }
            base
        } else {
            I::bulk_load(&self.records())
        }
    }
}

/// A contiguous key-range shard on the RCU path.
struct RcuShard<I> {
    lower_bound: Key,
    /// The published snapshot readers consume.
    snap: RcuCell<ShardSnapshot<I>>,
    /// Serializes writers and maintenance on this shard. Readers never
    /// touch it.
    writer: Mutex<()>,
    /// Set (under `writer`) when a split/merge replaced this shard in the
    /// layout: writers that raced the re-layout re-route instead of
    /// publishing into an unreachable handle.
    retired: AtomicBool,
    /// Retired-snapshot salvage: when a displaced snapshot comes back from
    /// its grace period uniquely owned (no reader pinned it), its flat
    /// overlay's entry buffer is parked here (under `writer`) and the next
    /// write builds its successor overlay into that allocation instead of
    /// a fresh one. Tree overlays need no slot — their chunks are
    /// `Arc`-shared and recycle structurally.
    spare: Mutex<Vec<OverlayEntry>>,
    stale: StaleCounters,
}

impl<I: LearnedIndex> RcuShard<I> {
    fn new(lower_bound: Key, index: I, repr: OverlayRepr) -> Self {
        let seed = index.len();
        Self {
            lower_bound,
            snap: RcuCell::new(Arc::new(ShardSnapshot::clean(Arc::new(index), repr))),
            writer: Mutex::new(()),
            retired: AtomicBool::new(false),
            spare: Mutex::new(Vec::new()),
            stale: StaleCounters::seeded(seed),
        }
    }

    /// Takes the parked spare overlay buffer (empty when nothing was
    /// salvaged). Called with `writer` held.
    fn take_spare(&self) -> Vec<OverlayEntry> {
        std::mem::take(&mut *self.spare.lock())
    }

    /// Publishes `next`, then salvages the displaced snapshot's overlay
    /// buffer when the grace period hands it back uniquely owned — the
    /// common case for write-heavy shards, where no reader pinned the
    /// displaced generation. Called with `writer` held (the caller must
    /// have dropped its own handle on the displaced snapshot first, or
    /// `try_unwrap` can never succeed).
    fn publish_salvaging(&self, next: Arc<ShardSnapshot<I>>) {
        let displaced = self.snap.replace(next);
        if let Ok(snapshot) = Arc::try_unwrap(displaced) {
            if let Overlay::Flat(mut entries) = snapshot.overlay {
                entries.clear();
                *self.spare.lock() = entries;
            }
        }
    }
}

/// The RCU shard vector, itself an immutable published value: splits and
/// merges publish a successor vector, so readers index into a consistent
/// layout without any lock.
struct Layout<I> {
    shards: Vec<Arc<RcuShard<I>>>,
}

impl<I> Layout<I> {
    /// Index of the shard owning `key`.
    fn shard_of(&self, key: Key) -> usize {
        shard_for_key(&self.shards, key, |s| s.lower_bound)
    }
}

struct RcuRepr<I> {
    layout: RcuCell<Layout<I>>,
    /// Serializes layout changes (split/merge). Readers and per-shard
    /// writers never touch it.
    layout_writer: Mutex<()>,
    overlay: OverlayRepr,
    overlay_capacity: usize,
}

impl<I> RcuRepr<I> {
    /// The handle currently owning `key` (an `Arc`, so the caller can lock
    /// its writer mutex outside the read-side critical section).
    fn shard_handle(&self, key: Key) -> Arc<RcuShard<I>> {
        self.layout
            .read(|layout| Arc::clone(&layout.shards[layout.shard_of(key)]))
    }
}

/// Index of the shard owning `key` within lower-bound-sorted `shards`: the
/// last entry whose lower bound is <= key (the first entry also owns every
/// key below its boundary). The single routing invariant shared by the
/// locked layout, the RCU layout and pinned read views.
fn shard_for_key<T>(shards: &[T], key: Key, lower_bound: impl Fn(&T) -> Key) -> usize {
    shards
        .partition_point(|s| lower_bound(s) <= key)
        .saturating_sub(1)
}

/// Locked-path convenience over [`shard_for_key`].
fn locked_shard_of<I>(shards: &[LockedShard<I>], key: Key) -> usize {
    shard_for_key(shards, key, |s| s.lower_bound)
}

thread_local! {
    /// Per-thread routing scratch shared by every batched operation
    /// (`multi_get`, `write_batch`): the per-shard position buckets
    /// survive across calls, so a small batch no longer pays one fresh
    /// `Vec` allocation per shard per call — that allocation was the whole
    /// small-batch `multi_get` crossover (0.78× at batch 16 before it was
    /// hoisted here).
    static ROUTE_SCRATCH: RefCell<Vec<Vec<u32>>> = const { RefCell::new(Vec::new()) };
}

/// Block size of the software-pipelined batched resolve: positions for a
/// whole block are predicted and prefetched before any of them is
/// resolved, so the block's cache misses overlap instead of serialising.
/// Eight in-flight lines sit comfortably inside the load-miss queue of
/// every x86-64 core this runs on; buckets smaller than one block skip
/// the prediction pass (the prefetches could not run ahead of the
/// resolves that follow immediately). This engages on the snapshot
/// resolve ([`ReadView::multi_get`] and the RCU `multi_get` path), where
/// the overlay + base indirection leaves misses worth hiding; the locked
/// resolve measured faster as a plain loop and keeps one.
const RESOLVE_PIPELINE: usize = 8;

/// Software-pipelined resolve of one shard's batch positions: prefetch a
/// block of predicted locations, then resolve the block.
fn pipelined_resolve(bucket: &[u32], mut prefetch: impl FnMut(u32), mut resolve: impl FnMut(u32)) {
    if bucket.len() < RESOLVE_PIPELINE {
        for &i in bucket {
            resolve(i);
        }
        return;
    }
    for block in bucket.chunks(RESOLVE_PIPELINE) {
        for &i in block {
            prefetch(i);
        }
        for &i in block {
            resolve(i);
        }
    }
}

/// Runs `f` over `shards` cleared position buckets borrowed from the
/// thread-local routing scratch. Falls back to fresh buckets when the
/// scratch is already borrowed (a reentrant batched call from inside `f`),
/// so nesting degrades to the old allocation behaviour instead of
/// panicking.
fn with_route_scratch<R>(shards: usize, f: impl FnOnce(&mut [Vec<u32>]) -> R) -> R {
    ROUTE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buckets) => {
            if buckets.len() < shards {
                buckets.resize_with(shards, Vec::new);
            }
            let buckets = &mut buckets[..shards];
            for bucket in buckets.iter_mut() {
                bucket.clear();
            }
            f(buckets)
        }
        Err(_) => f(&mut vec![Vec::new(); shards]),
    })
}

enum Repr<I> {
    Locked(LockedRepr<I>),
    Rcu(RcuRepr<I>),
}

/// A pinned, immutable view of every shard snapshot, for read-mostly
/// batches on the RCU path: taking the view costs one RCU load per shard,
/// after which every lookup is plain memory reads — no atomics at all.
///
/// The view is a *snapshot*: writes published after [`ShardedIndex::read_view`]
/// returned are invisible to it. Use it for bounded batches (a query chunk,
/// one scan pass), not as a long-lived cache.
pub struct ReadView<I> {
    shards: Vec<(Key, Arc<ShardSnapshot<I>>)>,
}

impl<I: LearnedIndex> ReadView<I> {
    /// Point lookup against the pinned snapshots.
    pub fn get(&self, key: Key) -> Option<Value> {
        let shard = shard_for_key(&self.shards, key, |(lower, _)| *lower);
        self.shards[shard].1.get(key)
    }

    /// Batched point lookup against the pinned snapshots, in input order.
    ///
    /// The classic learned-index batching discipline (run the cheap model
    /// predictions for the whole batch first, then resolve) applied at the
    /// shard level: phase 1 routes every key to its shard in one pass over
    /// the batch, phase 2 resolves shard by shard, so each shard's overlay
    /// chunks and base nodes are walked back-to-back instead of being
    /// evicted between interleaved lookups. All lookups observe the same
    /// pinned snapshots — `multi_get` is equivalent to `keys.map(get)` on
    /// this view (pinned by tests), just batched.
    pub fn multi_get(&self, keys: &[Key]) -> Vec<Option<Value>> {
        let mut out = vec![None; keys.len()];
        if keys.is_empty() {
            return out;
        }
        if self.shards.len() == 1 {
            let snap = &self.shards[0].1;
            if keys.len() < RESOLVE_PIPELINE {
                for (slot, &key) in out.iter_mut().zip(keys) {
                    *slot = snap.get(key);
                }
                return out;
            }
            for (slots, block) in out
                .chunks_mut(RESOLVE_PIPELINE)
                .zip(keys.chunks(RESOLVE_PIPELINE))
            {
                for &key in block {
                    snap.prefetch(key);
                }
                for (slot, &key) in slots.iter_mut().zip(block) {
                    *slot = snap.get(key);
                }
            }
            return out;
        }
        // Phase 1: the routing pass — one bucket of batch positions per
        // shard (u32 positions: a batch is bounded far below 4G keys),
        // built in recycled per-thread scratch.
        with_route_scratch(self.shards.len(), |buckets| {
            for (i, &key) in keys.iter().enumerate() {
                let shard = shard_for_key(&self.shards, key, |(lower, _)| *lower);
                buckets[shard].push(i as u32);
            }
            // Phase 2: per-shard software-pipelined resolution, batch
            // positions in input order — predict + prefetch a block of
            // positions, then resolve it (see `RESOLVE_PIPELINE`).
            for ((_, snap), bucket) in self.shards.iter().zip(buckets.iter()) {
                pipelined_resolve(
                    bucket,
                    |i| snap.prefetch(keys[i as usize]),
                    |i| out[i as usize] = snap.get(keys[i as usize]),
                );
            }
        });
        out
    }

    /// Total keys across the pinned snapshots.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|(_, s)| s.len()).sum()
    }

    /// `true` when the pinned snapshots store no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<I: LearnedIndex + RangeIndex> ReadView<I> {
    /// Range scan `[lo, hi]` against the pinned snapshots, materialised.
    /// Equivalent to collecting [`ReadView::range_visit`] (pinned by
    /// tests).
    pub fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        let _ = self.range_visit(lo, hi, &mut |k, v| {
            out.push(KeyValue::new(k, v));
            ControlFlow::Continue(())
        });
        out
    }

    /// Streaming range scan `[lo, hi]` against the pinned snapshots:
    /// overlapping shards are visited in key order (the shard vector is
    /// key-ordered by construction) and every record streams to `f` in
    /// ascending key order with no intermediate `Vec`. Unlike
    /// [`ShardedIndex::range_visit`], every shard's snapshot was pinned
    /// when the view was taken, so the whole scan observes one frozen
    /// layout. Returns `Break` iff `f` broke.
    pub fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if lo > hi || self.shards.is_empty() {
            return ControlFlow::Continue(());
        }
        let first = shard_for_key(&self.shards, lo, |(lower, _)| *lower);
        for (i, (lower, snap)) in self.shards.iter().enumerate().skip(first) {
            if i > first && *lower > hi {
                break;
            }
            snap.range_visit(lo, hi, f)?;
        }
        ControlFlow::Continue(())
    }
}

/// A concurrent index assembled from per-key-range shards of a
/// single-threaded index type.
///
/// Shard boundaries are chosen from the bulk-load records so every shard
/// starts with the same number of keys; later inserts are routed by key, so
/// heavy skew can grow one shard faster than the others (the same behaviour
/// a range-partitioned distributed index exhibits). Three mechanisms keep
/// that in check over a long run:
///
/// * every shard counts its structural writes and exposes a staleness
///   snapshot ([`ShardedIndex::staleness`]) that
///   [`crate::MaintenanceEngine`] uses to re-optimise the stalest shard
///   incrementally ([`ShardedIndex::maintain_shard`]),
/// * a shard that outgrows its peers can be split in two
///   ([`ShardedIndex::split_shard`]), and
/// * a shard whose key range drained can be merged into its neighbour
///   ([`ShardedIndex::merge_shards`]).
///
/// The concurrency scheme behind those operations is chosen by
/// [`ShardingConfig::read_path`]; see the module docs for the two layouts.
pub struct ShardedIndex<I> {
    repr: Repr<I>,
    /// Attached by the durable constructors ([`ShardedIndex::bulk_load_durable`],
    /// [`ShardedIndex::from_recovered`]); `None` keeps the in-memory
    /// configuration allocation-identical — the write path pays one
    /// `Option` check. RCU path only: the durability design rides the fold
    /// points, which the locked path does not have.
    sink: Option<Arc<dyn DurabilitySink>>,
}

impl<I: LearnedIndex> ShardedIndex<I> {
    /// Builds a sharded index over sorted, de-duplicated records.
    pub fn bulk_load(records: &[KeyValue], config: ShardingConfig) -> Self {
        let num_shards = config.num_shards.max(1);
        let per_shard = records.len().div_ceil(num_shards).max(1);
        let mut bounds_and_chunks: Vec<(Key, &[KeyValue])> = Vec::with_capacity(num_shards);
        if records.is_empty() {
            bounds_and_chunks.push((0, &[]));
        } else {
            for chunk in records.chunks(per_shard) {
                bounds_and_chunks.push((chunk[0].key, chunk));
            }
            // The first shard also owns every key below its smallest loaded
            // key.
            bounds_and_chunks[0].0 = 0;
        }
        let repr = match config.read_path {
            ReadPath::Locked => Repr::Locked(LockedRepr {
                shards: RwLock::new(
                    bounds_and_chunks
                        .into_iter()
                        .map(|(lower, chunk)| LockedShard::new(lower, I::bulk_load(chunk)))
                        .collect(),
                ),
            }),
            ReadPath::Rcu => Repr::Rcu(RcuRepr {
                layout: RcuCell::new(Arc::new(Layout {
                    shards: bounds_and_chunks
                        .into_iter()
                        .map(|(lower, chunk)| {
                            Arc::new(RcuShard::new(lower, I::bulk_load(chunk), config.overlay))
                        })
                        .collect(),
                })),
                layout_writer: Mutex::new(()),
                overlay: config.overlay,
                overlay_capacity: config.effective_overlay_capacity(),
            }),
        };
        Self { repr, sink: None }
    }

    /// The read path this index was built with.
    pub fn read_path(&self) -> ReadPath {
        match &self.repr {
            Repr::Locked(_) => ReadPath::Locked,
            Repr::Rcu(_) => ReadPath::Rcu,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        match &self.repr {
            Repr::Locked(r) => r.shards.read().len(),
            Repr::Rcu(r) => r.layout.read(|l| l.shards.len()),
        }
    }

    /// Point lookup. On the locked path this takes the outer shared lock
    /// plus one shard's shared lock; on the RCU path it performs **zero
    /// lock acquisitions** — two read-side RCU critical sections (a few
    /// atomic counter operations) around plain memory reads.
    pub fn get(&self, key: Key) -> Option<Value> {
        match &self.repr {
            Repr::Locked(r) => {
                let shards = r.shards.read();
                let found = shards[locked_shard_of(&shards, key)].index.read().get(key);
                found
            }
            Repr::Rcu(r) => r.layout.read(|layout| {
                layout.shards[layout.shard_of(key)]
                    .snap
                    .read(|snap| snap.get(key))
            }),
        }
    }

    /// Batched point lookup, in input order. On the RCU path the whole
    /// batch is served from one pinned [`ReadView`] (one RCU load per
    /// shard for the entire batch, then [`ReadView::multi_get`]'s
    /// route-then-resolve pass — not a loop over [`ShardedIndex::get`],
    /// which pays the RCU counters per lookup). On the locked path the
    /// batch is likewise shard-partitioned first so each overlapped
    /// shard's reader lock is taken once per batch instead of once per
    /// key.
    ///
    /// The whole batch observes one consistent snapshot per shard;
    /// `multi_get(keys)` returns exactly what `keys.map(get)` would when
    /// no concurrent writer intervenes between the two (pinned by tests).
    pub fn multi_get(&self, keys: &[Key]) -> Vec<Option<Value>> {
        match &self.repr {
            Repr::Locked(r) => {
                let shards = r.shards.read();
                let mut out = vec![None; keys.len()];
                with_route_scratch(shards.len(), |buckets| {
                    for (i, &key) in keys.iter().enumerate() {
                        buckets[locked_shard_of(&shards, key)].push(i as u32);
                    }
                    for (shard, bucket) in shards.iter().zip(buckets.iter()) {
                        if bucket.is_empty() {
                            continue;
                        }
                        // Plain loop, no prefetch pass: the locked resolve
                        // has no overlay/snapshot indirection to hide, and
                        // an interleaved A/B measured the pipelined variant
                        // 4-8% *slower* here — the predict+prefetch pass
                        // only pays for itself on the snapshot resolve.
                        let index = shard.index.read();
                        for &i in bucket.iter() {
                            out[i as usize] = index.get(keys[i as usize]);
                        }
                    }
                });
                out
            }
            Repr::Rcu(_) => self
                .read_view()
                .expect("the RCU path always has snapshots to pin")
                .multi_get(keys),
        }
    }

    /// A pinned snapshot view of every shard for read-mostly batches, or
    /// `None` on the locked path (which has no immutable snapshots to
    /// pin). See [`ReadView`] for the staleness contract.
    pub fn read_view(&self) -> Option<ReadView<I>> {
        match &self.repr {
            Repr::Locked(_) => None,
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                Some(ReadView {
                    shards: layout
                        .shards
                        .iter()
                        .map(|s| (s.lower_bound, s.snap.load()))
                        .collect(),
                })
            }
        }
    }

    /// Total number of stored keys (consistent per shard, not globally
    /// atomic).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Locked(r) => r.shards.read().iter().map(|s| s.index.read().len()).sum(),
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                layout
                    .shards
                    .iter()
                    .map(|s| s.snap.read(|snap| snap.len()))
                    .sum()
            }
        }
    }

    /// `true` when no shard stores any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard key counts, in shard order. The maintenance engine's
    /// split/merge triggers read this instead of [`ShardedIndex::map_shards`]
    /// because on the RCU path it includes pending overlay writes.
    pub fn shard_lens(&self) -> Vec<usize> {
        match &self.repr {
            Repr::Locked(r) => r
                .shards
                .read()
                .iter()
                .map(|s| s.index.read().len())
                .collect(),
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                layout
                    .shards
                    .iter()
                    .map(|s| s.snap.read(|snap| snap.len()))
                    .collect()
            }
        }
    }

    /// Aggregated structural statistics across shards.
    pub fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        let mut accumulate = |s: IndexStats| {
            for (level, count) in s.level_histogram.iter() {
                total.level_histogram.record(level, count);
            }
            total.node_count += s.node_count;
            total.deep_node_count += s.deep_node_count;
            total.height = total.height.max(s.height);
            total.size_bytes += s.size_bytes;
            total.num_keys += s.num_keys;
        };
        match &self.repr {
            Repr::Locked(r) => {
                for shard in r.shards.read().iter() {
                    accumulate(shard.index.read().stats());
                }
            }
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                for shard in layout.shards.iter() {
                    accumulate(shard.snap.load().stats());
                }
            }
        }
        total
    }

    /// Cheap per-shard `(writes_since_maintenance, maintained)` snapshot —
    /// two atomic loads per shard, no structure walk. Level drift only
    /// accumulates through writes, so a maintained shard with zero pending
    /// writes is provably not stale; the maintenance engine uses this as a
    /// quiescence pre-check before paying for [`ShardedIndex::staleness`].
    pub fn write_counters(&self) -> Vec<(usize, bool)> {
        match &self.repr {
            Repr::Locked(r) => r.shards.read().iter().map(|s| s.stale.snapshot()).collect(),
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                layout.shards.iter().map(|s| s.stale.snapshot()).collect()
            }
        }
    }

    /// Per-shard staleness snapshot (writes since the last maintenance pass
    /// plus level drift from the structural statistics), in shard order.
    /// Computing the drift walks each shard's structure, so this is a
    /// maintenance-cadence call, not a hot-path one.
    pub fn staleness(&self) -> Vec<ShardStaleness> {
        let entry = |i: usize, stats: IndexStats, stale: &StaleCounters| {
            let (writes, maintained) = stale.snapshot();
            ShardStaleness {
                shard: i,
                num_keys: stats.num_keys,
                writes_since_maintenance: writes,
                level_drift: stale.level_drift(stats.mean_key_level()),
                maintained,
            }
        };
        match &self.repr {
            Repr::Locked(r) => r
                .shards
                .read()
                .iter()
                .enumerate()
                .map(|(i, s)| entry(i, s.index.read().stats(), &s.stale))
                .collect(),
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                layout
                    .shards
                    .iter()
                    .enumerate()
                    .map(|(i, s)| entry(i, s.snap.load().stats(), &s.stale))
                    .collect()
            }
        }
    }

    /// Runs `f` on every shard's inner index with a shared lock (locked
    /// path) or against the current base snapshot (RCU path — pending
    /// overlay writes are invisible to `f`; use [`ShardedIndex::shard_lens`]
    /// for exact counts) and collects the results.
    pub fn map_shards<T, F: FnMut(&I) -> T>(&self, mut f: F) -> Vec<T> {
        match &self.repr {
            Repr::Locked(r) => r.shards.read().iter().map(|s| f(&s.index.read())).collect(),
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                layout
                    .shards
                    .iter()
                    .map(|s| f(&s.snap.load().base))
                    .collect()
            }
        }
    }
}

impl<I: SnapshotIndex + RangeIndex> ShardedIndex<I> {
    /// Inserts or overwrites a record. Returns `true` when the key was new.
    ///
    /// Locked path: exclusive lock on one shard. RCU path: the owning
    /// shard's writer mutex (invisible to readers), a copy of its overlay
    /// with the upsert applied, and one snapshot publication; when the
    /// overlay is full it is first folded into a fresh base (see
    /// [`ShardingConfig::overlay_capacity`]).
    pub fn insert(&self, key: Key, value: Value) -> bool {
        match &self.repr {
            Repr::Locked(r) => {
                let shards = r.shards.read();
                let shard = &shards[locked_shard_of(&shards, key)];
                let new = shard.index.write().insert(key, value);
                shard.stale.record_if_structural(!new, true);
                new
            }
            Repr::Rcu(r) => self.rcu_write(r, key, Some(value)).is_none(),
        }
    }

    /// The RCU point-write path shared by insert (`Some`) and remove
    /// (`None`): returns the key's previous value. Retries when the routed
    /// shard was retired by a concurrent split/merge — with a bounded
    /// spin-then-yield backoff, because the successor layout is published
    /// by the racing layout writer and retrying cannot succeed before that
    /// publication lands (an unbounded retry loop would busy-burn a core
    /// against a slow split).
    fn rcu_write(&self, repr: &RcuRepr<I>, key: Key, value: Option<Value>) -> Option<Value> {
        /// Retired-handle retries before each retry starts yielding the
        /// CPU instead of spinning (the common case re-routes on the first
        /// retry: the layout is published before the retired shard's
        /// writer mutex is released).
        const RETIRED_RETRY_SPINS: usize = 16;
        let mut retries = 0usize;
        loop {
            let shard = repr.shard_handle(key);
            let writes = shard.writer.lock();
            if shard.retired.load(Ordering::SeqCst) {
                // A split/merge replaced this handle after we routed to it;
                // publishing here would write into an unreachable snapshot.
                drop(writes);
                retries += 1;
                if retries > RETIRED_RETRY_SPINS {
                    yield_now();
                } else {
                    spin_loop();
                }
                #[cfg(test)]
                RETIRED_RETRIES.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let snap = shard.snap.load();
            if value.is_none()
                && snap
                    .overlay
                    .get(key)
                    .unwrap_or_else(|| snap.base.get(key))
                    .is_none()
            {
                // Removing an absent key publishes nothing (pre-probed so
                // it also builds no successor overlay).
                return None;
            }
            let (overlay, slot) = snap.overlay.with(key, value, shard.take_spare());
            let previous = slot.unwrap_or_else(|| snap.base.get(key));
            // A fresh tombstone adds one; overwriting an existing
            // tombstone slot removes the one it replaces.
            let tombstones = snap.tombstones + usize::from(value.is_none())
                - usize::from(matches!(slot, Some(None)));
            let len = match (previous.is_some(), value.is_some()) {
                (false, true) => snap.len + 1,
                (true, false) => snap.len - 1,
                _ => snap.len,
            };
            let next = if overlay.len() > repr.overlay_capacity {
                let folded = ShardSnapshot {
                    base: Arc::clone(&snap.base),
                    overlay,
                    tombstones,
                    len,
                }
                .folded_base();
                debug_assert_eq!(folded.len(), len);
                if let Some(sink) = &self.sink {
                    // The triggering write lands in the folded base, not the
                    // log, so the checkpoint absorbs it (`absorbed: 1`); the
                    // staleness seed counts it too — `record_if_structural`
                    // only runs after publication.
                    let structural = usize::from(previous.is_some() != value.is_some());
                    sink.checkpoint(&ShardCheckpoint {
                        lower_bound: shard.lower_bound,
                        records: folded.range(0, Key::MAX),
                        stale: shard.stale.seed_snapshot(structural),
                        absorbed: 1,
                    });
                }
                ShardSnapshot::clean(Arc::new(folded), repr.overlay)
            } else {
                if let Some(sink) = &self.sink {
                    // Write-ahead: the log append completes before the
                    // snapshot is published, so an acknowledged write is
                    // always recoverable.
                    sink.log_write(shard.lower_bound, key, value);
                }
                ShardSnapshot {
                    base: Arc::clone(&snap.base),
                    overlay,
                    tombstones,
                    len,
                }
            };
            // Drop our handle on the displaced snapshot before publishing
            // so the grace period can hand it back uniquely owned and its
            // overlay buffer gets recycled into the next write.
            drop(snap);
            shard.publish_salvaging(Arc::new(next));
            shard
                .stale
                .record_if_structural(previous.is_some(), value.is_some());
            return previous;
        }
    }

    /// Runs `f` on every shard's inner index, fanning the shards out across
    /// the rayon thread pool — used to apply CSV optimisation (or SALI
    /// workload flattening) to all shards at once. Shards are disjoint by
    /// construction, so per-shard mutations cannot conflict; `f` must be
    /// `Fn + Sync` because multiple shards run it concurrently.
    ///
    /// Locked path: `f` mutates in place under the shard's exclusive lock.
    /// RCU path: `f` mutates a copy (the overlay folded into a clone of the
    /// base) that is then published — readers keep flowing throughout.
    pub fn with_shards_mut<F>(&self, f: F)
    where
        F: Fn(&mut I) + Sync,
    {
        match &self.repr {
            Repr::Locked(r) => {
                let shards = r.shards.read();
                shards
                    .par_iter()
                    .for_each(|shard| f(&mut shard.index.write()));
            }
            Repr::Rcu(r) => {
                // Exclude splits/merges for the duration (they are the only
                // operations that retire handles): every shard of the layout
                // loaded below is live, so no shard's mutation can be lost
                // to a concurrent re-layout. Readers never touch this lock.
                let _layout_guard = r.layout_writer.lock();
                let layout = r.layout.load();
                layout.shards.par_iter().for_each(|shard| {
                    let _writes = shard.writer.lock();
                    debug_assert!(!shard.retired.load(Ordering::SeqCst));
                    let mut next = shard.snap.load().folded_base();
                    f(&mut next);
                    self.checkpoint_into_sink(shard, &next);
                    shard
                        .snap
                        .publish(Arc::new(ShardSnapshot::clean(Arc::new(next), r.overlay)));
                });
            }
        }
    }

    /// Sequential variant of [`ShardedIndex::with_shards_mut`] for closures
    /// that accumulate state across shards.
    pub fn with_shards_mut_seq<F: FnMut(&mut I)>(&self, mut f: F) {
        match &self.repr {
            Repr::Locked(r) => {
                for shard in r.shards.read().iter() {
                    f(&mut shard.index.write());
                }
            }
            Repr::Rcu(r) => {
                // As in `with_shards_mut`: no handle of the layout loaded
                // under the layout-writer lock can be retired mid-pass.
                let _layout_guard = r.layout_writer.lock();
                let layout = r.layout.load();
                for shard in layout.shards.iter() {
                    let _writes = shard.writer.lock();
                    debug_assert!(!shard.retired.load(Ordering::SeqCst));
                    let mut next = shard.snap.load().folded_base();
                    f(&mut next);
                    self.checkpoint_into_sink(shard, &next);
                    shard
                        .snap
                        .publish(Arc::new(ShardSnapshot::clean(Arc::new(next), r.overlay)));
                }
            }
        }
    }

    /// Reports a rebuilt base to the sink (no-op without one). Called with
    /// the shard's writer mutex held, before the rebuild is published.
    fn checkpoint_into_sink(&self, shard: &RcuShard<I>, next: &I) {
        if let Some(sink) = &self.sink {
            sink.checkpoint(&ShardCheckpoint {
                lower_bound: shard.lower_bound,
                records: next.range(0, Key::MAX),
                stale: shard.stale.seed_snapshot(0),
                absorbed: 0,
            });
        }
    }

    /// Forces a durable checkpoint of shard `shard`: folds its overlay into
    /// a fresh base, checkpoints the result into the sink (truncating the
    /// shard's log) and publishes the folded snapshot. This is the
    /// maintenance engine's checkpoint tick — it bounds WAL replay length
    /// (and so recovery time) on shards whose writes never trip the
    /// capacity fold.
    ///
    /// Returns the log backlog the checkpoint retired, or `None` when there
    /// is no sink, `shard` is out of bounds or retired, or nothing is
    /// pending (empty overlay and empty backlog — checkpointing would only
    /// churn bytes).
    pub fn checkpoint_shard(&self, shard: usize) -> Option<u64> {
        let sink = self.sink.as_ref()?;
        let Repr::Rcu(r) = &self.repr else {
            return None;
        };
        let layout = r.layout.load();
        let shard = layout.shards.get(shard)?;
        let _writes = shard.writer.lock();
        if shard.retired.load(Ordering::SeqCst) {
            return None;
        }
        let backlog = sink.backlog(shard.lower_bound);
        let snap = shard.snap.load();
        if snap.overlay.is_empty() && backlog == 0 {
            return None;
        }
        let folded = snap.folded_base();
        sink.checkpoint(&ShardCheckpoint {
            lower_bound: shard.lower_bound,
            records: folded.range(0, Key::MAX),
            stale: shard.stale.seed_snapshot(0),
            absorbed: 0,
        });
        shard
            .snap
            .publish(Arc::new(ShardSnapshot::clean(Arc::new(folded), r.overlay)));
        Some(backlog)
    }
}

impl<I: LearnedIndex + RangeIndex> ShardedIndex<I> {
    /// [`ShardedIndex::bulk_load`] with a durability sink attached: every
    /// shard is checkpointed into the sink as one layout transition before
    /// the index is returned, and from then on the write path reports every
    /// acknowledged write to the sink *before* publishing it (see
    /// [`DurabilitySink`] for the ordering contract).
    ///
    /// # Panics
    ///
    /// Panics when `config` selects [`ReadPath::Locked`]: the durability
    /// design rides the RCU fold points, which the locked path does not
    /// have. The CLI rejects the combination up front.
    pub fn bulk_load_durable(
        records: &[KeyValue],
        config: ShardingConfig,
        sink: Arc<dyn DurabilitySink>,
    ) -> Self {
        assert_eq!(
            config.read_path,
            ReadPath::Rcu,
            "durability requires the RCU read path"
        );
        let mut this = Self::bulk_load(records, config);
        let Repr::Rcu(r) = &this.repr else {
            unreachable!("asserted above");
        };
        let layout = r.layout.load();
        let created: Vec<ShardCheckpoint> = layout
            .shards
            .iter()
            .map(|shard| {
                let snap = shard.snap.load();
                ShardCheckpoint {
                    lower_bound: shard.lower_bound,
                    records: snap.records(),
                    stale: StaleSeed::fresh(snap.len()),
                    absorbed: 0,
                }
            })
            .collect();
        sink.replace_shards(&[], &created);
        this.sink = Some(sink);
        this
    }

    /// Rebuilds an index from recovered per-shard state — the constructor a
    /// durability implementation's recovery path uses. Shard lower bounds
    /// and staleness counters are restored exactly as persisted, so the
    /// maintenance engine resumes where the crashed process left off. When
    /// a sink is attached, every recovered shard is re-checkpointed into it
    /// (one layout transition), giving the restarted store fresh
    /// checkpoints and empty logs.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty or `config` selects
    /// [`ReadPath::Locked`].
    pub fn from_recovered(
        shards: Vec<RecoveredShard>,
        config: ShardingConfig,
        sink: Option<Arc<dyn DurabilitySink>>,
    ) -> Self {
        assert_eq!(
            config.read_path,
            ReadPath::Rcu,
            "durability requires the RCU read path"
        );
        assert!(!shards.is_empty(), "recovery produced no shards");
        let mut shards = shards;
        shards.sort_by_key(|s| s.lower_bound);
        let mut created = Vec::with_capacity(shards.len());
        let rcu_shards: Vec<Arc<RcuShard<I>>> = shards
            .into_iter()
            .map(|recovered| {
                let shard = RcuShard::new(
                    recovered.lower_bound,
                    I::bulk_load(&recovered.records),
                    config.overlay,
                );
                shard.stale.load_seed(recovered.stale);
                created.push(ShardCheckpoint {
                    lower_bound: recovered.lower_bound,
                    records: recovered.records,
                    stale: recovered.stale,
                    absorbed: 0,
                });
                Arc::new(shard)
            })
            .collect();
        if let Some(sink) = &sink {
            sink.replace_shards(&[], &created);
        }
        Self {
            repr: Repr::Rcu(RcuRepr {
                layout: RcuCell::new(Arc::new(Layout { shards: rcu_shards })),
                layout_writer: Mutex::new(()),
                overlay: config.overlay,
                overlay_capacity: config.effective_overlay_capacity(),
            }),
            sink,
        }
    }

    /// `true` when a durability sink is attached.
    pub fn has_durability(&self) -> bool {
        self.sink.is_some()
    }

    /// Per-shard durable-log backlog `(shard_position, pending_records)` —
    /// the maintenance engine's checkpoint-tick trigger. Empty without a
    /// sink.
    pub fn durability_backlog(&self) -> Vec<(usize, u64)> {
        let Some(sink) = &self.sink else {
            return Vec::new();
        };
        match &self.repr {
            Repr::Locked(_) => Vec::new(),
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                layout
                    .shards
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i, sink.backlog(s.lower_bound)))
                    .collect()
            }
        }
    }

    /// Range scan `[lo, hi]` across every shard that overlaps the range
    /// (shared locks on the locked path; pinned snapshots on the RCU path,
    /// so the scan observes each shard's state at its own visit — the same
    /// per-shard consistency the locked path provides).
    pub fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        let _ = self.range_visit(lo, hi, &mut |k, v| {
            out.push(KeyValue::new(k, v));
            ControlFlow::Continue(())
        });
        out
    }

    /// Streaming range scan `[lo, hi]`: records are handed to `f` in
    /// ascending key order as each overlapping shard is visited, without
    /// materialising any per-shard `Vec`. Shards are visited in key order
    /// under the same per-shard consistency as [`ShardedIndex::range`];
    /// returns `Break` iff `f` broke, which also stops visiting further
    /// shards.
    pub fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if lo > hi {
            return ControlFlow::Continue(());
        }
        match &self.repr {
            Repr::Locked(r) => {
                let shards = r.shards.read();
                let first = locked_shard_of(&shards, lo);
                for (i, shard) in shards.iter().enumerate().skip(first) {
                    if i > first && shard.lower_bound > hi {
                        break;
                    }
                    shard.index.read().range_visit(lo, hi, f)?;
                }
            }
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                let first = layout.shard_of(lo);
                for (i, shard) in layout.shards.iter().enumerate().skip(first) {
                    if i > first && shard.lower_bound > hi {
                        break;
                    }
                    shard.snap.load().range_visit(lo, hi, f)?;
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// Splits shard `shard` at its median key into two shards, fixing the
    /// hot-shard growth a skewed insert stream produces: each half is
    /// bulk-loaded fresh (the best structure an index can have) and the two
    /// halves take over the original's key range. Returns `false` when the
    /// shard is out of bounds or currently holds fewer than
    /// `min_keys.max(2)` keys — callers pick the split trigger from a
    /// lock-free snapshot, so the threshold is re-checked here: if a
    /// concurrent re-layout shifted the vector and `shard` now names some
    /// small fresh shard, the split is refused instead of rebuilding the
    /// wrong one.
    ///
    /// Locked path: takes the *outer* exclusive lock, blocking all other
    /// operations for the duration of the two bulk loads. RCU path: only
    /// the target shard's writers block; lookups everywhere — including on
    /// the shard being split — keep flowing, and observe either the
    /// pre-split shard or the published halves.
    pub fn split_shard(&self, shard: usize, min_keys: usize) -> bool {
        match &self.repr {
            Repr::Locked(r) => {
                let mut shards = r.shards.write();
                let Some(target) = shards.get(shard) else {
                    return false;
                };
                let records = target.index.read().range(0, Key::MAX);
                if records.len() < min_keys.max(2) {
                    return false;
                }
                let mid = records.len() / 2;
                let lower_bound = target.lower_bound;
                let upper_bound = records[mid].key;
                let lower = I::bulk_load(&records[..mid]);
                let upper = I::bulk_load(&records[mid..]);
                shards[shard] = LockedShard::new(lower_bound, lower);
                shards.insert(shard + 1, LockedShard::new(upper_bound, upper));
                true
            }
            Repr::Rcu(r) => {
                let _layout_guard = r.layout_writer.lock();
                let layout = r.layout.load();
                let Some(target) = layout.shards.get(shard) else {
                    return false;
                };
                // Block this shard's writers for the duration; readers are
                // unaffected and keep resolving against the old snapshot
                // until the new layout is published.
                let _writes = target.writer.lock();
                let records = target.snap.load().records();
                if records.len() < min_keys.max(2) {
                    return false;
                }
                let mid = records.len() / 2;
                let lower_bound = target.lower_bound;
                let upper_bound = records[mid].key;
                let lower = Arc::new(RcuShard::new(
                    lower_bound,
                    I::bulk_load(&records[..mid]),
                    r.overlay,
                ));
                let upper = Arc::new(RcuShard::new(
                    upper_bound,
                    I::bulk_load(&records[mid..]),
                    r.overlay,
                ));
                if let Some(sink) = &self.sink {
                    // One durable layout transition: the lower half
                    // supersedes the old shard (same lower bound), the
                    // upper half is new. Persisted before the new layout is
                    // published, so recovery sees either the pre-split
                    // shard (with its log) or both halves — never a gap.
                    sink.replace_shards(
                        &[],
                        &[
                            ShardCheckpoint {
                                lower_bound,
                                records: records[..mid].to_vec(),
                                stale: StaleSeed::fresh(mid),
                                absorbed: 0,
                            },
                            ShardCheckpoint {
                                lower_bound: upper_bound,
                                records: records[mid..].to_vec(),
                                stale: StaleSeed::fresh(records.len() - mid),
                                absorbed: 0,
                            },
                        ],
                    );
                }
                let mut shards = layout.shards.clone();
                shards[shard] = lower;
                shards.insert(shard + 1, upper);
                // Retire before publishing: a writer that routed here via
                // the old layout and is queued on the writer mutex must
                // re-route once it acquires it.
                target.retired.store(true, Ordering::SeqCst);
                r.layout.publish(Arc::new(Layout { shards }));
                true
            }
        }
    }

    /// Merges shard `shard` with its right neighbour `shard + 1` — the
    /// inverse of [`ShardedIndex::split_shard`], for key ranges that
    /// drained (churn workloads, retired tenants): the combined records are
    /// bulk-loaded fresh and take over both key ranges. Returns `false`
    /// when `shard + 1` is out of bounds or the combined shard would exceed
    /// `max_keys` (the engine passes its split threshold here so a merge
    /// can never immediately re-trigger a split).
    pub fn merge_shards(&self, shard: usize, max_keys: usize) -> bool {
        match &self.repr {
            Repr::Locked(r) => {
                let mut shards = r.shards.write();
                if shard + 1 >= shards.len() {
                    return false;
                }
                let mut records = shards[shard].index.read().range(0, Key::MAX);
                records.extend(shards[shard + 1].index.read().range(0, Key::MAX));
                if records.len() > max_keys {
                    return false;
                }
                let lower_bound = shards[shard].lower_bound;
                shards[shard] = LockedShard::new(lower_bound, I::bulk_load(&records));
                shards.remove(shard + 1);
                true
            }
            Repr::Rcu(r) => {
                let _layout_guard = r.layout_writer.lock();
                let layout = r.layout.load();
                if shard + 1 >= layout.shards.len() {
                    return false;
                }
                let left = &layout.shards[shard];
                let right = &layout.shards[shard + 1];
                // Lock order (left before right) is globally consistent
                // because only split/merge hold two shard writers and both
                // serialize on `layout_writer`.
                let _left_writes = left.writer.lock();
                let _right_writes = right.writer.lock();
                let mut records = left.snap.load().records();
                records.extend(right.snap.load().records());
                if records.len() > max_keys {
                    return false;
                }
                let merged = Arc::new(RcuShard::new(
                    left.lower_bound,
                    I::bulk_load(&records),
                    r.overlay,
                ));
                if let Some(sink) = &self.sink {
                    // One durable layout transition: the combined shard
                    // supersedes the left one, the right one is retired.
                    let total = records.len();
                    sink.replace_shards(
                        &[right.lower_bound],
                        &[ShardCheckpoint {
                            lower_bound: left.lower_bound,
                            records,
                            stale: StaleSeed::fresh(total),
                            absorbed: 0,
                        }],
                    );
                }
                let mut shards = layout.shards.clone();
                shards[shard] = merged;
                shards.remove(shard + 1);
                left.retired.store(true, Ordering::SeqCst);
                right.retired.store(true, Ordering::SeqCst);
                r.layout.publish(Arc::new(Layout { shards }));
                true
            }
        }
    }
}

impl<I: SnapshotIndex + RangeIndex + RemovableIndex> ShardedIndex<I> {
    /// Removes `key` and returns its value when it was present.
    ///
    /// Locked path: exclusive lock on one shard. RCU path: publishes a
    /// tombstone into the owning shard's overlay (folded out at the next
    /// overlay fold), so readers never observe a half-removed state.
    pub fn remove(&self, key: Key) -> Option<Value> {
        match &self.repr {
            Repr::Locked(r) => {
                let shards = r.shards.read();
                let shard = &shards[locked_shard_of(&shards, key)];
                let removed = shard.index.write().remove(key);
                shard.stale.record_if_structural(removed.is_some(), false);
                removed
            }
            Repr::Rcu(r) => self.rcu_write(r, key, None),
        }
    }

    /// Applies a whole batch of point writes as one group commit,
    /// observationally identical to looping [`ShardedIndex::insert`] /
    /// [`ShardedIndex::remove`] over `ops` in order — same final contents,
    /// same staleness counters, same overlay fold boundaries (pinned by
    /// tests) — but paying the per-publication costs once per touched
    /// shard instead of once per write:
    ///
    /// * the batch is shard-partitioned with the same routing pass
    ///   [`ShardedIndex::multi_get`] uses;
    /// * each shard's slice lands on the overlay in a **single** pass (one
    ///   merge for the flat representation, one bulk chunk-tree ingest for
    ///   the persistent one);
    /// * each touched shard publishes **one** successor snapshot — one
    ///   `Arc` allocation and one RCU grace period for the whole slice;
    /// * a durability sink receives **one** [`DurabilitySink::log_writes`]
    ///   frame per touched shard (before that shard's publication, so the
    ///   write-ahead contract covers the group), and any overlay folds the
    ///   slice trips are checkpointed exactly where point-wise application
    ///   would have folded.
    ///
    /// On the locked path the batch takes each touched shard's exclusive
    /// lock once instead of once per write. Ops apply sequentially in
    /// batch order (later ops of the batch observe earlier ones).
    pub fn write_batch(&self, ops: &[WriteOp]) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        if ops.is_empty() {
            return outcome;
        }
        match &self.repr {
            Repr::Locked(r) => {
                let shards = r.shards.read();
                with_route_scratch(shards.len(), |buckets| {
                    for (i, op) in ops.iter().enumerate() {
                        buckets[locked_shard_of(&shards, op.key())].push(i as u32);
                    }
                    for (shard, bucket) in shards.iter().zip(buckets.iter()) {
                        if bucket.is_empty() {
                            continue;
                        }
                        let mut structural = 0usize;
                        {
                            let mut index = shard.index.write();
                            for &i in bucket {
                                match ops[i as usize] {
                                    WriteOp::Insert { key, value } => {
                                        let fresh = index.insert(key, value);
                                        outcome.fresh_inserts += usize::from(fresh);
                                        structural += usize::from(fresh);
                                    }
                                    WriteOp::Remove { key } => {
                                        let hit = index.remove(key).is_some();
                                        outcome.removed += usize::from(hit);
                                        structural += usize::from(hit);
                                    }
                                }
                            }
                        }
                        shard.stale.record_structural(structural);
                    }
                });
            }
            Repr::Rcu(r) => self.rcu_write_batch(r, ops, &mut outcome),
        }
        outcome
    }

    /// Batched [`ShardedIndex::insert`]: upserts every record as one group
    /// commit and returns how many keys were fresh.
    pub fn insert_batch(&self, records: &[KeyValue]) -> usize {
        let ops: Vec<WriteOp> = records
            .iter()
            .map(|r| WriteOp::Insert {
                key: r.key,
                value: r.value,
            })
            .collect();
        self.write_batch(&ops).fresh_inserts
    }

    /// Batched [`ShardedIndex::remove`]: removes every key as one group
    /// commit and returns how many were present.
    pub fn remove_batch(&self, keys: &[Key]) -> usize {
        let ops: Vec<WriteOp> = keys.iter().map(|&key| WriteOp::Remove { key }).collect();
        self.write_batch(&ops).removed
    }

    /// The RCU group-commit path behind [`ShardedIndex::write_batch`]:
    /// routes the batch per shard, applies each shard's slice under its
    /// writer mutex and re-routes any slice whose shard a concurrent
    /// split/merge retired — with the same bounded spin-then-yield backoff
    /// as `rcu_write`, because retrying cannot succeed
    /// before the racing layout writer publishes the successor layout.
    fn rcu_write_batch(&self, repr: &RcuRepr<I>, ops: &[WriteOp], outcome: &mut BatchOutcome) {
        const RETIRED_RETRY_SPINS: usize = 16;
        // Positions not yet applied; re-routed against a fresh layout every
        // pass (a single pass in the common, re-layout-free case).
        let mut pending_ops: Vec<u32> = (0..ops.len() as u32).collect();
        let mut retries = 0usize;
        while !pending_ops.is_empty() {
            let layout = repr.layout.load();
            let mut parked: Vec<u32> = Vec::new();
            with_route_scratch(layout.shards.len(), |buckets| {
                for &i in &pending_ops {
                    buckets[layout.shard_of(ops[i as usize].key())].push(i);
                }
                for (shard, bucket) in layout.shards.iter().zip(buckets.iter()) {
                    if bucket.is_empty() {
                        continue;
                    }
                    let writes = shard.writer.lock();
                    if shard.retired.load(Ordering::SeqCst) {
                        // This slice raced a re-layout; park it for the
                        // next routing pass.
                        drop(writes);
                        parked.extend_from_slice(bucket);
                        #[cfg(test)]
                        RETIRED_RETRIES.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.rcu_apply_slice(repr, shard, ops, bucket, outcome);
                }
            });
            pending_ops = parked;
            if !pending_ops.is_empty() {
                retries += 1;
                if retries > RETIRED_RETRY_SPINS {
                    yield_now();
                } else {
                    spin_loop();
                }
            }
        }
    }

    /// Applies one shard's slice of a write batch (positions `bucket` into
    /// `ops`, batch order) under the shard's writer mutex, held by the
    /// caller.
    ///
    /// The slice's overlay slots are prefetched in **one** bulk
    /// [`Overlay::get_many`] pass (each overlay chunk is visited once for
    /// the whole slice, not once per op), staged writes live in a flat
    /// sorted key/slot pair of vectors, and every per-op scalar — previous
    /// value, tombstone and length deltas, structural effect, projected
    /// overlay length — is tracked exactly as sequential point-wise
    /// application would have published it. When the projected overlay
    /// crosses the capacity mid-slice, the staged writes are folded into a
    /// fresh base *at that op* (same fold boundary, same checkpoint seed
    /// as the point path, with `absorbed` covering every
    /// staged-but-unlogged write), and the rest of the slice continues on
    /// the folded state. Everything still staged at the end is logged as
    /// one group frame and published as one successor snapshot.
    fn rcu_apply_slice(
        &self,
        repr: &RcuRepr<I>,
        shard: &RcuShard<I>,
        ops: &[WriteOp],
        bucket: &[u32],
        outcome: &mut BatchOutcome,
    ) {
        /// One slice key's state: its prefetched overlay slot, or the
        /// value this slice has staged over it (only staged slots feed
        /// the final ingest).
        #[derive(Clone, Copy)]
        enum SlotState {
            Fetched(Option<Option<Value>>),
            Staged(Option<Value>),
        }
        let snap = shard.snap.load();
        let empty = Overlay::empty(repr.overlay);
        // Working state: `beneath` is the overlay below this batch's staged
        // writes (the snapshot's until a mid-slice fold empties it).
        let mut beneath: &Overlay = &snap.overlay;
        let mut base = Arc::clone(&snap.base);
        // Prefetch every slice key's overlay slot in one merged pass; the
        // per-op loop then probes this flat sorted pair of vectors instead
        // of descending the overlay once per op.
        let mut keys: Vec<Key> = bucket.iter().map(|&i| ops[i as usize].key()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut fetched: Vec<Option<Option<Value>>> = vec![None; keys.len()];
        beneath.get_many(&keys, &mut fetched);
        let mut slots: Vec<SlotState> = fetched.into_iter().map(SlotState::Fetched).collect();
        let staged_of = |keys: &[Key], slots: &[SlotState]| -> Vec<(Key, Option<Value>)> {
            keys.iter()
                .zip(slots)
                .filter_map(|(&k, s)| match s {
                    SlotState::Staged(v) => Some((k, *v)),
                    SlotState::Fetched(_) => None,
                })
                .collect()
        };
        let mut tail: Vec<WriteRecord> = Vec::new();
        let mut tombstones = snap.tombstones;
        let mut len = snap.len;
        let mut projected = snap.overlay.len();
        let mut structural = 0usize;
        let mut folded = false;
        for &i in bucket {
            let op = ops[i as usize];
            let key = op.key();
            let value = op.slot();
            let idx = keys
                .binary_search(&key)
                .expect("every slice key was prefetched");
            // The op's view of the key: this slice's staged write, else the
            // overlay slot, else the base — sequential semantics.
            let slot = match slots[idx] {
                SlotState::Staged(v) => Some(v),
                SlotState::Fetched(s) => s,
            };
            let previous = slot.unwrap_or_else(|| base.get(key));
            if value.is_none() && previous.is_none() {
                // Removing an absent key publishes nothing, exactly like
                // the point path's pre-probe.
                continue;
            }
            match op {
                WriteOp::Insert { .. } => {
                    outcome.fresh_inserts += usize::from(previous.is_none());
                }
                WriteOp::Remove { .. } => outcome.removed += 1,
            }
            structural += usize::from(previous.is_some() != value.is_some());
            tombstones =
                tombstones + usize::from(value.is_none()) - usize::from(matches!(slot, Some(None)));
            len = match (previous.is_some(), value.is_some()) {
                (false, true) => len + 1,
                (true, false) => len - 1,
                _ => len,
            };
            // A key with no slot yet (neither staged nor in the overlay)
            // grows the overlay by one — the same growth the point path's
            // displaced-slot check observes.
            projected += usize::from(slot.is_none());
            slots[idx] = SlotState::Staged(value);
            tail.push(WriteRecord { key, value });
            if projected > repr.overlay_capacity {
                // Fold exactly where point-wise application would have:
                // the staged writes merge onto the overlay (one pass) and
                // the result folds into a fresh base that this op — and
                // every staged predecessor — lands in. The checkpoint
                // absorbs all of them: none were individually logged.
                let staged = staged_of(&keys, &slots);
                let folded_base = ShardSnapshot {
                    base,
                    overlay: beneath.ingest(&staged, Vec::new()),
                    tombstones,
                    len,
                }
                .folded_base();
                debug_assert_eq!(folded_base.len(), len);
                if let Some(sink) = &self.sink {
                    sink.checkpoint(&ShardCheckpoint {
                        lower_bound: shard.lower_bound,
                        records: folded_base.range(0, Key::MAX),
                        stale: shard.stale.seed_snapshot(structural),
                        absorbed: tail.len() as u64,
                    });
                }
                base = Arc::new(folded_base);
                beneath = &empty;
                // Everything staged so far now lives in the base, and the
                // overlay beneath is empty: later ops of the slice see no
                // slot for any key until they stage one themselves.
                slots.fill(SlotState::Fetched(None));
                tail.clear();
                tombstones = 0;
                projected = 0;
                folded = true;
            }
        }
        if tail.is_empty() && !folded {
            // Every op was a remove of an absent key: nothing to publish,
            // log or count — as the point path.
            return;
        }
        if let Some(sink) = &self.sink {
            if !tail.is_empty() {
                // Write-ahead for the whole group: one frame covering
                // every unfolded write of the slice, durable before the
                // (single) publication below.
                sink.log_writes(shard.lower_bound, &tail);
            }
        }
        let staged = staged_of(&keys, &slots);
        let next = if staged.is_empty() {
            debug_assert_eq!(base.len(), len);
            ShardSnapshot::clean(base, repr.overlay)
        } else {
            ShardSnapshot {
                overlay: beneath.ingest(&staged, shard.take_spare()),
                base,
                tombstones,
                len,
            }
        };
        drop(snap);
        shard.publish_salvaging(Arc::new(next));
        shard.stale.record_structural(structural);
    }
}

impl<I: SnapshotIndex + RangeIndex + CsvIntegrable> ShardedIndex<I> {
    /// Applies CSV (Algorithm 2) to every shard concurrently, using the
    /// optimizer's plan → apply lifecycle. Each shard runs the sequential
    /// per-shard sweep — the shards themselves already saturate the thread
    /// pool, so nesting the optimizer's own parallelism inside would only
    /// oversubscribe. Returns the per-shard reports in shard (key) order.
    ///
    /// Locked path: per level, the read phase (key collection, smoothing,
    /// cost condition) runs under a *shared* lock, so concurrent `get`s
    /// proceed during the expensive smoothing work; the exclusive lock is
    /// only held while the planned rebuilds are applied. RCU path: the
    /// whole pass — plan *and* apply — runs against a private successor
    /// (overlay folded into a clone of the base) and is published with one
    /// pointer swap, so lookups never wait at all; the shard's point
    /// writers queue on its writer mutex for the duration.
    ///
    /// A full optimisation pass subsumes incremental maintenance, so each
    /// shard is marked clean and its staleness counters reset, exactly as
    /// [`ShardedIndex::maintain_shard`] would.
    pub fn optimize(&self, optimizer: &CsvOptimizer) -> Vec<CsvReport> {
        match &self.repr {
            Repr::Locked(r) => {
                let shards = r.shards.read();
                shards
                    .par_iter()
                    .map(|shard| {
                        let started = Instant::now();
                        let mut report = CsvReport::default();
                        let levels = optimizer.sweep_levels(&*shard.index.read());
                        if let Some((start_level, stop_level)) = levels {
                            for level in (stop_level..=start_level).rev() {
                                // Plan under the shared lock (dropped before
                                // apply).
                                let plan = optimizer.plan_level(&*shard.index.read(), level);
                                plan.apply_into(&mut *shard.index.write(), &mut report);
                            }
                        }
                        locked_finish_maintenance(shard);
                        report.preprocessing_time = started.elapsed();
                        report
                    })
                    .collect()
            }
            Repr::Rcu(r) => {
                // Exclude splits/merges for the whole pass so every shard
                // of this layout stays live: a handle retired mid-pass
                // would silently drop its report and leave the successor
                // shards un-optimised. Readers are unaffected.
                let _layout_guard = r.layout_writer.lock();
                let layout = r.layout.load();
                layout
                    .shards
                    .par_iter()
                    .map(|shard| {
                        let started = Instant::now();
                        let mut report = CsvReport::default();
                        let _writes = shard.writer.lock();
                        debug_assert!(!shard.retired.load(Ordering::SeqCst));
                        let mut next = shard.snap.load().folded_base();
                        if let Some((start_level, stop_level)) = optimizer.sweep_levels(&next) {
                            for level in (stop_level..=start_level).rev() {
                                let plan = optimizer.plan_level(&next, level);
                                plan.apply_into(&mut next, &mut report);
                            }
                        }
                        rcu_finish_maintenance(shard, next, r.overlay, self.sink.as_ref());
                        report.preprocessing_time = started.elapsed();
                        report
                    })
                    .collect()
            }
        }
    }

    /// Incrementally re-optimises one shard: per sweep level, the *dirty*
    /// sub-trees (the roots that absorbed writes since the shard was last
    /// marked clean) are re-planned and the accepted rebuilds applied. The
    /// shard is then marked clean and its staleness counters reset.
    ///
    /// Locked path: plan under the shard's shared lock, apply under its
    /// short exclusive lock; writes landing between the phases are safe
    /// (stale layouts are refused). RCU path: plan on the live snapshot,
    /// apply onto a clone, publish with one swap — the apply phase holds no
    /// lock readers can observe, and the shard's own writers (who queue on
    /// the writer mutex) cannot interleave, so no refusal races exist.
    ///
    /// Returns the shard's CSV report, or `None` when `shard` is out of
    /// bounds (a split/merge may have changed the layout since the caller
    /// chose it).
    pub fn maintain_shard(&self, shard: usize, optimizer: &CsvOptimizer) -> Option<CsvReport> {
        self.maintain_shard_budgeted(shard, optimizer, None, None)
            .map(|progress| progress.report)
    }

    /// [`ShardedIndex::maintain_shard`] with a latency budget: planning
    /// starts at `resume_from` (or the sweep's top level) and stops after
    /// the first level that finishes past `deadline`, returning where to
    /// resume. At least one level is processed per call, so a sequence of
    /// budgeted calls always terminates. The shard is only marked clean —
    /// and its staleness counters only reset — once the sweep completes,
    /// so an interrupted shard stays at the head of the staleness ranking.
    pub fn maintain_shard_budgeted(
        &self,
        shard: usize,
        optimizer: &CsvOptimizer,
        resume_from: Option<usize>,
        deadline: Option<Instant>,
    ) -> Option<MaintainProgress> {
        let started = Instant::now();
        match &self.repr {
            Repr::Locked(r) => {
                let shards = r.shards.read();
                let shard = shards.get(shard)?;
                let mut report = CsvReport::default();
                let mut resume_level = None;
                // Bind the sweep bounds first: an inline `if let` scrutinee
                // would keep the read guard alive across the loop body,
                // self-deadlocking against the apply phase's write lock.
                let levels = optimizer.sweep_levels(&*shard.index.read());
                if let Some((start_level, stop_level)) = levels {
                    let from = resume_from
                        .unwrap_or(start_level)
                        .clamp(stop_level, start_level);
                    for level in (stop_level..=from).rev() {
                        let plan = optimizer.plan_dirty_level(&*shard.index.read(), level);
                        plan.apply_into(&mut *shard.index.write(), &mut report);
                        if level > stop_level && deadline.is_some_and(|d| Instant::now() >= d) {
                            resume_level = Some(level - 1);
                            break;
                        }
                    }
                }
                if resume_level.is_none() {
                    locked_finish_maintenance(shard);
                }
                report.preprocessing_time = started.elapsed();
                Some(MaintainProgress {
                    report,
                    resume_level,
                })
            }
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                let shard = layout.shards.get(shard)?;
                let _writes = shard.writer.lock();
                if shard.retired.load(Ordering::SeqCst) {
                    return None;
                }
                let mut report = CsvReport::default();
                let mut resume_level = None;
                let mut next = shard.snap.load().folded_base();
                if let Some((start_level, stop_level)) = optimizer.sweep_levels(&next) {
                    let from = resume_from
                        .unwrap_or(start_level)
                        .clamp(stop_level, start_level);
                    for level in (stop_level..=from).rev() {
                        let plan = optimizer.plan_dirty_level(&next, level);
                        plan.apply_into(&mut next, &mut report);
                        if level > stop_level && deadline.is_some_and(|d| Instant::now() >= d) {
                            resume_level = Some(level - 1);
                            break;
                        }
                    }
                }
                if resume_level.is_none() {
                    rcu_finish_maintenance(shard, next, r.overlay, self.sink.as_ref());
                } else {
                    // Publish the partial progress (dirty marks intact, no
                    // counter reset) so the next tick resumes from it. No
                    // sink call: the rebuild is content-preserving, so the
                    // shard's previous checkpoint plus its (un-truncated)
                    // log still recover exactly this state.
                    shard
                        .snap
                        .publish(Arc::new(ShardSnapshot::clean(Arc::new(next), r.overlay)));
                }
                report.preprocessing_time = started.elapsed();
                Some(MaintainProgress {
                    report,
                    resume_level,
                })
            }
        }
    }
}

/// Locked-path epilogue: marks a shard clean and resets its staleness
/// bookkeeping. Only the flag sweep of `csv_mark_clean` runs under the
/// exclusive lock; the O(n) structure walk that records the level-drift
/// baseline happens under the shared lock afterwards, so lookups are never
/// blocked behind it. A write landing between the two sections merely makes
/// the baseline marginally stale, which the staleness heuristic tolerates
/// by design.
fn locked_finish_maintenance<I: LearnedIndex + CsvIntegrable>(shard: &LockedShard<I>) {
    {
        let mut guard = shard.index.write();
        guard.csv_mark_clean();
        shard.stale.reset_writes();
    }
    let mean = shard.index.read().stats().mean_key_level();
    shard.stale.mark_maintained(mean);
}

/// RCU-path epilogue: marks the successor clean, checkpoints it into the
/// sink (when one is attached — before publication, like every durable
/// transition), publishes it, and resets the staleness bookkeeping. The
/// structure walk runs on the private successor before publication — no
/// reader ever waits on it — and the shard's writer mutex (held by the
/// caller) keeps writes from interleaving with the counter reset.
fn rcu_finish_maintenance<I: LearnedIndex + RangeIndex + CsvIntegrable>(
    shard: &RcuShard<I>,
    mut next: I,
    repr: OverlayRepr,
    sink: Option<&Arc<dyn DurabilitySink>>,
) {
    next.csv_mark_clean();
    let mean = next.stats().mean_key_level();
    if let Some(sink) = sink {
        sink.checkpoint(&ShardCheckpoint {
            lower_bound: shard.lower_bound,
            records: next.range(0, Key::MAX),
            stale: StaleSeed {
                writes: 0,
                maintained: true,
                mean_level: mean,
            },
            absorbed: 0,
        });
    }
    shard
        .snap
        .publish(Arc::new(ShardSnapshot::clean(Arc::new(next), repr)));
    shard.stale.reset_writes();
    shard.stale.mark_maintained(mean);
}

/// Test-only tally of retired-handle retries in [`ShardedIndex::rcu_write`]
/// (other threads' retries included): lets stress tests assert the
/// re-route race actually occurred.
#[cfg(test)]
static RETIRED_RETRIES: AtomicUsize = AtomicUsize::new(0);

#[cfg(test)]
impl<I: LearnedIndex> ShardedIndex<I> {
    /// Test hook: per-shard published-overlay lengths on the RCU path, for
    /// the fold-boundary pin.
    fn overlay_lens(&self) -> Vec<usize> {
        match &self.repr {
            Repr::Locked(_) => panic!("overlay hook is for the RCU representation"),
            Repr::Rcu(r) => {
                let layout = r.layout.load();
                layout
                    .shards
                    .iter()
                    .map(|s| s.snap.read(|snap| snap.overlay.len()))
                    .collect()
            }
        }
    }

    /// Test hook: runs `f` while holding **every** writer-side lock of the
    /// RCU representation (the layout writer and each shard's writer
    /// mutex). If a reader-path operation acquired any of them, calling it
    /// from another thread while `f` runs would deadlock — which is exactly
    /// what the zero-lock structural test checks cannot happen.
    fn with_all_writer_locks_held<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.repr {
            Repr::Locked(_) => panic!("writer-lock hook is for the RCU representation"),
            Repr::Rcu(r) => {
                let _layout_guard = r.layout_writer.lock();
                let layout = r.layout.load();
                let _shard_guards: Vec<_> = layout.shards.iter().map(|s| s.writer.lock()).collect();
                f()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_btree::BPlusTree;
    use csv_common::key::identity_records;
    use csv_datasets::Dataset;
    use csv_lipp::LippIndex;
    use std::collections::BTreeMap;

    const BOTH_PATHS: [ReadPath; 2] = [ReadPath::Locked, ReadPath::Rcu];
    const BOTH_OVERLAYS: [OverlayRepr; 2] = [OverlayRepr::Vec, OverlayRepr::Persistent];

    fn config(num_shards: usize, read_path: ReadPath) -> ShardingConfig {
        ShardingConfig::with_shards(num_shards).with_read_path(read_path)
    }

    #[test]
    fn sharded_lookups_match_the_flat_index_on_both_paths() {
        let keys = Dataset::Osm.generate(40_000, 3);
        let records = identity_records(&keys);
        let flat = LippIndex::bulk_load(&records);
        for path in BOTH_PATHS {
            let sharded = ShardedIndex::<LippIndex>::bulk_load(
                &records,
                ShardingConfig::default().with_read_path(path),
            );
            assert_eq!(sharded.read_path(), path);
            assert_eq!(sharded.num_shards(), 16);
            assert_eq!(sharded.len(), flat.len());
            for &k in keys.iter().step_by(37) {
                assert_eq!(sharded.get(k), flat.get(k));
            }
            assert_eq!(sharded.get(keys[0].wrapping_sub(1)), None);
            assert_eq!(sharded.get(*keys.last().unwrap() + 1), None);
        }
    }

    /// The serving batch path: `multi_get` must return exactly what N
    /// individual `get`s would — in input order, hits and misses alike —
    /// on both read paths, both overlay representations, and with pending
    /// overlay writes (upserts and tombstones) in play.
    #[test]
    fn multi_get_matches_individual_gets_everywhere() {
        let keys = Dataset::Osm.generate(30_000, 11);
        let records = identity_records(&keys);
        // A deliberately unordered batch mixing hits, misses below, between
        // and above the loaded range, and duplicates.
        let mut batch: Vec<Key> = keys.iter().copied().step_by(17).collect();
        batch.extend((0..200u64).map(|i| *keys.last().unwrap() + 1 + i));
        batch.push(keys[0].wrapping_sub(1));
        batch.push(keys[0]);
        batch.push(keys[0]);
        batch.reverse();
        for path in BOTH_PATHS {
            for overlay in BOTH_OVERLAYS {
                let sharded = ShardedIndex::<BPlusTree>::bulk_load(
                    &records,
                    config(8, path)
                        .with_overlay(overlay)
                        .with_overlay_capacity(64),
                );
                // Dirty the overlays: overwrites, fresh inserts, removals.
                for &k in keys.iter().step_by(23) {
                    sharded.insert(k, k ^ 0xABCD);
                }
                for &k in keys.iter().step_by(41) {
                    sharded.remove(k);
                }
                let individually: Vec<Option<Value>> =
                    batch.iter().map(|&k| sharded.get(k)).collect();
                assert_eq!(
                    sharded.multi_get(&batch),
                    individually,
                    "{path:?}/{overlay:?}"
                );
                // The pinned view agrees with itself and with the index.
                if let Some(view) = sharded.read_view() {
                    let via_view: Vec<Option<Value>> = batch.iter().map(|&k| view.get(k)).collect();
                    assert_eq!(view.multi_get(&batch), via_view, "{overlay:?}");
                    assert_eq!(via_view, individually);
                }
                assert!(sharded.multi_get(&[]).is_empty());
            }
        }
        // Single-shard fast path.
        let single = ShardedIndex::<BPlusTree>::bulk_load(&records, config(1, ReadPath::Rcu));
        let expected: Vec<Option<Value>> = batch.iter().map(|&k| single.get(k)).collect();
        assert_eq!(single.multi_get(&batch), expected);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for path in BOTH_PATHS {
            let empty = ShardedIndex::<BPlusTree>::bulk_load(&[], config(4, path));
            assert!(empty.is_empty());
            assert_eq!(empty.get(7), None);
            assert_eq!(empty.num_shards(), 1);
            let tiny =
                ShardedIndex::<BPlusTree>::bulk_load(&identity_records(&[5, 9]), config(64, path));
            assert_eq!(tiny.len(), 2);
            assert_eq!(tiny.get(5), Some(5));
            assert_eq!(tiny.get(9), Some(9));
        }
    }

    #[test]
    fn mutations_and_ranges_match_an_oracle_on_both_paths() {
        let keys = Dataset::Facebook.generate(20_000, 9);
        let records = identity_records(&keys);
        for path in BOTH_PATHS {
            let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, config(8, path));
            let mut oracle: BTreeMap<Key, Value> = keys.iter().map(|&k| (k, k)).collect();

            // Inserts and removals route to the right shard.
            for (i, &k) in keys.iter().enumerate().step_by(3) {
                if i % 2 == 0 {
                    assert_eq!(sharded.remove(k), oracle.remove(&k));
                } else {
                    let v = k ^ 0xFFFF;
                    assert_eq!(sharded.insert(k, v), oracle.insert(k, v).is_none());
                }
            }
            assert_eq!(sharded.len(), oracle.len());
            // Cross-shard range scans.
            let lo = keys[100];
            let hi = keys[15_000];
            let got = sharded.range(lo, hi);
            let expected: Vec<KeyValue> = oracle
                .range(lo..=hi)
                .map(|(&k, &v)| KeyValue::new(k, v))
                .collect();
            assert_eq!(got, expected);
            assert!(sharded.range(10, 5).is_empty());
        }
    }

    /// The RCU overlay must fold into the base (clone+replay without
    /// tombstones, merge-join rebuild with them) without losing or
    /// resurrecting records, across multiple fold generations.
    #[test]
    fn rcu_overlay_folds_preserve_the_oracle() {
        for repr in BOTH_OVERLAYS {
            rcu_overlay_folds_preserve_the_oracle_for(repr);
        }
    }

    fn rcu_overlay_folds_preserve_the_oracle_for(repr: OverlayRepr) {
        let keys = Dataset::Genome.generate(5_000, 13);
        let records = identity_records(&keys);
        // A tiny overlay so every few writes trigger a fold.
        let config = ShardingConfig {
            num_shards: 4,
            read_path: ReadPath::Rcu,
            overlay: repr,
            overlay_capacity: Some(7),
        };
        let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, config);
        let mut oracle: BTreeMap<Key, Value> = keys.iter().map(|&k| (k, k)).collect();
        let top = *keys.last().unwrap();
        for i in 0..2_000u64 {
            match i % 4 {
                // Fresh inserts (upsert-only folds in this stretch).
                0 | 1 => {
                    let k = top + 1 + i;
                    assert_eq!(sharded.insert(k, i), oracle.insert(k, i).is_none());
                }
                // Overwrites.
                2 => {
                    let k = keys[(i as usize * 17) % keys.len()];
                    assert_eq!(sharded.insert(k, i), oracle.insert(k, i).is_none());
                }
                // Removals (tombstone folds).
                _ => {
                    let k = keys[(i as usize * 31) % keys.len()];
                    assert_eq!(sharded.remove(k), oracle.remove(&k));
                }
            }
        }
        assert_eq!(sharded.len(), oracle.len());
        for (&k, &v) in &oracle {
            assert_eq!(sharded.get(k), Some(v));
        }
        let expected: Vec<KeyValue> = oracle.iter().map(|(&k, &v)| KeyValue::new(k, v)).collect();
        assert_eq!(sharded.range(0, Key::MAX), expected);
    }

    /// Satellite pin: both read paths (and both overlay representations)
    /// must account staleness identically — a maintenance engine ranking
    /// shards by `writes_since_maintenance` must make the same decisions
    /// regardless of the concurrency scheme. The sequence exercises every
    /// counting case: fresh inserts, overwrites, removals, double
    /// removals, removals of absent keys, reinserts over tombstones, and
    /// fold crossings (tiny overlay capacity).
    #[test]
    fn staleness_counters_agree_across_paths_and_overlays() {
        let keys = Dataset::Genome.generate(2_000, 51);
        let records = identity_records(&keys);
        let top = *keys.last().unwrap();
        let configs = [
            config(4, ReadPath::Locked),
            config(4, ReadPath::Rcu)
                .with_overlay(OverlayRepr::Vec)
                .with_overlay_capacity(5),
            config(4, ReadPath::Rcu)
                .with_overlay(OverlayRepr::Persistent)
                .with_overlay_capacity(5),
        ];
        let mut outcomes: Vec<(Vec<(usize, bool)>, usize)> = Vec::new();
        for cfg in configs {
            let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, cfg);
            let mut oracle: BTreeMap<Key, Value> = keys.iter().map(|&k| (k, k)).collect();
            let mut expected = 0usize;
            let mut apply = |sharded: &ShardedIndex<BPlusTree>,
                             oracle: &mut BTreeMap<Key, Value>,
                             key: Key,
                             value: Option<Value>| {
                let was_present = oracle.contains_key(&key);
                match value {
                    Some(v) => {
                        assert_eq!(sharded.insert(key, v), oracle.insert(key, v).is_none());
                        expected += usize::from(!was_present);
                    }
                    None => {
                        assert_eq!(sharded.remove(key), oracle.remove(&key));
                        expected += usize::from(was_present);
                    }
                }
            };
            for &k in keys.iter().step_by(3) {
                apply(&sharded, &mut oracle, k, Some(k ^ 1)); // overwrite: no count
            }
            for &k in keys.iter().step_by(5) {
                apply(&sharded, &mut oracle, k, None); // removal: count
                apply(&sharded, &mut oracle, k, None); // double removal: no count
            }
            for &k in keys.iter().step_by(10) {
                apply(&sharded, &mut oracle, k, Some(k)); // reinsert: count
            }
            for i in 0..300u64 {
                apply(&sharded, &mut oracle, top + 1 + i, Some(i)); // fresh: count
            }
            for i in 0..50u64 {
                apply(&sharded, &mut oracle, top + 10_000 + i, None); // absent: no count
            }
            let counters = sharded.write_counters();
            let total: usize = counters.iter().map(|(w, _)| w).sum();
            // Every counter starts seeded with the bulk-loaded key count.
            assert_eq!(total, keys.len() + expected);
            outcomes.push((counters, expected));
        }
        let (reference, expected) = outcomes[0].clone();
        assert!(expected > 0, "the sequence must contain structural writes");
        for (counters, _) in &outcomes[1..] {
            assert_eq!(
                counters, &reference,
                "per-shard staleness counters diverged between paths"
            );
        }
    }

    /// Satellite pin: writers racing a slow split back off and re-route
    /// instead of losing writes (and instead of spinning unbounded — the
    /// bounded-backoff step yields past `RETIRED_RETRY_SPINS`). The inner
    /// index's `bulk_load` is artificially slow, so every split holds the
    /// target shard's writer mutex long enough for queued writers to pile
    /// up and observe the retirement.
    #[test]
    fn retired_writers_back_off_and_reroute() {
        use std::time::Duration;

        #[derive(Clone)]
        struct SlowBulk(BPlusTree);

        impl LearnedIndex for SlowBulk {
            fn name(&self) -> &'static str {
                "SlowBulkBTree"
            }
            fn bulk_load(records: &[KeyValue]) -> Self {
                // Slow enough for writers to queue behind a split's writer
                // mutex, fast enough to keep the test snappy.
                std::thread::sleep(Duration::from_millis(15));
                Self(BPlusTree::bulk_load(records))
            }
            fn get(&self, key: Key) -> Option<Value> {
                self.0.get(key)
            }
            fn get_counted(
                &self,
                key: Key,
                counters: &mut csv_common::CostCounters,
            ) -> Option<Value> {
                self.0.get_counted(key, counters)
            }
            fn insert(&mut self, key: Key, value: Value) -> bool {
                self.0.insert(key, value)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn stats(&self) -> IndexStats {
                self.0.stats()
            }
            fn level_of_key(&self, key: Key) -> Option<usize> {
                self.0.level_of_key(key)
            }
        }
        impl RangeIndex for SlowBulk {
            fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
                self.0.range(lo, hi)
            }
        }
        impl SnapshotIndex for SlowBulk {}

        let keys = Dataset::Osm.generate(6_000, 43);
        let records = identity_records(&keys);
        let sharded = ShardedIndex::<SlowBulk>::bulk_load(&records, config(2, ReadPath::Rcu));
        let retries_before = RETIRED_RETRIES.load(Ordering::Relaxed);
        let fresh_base = *keys.last().unwrap() + 1;
        const WRITERS: u64 = 3;
        let stop = AtomicBool::new(false);
        let written: Vec<AtomicUsize> = (0..WRITERS).map(|_| AtomicUsize::new(0)).collect();
        crossbeam::thread::scope(|scope| {
            for writer in 0..WRITERS {
                let sharded = &sharded;
                let stop = &stop;
                let written = &written[writer as usize];
                scope.spawn(move |_| {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let k = fresh_base + writer * 1_000_000 + i;
                        assert!(sharded.insert(k, k), "fresh key must be new");
                        i += 1;
                        written.store(i as usize, Ordering::Relaxed);
                    }
                });
            }
            // Re-layout churn targeting the shard the writers hammer (the
            // last one — every fresh key is above the loaded range): each
            // slow split holds that shard's writer mutex long enough for
            // writers to queue on it, then retires the handle they hold.
            for _ in 0..8 {
                let last = sharded.num_shards() - 1;
                if sharded.split_shard(last, 2) {
                    assert!(sharded.merge_shards(last, usize::MAX));
                }
            }
            stop.store(true, Ordering::Relaxed);
        })
        .expect("threads must not panic");
        // No write was lost to a retired handle.
        let mut total = 0usize;
        for writer in 0..WRITERS {
            let count = written[writer as usize].load(Ordering::Relaxed);
            assert!(count > 0, "writer {writer} never completed a write");
            total += count;
            for i in (0..count as u64).step_by(101) {
                let k = fresh_base + writer * 1_000_000 + i;
                assert_eq!(sharded.get(k), Some(k));
            }
        }
        assert!(sharded.len() >= keys.len() + total);
        assert!(
            RETIRED_RETRIES.load(Ordering::Relaxed) > retries_before,
            "the slow splits must force at least one retired-handle retry"
        );
    }

    /// Satellite pin: the exact fold boundary. A published snapshot's
    /// overlay holds at most `overlay_capacity` entries — the write that
    /// would make it `capacity + 1` folds into a fresh base instead — and
    /// overlay-slot overwrites don't advance the boundary.
    #[test]
    fn published_overlay_never_exceeds_capacity() {
        const CAPACITY: usize = 8;
        let keys: Vec<Key> = (0..1_000).map(|i| i * 10).collect();
        let records = identity_records(&keys);
        for repr in BOTH_OVERLAYS {
            let sharded = ShardedIndex::<BPlusTree>::bulk_load(
                &records,
                config(1, ReadPath::Rcu)
                    .with_overlay(repr)
                    .with_overlay_capacity(CAPACITY),
            );
            // Exactly `capacity` fresh writes buffer without folding.
            for i in 1..=CAPACITY as u64 {
                sharded.insert(20_000 + i, i);
                assert_eq!(sharded.overlay_lens(), vec![i as usize], "{repr:?}");
            }
            // Overwriting a buffered key at full capacity publishes a
            // same-size overlay — no fold.
            sharded.insert(20_000 + 1, 99);
            assert_eq!(sharded.overlay_lens(), vec![CAPACITY], "{repr:?}");
            assert_eq!(sharded.get(20_000 + 1), Some(99));
            // The write that would grow it to capacity + 1 folds, and the
            // triggering write lands in the fresh base.
            sharded.insert(30_000, 7);
            assert_eq!(sharded.overlay_lens(), vec![0], "{repr:?}");
            assert_eq!(sharded.get(30_000), Some(7));
            assert_eq!(sharded.len(), keys.len() + CAPACITY + 1);
            // A tombstone is an overlay entry like any other: capacity
            // removals buffer, one more folds.
            for i in 1..=CAPACITY as u64 {
                sharded.remove(keys[i as usize]);
                assert_eq!(sharded.overlay_lens(), vec![i as usize], "{repr:?}");
            }
            sharded.remove(keys[CAPACITY + 1]);
            assert_eq!(sharded.overlay_lens(), vec![0], "{repr:?}");
            // Net effect: capacity + 1 fresh inserts, capacity + 1 removals.
            assert_eq!(sharded.len(), keys.len());
        }
    }

    /// Satellite pin: a tombstone-heavy interleaving of inserts, removes,
    /// overwrites, range scans and full-records reads stays consistent
    /// with a `BTreeMap` oracle across repeated folds (tiny overlay
    /// capacity) and shard splits/merges — for both overlay
    /// representations on the RCU path, plus the locked baseline.
    #[test]
    fn tombstone_heavy_interleavings_match_the_oracle() {
        use csv_common::rng::SplitMix64;
        for path in BOTH_PATHS {
            for repr in BOTH_OVERLAYS {
                let keys = Dataset::Osm.generate(6_000, 41);
                let records = identity_records(&keys);
                let sharded = ShardedIndex::<BPlusTree>::bulk_load(
                    &records,
                    config(3, path).with_overlay(repr).with_overlay_capacity(5),
                );
                let mut oracle: BTreeMap<Key, Value> = keys.iter().map(|&k| (k, k)).collect();
                let mut rng = SplitMix64::new(97 ^ path as u64 ^ (repr as u64) << 1);
                let top = *keys.last().unwrap();
                for step in 0..4_000u64 {
                    let pick = rng.next_u64();
                    // Half the steps target fresh keys above the loaded
                    // range so removals keep finding live targets.
                    let key = if pick.is_multiple_of(2) {
                        keys[(pick / 2) as usize % keys.len()]
                    } else {
                        top + 1 + (pick / 2) % 2_048
                    };
                    match rng.next_u64() % 8 {
                        // Removal-heavy mix: tombstones dominate the
                        // overlay, so most folds take the merge-join
                        // rebuild path.
                        0..=3 => assert_eq!(sharded.remove(key), oracle.remove(&key)),
                        4 | 5 => {
                            assert_eq!(
                                sharded.insert(key, step),
                                oracle.insert(key, step).is_none()
                            );
                        }
                        6 => assert_eq!(sharded.get(key), oracle.get(&key).copied()),
                        _ => {
                            let hi = key + rng.next_u64() % 50_000;
                            let got = sharded.range(key, hi);
                            let expected: Vec<KeyValue> = oracle
                                .range(key..=hi)
                                .map(|(&k, &v)| KeyValue::new(k, v))
                                .collect();
                            assert_eq!(got, expected, "range diverged at step {step}");
                        }
                    }
                    if step % 503 == 0 {
                        let shard = (rng.next_u64() as usize) % sharded.num_shards().max(1);
                        if sharded.split_shard(shard, 2) && rng.next_u64().is_multiple_of(2) {
                            assert!(sharded.merge_shards(shard, usize::MAX));
                        }
                    }
                    if step % 997 == 0 {
                        let full = sharded.range(0, Key::MAX);
                        let expected: Vec<KeyValue> =
                            oracle.iter().map(|(&k, &v)| KeyValue::new(k, v)).collect();
                        assert_eq!(full, expected, "records diverged at step {step}");
                    }
                    assert_eq!(sharded.len(), oracle.len());
                }
                assert_eq!(sharded.len(), oracle.len());
                for (&k, &v) in &oracle {
                    assert_eq!(sharded.get(k), Some(v));
                }
                let full = sharded.range(0, Key::MAX);
                let expected: Vec<KeyValue> =
                    oracle.iter().map(|(&k, &v)| KeyValue::new(k, v)).collect();
                assert_eq!(full, expected, "{path:?}/{repr:?}");
            }
        }
    }

    #[test]
    fn stats_aggregate_across_shards_on_both_paths() {
        let keys = Dataset::Genome.generate(30_000, 5);
        let records = identity_records(&keys);
        for path in BOTH_PATHS {
            let sharded = ShardedIndex::<LippIndex>::bulk_load(&records, config(8, path));
            let stats = sharded.stats();
            assert_eq!(stats.num_keys, keys.len());
            assert_eq!(stats.level_histogram.total(), keys.len());
            assert!(stats.node_count >= 8);
            let per_shard = sharded.map_shards(|i| i.len());
            assert_eq!(per_shard.iter().sum::<usize>(), keys.len());
            assert_eq!(per_shard.len(), 8);
            assert_eq!(sharded.shard_lens(), per_shard);
        }
    }

    #[test]
    fn concurrent_readers_and_writers_agree_with_an_oracle_on_both_paths() {
        let keys = Dataset::Covid.generate(30_000, 11);
        let records = identity_records(&keys);
        for path in BOTH_PATHS {
            let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, config(8, path));

            // Writers insert disjoint fresh keys; readers hammer existing
            // keys.
            let fresh_base = *keys.last().unwrap() + 1;
            crossbeam::thread::scope(|scope| {
                for writer in 0..4u64 {
                    let sharded = &sharded;
                    scope.spawn(move |_| {
                        for i in 0..2_000u64 {
                            let k = fresh_base + writer * 1_000_000 + i;
                            assert!(sharded.insert(k, k));
                        }
                    });
                }
                for reader in 0..4usize {
                    let sharded = &sharded;
                    let keys = &keys;
                    scope.spawn(move |_| {
                        for &k in keys.iter().skip(reader).step_by(7) {
                            assert_eq!(sharded.get(k), Some(k));
                        }
                    });
                }
            })
            .expect("threads must not panic");

            assert_eq!(sharded.len(), keys.len() + 4 * 2_000);
            for writer in 0..4u64 {
                for i in (0..2_000u64).step_by(191) {
                    let k = fresh_base + writer * 1_000_000 + i;
                    assert_eq!(sharded.get(k), Some(k));
                }
            }
        }
    }

    #[test]
    fn with_shards_mut_applies_to_every_shard_on_both_paths() {
        use csv_common::sync::{AtomicUsize, Ordering};
        let keys = Dataset::Osm.generate(10_000, 21);
        for path in BOTH_PATHS {
            let sharded =
                ShardedIndex::<LippIndex>::bulk_load(&identity_records(&keys), config(4, path));
            let touched = AtomicUsize::new(0);
            sharded.with_shards_mut(|shard| {
                touched.fetch_add(1, Ordering::Relaxed);
                assert!(shard.len() > 0);
            });
            assert_eq!(touched.load(Ordering::Relaxed), 4);
            let mut touched_seq = 0usize;
            sharded.with_shards_mut_seq(|shard| {
                touched_seq += 1;
                assert!(shard.len() > 0);
            });
            assert_eq!(touched_seq, 4);
        }
    }

    /// RCU mutations performed through `with_shards_mut` must be visible to
    /// readers afterwards (i.e. the mutated clone really is published).
    #[test]
    fn rcu_with_shards_mut_publishes_the_mutation() {
        let keys = Dataset::Osm.generate(4_000, 23);
        let records = identity_records(&keys);
        let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, config(4, ReadPath::Rcu));
        let probe = *keys.last().unwrap() + 99;
        sharded.with_shards_mut(|shard| {
            shard.insert(probe, 4242);
        });
        // Every shard inserted the probe; the owning shard serves it.
        assert_eq!(sharded.get(probe), Some(4242));
    }

    /// The acceptance-criterion test: on the RCU path, `get` (and `range`,
    /// `len`, `stats`, `read_view`) performs **zero lock acquisitions**.
    /// One thread grabs every writer-side lock the representation owns —
    /// the layout writer mutex and all four shard writer mutexes — and sits
    /// on them; reader-path calls from another thread must all complete. If
    /// any reader-path operation acquired any of those locks it would
    /// deadlock here and trip the watchdog.
    #[test]
    fn rcu_reads_complete_while_every_writer_lock_is_held() {
        use csv_common::sync::{AtomicBool, Ordering};
        use std::time::Duration;

        let keys = Dataset::Osm.generate(20_000, 7);
        let records = identity_records(&keys);
        let sharded = ShardedIndex::<LippIndex>::bulk_load(&records, config(4, ReadPath::Rcu));

        let locks_held = AtomicBool::new(false);
        let reads_done = AtomicBool::new(false);
        let watchdog_fired = AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                sharded.with_all_writer_locks_held(|| {
                    locks_held.store(true, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_secs(30);
                    while !reads_done.load(Ordering::SeqCst) {
                        if Instant::now() > deadline {
                            watchdog_fired.store(true, Ordering::SeqCst);
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                });
            });
            while !locks_held.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            // Every reader-path operation, exercised while all writer-side
            // locks are held by the other thread.
            for &k in keys.iter().step_by(499) {
                assert_eq!(sharded.get(k), Some(k));
            }
            assert_eq!(sharded.len(), keys.len());
            assert_eq!(sharded.stats().num_keys, keys.len());
            assert_eq!(
                sharded.range(keys[10], keys[500]).len(),
                491,
                "range scan must proceed lock-free"
            );
            let view = sharded.read_view().expect("RCU path has snapshots");
            for &k in keys.iter().step_by(997) {
                assert_eq!(view.get(k), Some(k));
            }
            reads_done.store(true, Ordering::SeqCst);
        })
        .expect("threads must not panic");
        assert!(
            !watchdog_fired.load(Ordering::SeqCst),
            "reader-path calls did not complete while writer locks were held"
        );
    }

    /// Snapshot isolation under re-layout: readers racing a split/merge
    /// observe either the pre- or the post-publication layout — every key
    /// answers correctly at every moment — and writers that raced the
    /// retirement re-route instead of losing their write.
    #[test]
    fn rcu_reads_and_writes_survive_concurrent_splits_and_merges() {
        use csv_common::sync::{AtomicBool, Ordering};
        let keys = Dataset::Osm.generate(30_000, 19);
        let records = identity_records(&keys);
        let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, config(4, ReadPath::Rcu));
        let stop = AtomicBool::new(false);
        let fresh_base = *keys.last().unwrap() + 1;
        crossbeam::thread::scope(|scope| {
            // Re-layout churn: split a shard, merge it back, repeatedly.
            scope.spawn(|_| {
                for round in 0..30 {
                    let shard = round % sharded.num_shards().max(1);
                    if sharded.split_shard(shard, 2) {
                        assert!(sharded.merge_shards(shard, usize::MAX));
                    }
                }
                stop.store(true, Ordering::SeqCst);
            });
            // A writer inserting fresh keys spread over the key space.
            scope.spawn(|_| {
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let k = fresh_base + i;
                    assert!(sharded.insert(k, k), "fresh key must be new");
                    i += 1;
                }
            });
            // Readers: every original key must answer at every moment.
            for reader in 0..2usize {
                let sharded = &sharded;
                let keys = &keys;
                let stop = &stop;
                scope.spawn(move |_| {
                    while !stop.load(Ordering::SeqCst) {
                        for &k in keys.iter().skip(reader * 11).step_by(701) {
                            assert_eq!(sharded.get(k), Some(k));
                        }
                    }
                });
            }
        })
        .expect("threads must not panic");
        // Quiesced: the full contents are intact.
        for &k in keys.iter().step_by(97) {
            assert_eq!(sharded.get(k), Some(k));
        }
        let inserted = sharded.len() - keys.len();
        for i in 0..inserted as u64 {
            assert_eq!(sharded.get(fresh_base + i), Some(fresh_base + i));
        }
    }

    /// Split-then-merge must round-trip: the merged shard holds exactly the
    /// records of the original, lookups and ranges are unchanged, and the
    /// rebuilt structure equals a fresh bulk load of the same records.
    #[test]
    fn split_then_merge_round_trips_on_both_paths() {
        let keys = Dataset::Genome.generate(12_000, 29);
        let records = identity_records(&keys);
        for path in BOTH_PATHS {
            let sharded = ShardedIndex::<LippIndex>::bulk_load(&records, config(3, path));
            let before_range = sharded.range(0, Key::MAX);
            let shards_before = sharded.num_shards();

            assert!(sharded.split_shard(1, 2), "split must succeed");
            assert_eq!(sharded.num_shards(), shards_before + 1);
            assert_eq!(sharded.range(0, Key::MAX), before_range);

            assert!(sharded.merge_shards(1, usize::MAX), "merge must succeed");
            assert_eq!(sharded.num_shards(), shards_before);
            assert_eq!(sharded.range(0, Key::MAX), before_range);
            for &k in keys.iter().step_by(53) {
                assert_eq!(sharded.get(k), Some(k));
            }
            // A merge refuses to exceed its size bound, and refuses at the
            // vector's end.
            assert!(!sharded.merge_shards(0, 1));
            assert!(!sharded.merge_shards(sharded.num_shards() - 1, usize::MAX));
        }
    }

    /// Pins the short-lock contract: while a shard is in its *plan* phase
    /// (key collection / smoothing), concurrent `get`s on the same shard
    /// must proceed — on the locked path because planning holds only the
    /// shared lock, on the RCU path because planning holds no
    /// reader-visible lock at all.
    ///
    /// A gated LIPP wrapper blocks inside the first `csv_collect_keys_into`
    /// call (i.e. mid-plan) until the main thread has completed a lookup on
    /// the same — only — shard. If the plan phase excluded readers the
    /// lookup could not finish, the gate would hit its escape timeout, and
    /// the assertion on the timeout flag fails.
    #[test]
    fn gets_proceed_during_the_plan_phase() {
        use csv_common::metrics::CostCounters;
        use csv_common::sync::{AtomicBool, Ordering};
        use csv_common::traits::IndexStats;
        use csv_core::cost::SubtreeCostStats;
        use csv_core::csv::{RebuildRefusal, SubtreeRef};
        use csv_core::layout::SmoothedLayout;
        use csv_core::CsvConfig;
        use std::time::{Duration, Instant};

        static GATE_ARMED: AtomicBool = AtomicBool::new(false);
        static COLLECT_STARTED: AtomicBool = AtomicBool::new(false);
        static READER_DONE: AtomicBool = AtomicBool::new(false);
        static GATE_TIMED_OUT: AtomicBool = AtomicBool::new(false);

        #[derive(Clone)]
        struct GatedLipp(LippIndex);

        impl LearnedIndex for GatedLipp {
            fn name(&self) -> &'static str {
                "GatedLIPP"
            }
            fn bulk_load(records: &[KeyValue]) -> Self {
                Self(LippIndex::bulk_load(records))
            }
            fn get(&self, key: Key) -> Option<Value> {
                self.0.get(key)
            }
            fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value> {
                self.0.get_counted(key, counters)
            }
            fn insert(&mut self, key: Key, value: Value) -> bool {
                self.0.insert(key, value)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn stats(&self) -> IndexStats {
                self.0.stats()
            }
            fn level_of_key(&self, key: Key) -> Option<usize> {
                self.0.level_of_key(key)
            }
        }

        impl RangeIndex for GatedLipp {
            fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
                self.0.range(lo, hi)
            }
        }

        impl SnapshotIndex for GatedLipp {}

        impl CsvIntegrable for GatedLipp {
            fn csv_max_level(&self) -> usize {
                self.0.csv_max_level()
            }
            fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
                self.0.csv_subtrees_at_level(level)
            }
            fn csv_collect_keys_into(&self, subtree: &SubtreeRef, buf: &mut Vec<Key>) {
                self.0.csv_collect_keys_into(subtree, buf);
                if GATE_ARMED.swap(false, Ordering::SeqCst) {
                    COLLECT_STARTED.store(true, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while !READER_DONE.load(Ordering::SeqCst) {
                        if Instant::now() > deadline {
                            GATE_TIMED_OUT.store(true, Ordering::SeqCst);
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats {
                self.0.csv_subtree_cost(subtree)
            }
            fn csv_rebuild_subtree(
                &mut self,
                subtree: &SubtreeRef,
                layout: &SmoothedLayout,
            ) -> Result<(), RebuildRefusal> {
                self.0.csv_rebuild_subtree(subtree, layout)
            }
        }

        let keys = Dataset::Osm.generate(20_000, 7);
        let records = identity_records(&keys);
        for path in BOTH_PATHS {
            GATE_ARMED.store(false, Ordering::SeqCst);
            COLLECT_STARTED.store(false, Ordering::SeqCst);
            READER_DONE.store(false, Ordering::SeqCst);
            GATE_TIMED_OUT.store(false, Ordering::SeqCst);

            // One shard: excluding readers during planning would block
            // *every* lookup, so a successful mid-plan lookup proves the
            // plan phase is reader-transparent.
            let sharded = ShardedIndex::<GatedLipp>::bulk_load(&records, config(1, path));
            let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

            GATE_ARMED.store(true, Ordering::SeqCst);
            crossbeam::thread::scope(|scope| {
                let handle = scope.spawn(|_| sharded.optimize(&optimizer));
                let deadline = Instant::now() + Duration::from_secs(10);
                while !COLLECT_STARTED.load(Ordering::SeqCst) {
                    assert!(
                        Instant::now() < deadline,
                        "optimizer never reached key collection"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                // The optimizer is parked inside its plan phase; lookups on
                // the only shard must still be served.
                for &k in keys.iter().step_by(4_999) {
                    assert_eq!(sharded.get(k), Some(k), "get blocked during the plan phase");
                }
                READER_DONE.store(true, Ordering::SeqCst);
                let reports = handle.join().expect("optimizer thread must not panic");
                assert_eq!(reports.len(), 1);
                assert!(reports[0].subtrees_considered() > 0);
            })
            .expect("threads must not panic");

            assert!(
                !GATE_TIMED_OUT.load(Ordering::SeqCst),
                "plan-phase gate timed out on {path:?}: lookups were blocked while planning"
            );
            for &k in keys.iter().step_by(997) {
                assert_eq!(sharded.get(k), Some(k));
            }
        }
    }

    #[test]
    fn parallel_optimize_matches_sequential_per_shard_optimization() {
        use csv_core::CsvConfig;
        let keys = Dataset::Genome.generate(60_000, 13);
        let records = identity_records(&keys);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

        for path in BOTH_PATHS {
            let parallel = ShardedIndex::<LippIndex>::bulk_load(&records, config(8, path));
            let reports = parallel.optimize(&optimizer);
            assert_eq!(reports.len(), 8);

            let sequential = ShardedIndex::<LippIndex>::bulk_load(&records, config(8, path));
            let mut seq_reports = Vec::new();
            sequential.with_shards_mut_seq(|shard| {
                seq_reports.push(optimizer.optimize(shard));
            });

            for (par, seq) in reports.iter().zip(&seq_reports) {
                assert_eq!(par.outcomes, seq.outcomes);
                assert_eq!(par.subtrees_rebuilt, seq.subtrees_rebuilt);
            }
            assert_eq!(parallel.stats(), sequential.stats());
            for &k in keys.iter().step_by(17) {
                assert_eq!(parallel.get(k), Some(k));
                assert_eq!(parallel.get(k), sequential.get(k));
            }
        }
    }

    /// Locked and RCU paths must agree with each other end to end: same
    /// lookups, same optimisation outcomes, same structure statistics.
    #[test]
    fn locked_and_rcu_paths_agree() {
        use csv_core::CsvConfig;
        let keys = Dataset::Osm.generate(30_000, 31);
        let records = identity_records(&keys);
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

        let locked = ShardedIndex::<LippIndex>::bulk_load(&records, config(8, ReadPath::Locked));
        let rcu = ShardedIndex::<LippIndex>::bulk_load(&records, config(8, ReadPath::Rcu));
        let locked_reports = locked.optimize(&optimizer);
        let rcu_reports = rcu.optimize(&optimizer);
        for (l, r) in locked_reports.iter().zip(&rcu_reports) {
            assert_eq!(l.outcomes, r.outcomes);
        }
        assert_eq!(locked.stats(), rcu.stats());
        for &k in keys.iter().step_by(23) {
            assert_eq!(locked.get(k), rcu.get(k));
        }
    }

    #[test]
    fn read_view_pins_a_consistent_snapshot() {
        let keys = Dataset::Genome.generate(8_000, 37);
        let records = identity_records(&keys);
        let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, config(4, ReadPath::Rcu));
        let view = sharded.read_view().expect("RCU path has snapshots");
        assert_eq!(view.len(), keys.len());
        assert!(!view.is_empty());
        // Writes after the view was taken are invisible to it but visible
        // to fresh lookups — the documented staleness contract.
        let probe = *keys.last().unwrap() + 1;
        sharded.insert(probe, 7);
        assert_eq!(view.get(probe), None);
        assert_eq!(sharded.get(probe), Some(7));
        for &k in keys.iter().step_by(211) {
            assert_eq!(view.get(k), Some(k));
        }
        // The locked path has no snapshots to pin.
        let locked = ShardedIndex::<BPlusTree>::bulk_load(&records, config(4, ReadPath::Locked));
        assert!(locked.read_view().is_none());
    }

    /// Tentpole pin: `write_batch` is observationally identical to the same
    /// ops applied point-wise — per-op outcome counts, gets, ranges,
    /// lengths, staleness counters, and (on the RCU path) the published
    /// overlay lengths, i.e. the exact fold boundaries — across both read
    /// paths and both overlay representations. Batch sizes straddle the
    /// fold boundary and exceed the whole overlay capacity (multiple folds
    /// inside one slice), and batches contain intra-batch duplicates,
    /// overwrites, tombstones and removes of absent keys.
    #[test]
    fn write_batch_matches_pointwise_application_everywhere() {
        use csv_common::rng::SplitMix64;
        let keys = Dataset::Genome.generate(3_000, 77);
        let records = identity_records(&keys);
        let top = *keys.last().unwrap();
        let configs = [
            config(4, ReadPath::Locked),
            config(4, ReadPath::Rcu)
                .with_overlay(OverlayRepr::Vec)
                .with_overlay_capacity(7),
            config(4, ReadPath::Rcu)
                .with_overlay(OverlayRepr::Persistent)
                .with_overlay_capacity(7),
        ];
        for cfg in configs {
            let batched = ShardedIndex::<BPlusTree>::bulk_load(&records, cfg);
            let pointwise = ShardedIndex::<BPlusTree>::bulk_load(&records, cfg);
            let mut oracle: BTreeMap<Key, Value> = keys.iter().map(|&k| (k, k)).collect();
            let mut rng = SplitMix64::new(0xBA7C4 ^ cfg.read_path as u64);
            // 1 and 2 exercise the degenerate sizes, 8 straddles the
            // capacity-7 fold boundary, 64 folds several times per shard
            // slice.
            for (round, &size) in [1usize, 2, 7, 8, 16, 64]
                .iter()
                .cycle()
                .take(120)
                .enumerate()
            {
                let ops: Vec<WriteOp> = (0..size)
                    .map(|_| {
                        let pick = rng.next_u64();
                        // A narrow fresh-key band keeps duplicates and
                        // remove-then-reinsert sequences common, inside a
                        // single batch included.
                        let key = if pick.is_multiple_of(2) {
                            keys[(pick / 2) as usize % keys.len()]
                        } else {
                            top + 1 + (pick / 2) % 256
                        };
                        if rng.next_u64().is_multiple_of(3) {
                            WriteOp::Remove { key }
                        } else {
                            WriteOp::Insert {
                                key,
                                value: round as Value,
                            }
                        }
                    })
                    .collect();
                let outcome = batched.write_batch(&ops);
                let mut expected = BatchOutcome::default();
                for &op in &ops {
                    match op {
                        WriteOp::Insert { key, value } => {
                            let fresh = pointwise.insert(key, value);
                            assert_eq!(fresh, oracle.insert(key, value).is_none());
                            expected.fresh_inserts += usize::from(fresh);
                        }
                        WriteOp::Remove { key } => {
                            let removed = pointwise.remove(key);
                            assert_eq!(removed, oracle.remove(&key));
                            expected.removed += usize::from(removed.is_some());
                        }
                    }
                }
                assert_eq!(outcome, expected, "outcome diverged in round {round}");
                assert_eq!(batched.len(), oracle.len(), "len diverged in round {round}");
                if cfg.read_path == ReadPath::Rcu {
                    assert_eq!(
                        batched.overlay_lens(),
                        pointwise.overlay_lens(),
                        "fold boundaries diverged in round {round}"
                    );
                }
            }
            for (&k, &v) in &oracle {
                assert_eq!(batched.get(k), Some(v));
            }
            for probe in 0..64u64 {
                let k = top + 1 + probe * 5;
                assert_eq!(batched.get(k), oracle.get(&k).copied());
            }
            let expected: Vec<KeyValue> =
                oracle.iter().map(|(&k, &v)| KeyValue::new(k, v)).collect();
            assert_eq!(batched.range(0, Key::MAX), expected);
            assert_eq!(
                batched.write_counters(),
                pointwise.write_counters(),
                "staleness counters diverged for {cfg:?}"
            );
        }
    }

    /// The `insert_batch`/`remove_batch` conveniences report the same
    /// counts their point-wise twins would, and an empty batch is a no-op.
    #[test]
    fn insert_and_remove_batches_count_like_their_pointwise_twins() {
        let keys: Vec<Key> = (0..500).map(|i| i * 4).collect();
        let records = identity_records(&keys);
        for path in BOTH_PATHS {
            let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, config(3, path));
            assert_eq!(sharded.write_batch(&[]), BatchOutcome::default());
            assert_eq!(sharded.insert_batch(&[]), 0);
            assert_eq!(sharded.remove_batch(&[]), 0);
            // Loaded keys are the multiples of 4; the batch walks the even
            // numbers, so half are overwrites and only the 10 fresh ones
            // count.
            let batch: Vec<KeyValue> = (0..20).map(|i| KeyValue::new(i * 2 + 990, i)).collect();
            assert_eq!(sharded.insert_batch(&batch), 10);
            for record in &batch {
                assert_eq!(sharded.get(record.key), Some(record.value));
            }
            // 5 present keys + 5 absent ones: only the hits count.
            let targets: Vec<Key> = (0..5)
                .map(|i| i * 2 + 990)
                .chain((0..5).map(|i| 100_000 + i))
                .collect();
            assert_eq!(sharded.remove_batch(&targets), 5);
            assert_eq!(sharded.remove_batch(&targets), 0, "already removed");
        }
    }

    /// Group commits racing shard splits/merges must back off and re-route
    /// like point writes do: no write may land on a retired shard handle
    /// and every acknowledged batch must be fully readable afterwards.
    #[test]
    fn write_batches_survive_concurrent_splits_and_merges() {
        use std::time::Duration;

        #[derive(Clone)]
        struct SlowBulk(BPlusTree);

        impl LearnedIndex for SlowBulk {
            fn name(&self) -> &'static str {
                "SlowBulkBTree"
            }
            fn bulk_load(records: &[KeyValue]) -> Self {
                std::thread::sleep(Duration::from_millis(15));
                Self(BPlusTree::bulk_load(records))
            }
            fn get(&self, key: Key) -> Option<Value> {
                self.0.get(key)
            }
            fn get_counted(
                &self,
                key: Key,
                counters: &mut csv_common::CostCounters,
            ) -> Option<Value> {
                self.0.get_counted(key, counters)
            }
            fn insert(&mut self, key: Key, value: Value) -> bool {
                self.0.insert(key, value)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn stats(&self) -> IndexStats {
                self.0.stats()
            }
            fn level_of_key(&self, key: Key) -> Option<usize> {
                self.0.level_of_key(key)
            }
        }
        impl RangeIndex for SlowBulk {
            fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
                self.0.range(lo, hi)
            }
        }
        impl SnapshotIndex for SlowBulk {}
        impl RemovableIndex for SlowBulk {
            fn remove(&mut self, key: Key) -> Option<Value> {
                self.0.remove(key)
            }
        }

        let keys = Dataset::Osm.generate(6_000, 47);
        let records = identity_records(&keys);
        let sharded = ShardedIndex::<SlowBulk>::bulk_load(&records, config(2, ReadPath::Rcu));
        let retries_before = RETIRED_RETRIES.load(Ordering::Relaxed);
        let fresh_base = *keys.last().unwrap() + 1;
        const WRITERS: u64 = 3;
        const BATCH: u64 = 16;
        let stop = AtomicBool::new(false);
        let written: Vec<AtomicUsize> = (0..WRITERS).map(|_| AtomicUsize::new(0)).collect();
        crossbeam::thread::scope(|scope| {
            for writer in 0..WRITERS {
                let sharded = &sharded;
                let stop = &stop;
                let written = &written[writer as usize];
                scope.spawn(move |_| {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let ops: Vec<WriteOp> = (0..BATCH)
                            .map(|j| {
                                let k = fresh_base + writer * 1_000_000 + i + j;
                                WriteOp::Insert { key: k, value: k }
                            })
                            .collect();
                        let outcome = sharded.write_batch(&ops);
                        assert_eq!(
                            outcome.fresh_inserts, BATCH as usize,
                            "every batched key is fresh"
                        );
                        i += BATCH;
                        written.store(i as usize, Ordering::Relaxed);
                    }
                });
            }
            // Slow re-layout churn on the shard every batch routes to (all
            // fresh keys are above the loaded range): each split retires
            // the handle mid-storm, forcing the batch path's re-route.
            for _ in 0..8 {
                let last = sharded.num_shards() - 1;
                if sharded.split_shard(last, 2) {
                    assert!(sharded.merge_shards(last, usize::MAX));
                }
            }
            stop.store(true, Ordering::Relaxed);
        })
        .expect("threads must not panic");
        let mut total = 0usize;
        for writer in 0..WRITERS {
            let count = written[writer as usize].load(Ordering::Relaxed);
            assert!(count > 0, "writer {writer} never completed a batch");
            total += count;
            for i in (0..count as u64).step_by(97) {
                let k = fresh_base + writer * 1_000_000 + i;
                assert_eq!(sharded.get(k), Some(k), "lost a batched write");
            }
        }
        assert!(sharded.len() >= keys.len() + total);
        assert!(
            RETIRED_RETRIES.load(Ordering::Relaxed) > retries_before,
            "the slow splits must force at least one retired-handle retry"
        );
    }
}
