//! The sharded concurrent index wrapper.

use csv_common::traits::{IndexStats, LearnedIndex, RangeIndex, RemovableIndex};
use csv_common::{Key, KeyValue, Value};
use csv_core::{CsvIntegrable, CsvOptimizer, CsvReport};
use parking_lot::RwLock;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// How the key space is partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingConfig {
    /// Number of shards. Each shard owns a contiguous key range and is
    /// protected by its own reader–writer lock.
    pub num_shards: usize,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        Self { num_shards: 16 }
    }
}

/// A contiguous key-range shard.
struct Shard<I> {
    /// Smallest key routed to this shard (the first shard owns everything
    /// below its boundary too).
    lower_bound: Key,
    index: RwLock<I>,
    /// Structural writes (new keys, removals) routed to this shard since its
    /// last maintenance pass. Seeded with the bulk-loaded key count: a fresh
    /// shard has never been maintained, so its entire content is "unapplied
    /// writes" as far as the maintenance engine is concerned.
    writes_since_maintenance: AtomicUsize,
    /// `f64::to_bits` of the shard's mean key level recorded by its last
    /// maintenance pass (meaningless until `maintained` is set).
    maintained_mean_level: AtomicU64,
    /// `false` until the first maintenance pass completes.
    maintained: AtomicBool,
}

impl<I: LearnedIndex> Shard<I> {
    fn new(lower_bound: Key, index: I) -> Self {
        let seed_writes = index.len();
        Self {
            lower_bound,
            index: RwLock::new(index),
            writes_since_maintenance: AtomicUsize::new(seed_writes),
            maintained_mean_level: AtomicU64::new(0),
            maintained: AtomicBool::new(false),
        }
    }
}

/// A staleness snapshot of one shard, consumed by the maintenance engine to
/// pick its next target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStaleness {
    /// Shard position (valid until the next split changes the layout).
    pub shard: usize,
    /// Keys currently stored in the shard.
    pub num_keys: usize,
    /// Structural writes (inserts of new keys, removals) absorbed since the
    /// last maintenance pass; a never-maintained shard reports its full key
    /// count.
    pub writes_since_maintenance: usize,
    /// Mean key level now minus mean key level at the last maintenance pass
    /// (0 for never-maintained shards — their write counter already says
    /// everything). Positive drift means lookups got structurally slower.
    pub level_drift: f64,
    /// Whether the shard has ever been maintained.
    pub maintained: bool,
}

impl ShardStaleness {
    /// The scalar the engine ranks shards by: structural writes plus the
    /// key-weighted level drift (`drift_weight` converts "extra levels per
    /// lookup" into write-equivalents).
    pub fn score(&self, drift_weight: f64) -> f64 {
        self.writes_since_maintenance as f64
            + drift_weight * self.level_drift.max(0.0) * self.num_keys as f64
    }
}

/// A concurrent index assembled from per-key-range shards of a
/// single-threaded index type.
///
/// Shard boundaries are chosen from the bulk-load records so every shard
/// starts with the same number of keys; later inserts are routed by key, so
/// heavy skew can grow one shard faster than the others (the same behaviour
/// a range-partitioned distributed index exhibits). Two mechanisms keep that
/// in check over a long run:
///
/// * every shard counts its structural writes and exposes a staleness
///   snapshot ([`ShardedIndex::staleness`]) that
///   [`crate::MaintenanceEngine`] uses to re-optimise the stalest shard
///   incrementally ([`ShardedIndex::maintain_shard`]), and
/// * a shard that outgrows its peers can be split in two
///   ([`ShardedIndex::split_shard`]), which is why the shard vector lives
///   behind an outer reader–writer lock: every operation takes the cheap
///   shared lock, and only a split takes the exclusive one.
pub struct ShardedIndex<I> {
    shards: RwLock<Vec<Shard<I>>>,
}

/// Index of the shard owning `key`: shards are sorted by lower bound; the
/// owner is the last shard whose lower bound is <= key.
fn shard_of<I>(shards: &[Shard<I>], key: Key) -> usize {
    shards
        .partition_point(|s| s.lower_bound <= key)
        .saturating_sub(1)
}

impl<I: LearnedIndex> ShardedIndex<I> {
    /// Builds a sharded index over sorted, de-duplicated records.
    pub fn bulk_load(records: &[KeyValue], config: ShardingConfig) -> Self {
        let num_shards = config.num_shards.max(1);
        let per_shard = records.len().div_ceil(num_shards).max(1);
        let mut shards = Vec::with_capacity(num_shards);
        if records.is_empty() {
            shards.push(Shard::new(0, I::bulk_load(&[])));
            return Self {
                shards: RwLock::new(shards),
            };
        }
        for chunk in records.chunks(per_shard) {
            shards.push(Shard::new(chunk[0].key, I::bulk_load(chunk)));
        }
        // The first shard also owns every key below its smallest loaded key.
        shards[0].lower_bound = 0;
        Self {
            shards: RwLock::new(shards),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.read().len()
    }

    /// Point lookup (shared lock on one shard).
    pub fn get(&self, key: Key) -> Option<Value> {
        let shards = self.shards.read();
        let found = shards[shard_of(&shards, key)].index.read().get(key);
        found
    }

    /// Inserts or overwrites a record (exclusive lock on one shard). Returns
    /// `true` when the key was new.
    pub fn insert(&self, key: Key, value: Value) -> bool {
        let shards = self.shards.read();
        let shard = &shards[shard_of(&shards, key)];
        let new = shard.index.write().insert(key, value);
        if new {
            // Overwrites change no structure, so only new keys count toward
            // the staleness score.
            shard
                .writes_since_maintenance
                .fetch_add(1, Ordering::Relaxed);
        }
        new
    }

    /// Total number of stored keys (takes shared locks shard by shard, so the
    /// result is a consistent-per-shard snapshot, not a global atomic one).
    pub fn len(&self) -> usize {
        self.shards
            .read()
            .iter()
            .map(|s| s.index.read().len())
            .sum()
    }

    /// `true` when no shard stores any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated structural statistics across shards.
    pub fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for shard in self.shards.read().iter() {
            let s = shard.index.read().stats();
            for (level, count) in s.level_histogram.iter() {
                total.level_histogram.record(level, count);
            }
            total.node_count += s.node_count;
            total.deep_node_count += s.deep_node_count;
            total.height = total.height.max(s.height);
            total.size_bytes += s.size_bytes;
            total.num_keys += s.num_keys;
        }
        total
    }

    /// Cheap per-shard `(writes_since_maintenance, maintained)` snapshot —
    /// two atomic loads per shard, no structure walk. Level drift only
    /// accumulates through writes, so a maintained shard with zero pending
    /// writes is provably not stale; the maintenance engine uses this as a
    /// quiescence pre-check before paying for [`ShardedIndex::staleness`].
    pub fn write_counters(&self) -> Vec<(usize, bool)> {
        self.shards
            .read()
            .iter()
            .map(|s| {
                (
                    s.writes_since_maintenance.load(Ordering::Relaxed),
                    s.maintained.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Per-shard staleness snapshot (writes since the last maintenance pass
    /// plus level drift from the structural statistics), in shard order.
    /// Computing the drift walks each shard's structure under its shared
    /// lock, so this is a maintenance-cadence call, not a hot-path one.
    pub fn staleness(&self) -> Vec<ShardStaleness> {
        self.shards
            .read()
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let stats = shard.index.read().stats();
                let maintained = shard.maintained.load(Ordering::Relaxed);
                let level_drift = if maintained {
                    let baseline =
                        f64::from_bits(shard.maintained_mean_level.load(Ordering::Relaxed));
                    stats.mean_key_level() - baseline
                } else {
                    0.0
                };
                ShardStaleness {
                    shard: i,
                    num_keys: stats.num_keys,
                    writes_since_maintenance: shard
                        .writes_since_maintenance
                        .load(Ordering::Relaxed),
                    level_drift,
                    maintained,
                }
            })
            .collect()
    }

    /// Runs `f` on every shard's inner index with an exclusive lock, fanning
    /// the shards out across the rayon thread pool — used to apply CSV
    /// optimisation (or SALI workload flattening) to all shards at once.
    /// Shards are disjoint by construction, so per-shard mutations cannot
    /// conflict; `f` must be `Fn + Sync` because multiple shards run it
    /// concurrently.
    pub fn with_shards_mut<F>(&self, f: F)
    where
        I: Send + Sync,
        F: Fn(&mut I) + Sync,
    {
        let shards = self.shards.read();
        shards
            .par_iter()
            .for_each(|shard| f(&mut shard.index.write()));
    }

    /// Sequential variant of [`ShardedIndex::with_shards_mut`] for closures
    /// that accumulate state across shards.
    pub fn with_shards_mut_seq<F: FnMut(&mut I)>(&self, mut f: F) {
        for shard in self.shards.read().iter() {
            f(&mut shard.index.write());
        }
    }

    /// Runs `f` on every shard's inner index with a shared lock and collects
    /// the results (diagnostics, per-shard statistics).
    pub fn map_shards<T, F: FnMut(&I) -> T>(&self, mut f: F) -> Vec<T> {
        self.shards
            .read()
            .iter()
            .map(|s| f(&s.index.read()))
            .collect()
    }
}

impl<I: LearnedIndex + CsvIntegrable + Send + Sync> ShardedIndex<I> {
    /// Applies CSV (Algorithm 2) to every shard concurrently, using the
    /// optimizer's plan → apply lifecycle to keep each shard's exclusive
    /// lock short. Each shard runs the sequential per-shard sweep — the
    /// shards themselves already saturate the thread pool, so nesting the
    /// optimizer's own parallelism inside would only oversubscribe. Returns
    /// the per-shard reports in shard (key) order.
    ///
    /// Per level, the read phase (key collection, smoothing, cost
    /// condition) runs under a *shared* lock, so concurrent `get`s and
    /// range scans on the shard proceed during the expensive smoothing
    /// work; the exclusive lock is only held while the planned rebuilds are
    /// applied. Writes that land between the two phases are safe: a rebuild
    /// whose layout no longer matches the sub-tree is refused by the index
    /// (`RebuildRefusal::StaleLayout`) and recorded in the report instead
    /// of being applied blindly.
    ///
    /// A full optimisation pass subsumes incremental maintenance, so each
    /// shard is marked clean and its staleness counters reset, exactly as
    /// [`ShardedIndex::maintain_shard`] would.
    pub fn optimize(&self, optimizer: &CsvOptimizer) -> Vec<CsvReport> {
        let shards = self.shards.read();
        shards
            .par_iter()
            .map(|shard| {
                let started = Instant::now();
                let mut report = CsvReport::default();
                let levels = optimizer.sweep_levels(&*shard.index.read());
                if let Some((start_level, stop_level)) = levels {
                    for level in (stop_level..=start_level).rev() {
                        // Plan under the shared lock (dropped before apply).
                        let plan = optimizer.plan_level(&*shard.index.read(), level);
                        plan.apply_into(&mut *shard.index.write(), &mut report);
                    }
                }
                finish_maintenance(shard);
                report.preprocessing_time = started.elapsed();
                report
            })
            .collect()
    }

    /// Incrementally re-optimises one shard: per sweep level, the *dirty*
    /// sub-trees (the roots that absorbed writes since the shard was last
    /// marked clean) are planned under the shard's shared lock and the
    /// accepted rebuilds applied under its short exclusive lock. The shard
    /// is then marked clean and its staleness counters reset.
    ///
    /// Writes landing between the plan and apply phases are safe (stale
    /// layouts are refused, exactly as in [`ShardedIndex::optimize`]); a
    /// write racing the final mark-clean can lose its dirty flag for this
    /// round, which costs an optimisation opportunity — never correctness —
    /// and is recovered by the next write to the same sub-tree.
    ///
    /// Returns the shard's CSV report, or `None` when `shard` is out of
    /// bounds (a split may have changed the layout since the caller chose
    /// it).
    pub fn maintain_shard(&self, shard: usize, optimizer: &CsvOptimizer) -> Option<CsvReport> {
        let shards = self.shards.read();
        let shard = shards.get(shard)?;
        let started = Instant::now();
        let mut report = CsvReport::default();
        let levels = optimizer.sweep_levels(&*shard.index.read());
        if let Some((start_level, stop_level)) = levels {
            for level in (stop_level..=start_level).rev() {
                let plan = optimizer.plan_dirty_level(&*shard.index.read(), level);
                plan.apply_into(&mut *shard.index.write(), &mut report);
            }
        }
        finish_maintenance(shard);
        report.preprocessing_time = started.elapsed();
        Some(report)
    }
}

/// Marks a shard clean and resets its staleness bookkeeping. Only the flag
/// sweep of `csv_mark_clean` runs under the exclusive lock; the O(n)
/// structure walk that records the level-drift baseline happens under the
/// shared lock afterwards, so lookups are never blocked behind it. A write
/// landing between the two sections merely makes the baseline marginally
/// stale, which the staleness heuristic tolerates by design.
fn finish_maintenance<I: LearnedIndex + CsvIntegrable>(shard: &Shard<I>) {
    {
        let mut guard = shard.index.write();
        guard.csv_mark_clean();
        shard.writes_since_maintenance.store(0, Ordering::Relaxed);
    }
    let mean = shard.index.read().stats().mean_key_level();
    shard
        .maintained_mean_level
        .store(mean.to_bits(), Ordering::Relaxed);
    shard.maintained.store(true, Ordering::Relaxed);
}

impl<I: LearnedIndex + RangeIndex> ShardedIndex<I> {
    /// Range scan `[lo, hi]` across every shard that overlaps the range
    /// (shared locks, taken in key order).
    pub fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let shards = self.shards.read();
        let first = shard_of(&shards, lo);
        for (i, shard) in shards.iter().enumerate().skip(first) {
            if i > first && shard.lower_bound > hi {
                break;
            }
            out.extend(shard.index.read().range(lo, hi));
        }
        out
    }

    /// Splits shard `shard` at its median key into two shards, fixing the
    /// hot-shard growth a skewed insert stream produces: each half is
    /// bulk-loaded fresh (the best structure an index can have) and the two
    /// halves take over the original's key range. Returns `false` when the
    /// shard is out of bounds or currently holds fewer than
    /// `min_keys.max(2)` keys — callers pick the split trigger from a
    /// lock-free snapshot, so the threshold is re-checked here under the
    /// exclusive lock: if a concurrent split shifted the vector and `shard`
    /// now names some small fresh shard, the split is refused instead of
    /// rebuilding the wrong one.
    ///
    /// This is the one operation that takes the *outer* exclusive lock (the
    /// shard vector changes), so it blocks all other operations for the
    /// duration of the two bulk loads; the maintenance engine only triggers
    /// it when one shard has grown far past its peers, where the rebuild
    /// pays for itself.
    pub fn split_shard(&self, shard: usize, min_keys: usize) -> bool {
        let mut shards = self.shards.write();
        let Some(target) = shards.get(shard) else {
            return false;
        };
        let records = target.index.read().range(0, Key::MAX);
        if records.len() < min_keys.max(2) {
            return false;
        }
        let mid = records.len() / 2;
        let lower_bound = target.lower_bound;
        let upper_bound = records[mid].key;
        let lower = I::bulk_load(&records[..mid]);
        let upper = I::bulk_load(&records[mid..]);
        shards[shard] = Shard::new(lower_bound, lower);
        shards.insert(shard + 1, Shard::new(upper_bound, upper));
        true
    }
}

impl<I: LearnedIndex + RemovableIndex> ShardedIndex<I> {
    /// Removes `key` (exclusive lock on one shard).
    pub fn remove(&self, key: Key) -> Option<Value> {
        let shards = self.shards.read();
        let shard = &shards[shard_of(&shards, key)];
        let removed = shard.index.write().remove(key);
        if removed.is_some() {
            shard
                .writes_since_maintenance
                .fetch_add(1, Ordering::Relaxed);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_btree::BPlusTree;
    use csv_common::key::identity_records;
    use csv_datasets::Dataset;
    use csv_lipp::LippIndex;
    use std::collections::BTreeMap;

    #[test]
    fn sharded_lookups_match_the_flat_index() {
        let keys = Dataset::Osm.generate(40_000, 3);
        let records = identity_records(&keys);
        let flat = LippIndex::bulk_load(&records);
        let sharded = ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig::default());
        assert_eq!(sharded.num_shards(), 16);
        assert_eq!(sharded.len(), flat.len());
        for &k in keys.iter().step_by(37) {
            assert_eq!(sharded.get(k), flat.get(k));
        }
        assert_eq!(sharded.get(keys[0].wrapping_sub(1)), None);
        assert_eq!(sharded.get(*keys.last().unwrap() + 1), None);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = ShardedIndex::<BPlusTree>::bulk_load(&[], ShardingConfig { num_shards: 4 });
        assert!(empty.is_empty());
        assert_eq!(empty.get(7), None);
        assert_eq!(empty.num_shards(), 1);
        let tiny = ShardedIndex::<BPlusTree>::bulk_load(
            &identity_records(&[5, 9]),
            ShardingConfig { num_shards: 64 },
        );
        assert_eq!(tiny.len(), 2);
        assert_eq!(tiny.get(5), Some(5));
        assert_eq!(tiny.get(9), Some(9));
    }

    #[test]
    fn mutations_and_ranges_match_an_oracle() {
        let keys = Dataset::Facebook.generate(20_000, 9);
        let records = identity_records(&keys);
        let sharded =
            ShardedIndex::<BPlusTree>::bulk_load(&records, ShardingConfig { num_shards: 8 });
        let mut oracle: BTreeMap<Key, Value> = keys.iter().map(|&k| (k, k)).collect();

        // Inserts and removals route to the right shard.
        for (i, &k) in keys.iter().enumerate().step_by(3) {
            if i % 2 == 0 {
                assert_eq!(sharded.remove(k), oracle.remove(&k));
            } else {
                let v = k ^ 0xFFFF;
                assert_eq!(sharded.insert(k, v), oracle.insert(k, v).is_none());
            }
        }
        assert_eq!(sharded.len(), oracle.len());
        // Cross-shard range scans.
        let lo = keys[100];
        let hi = keys[15_000];
        let got = sharded.range(lo, hi);
        let expected: Vec<KeyValue> = oracle
            .range(lo..=hi)
            .map(|(&k, &v)| KeyValue::new(k, v))
            .collect();
        assert_eq!(got, expected);
        assert!(sharded.range(10, 5).is_empty());
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let keys = Dataset::Genome.generate(30_000, 5);
        let records = identity_records(&keys);
        let sharded =
            ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig { num_shards: 8 });
        let stats = sharded.stats();
        assert_eq!(stats.num_keys, keys.len());
        assert_eq!(stats.level_histogram.total(), keys.len());
        assert!(stats.node_count >= 8);
        let per_shard = sharded.map_shards(|i| i.len());
        assert_eq!(per_shard.iter().sum::<usize>(), keys.len());
        assert_eq!(per_shard.len(), 8);
    }

    #[test]
    fn concurrent_readers_and_writers_agree_with_an_oracle() {
        let keys = Dataset::Covid.generate(30_000, 11);
        let records = identity_records(&keys);
        let sharded =
            ShardedIndex::<BPlusTree>::bulk_load(&records, ShardingConfig { num_shards: 8 });

        // Writers insert disjoint fresh keys; readers hammer existing keys.
        let fresh_base = *keys.last().unwrap() + 1;
        crossbeam::thread::scope(|scope| {
            for writer in 0..4u64 {
                let sharded = &sharded;
                scope.spawn(move |_| {
                    for i in 0..2_000u64 {
                        let k = fresh_base + writer * 1_000_000 + i;
                        assert!(sharded.insert(k, k));
                    }
                });
            }
            for reader in 0..4usize {
                let sharded = &sharded;
                let keys = &keys;
                scope.spawn(move |_| {
                    for &k in keys.iter().skip(reader).step_by(7) {
                        assert_eq!(sharded.get(k), Some(k));
                    }
                });
            }
        })
        .expect("threads must not panic");

        assert_eq!(sharded.len(), keys.len() + 4 * 2_000);
        for writer in 0..4u64 {
            for i in (0..2_000u64).step_by(191) {
                let k = fresh_base + writer * 1_000_000 + i;
                assert_eq!(sharded.get(k), Some(k));
            }
        }
    }

    #[test]
    fn with_shards_mut_applies_to_every_shard() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let keys = Dataset::Osm.generate(10_000, 21);
        let sharded = ShardedIndex::<LippIndex>::bulk_load(
            &identity_records(&keys),
            ShardingConfig { num_shards: 4 },
        );
        let touched = AtomicUsize::new(0);
        sharded.with_shards_mut(|shard| {
            touched.fetch_add(1, Ordering::Relaxed);
            assert!(shard.len() > 0);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 4);
        let mut touched_seq = 0usize;
        sharded.with_shards_mut_seq(|shard| {
            touched_seq += 1;
            assert!(shard.len() > 0);
        });
        assert_eq!(touched_seq, 4);
    }

    /// Pins the short-lock contract: while a shard is in its *plan* phase
    /// (key collection / smoothing under the shared lock), concurrent `get`s
    /// on the same shard must proceed — only the apply phase may block them.
    ///
    /// A gated LIPP wrapper blocks inside the first `csv_collect_keys_into`
    /// call (i.e. mid-plan, while the optimizer holds whatever lock it
    /// holds) until the main thread has completed a lookup on the same —
    /// only — shard. If `optimize` held the write lock during planning the
    /// lookup could not finish, the gate would hit its escape timeout, and
    /// the assertion on the timeout flag fails.
    #[test]
    fn gets_proceed_during_the_plan_phase() {
        use csv_common::metrics::CostCounters;
        use csv_common::traits::IndexStats;
        use csv_core::cost::SubtreeCostStats;
        use csv_core::csv::{RebuildRefusal, SubtreeRef};
        use csv_core::layout::SmoothedLayout;
        use csv_core::CsvConfig;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};

        static GATE_ARMED: AtomicBool = AtomicBool::new(false);
        static COLLECT_STARTED: AtomicBool = AtomicBool::new(false);
        static READER_DONE: AtomicBool = AtomicBool::new(false);
        static GATE_TIMED_OUT: AtomicBool = AtomicBool::new(false);

        struct GatedLipp(LippIndex);

        impl LearnedIndex for GatedLipp {
            fn name(&self) -> &'static str {
                "GatedLIPP"
            }
            fn bulk_load(records: &[KeyValue]) -> Self {
                Self(LippIndex::bulk_load(records))
            }
            fn get(&self, key: Key) -> Option<Value> {
                self.0.get(key)
            }
            fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value> {
                self.0.get_counted(key, counters)
            }
            fn insert(&mut self, key: Key, value: Value) -> bool {
                self.0.insert(key, value)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn stats(&self) -> IndexStats {
                self.0.stats()
            }
            fn level_of_key(&self, key: Key) -> Option<usize> {
                self.0.level_of_key(key)
            }
        }

        impl CsvIntegrable for GatedLipp {
            fn csv_max_level(&self) -> usize {
                self.0.csv_max_level()
            }
            fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
                self.0.csv_subtrees_at_level(level)
            }
            fn csv_collect_keys_into(&self, subtree: &SubtreeRef, buf: &mut Vec<Key>) {
                self.0.csv_collect_keys_into(subtree, buf);
                if GATE_ARMED.swap(false, Ordering::SeqCst) {
                    COLLECT_STARTED.store(true, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while !READER_DONE.load(Ordering::SeqCst) {
                        if Instant::now() > deadline {
                            GATE_TIMED_OUT.store(true, Ordering::SeqCst);
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats {
                self.0.csv_subtree_cost(subtree)
            }
            fn csv_rebuild_subtree(
                &mut self,
                subtree: &SubtreeRef,
                layout: &SmoothedLayout,
            ) -> Result<(), RebuildRefusal> {
                self.0.csv_rebuild_subtree(subtree, layout)
            }
        }

        let keys = Dataset::Osm.generate(20_000, 7);
        let records = identity_records(&keys);
        // One shard: a write lock held during planning would block *every*
        // lookup, so a successful mid-plan lookup proves the shared lock.
        let sharded =
            ShardedIndex::<GatedLipp>::bulk_load(&records, ShardingConfig { num_shards: 1 });
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

        GATE_ARMED.store(true, Ordering::SeqCst);
        crossbeam::thread::scope(|scope| {
            let handle = scope.spawn(|_| sharded.optimize(&optimizer));
            let deadline = Instant::now() + Duration::from_secs(10);
            while !COLLECT_STARTED.load(Ordering::SeqCst) {
                assert!(
                    Instant::now() < deadline,
                    "optimizer never reached key collection"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            // The optimizer is parked inside its plan phase; lookups on the
            // only shard must still be served.
            for &k in keys.iter().step_by(4_999) {
                assert_eq!(sharded.get(k), Some(k), "get blocked during the plan phase");
            }
            READER_DONE.store(true, Ordering::SeqCst);
            let reports = handle.join().expect("optimizer thread must not panic");
            assert_eq!(reports.len(), 1);
            assert!(reports[0].subtrees_considered() > 0);
        })
        .expect("threads must not panic");

        assert!(
            !GATE_TIMED_OUT.load(Ordering::SeqCst),
            "plan-phase gate timed out: lookups were blocked while planning"
        );
        for &k in keys.iter().step_by(997) {
            assert_eq!(sharded.get(k), Some(k));
        }
    }

    #[test]
    fn parallel_optimize_matches_sequential_per_shard_optimization() {
        use csv_core::CsvConfig;
        let keys = Dataset::Genome.generate(60_000, 13);
        let records = identity_records(&keys);
        let config = ShardingConfig { num_shards: 8 };
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

        let parallel = ShardedIndex::<LippIndex>::bulk_load(&records, config);
        let reports = parallel.optimize(&optimizer);
        assert_eq!(reports.len(), 8);

        let sequential = ShardedIndex::<LippIndex>::bulk_load(&records, config);
        let mut seq_reports = Vec::new();
        sequential.with_shards_mut_seq(|shard| {
            seq_reports.push(optimizer.optimize(shard));
        });

        for (par, seq) in reports.iter().zip(&seq_reports) {
            assert_eq!(par.outcomes, seq.outcomes);
            assert_eq!(par.subtrees_rebuilt, seq.subtrees_rebuilt);
        }
        assert_eq!(parallel.stats(), sequential.stats());
        for &k in keys.iter().step_by(17) {
            assert_eq!(parallel.get(k), Some(k));
            assert_eq!(parallel.get(k), sequential.get(k));
        }
    }
}
