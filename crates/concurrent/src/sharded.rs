//! The sharded concurrent index wrapper.

use csv_common::traits::{IndexStats, LearnedIndex, RangeIndex, RemovableIndex};
use csv_common::{Key, KeyValue, Value};
use csv_core::{CsvIntegrable, CsvOptimizer, CsvReport};
use parking_lot::RwLock;
use rayon::prelude::*;

/// How the key space is partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingConfig {
    /// Number of shards. Each shard owns a contiguous key range and is
    /// protected by its own reader–writer lock.
    pub num_shards: usize,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        Self { num_shards: 16 }
    }
}

/// A contiguous key-range shard.
struct Shard<I> {
    /// Smallest key routed to this shard (the first shard owns everything
    /// below its boundary too).
    lower_bound: Key,
    index: RwLock<I>,
}

/// A concurrent index assembled from per-key-range shards of a
/// single-threaded index type.
///
/// Shard boundaries are chosen from the bulk-load records so every shard
/// starts with the same number of keys; later inserts are routed by key, so
/// heavy skew can grow one shard faster than the others (the same behaviour
/// a range-partitioned distributed index exhibits).
pub struct ShardedIndex<I> {
    shards: Vec<Shard<I>>,
}

impl<I: LearnedIndex> ShardedIndex<I> {
    /// Builds a sharded index over sorted, de-duplicated records.
    pub fn bulk_load(records: &[KeyValue], config: ShardingConfig) -> Self {
        let num_shards = config.num_shards.max(1);
        let per_shard = records.len().div_ceil(num_shards).max(1);
        let mut shards = Vec::with_capacity(num_shards);
        if records.is_empty() {
            shards.push(Shard { lower_bound: 0, index: RwLock::new(I::bulk_load(&[])) });
            return Self { shards };
        }
        for chunk in records.chunks(per_shard) {
            shards.push(Shard {
                lower_bound: chunk[0].key,
                index: RwLock::new(I::bulk_load(chunk)),
            });
        }
        // The first shard also owns every key below its smallest loaded key.
        shards[0].lower_bound = 0;
        Self { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard owning `key`.
    fn shard_of(&self, key: Key) -> usize {
        // Shards are sorted by lower bound; the owner is the last shard whose
        // lower bound is <= key.
        self.shards.partition_point(|s| s.lower_bound <= key).saturating_sub(1)
    }

    /// Point lookup (shared lock on one shard).
    pub fn get(&self, key: Key) -> Option<Value> {
        self.shards[self.shard_of(key)].index.read().get(key)
    }

    /// Inserts or overwrites a record (exclusive lock on one shard). Returns
    /// `true` when the key was new.
    pub fn insert(&self, key: Key, value: Value) -> bool {
        self.shards[self.shard_of(key)].index.write().insert(key, value)
    }

    /// Total number of stored keys (takes shared locks shard by shard, so the
    /// result is a consistent-per-shard snapshot, not a global atomic one).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.read().len()).sum()
    }

    /// `true` when no shard stores any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated structural statistics across shards.
    pub fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for shard in &self.shards {
            let s = shard.index.read().stats();
            for (level, count) in s.level_histogram.iter() {
                total.level_histogram.record(level, count);
            }
            total.node_count += s.node_count;
            total.deep_node_count += s.deep_node_count;
            total.height = total.height.max(s.height);
            total.size_bytes += s.size_bytes;
            total.num_keys += s.num_keys;
        }
        total
    }

    /// Runs `f` on every shard's inner index with an exclusive lock, fanning
    /// the shards out across the rayon thread pool — used to apply CSV
    /// optimisation (or SALI workload flattening) to all shards at once.
    /// Shards are disjoint by construction, so per-shard mutations cannot
    /// conflict; `f` must be `Fn + Sync` because multiple shards run it
    /// concurrently.
    pub fn with_shards_mut<F>(&self, f: F)
    where
        I: Send + Sync,
        F: Fn(&mut I) + Sync,
    {
        self.shards.par_iter().for_each(|shard| f(&mut shard.index.write()));
    }

    /// Sequential variant of [`ShardedIndex::with_shards_mut`] for closures
    /// that accumulate state across shards.
    pub fn with_shards_mut_seq<F: FnMut(&mut I)>(&self, mut f: F) {
        for shard in &self.shards {
            f(&mut shard.index.write());
        }
    }

    /// Runs `f` on every shard's inner index with a shared lock and collects
    /// the results (diagnostics, per-shard statistics).
    pub fn map_shards<T, F: FnMut(&I) -> T>(&self, mut f: F) -> Vec<T> {
        self.shards.iter().map(|s| f(&s.index.read())).collect()
    }
}

impl<I: LearnedIndex + CsvIntegrable + Send + Sync> ShardedIndex<I> {
    /// Applies CSV (Algorithm 2) to every shard concurrently, using the
    /// optimizer's plan → apply lifecycle to keep each shard's exclusive
    /// lock short. Each shard runs the sequential per-shard sweep — the
    /// shards themselves already saturate the thread pool, so nesting the
    /// optimizer's own parallelism inside would only oversubscribe. Returns
    /// the per-shard reports in shard (key) order.
    ///
    /// Per level, the read phase (key collection, smoothing, cost
    /// condition) runs under a *shared* lock, so concurrent `get`s and
    /// range scans on the shard proceed during the expensive smoothing
    /// work; the exclusive lock is only held while the planned rebuilds are
    /// applied. Writes that land between the two phases are safe: a rebuild
    /// whose layout no longer matches the sub-tree is refused by the index
    /// (`RebuildRefusal::StaleLayout`) and recorded in the report instead
    /// of being applied blindly.
    pub fn optimize(&self, optimizer: &CsvOptimizer) -> Vec<CsvReport> {
        self.shards
            .par_iter()
            .map(|shard| {
                let started = std::time::Instant::now();
                let mut report = CsvReport::default();
                let levels = optimizer.sweep_levels(&*shard.index.read());
                if let Some((start_level, stop_level)) = levels {
                    for level in (stop_level..=start_level).rev() {
                        // Plan under the shared lock (dropped before apply).
                        let plan = optimizer.plan_level(&*shard.index.read(), level);
                        plan.apply_into(&mut *shard.index.write(), &mut report);
                    }
                }
                report.preprocessing_time = started.elapsed();
                report
            })
            .collect()
    }
}

impl<I: LearnedIndex + RangeIndex> ShardedIndex<I> {
    /// Range scan `[lo, hi]` across every shard that overlaps the range
    /// (shared locks, taken in key order).
    pub fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let first = self.shard_of(lo);
        for (i, shard) in self.shards.iter().enumerate().skip(first) {
            if i > first && shard.lower_bound > hi {
                break;
            }
            out.extend(shard.index.read().range(lo, hi));
        }
        out
    }
}

impl<I: LearnedIndex + RemovableIndex> ShardedIndex<I> {
    /// Removes `key` (exclusive lock on one shard).
    pub fn remove(&self, key: Key) -> Option<Value> {
        self.shards[self.shard_of(key)].index.write().remove(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_btree::BPlusTree;
    use csv_common::key::identity_records;
    use csv_datasets::Dataset;
    use csv_lipp::LippIndex;
    use std::collections::BTreeMap;

    #[test]
    fn sharded_lookups_match_the_flat_index() {
        let keys = Dataset::Osm.generate(40_000, 3);
        let records = identity_records(&keys);
        let flat = LippIndex::bulk_load(&records);
        let sharded = ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig::default());
        assert_eq!(sharded.num_shards(), 16);
        assert_eq!(sharded.len(), flat.len());
        for &k in keys.iter().step_by(37) {
            assert_eq!(sharded.get(k), flat.get(k));
        }
        assert_eq!(sharded.get(keys[0].wrapping_sub(1)), None);
        assert_eq!(sharded.get(*keys.last().unwrap() + 1), None);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = ShardedIndex::<BPlusTree>::bulk_load(&[], ShardingConfig { num_shards: 4 });
        assert!(empty.is_empty());
        assert_eq!(empty.get(7), None);
        assert_eq!(empty.num_shards(), 1);
        let tiny = ShardedIndex::<BPlusTree>::bulk_load(
            &identity_records(&[5, 9]),
            ShardingConfig { num_shards: 64 },
        );
        assert_eq!(tiny.len(), 2);
        assert_eq!(tiny.get(5), Some(5));
        assert_eq!(tiny.get(9), Some(9));
    }

    #[test]
    fn mutations_and_ranges_match_an_oracle() {
        let keys = Dataset::Facebook.generate(20_000, 9);
        let records = identity_records(&keys);
        let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, ShardingConfig { num_shards: 8 });
        let mut oracle: BTreeMap<Key, Value> = keys.iter().map(|&k| (k, k)).collect();

        // Inserts and removals route to the right shard.
        for (i, &k) in keys.iter().enumerate().step_by(3) {
            if i % 2 == 0 {
                assert_eq!(sharded.remove(k), oracle.remove(&k));
            } else {
                let v = k ^ 0xFFFF;
                assert_eq!(sharded.insert(k, v), oracle.insert(k, v).is_none());
            }
        }
        assert_eq!(sharded.len(), oracle.len());
        // Cross-shard range scans.
        let lo = keys[100];
        let hi = keys[15_000];
        let got = sharded.range(lo, hi);
        let expected: Vec<KeyValue> =
            oracle.range(lo..=hi).map(|(&k, &v)| KeyValue::new(k, v)).collect();
        assert_eq!(got, expected);
        assert!(sharded.range(10, 5).is_empty());
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let keys = Dataset::Genome.generate(30_000, 5);
        let records = identity_records(&keys);
        let sharded = ShardedIndex::<LippIndex>::bulk_load(&records, ShardingConfig { num_shards: 8 });
        let stats = sharded.stats();
        assert_eq!(stats.num_keys, keys.len());
        assert_eq!(stats.level_histogram.total(), keys.len());
        assert!(stats.node_count >= 8);
        let per_shard = sharded.map_shards(|i| i.len());
        assert_eq!(per_shard.iter().sum::<usize>(), keys.len());
        assert_eq!(per_shard.len(), 8);
    }

    #[test]
    fn concurrent_readers_and_writers_agree_with_an_oracle() {
        let keys = Dataset::Covid.generate(30_000, 11);
        let records = identity_records(&keys);
        let sharded = ShardedIndex::<BPlusTree>::bulk_load(&records, ShardingConfig { num_shards: 8 });

        // Writers insert disjoint fresh keys; readers hammer existing keys.
        let fresh_base = *keys.last().unwrap() + 1;
        crossbeam::thread::scope(|scope| {
            for writer in 0..4u64 {
                let sharded = &sharded;
                scope.spawn(move |_| {
                    for i in 0..2_000u64 {
                        let k = fresh_base + writer * 1_000_000 + i;
                        assert!(sharded.insert(k, k));
                    }
                });
            }
            for reader in 0..4usize {
                let sharded = &sharded;
                let keys = &keys;
                scope.spawn(move |_| {
                    for &k in keys.iter().skip(reader).step_by(7) {
                        assert_eq!(sharded.get(k), Some(k));
                    }
                });
            }
        })
        .expect("threads must not panic");

        assert_eq!(sharded.len(), keys.len() + 4 * 2_000);
        for writer in 0..4u64 {
            for i in (0..2_000u64).step_by(191) {
                let k = fresh_base + writer * 1_000_000 + i;
                assert_eq!(sharded.get(k), Some(k));
            }
        }
    }

    #[test]
    fn with_shards_mut_applies_to_every_shard() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let keys = Dataset::Osm.generate(10_000, 21);
        let sharded =
            ShardedIndex::<LippIndex>::bulk_load(&identity_records(&keys), ShardingConfig { num_shards: 4 });
        let touched = AtomicUsize::new(0);
        sharded.with_shards_mut(|shard| {
            touched.fetch_add(1, Ordering::Relaxed);
            assert!(shard.len() > 0);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 4);
        let mut touched_seq = 0usize;
        sharded.with_shards_mut_seq(|shard| {
            touched_seq += 1;
            assert!(shard.len() > 0);
        });
        assert_eq!(touched_seq, 4);
    }

    /// Pins the short-lock contract: while a shard is in its *plan* phase
    /// (key collection / smoothing under the shared lock), concurrent `get`s
    /// on the same shard must proceed — only the apply phase may block them.
    ///
    /// A gated LIPP wrapper blocks inside the first `csv_collect_keys_into`
    /// call (i.e. mid-plan, while the optimizer holds whatever lock it
    /// holds) until the main thread has completed a lookup on the same —
    /// only — shard. If `optimize` held the write lock during planning the
    /// lookup could not finish, the gate would hit its escape timeout, and
    /// the assertion on the timeout flag fails.
    #[test]
    fn gets_proceed_during_the_plan_phase() {
        use csv_common::metrics::CostCounters;
        use csv_common::traits::IndexStats;
        use csv_core::cost::SubtreeCostStats;
        use csv_core::csv::{RebuildRefusal, SubtreeRef};
        use csv_core::layout::SmoothedLayout;
        use csv_core::CsvConfig;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};

        static GATE_ARMED: AtomicBool = AtomicBool::new(false);
        static COLLECT_STARTED: AtomicBool = AtomicBool::new(false);
        static READER_DONE: AtomicBool = AtomicBool::new(false);
        static GATE_TIMED_OUT: AtomicBool = AtomicBool::new(false);

        struct GatedLipp(LippIndex);

        impl LearnedIndex for GatedLipp {
            fn name(&self) -> &'static str {
                "GatedLIPP"
            }
            fn bulk_load(records: &[KeyValue]) -> Self {
                Self(LippIndex::bulk_load(records))
            }
            fn get(&self, key: Key) -> Option<Value> {
                self.0.get(key)
            }
            fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value> {
                self.0.get_counted(key, counters)
            }
            fn insert(&mut self, key: Key, value: Value) -> bool {
                self.0.insert(key, value)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn stats(&self) -> IndexStats {
                self.0.stats()
            }
            fn level_of_key(&self, key: Key) -> Option<usize> {
                self.0.level_of_key(key)
            }
        }

        impl CsvIntegrable for GatedLipp {
            fn csv_max_level(&self) -> usize {
                self.0.csv_max_level()
            }
            fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
                self.0.csv_subtrees_at_level(level)
            }
            fn csv_collect_keys_into(&self, subtree: &SubtreeRef, buf: &mut Vec<Key>) {
                self.0.csv_collect_keys_into(subtree, buf);
                if GATE_ARMED.swap(false, Ordering::SeqCst) {
                    COLLECT_STARTED.store(true, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while !READER_DONE.load(Ordering::SeqCst) {
                        if Instant::now() > deadline {
                            GATE_TIMED_OUT.store(true, Ordering::SeqCst);
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats {
                self.0.csv_subtree_cost(subtree)
            }
            fn csv_rebuild_subtree(
                &mut self,
                subtree: &SubtreeRef,
                layout: &SmoothedLayout,
            ) -> Result<(), RebuildRefusal> {
                self.0.csv_rebuild_subtree(subtree, layout)
            }
        }

        let keys = Dataset::Osm.generate(20_000, 7);
        let records = identity_records(&keys);
        // One shard: a write lock held during planning would block *every*
        // lookup, so a successful mid-plan lookup proves the shared lock.
        let sharded =
            ShardedIndex::<GatedLipp>::bulk_load(&records, ShardingConfig { num_shards: 1 });
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

        GATE_ARMED.store(true, Ordering::SeqCst);
        crossbeam::thread::scope(|scope| {
            let handle = scope.spawn(|_| sharded.optimize(&optimizer));
            let deadline = Instant::now() + Duration::from_secs(10);
            while !COLLECT_STARTED.load(Ordering::SeqCst) {
                assert!(Instant::now() < deadline, "optimizer never reached key collection");
                std::thread::sleep(Duration::from_millis(1));
            }
            // The optimizer is parked inside its plan phase; lookups on the
            // only shard must still be served.
            for &k in keys.iter().step_by(4_999) {
                assert_eq!(sharded.get(k), Some(k), "get blocked during the plan phase");
            }
            READER_DONE.store(true, Ordering::SeqCst);
            let reports = handle.join().expect("optimizer thread must not panic");
            assert_eq!(reports.len(), 1);
            assert!(reports[0].subtrees_considered() > 0);
        })
        .expect("threads must not panic");

        assert!(
            !GATE_TIMED_OUT.load(Ordering::SeqCst),
            "plan-phase gate timed out: lookups were blocked while planning"
        );
        for &k in keys.iter().step_by(997) {
            assert_eq!(sharded.get(k), Some(k));
        }
    }

    #[test]
    fn parallel_optimize_matches_sequential_per_shard_optimization() {
        use csv_core::CsvConfig;
        let keys = Dataset::Genome.generate(60_000, 13);
        let records = identity_records(&keys);
        let config = ShardingConfig { num_shards: 8 };
        let optimizer = CsvOptimizer::new(CsvConfig::for_lipp(0.1));

        let parallel = ShardedIndex::<LippIndex>::bulk_load(&records, config);
        let reports = parallel.optimize(&optimizer);
        assert_eq!(reports.len(), 8);

        let sequential = ShardedIndex::<LippIndex>::bulk_load(&records, config);
        let mut seq_reports = Vec::new();
        sequential.with_shards_mut_seq(|shard| {
            seq_reports.push(optimizer.optimize(shard));
        });

        for (par, seq) in reports.iter().zip(&seq_reports) {
            assert_eq!(par.outcomes, seq.outcomes);
            assert_eq!(par.subtrees_rebuilt, seq.subtrees_rebuilt);
        }
        assert_eq!(parallel.stats(), sequential.stats());
        for &k in keys.iter().step_by(17) {
            assert_eq!(parallel.get(k), Some(k));
            assert_eq!(parallel.get(k), sequential.get(k));
        }
    }
}
