//! A persistent (structurally shared) sorted map built from small
//! `Arc`-shared chunks.
//!
//! [`PMap`] is the overlay store behind the RCU shard snapshots
//! ([`crate::sharded::ShardSnapshot`]): every point update returns a *new*
//! map that shares all untouched chunks with its predecessor, so publishing
//! a successor snapshot costs **O(log n + chunk)** clones instead of the
//! O(n) full-overlay copy the flat `Vec` representation pays. That is the
//! same structural trick SALI-style concurrent learned indexes use to keep
//! per-write copy cost sublinear in buffered state.
//!
//! The shape is a tiny B+-tree: leaves are sorted `Vec<(K, V)>` chunks of
//! at most `MAX_CHUNK` entries, inner nodes fan out over at most
//! `MAX_FANOUT` children, and every node sits behind an `Arc`. An insert
//! path-copies the root-to-leaf spine (one chunk clone plus one pointer-vec
//! clone per inner level) and leaves every sibling shared. Reads allocate
//! nothing: [`PMap::get`] walks the spine, and [`PMap::iter`] /
//! [`PMap::range`] stream entries through a small explicit stack.
//!
//! The map is deliberately minimal — upsert, remove, lookup, ordered
//! iteration and range slicing — because snapshots never mutate in place:
//! bulk transformations (the overlay *fold*) rebuild from scratch anyway.

use std::sync::Arc;

/// Maximum entries per leaf chunk. An update clones exactly one chunk, so
/// this bounds the per-write copy cost; lookups binary-search within it.
/// Public so boundary tests can pin sequences at exactly the split point.
pub const MAX_CHUNK: usize = 32;

/// Maximum children per inner node. An update clones one pointer vector
/// per level, so this (with [`MAX_CHUNK`]) bounds the spine-copy cost.
/// Public for the same boundary-pinning reason as [`MAX_CHUNK`].
pub const MAX_FANOUT: usize = 16;

/// One node of the chunk tree. `Clone` is an `Arc` bump — that is the
/// structural sharing the whole module exists for.
enum Node<K, V> {
    /// A sorted run of entries.
    Leaf(Arc<Vec<(K, V)>>),
    /// A routing node over `MAX_FANOUT` or fewer children.
    Inner(Arc<Inner<K, V>>),
}

impl<K, V> Clone for Node<K, V> {
    fn clone(&self) -> Self {
        match self {
            Self::Leaf(chunk) => Self::Leaf(Arc::clone(chunk)),
            Self::Inner(inner) => Self::Inner(Arc::clone(inner)),
        }
    }
}

/// An inner routing node: `mins[i]` is the smallest key stored anywhere in
/// `children[i]`, so routing is one `partition_point` over `mins`.
struct Inner<K, V> {
    mins: Vec<K>,
    children: Vec<Node<K, V>>,
}

/// The outcome of an insert below some node: the node was replaced, or it
/// split and both halves (plus the right half's min key) replace it.
enum Inserted<K, V> {
    One(Node<K, V>),
    Split(Node<K, V>, K, Node<K, V>),
}

/// The outcome of a removal below some node: the node was replaced, or it
/// drained empty and disappears from its parent.
enum Removed<K, V> {
    One(Node<K, V>),
    Gone,
}

/// A persistent sorted map: cheap to clone (one `Arc` bump), cheap to
/// update (path copy), ordered to iterate. See the module docs for the
/// design and [`crate::sharded`] for its role in the RCU write path.
pub struct PMap<K, V> {
    root: Node<K, V>,
    len: usize,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        Self {
            root: self.root.clone(),
            len: self.len,
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> PMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf(Arc::new(Vec::new())),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    /// Looks up `key`, allocating nothing.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(chunk) => {
                    return match chunk.binary_search_by(|(k, _)| k.cmp(key)) {
                        Ok(i) => Some(&chunk[i].1),
                        Err(_) => None,
                    }
                }
                Node::Inner(inner) => node = &inner.children[route(&inner.mins, key)],
            }
        }
    }

    /// Looks up a whole sorted, de-duplicated batch of keys in one merged
    /// descent — the group-commit analogue of [`PMap::get`]: routing work
    /// is paid once per touched subtree instead of once per key, and each
    /// leaf a batch key lands in is binary-probed in a single forward
    /// sweep. Calls `hit(i, value)` for every `keys[i]` that is present,
    /// in ascending key order; absent keys produce no call.
    pub fn get_many(&self, keys: &[K], mut hit: impl FnMut(usize, &V)) {
        if !keys.is_empty() {
            get_from(&self.root, keys, 0, &mut hit);
        }
    }

    /// Returns a successor map with `key` bound to `value` plus the key's
    /// previous value. The successor shares every chunk the update did not
    /// touch with `self` — the per-call copy cost is one leaf chunk plus
    /// one pointer vector per tree level.
    pub fn insert(&self, key: K, value: V) -> (Self, Option<V>) {
        let (outcome, previous) = insert_into(&self.root, key, value);
        let root = match outcome {
            Inserted::One(node) => node,
            Inserted::Split(left, right_min, right) => {
                let left_min = min_key(&left).expect("a split half is never empty").clone();
                Node::Inner(Arc::new(Inner {
                    mins: vec![left_min, right_min],
                    children: vec![left, right],
                }))
            }
        };
        let len = self.len + usize::from(previous.is_none());
        (Self { root, len }, previous)
    }

    /// Returns a successor map without `key` plus the removed value (the
    /// map is returned unchanged — structurally shared wholesale — when the
    /// key was absent). Leaves that drain empty are unlinked; partially
    /// drained chunks are left underfull rather than rebalanced, which
    /// keeps removal a pure path copy.
    pub fn remove(&self, key: &K) -> (Self, Option<V>) {
        let (outcome, previous) = remove_from(&self.root, key);
        if previous.is_none() {
            return (self.clone(), None);
        }
        let mut root = match outcome {
            Removed::One(node) => node,
            Removed::Gone => Node::Leaf(Arc::new(Vec::new())),
        };
        // Collapse single-child root chains so the depth tracks the live
        // entry count, not the historical maximum.
        while let Node::Inner(inner) = &root {
            if inner.children.len() != 1 {
                break;
            }
            root = inner.children[0].clone();
        }
        (
            Self {
                root,
                len: self.len - 1,
            },
            previous,
        )
    }

    /// Applies a whole sorted, de-duplicated batch of upserts in one pass,
    /// returning the successor map — the group-commit analogue of
    /// [`PMap::insert`]: each touched chunk is copied exactly **once** for
    /// the whole batch, however many batch keys land in it, and untouched
    /// siblings stay shared. A batch of N keys spread over M leaves costs
    /// M chunk copies instead of N root-to-leaf path copies.
    pub fn insert_many(&self, batch: &[(K, V)]) -> Self {
        if batch.is_empty() {
            return self.clone();
        }
        debug_assert!(
            batch.windows(2).all(|w| w[0].0 < w[1].0),
            "insert_many batches must be sorted and de-duplicated"
        );
        let mut displaced = 0usize;
        let mut nodes = ingest(&self.root, batch, &mut displaced);
        // A large batch can fan one node out into many replacements; stack
        // routing levels on top until a single root remains.
        while nodes.len() > 1 {
            nodes = pack_inners(nodes);
        }
        Self {
            root: nodes.pop().expect("ingest emits at least one node"),
            len: self.len + batch.len() - displaced,
        }
    }

    /// Iterates every entry in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut iter = Iter {
            stack: Vec::new(),
            leaf: &[],
            pos: 0,
            end: None,
        };
        iter.descend_leftmost(&self.root);
        iter
    }

    /// Iterates the entries with keys in `[lo, hi]` in ascending order,
    /// seeking directly to `lo`'s chunk (no scan of the preceding ones).
    pub fn range(&self, lo: &K, hi: &K) -> Iter<'_, K, V> {
        let mut iter = Iter {
            stack: Vec::new(),
            leaf: &[],
            pos: 0,
            end: Some(hi.clone()),
        };
        if lo <= hi {
            iter.seek(&self.root, lo);
        }
        iter
    }
}

impl<K: Ord + Clone + std::fmt::Debug, V: Clone + std::fmt::Debug> std::fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// Index of the child of `mins` whose subtree owns `key`: the last child
/// whose min is `<= key` (the first child also owns every key below its
/// min, exactly like shard routing).
fn route<K: Ord>(mins: &[K], key: &K) -> usize {
    mins.partition_point(|m| m <= key).saturating_sub(1)
}

/// Smallest key stored under `node` (`None` only for an empty leaf, which
/// exists only as the root of an empty map).
fn min_key<K, V>(node: &Node<K, V>) -> Option<&K> {
    match node {
        Node::Leaf(chunk) => chunk.first().map(|(k, _)| k),
        Node::Inner(inner) => inner.mins.first(),
    }
}

/// Recursive worker behind [`PMap::get_many`]: slices the sorted key batch
/// across the children exactly like `ingest` slices its write batch, so
/// untouched subtrees are never entered. `offset` is `keys`' position in
/// the original batch, letting `hit` report original indices.
fn get_from<K: Ord, V>(
    node: &Node<K, V>,
    keys: &[K],
    offset: usize,
    hit: &mut impl FnMut(usize, &V),
) {
    match node {
        Node::Leaf(chunk) => {
            // Keys and chunk are both sorted: one forward sweep, each
            // probe restricted to the suffix the previous key ended at.
            let mut at = 0usize;
            for (i, key) in keys.iter().enumerate() {
                at += chunk[at..].partition_point(|(k, _)| k < key);
                match chunk.get(at) {
                    Some((k, v)) if k == key => hit(offset + i, v),
                    _ => {}
                }
            }
        }
        Node::Inner(inner) => {
            let mut start = 0usize;
            for (idx, child) in inner.children.iter().enumerate() {
                if start == keys.len() {
                    break;
                }
                // This child's key slice: keys below the next child's min
                // (the last child takes the rest), mirroring `route`.
                let end = match inner.mins.get(idx + 1) {
                    Some(next_min) => start + keys[start..].partition_point(|k| k < next_min),
                    None => keys.len(),
                };
                if start < end {
                    get_from(child, &keys[start..end], offset + start, hit);
                }
                start = end;
            }
        }
    }
}

fn insert_into<K: Ord + Clone, V: Clone>(
    node: &Node<K, V>,
    key: K,
    value: V,
) -> (Inserted<K, V>, Option<V>) {
    match node {
        Node::Leaf(chunk) => {
            let mut entries = (**chunk).clone();
            let previous = match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => Some(std::mem::replace(&mut entries[i], (key, value)).1),
                Err(i) => {
                    entries.insert(i, (key, value));
                    None
                }
            };
            let outcome = if entries.len() > MAX_CHUNK {
                let right = entries.split_off(entries.len() / 2);
                let right_min = right[0].0.clone();
                Inserted::Split(
                    Node::Leaf(Arc::new(entries)),
                    right_min,
                    Node::Leaf(Arc::new(right)),
                )
            } else {
                Inserted::One(Node::Leaf(Arc::new(entries)))
            };
            (outcome, previous)
        }
        Node::Inner(inner) => {
            let idx = route(&inner.mins, &key);
            let (child_outcome, previous) = insert_into(&inner.children[idx], key.clone(), value);
            let mut mins = inner.mins.clone();
            let mut children = inner.children.clone();
            // A key below the subtree's current minimum routes to child 0
            // and lowers its min.
            if key < mins[idx] {
                mins[idx] = key;
            }
            match child_outcome {
                Inserted::One(child) => children[idx] = child,
                Inserted::Split(left, right_min, right) => {
                    children[idx] = left;
                    children.insert(idx + 1, right);
                    mins.insert(idx + 1, right_min);
                }
            }
            let outcome = if children.len() > MAX_FANOUT {
                let right_children = children.split_off(children.len() / 2);
                let right_mins = mins.split_off(mins.len() / 2);
                let right_min = right_mins[0].clone();
                Inserted::Split(
                    Node::Inner(Arc::new(Inner { mins, children })),
                    right_min,
                    Node::Inner(Arc::new(Inner {
                        mins: right_mins,
                        children: right_children,
                    })),
                )
            } else {
                Inserted::One(Node::Inner(Arc::new(Inner { mins, children })))
            };
            (outcome, previous)
        }
    }
}

/// Recursive worker behind [`PMap::insert_many`]: returns the replacement
/// nodes for `node` (more than one when the batch overflowed it), counting
/// overwritten keys into `displaced`. Children the batch does not touch are
/// shared wholesale — only the chunks a batch key actually lands in are
/// copied, and each exactly once.
fn ingest<K: Ord + Clone, V: Clone>(
    node: &Node<K, V>,
    batch: &[(K, V)],
    displaced: &mut usize,
) -> Vec<Node<K, V>> {
    if batch.is_empty() {
        return vec![node.clone()];
    }
    match node {
        Node::Leaf(chunk) => {
            // One merge-join of the chunk with its batch slice (batch wins
            // on ties): the single copy this leaf pays for the whole batch.
            let mut merged: Vec<(K, V)> = Vec::with_capacity(chunk.len() + batch.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < chunk.len() && j < batch.len() {
                match chunk[i].0.cmp(&batch[j].0) {
                    std::cmp::Ordering::Less => {
                        merged.push(chunk[i].clone());
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(batch[j].clone());
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(batch[j].clone());
                        *displaced += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend(chunk[i..].iter().cloned());
            merged.extend(batch[j..].iter().cloned());
            // Re-chunk evenly so no emitted leaf exceeds `MAX_CHUNK` and
            // none is pathologically small.
            let leaves = merged.len().div_ceil(MAX_CHUNK);
            let per_leaf = merged.len().div_ceil(leaves);
            merged
                .chunks(per_leaf)
                .map(|entries| Node::Leaf(Arc::new(entries.to_vec())))
                .collect()
        }
        Node::Inner(inner) => {
            let mut children: Vec<Node<K, V>> = Vec::with_capacity(inner.children.len());
            let mut start = 0usize;
            for (idx, child) in inner.children.iter().enumerate() {
                // This child's batch slice: keys below the next child's min
                // (the last child takes the rest; child 0 also takes keys
                // below its own min, exactly like `route`).
                let end = match inner.mins.get(idx + 1) {
                    Some(next_min) => start + batch[start..].partition_point(|(k, _)| k < next_min),
                    None => batch.len(),
                };
                if start == end {
                    children.push(child.clone());
                } else {
                    children.extend(ingest(child, &batch[start..end], displaced));
                }
                start = end;
            }
            pack_inners(children)
        }
    }
}

/// Packs replacement nodes into evenly sized inner nodes of at most
/// [`MAX_FANOUT`] children each.
fn pack_inners<K: Ord + Clone, V: Clone>(children: Vec<Node<K, V>>) -> Vec<Node<K, V>> {
    let inners = children.len().div_ceil(MAX_FANOUT);
    let per_inner = children.len().div_ceil(inners);
    children
        .chunks(per_inner)
        .map(|group| {
            Node::Inner(Arc::new(Inner {
                mins: group
                    .iter()
                    .map(|n| min_key(n).expect("ingest emits no empty nodes").clone())
                    .collect(),
                children: group.to_vec(),
            }))
        })
        .collect()
}

fn remove_from<K: Ord + Clone, V: Clone>(node: &Node<K, V>, key: &K) -> (Removed<K, V>, Option<V>) {
    match node {
        Node::Leaf(chunk) => match chunk.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => {
                if chunk.len() == 1 {
                    return (Removed::Gone, Some(chunk[i].1.clone()));
                }
                let mut entries = (**chunk).clone();
                let (_, previous) = entries.remove(i);
                (Removed::One(Node::Leaf(Arc::new(entries))), Some(previous))
            }
            Err(_) => (Removed::One(node.clone()), None),
        },
        Node::Inner(inner) => {
            let idx = route(&inner.mins, key);
            let (child_outcome, previous) = remove_from(&inner.children[idx], key);
            if previous.is_none() {
                return (Removed::One(node.clone()), None);
            }
            let mut mins = inner.mins.clone();
            let mut children = inner.children.clone();
            match child_outcome {
                Removed::One(child) => {
                    // Removing the child's min key raises its subtree min.
                    mins[idx] = min_key(&child)
                        .expect("a non-Gone child is never empty")
                        .clone();
                    children[idx] = child;
                }
                Removed::Gone => {
                    children.remove(idx);
                    mins.remove(idx);
                }
            }
            if children.is_empty() {
                (Removed::Gone, previous)
            } else {
                (
                    Removed::One(Node::Inner(Arc::new(Inner { mins, children }))),
                    previous,
                )
            }
        }
    }
}

/// An in-order walk of the chunk tree: a stack of `(inner node, child
/// index)` frames above the current leaf. Yields borrowed entries, so
/// iteration allocates nothing beyond the stack itself (whose depth is
/// `O(log n)`).
pub struct Iter<'a, K, V> {
    stack: Vec<(&'a Inner<K, V>, usize)>,
    leaf: &'a [(K, V)],
    pos: usize,
    /// Inclusive upper bound for range iteration (`None` = unbounded).
    end: Option<K>,
}

impl<'a, K: Ord, V> Iter<'a, K, V> {
    /// Descends to the leftmost leaf under `node`, pushing the spine.
    fn descend_leftmost(&mut self, mut node: &'a Node<K, V>) {
        loop {
            match node {
                Node::Leaf(chunk) => {
                    self.leaf = chunk;
                    self.pos = 0;
                    return;
                }
                Node::Inner(inner) => {
                    self.stack.push((inner, 0));
                    node = &inner.children[0];
                }
            }
        }
    }

    /// Descends to the first entry with key `>= lo`, pushing the spine.
    fn seek(&mut self, mut node: &'a Node<K, V>, lo: &K) {
        loop {
            match node {
                Node::Leaf(chunk) => {
                    self.leaf = chunk;
                    self.pos = chunk.partition_point(|(k, _)| k < lo);
                    return;
                }
                Node::Inner(inner) => {
                    let idx = route(&inner.mins, lo);
                    self.stack.push((inner, idx));
                    node = &inner.children[idx];
                }
            }
        }
    }

    /// Moves to the next leaf after the current one is exhausted.
    fn advance_leaf(&mut self) -> bool {
        while let Some((inner, idx)) = self.stack.pop() {
            if idx + 1 < inner.children.len() {
                self.stack.push((inner, idx + 1));
                self.descend_leftmost(&inner.children[idx + 1]);
                return true;
            }
        }
        false
    }
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.leaf.len() {
                let (k, v) = &self.leaf[self.pos];
                if self.end.as_ref().is_some_and(|end| k > end) {
                    // Past the range bound: later entries only grow, stop.
                    self.leaf = &[];
                    self.stack.clear();
                    return None;
                }
                self.pos += 1;
                return Some((k, v));
            }
            if !self.advance_leaf() {
                return None;
            }
        }
    }
}

#[cfg(test)]
impl<K, V> PMap<K, V> {
    /// Test hook: the raw pointers of every leaf chunk, for structural-
    /// sharing assertions (`Arc::ptr_eq` across map generations).
    fn leaf_ptrs(&self) -> Vec<*const ()> {
        fn walk<K, V>(node: &Node<K, V>, out: &mut Vec<*const ()>) {
            match node {
                Node::Leaf(chunk) => out.push(Arc::as_ptr(chunk).cast()),
                Node::Inner(inner) => inner.children.iter().for_each(|c| walk(c, out)),
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Test hook: tree depth (1 = a lone leaf).
    fn depth(&self) -> usize {
        let mut node = &self.root;
        let mut depth = 1;
        while let Node::Inner(inner) = node {
            node = &inner.children[0];
            depth += 1;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::rng::SplitMix64;
    use std::collections::BTreeMap;

    #[test]
    fn empty_map_behaves() {
        let map: PMap<u64, u64> = PMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.get(&7), None);
        assert_eq!(map.iter().count(), 0);
        assert_eq!(map.range(&0, &u64::MAX).count(), 0);
        let (map, previous) = map.remove(&7);
        assert!(previous.is_none() && map.is_empty());
    }

    #[test]
    fn inserts_overwrite_and_report_previous_values() {
        let map = PMap::new();
        let (map, previous) = map.insert(5u64, 50u64);
        assert_eq!(previous, None);
        let (map, previous) = map.insert(5, 51);
        assert_eq!(previous, Some(50));
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&5), Some(&51));
    }

    /// The map must agree with a `BTreeMap` oracle through a long random
    /// interleaving of upserts, removals, lookups and range slices — the
    /// full public surface, across enough entries to force multi-level
    /// trees and chunk splits.
    #[test]
    fn random_interleaving_matches_a_btreemap_oracle() {
        for seed in [3u64, 17, 2029] {
            let mut rng = SplitMix64::new(seed);
            let mut map: PMap<u64, u64> = PMap::new();
            let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
            for step in 0..6_000u64 {
                let key = rng.next_u64() % 2_048;
                match rng.next_u64() % 4 {
                    0 | 1 => {
                        let (next, previous) = map.insert(key, step);
                        assert_eq!(previous, oracle.insert(key, step));
                        map = next;
                    }
                    2 => {
                        let (next, previous) = map.remove(&key);
                        assert_eq!(previous, oracle.remove(&key));
                        map = next;
                    }
                    _ => assert_eq!(map.get(&key), oracle.get(&key)),
                }
                assert_eq!(map.len(), oracle.len());
                if step % 241 == 0 {
                    let lo = rng.next_u64() % 2_048;
                    let hi = lo + rng.next_u64() % 512;
                    let got: Vec<(u64, u64)> = map.range(&lo, &hi).map(|(k, v)| (*k, *v)).collect();
                    let expected: Vec<(u64, u64)> =
                        oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, expected, "range [{lo}, {hi}] diverged at step {step}");
                }
            }
            let got: Vec<u64> = map.iter().map(|(k, _)| *k).collect();
            let expected: Vec<u64> = oracle.keys().copied().collect();
            assert_eq!(got, expected, "ordered iteration diverged (seed {seed})");
        }
    }

    /// The whole point of the structure: a point update into a large map
    /// must share all but the root-to-leaf spine with its predecessor, and
    /// the predecessor must be left untouched.
    #[test]
    fn updates_are_path_copies_and_persist_the_predecessor() {
        let mut map: PMap<u64, u64> = PMap::new();
        for k in 0..4_096u64 {
            map = map.insert(k, k).0;
        }
        assert!(map.depth() >= 3, "4096 entries must build a real tree");
        let before = map.leaf_ptrs();

        let (updated, previous) = map.insert(1_234, 999);
        assert_eq!(previous, Some(1_234));
        let after = updated.leaf_ptrs();
        assert_eq!(before.len(), after.len());
        let shared = after.iter().filter(|p| before.contains(p)).count();
        assert_eq!(
            shared,
            after.len() - 1,
            "an overwrite must replace exactly one leaf chunk"
        );
        // Persistence: the predecessor still serves the old value.
        assert_eq!(map.get(&1_234), Some(&1_234));
        assert_eq!(updated.get(&1_234), Some(&999));

        // A fresh insert may split one chunk but still shares every other.
        let (grown, _) = map.insert(10_000, 1);
        let grown_ptrs = grown.leaf_ptrs();
        let fresh = grown_ptrs.iter().filter(|p| !before.contains(p)).count();
        assert!(
            fresh <= 2,
            "an insert must touch at most one chunk (two after a split), got {fresh}"
        );
    }

    #[test]
    fn removals_unlink_drained_chunks_and_collapse_the_root() {
        let mut map: PMap<u64, u64> = PMap::new();
        for k in 0..512u64 {
            map = map.insert(k, k).0;
        }
        let deep = map.depth();
        assert!(deep >= 2);
        for k in 0..511u64 {
            let (next, previous) = map.remove(&k);
            assert_eq!(previous, Some(k));
            map = next;
        }
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&511), Some(&511));
        assert_eq!(
            map.depth(),
            1,
            "a drained tree must collapse back to a lone leaf"
        );
    }

    #[test]
    fn range_seeks_without_scanning_and_respects_bounds() {
        let mut map: PMap<u64, u64> = PMap::new();
        for k in (0..10_000u64).step_by(3) {
            map = map.insert(k, k * 2).0;
        }
        // Bounds between stored keys.
        let got: Vec<u64> = map.range(&100, &121).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![102, 105, 108, 111, 114, 117, 120]);
        // Inclusive on both ends.
        let got: Vec<u64> = map.range(&102, &108).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![102, 105, 108]);
        // Inverted and out-of-range bounds are empty.
        assert_eq!(map.range(&50, &40).count(), 0);
        assert_eq!(map.range(&20_000, &30_000).count(), 0);
        // Full-range iteration equals `iter`.
        assert_eq!(map.range(&0, &u64::MAX).count(), map.iter().count());
    }

    /// `insert_many` must be observationally identical to the same keys
    /// applied through repeated `insert` — contents, length and overwrite
    /// accounting — across batch sizes that leave the tree untouched,
    /// split single chunks and overflow whole subtrees.
    #[test]
    fn insert_many_matches_repeated_inserts() {
        let mut rng = SplitMix64::new(41);
        let mut map: PMap<u64, u64> = PMap::new();
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for round in 0..60u64 {
            let size = [0usize, 1, 3, MAX_CHUNK, 4 * MAX_CHUNK, 400][(round % 6) as usize];
            let mut batch: Vec<(u64, u64)> =
                (0..size).map(|_| (rng.next_u64() % 4_096, round)).collect();
            batch.sort_by_key(|&(k, _)| k);
            batch.dedup_by_key(|&mut (k, _)| k);
            let next = map.insert_many(&batch);
            for &(k, v) in &batch {
                oracle.insert(k, v);
            }
            assert_eq!(next.len(), oracle.len(), "round {round} length diverged");
            map = next;
        }
        let got: Vec<(u64, u64)> = map.iter().map(|(&k, &v)| (k, v)).collect();
        let expected: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, expected);
    }

    /// The group-commit guarantee: a batch confined to a few leaves copies
    /// exactly those leaves once and shares every other chunk with the
    /// predecessor — N keys into one chunk must not cost N path copies.
    #[test]
    fn insert_many_copies_each_touched_chunk_once() {
        let mut map: PMap<u64, u64> = PMap::new();
        for k in 0..4_096u64 {
            map = map.insert(k, k).0;
        }
        let before = map.leaf_ptrs();

        // Overwrite a contiguous run that fits in one or two chunks.
        let batch: Vec<(u64, u64)> = (100..100 + MAX_CHUNK as u64 / 2).map(|k| (k, 0)).collect();
        let updated = map.insert_many(&batch);
        let after = updated.leaf_ptrs();
        let fresh = after.iter().filter(|p| !before.contains(p)).count();
        assert!(
            fresh <= 2,
            "a one-run batch must copy at most the chunks it spans, got {fresh} fresh chunks"
        );
        // Persistence: the predecessor is untouched.
        assert_eq!(map.get(&100), Some(&100));
        assert_eq!(updated.get(&100), Some(&0));

        // An empty batch is a wholesale share.
        let same = map.insert_many(&[]);
        assert_eq!(same.leaf_ptrs(), before);
    }

    /// Cloning is O(1) (an `Arc` bump), and clones diverge independently.
    /// `get_many` must agree with per-key `get` for every key of a sorted
    /// probe batch — hits and misses mixed, across a deep tree, including
    /// keys below the minimum, above the maximum, and inside chunk gaps.
    #[test]
    fn get_many_matches_individual_gets() {
        let mut rng = SplitMix64::new(0x6E7);
        let mut map: PMap<u64, u64> = PMap::new();
        for _ in 0..3_000 {
            let k = rng.next_u64() % 8_192;
            map = map.insert(k, k * 3).0;
        }
        assert!(map.depth() >= 3, "the probe must cross a real tree");
        let mut probes: Vec<u64> = (0..512).map(|_| rng.next_u64() % 10_000).collect();
        probes.push(0); // below every stored key (almost surely)
        probes.push(u64::MAX); // above every stored key
        probes.sort_unstable();
        probes.dedup();

        let mut hits: Vec<(usize, u64)> = Vec::new();
        map.get_many(&probes, |i, v| hits.push((i, *v)));
        let expected: Vec<(usize, u64)> = probes
            .iter()
            .enumerate()
            .filter_map(|(i, k)| map.get(k).map(|&v| (i, v)))
            .collect();
        assert_eq!(hits, expected, "bulk lookup diverged from point lookups");
        assert!(
            hits.windows(2).all(|w| w[0].0 < w[1].0),
            "hits must arrive in ascending batch order"
        );

        // Empty batches visit nothing and empty maps hit nothing.
        map.get_many(&[], |_, _| panic!("no keys, no calls"));
        PMap::<u64, u64>::new().get_many(&probes, |_, _| panic!("no entries, no hits"));
    }

    #[test]
    fn clones_share_everything_until_they_diverge() {
        let mut map: PMap<u64, u64> = PMap::new();
        for k in 0..1_000u64 {
            map = map.insert(k, k).0;
        }
        let fork = map.clone();
        assert_eq!(map.leaf_ptrs(), fork.leaf_ptrs());
        let (fork, _) = fork.insert(1, 100);
        assert_eq!(map.get(&1), Some(&1));
        assert_eq!(fork.get(&1), Some(&100));
    }
}
