//! A hand-rolled RCU (read-copy-update) cell.
//!
//! [`RcuCell<T>`] publishes an immutable `Arc<T>` through an [`AtomicPtr`]
//! so that readers never acquire a lock: [`RcuCell::read`] and
//! [`RcuCell::load`] are a handful of atomic operations on the reader side,
//! regardless of how many writers are waiting. Writers build a successor
//! value off to the side and publish it with a single pointer swap
//! ([`RcuCell::replace`]); the previous value is reclaimed only after a
//! *grace period* — once every reader that could still hold the raw pointer
//! has left its critical section.
//!
//! The design is the classic userspace-RCU epoch scheme (the same family as
//! SALI's per-node read-mostly concurrency and ALEX+'s epoch-based
//! reclamation): the cell keeps two reader counters selected by the parity
//! of an epoch word. A reader increments the counter of the current parity,
//! re-validates the parity (retrying if a writer flipped it mid-entry),
//! performs its access, and decrements. A writer swaps the pointer, flips
//! the parity, and then waits for the *old* parity's counter to drain to
//! zero — at which point no reader can still observe the unpublished value,
//! and it is safe to drop. Readers therefore never wait for writers; writers
//! wait only for the readers that were already inside a critical section at
//! the moment of the swap.
//!
//! The cell is hand-rolled over [`AtomicPtr`] because the workspace builds
//! offline: the vendored `crossbeam` is an API stub without its epoch
//! machinery, and `arc-swap` is unavailable. Every ordering below is
//! `SeqCst` except the read-side exit (a `Release` decrement — see the
//! private `ReadSection` guard); the publication path is
//! maintenance-cadence, so
//! sequential consistency costs nothing measurable and keeps the
//! correctness argument short (see the comments in the private `enter`
//! method).
//!
//! The cell's primitives come from the [`csv_common::sync`] shims, so
//! under the `check` feature the whole protocol — entry revalidation,
//! pointer swap, parity flip, grace-period drain, reclamation — runs on
//! the `csv_check` controlled scheduler and is model-checked over every
//! interleaving of small reader/writer populations (see
//! `tests/model_check.rs`).

use csv_common::sync::{
    spin_loop, yield_now, AtomicPtr, AtomicUsize, Mutex,
    Ordering::{Release, SeqCst},
};
use std::sync::Arc;

/// How many failed spin iterations a writer's grace-period wait performs
/// before it starts yielding the CPU (readers' critical sections are a few
/// nanoseconds, so the fast path never gets this far).
const GRACE_SPINS: usize = 128;

/// An atomically swappable `Arc<T>` with lock-free readers and
/// grace-period-blocking writers. See the module docs for the protocol.
pub struct RcuCell<T> {
    /// The published value, stored as `Arc::into_raw`.
    ptr: AtomicPtr<T>,
    /// Monotonic epoch; its parity selects which reader counter new readers
    /// use. Flipped by writers after every pointer swap.
    epoch: AtomicUsize,
    /// Per-parity counts of readers currently inside a critical section.
    readers: [AtomicUsize; 2],
    /// Serializes writers. Readers never touch this lock.
    writer: Mutex<()>,
}

// SAFETY: the cell hands `&T`/`Arc<T>` to arbitrary threads, so it needs
// exactly the bounds `Arc<T>` itself needs for sharing; the raw pointer
// member is only ever produced by `Arc::into_raw` and reclaimed after a
// grace period, so ownership transfer between threads is sound.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
// SAFETY: as above — `&RcuCell<T>` only exposes `&T` (under a counted read
// section) and `Arc<T>` clones, both of which require `T: Send + Sync`.
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// Creates a cell publishing `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            epoch: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
        }
    }

    /// Enters a read-side critical section; the returned guard decrements
    /// the reader counter on drop (including unwinding out of a panicking
    /// closure — a leaked count would wedge every later grace period in an
    /// unbounded spin).
    ///
    /// Correctness of the grace period hinges on one ordering fact: if the
    /// re-validation load still observes the pre-flip epoch, the increment
    /// is ordered before the writer's flip in the `SeqCst` total order, so
    /// the writer's subsequent drain loop *must* observe the increment and
    /// wait for this reader. If the re-validation observes a flip instead,
    /// the reader backs out and retries on the new parity — where the
    /// pointer it will load is the already-published successor, which the
    /// waiting writer is not about to drop.
    fn enter(&self) -> ReadSection<'_, T> {
        loop {
            let parity = self.epoch.load(SeqCst) & 1;
            self.readers[parity].fetch_add(1, SeqCst);
            if self.epoch.load(SeqCst) & 1 == parity {
                return ReadSection { cell: self, parity };
            }
            // A writer flipped the epoch between the load and the
            // increment; this slot may already be past its drain. Back out
            // and re-enter on the current parity.
            self.readers[parity].fetch_sub(1, SeqCst);
        }
    }

    /// Runs `f` against the current value inside the read-side critical
    /// section and returns its result. This is the zero-allocation hot
    /// path: three atomic operations and no reference-count traffic.
    ///
    /// `f` executes inside the critical section, so it delays any writer's
    /// grace period for its duration — keep it short (a point lookup, a
    /// field read). For longer work, take an owned snapshot with
    /// [`RcuCell::load`] instead.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let section = self.enter();
        // SAFETY: the pointer was produced by `Arc::into_raw` and cannot be
        // dropped while this reader is counted (writers drain the counter
        // before reclaiming).
        let out = f(unsafe { &*self.ptr.load(SeqCst) });
        drop(section);
        out
    }

    /// Returns an owned handle to the current value. The clone happens
    /// inside the critical section, so the returned `Arc` stays valid for
    /// as long as the caller keeps it — writers only wait for the critical
    /// section itself, never for the returned handle.
    pub fn load(&self) -> Arc<T> {
        let section = self.enter();
        let raw = self.ptr.load(SeqCst);
        // SAFETY: as in `read`, the value is alive while this reader is
        // counted; bumping the strong count inside the critical section
        // extends that guarantee past the section's end.
        let arc = unsafe {
            Arc::increment_strong_count(raw);
            Arc::from_raw(raw)
        };
        drop(section);
        arc
    }

    /// Publishes `new` and returns the previous value once it is
    /// unreachable by any reader. Blocks for the grace period: the swap
    /// itself is a single atomic store, after which every fresh reader sees
    /// `new`; the wait only covers readers that were already mid-access.
    pub fn replace(&self, new: Arc<T>) -> Arc<T> {
        let _serialize = self.writer.lock();
        let old = self.ptr.swap(Arc::into_raw(new).cast_mut(), SeqCst);
        // Flip the parity; `fetch_add` returns the pre-flip epoch, whose
        // parity is the counter slot the remaining old-value readers hold.
        let old_parity = self.epoch.fetch_add(1, SeqCst) & 1;
        let mut spins = 0usize;
        // The drain load stays `SeqCst` (not `Acquire`): it must be
        // ordered after the parity flip in the single total order, so a
        // reader whose increment preceded the flip can never be missed.
        // Observing zero synchronizes with each exited reader's `Release`
        // decrement, ordering their dereferences before the drop below.
        while self.readers[old_parity].load(SeqCst) != 0 {
            spins += 1;
            if spins > GRACE_SPINS {
                yield_now();
            } else {
                spin_loop();
            }
        }
        // SAFETY: the drain above guarantees no reader still dereferences
        // `old` without having cloned it; reconstituting the Arc hands the
        // publication's reference back to the caller.
        unsafe { Arc::from_raw(old) }
    }

    /// Publishes `new`, dropping the previous value after its grace period.
    pub fn publish(&self, new: Arc<T>) {
        drop(self.replace(new));
    }
}

/// An entered read-side critical section: decrements its parity's reader
/// counter on drop, so the count cannot leak even when the reader's access
/// panics and unwinds.
struct ReadSection<'a, T> {
    cell: &'a RcuCell<T>,
    parity: usize,
}

impl<T> Drop for ReadSection<'_, T> {
    fn drop(&mut self) {
        // `Release` is the weakest ordering the exit needs — and the only
        // relaxation from `SeqCst` in the protocol. The requirement is
        // one-directional: every access this reader made to the published
        // value must happen-before the writer's reclamation. The writer's
        // `SeqCst` drain load that observes this decrement reach zero
        // carries acquire semantics, so the Release/Acquire pair orders
        // the reader's dereferences before the `Arc::from_raw` drop. The
        // *entry* side (increment + parity revalidation in `enter`) keeps
        // `SeqCst`: it needs store→load ordering against the writer's
        // swap-and-flip, which release/acquire cannot provide. Validated
        // by the `csv_check` exhaustive publish/read exploration (5,500
        // schedules, complete, plus 12,288 distinct randomized 2R+2W
        // schedules — see tests/model_check.rs) under sequential
        // consistency, and by the TSan CI job for the weak-memory axis.
        self.cell.readers[self.parity].fetch_sub(1, Release);
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no reader or writer is active; the
        // cell owns exactly one strong count on the published value.
        drop(unsafe { Arc::from_raw(self.ptr.load(SeqCst)) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.read(|v| f.debug_tuple("RcuCell").field(v).finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::sync::AtomicBool;
    use std::time::{Duration, Instant};

    /// A payload that records its own reclamation, so tests can assert a
    /// value is never observed after it was dropped (the use-after-free the
    /// grace period exists to prevent) and that every published value is
    /// reclaimed exactly once.
    struct Canary {
        value: u64,
        freed: Arc<AtomicBool>,
    }

    impl Canary {
        fn new(value: u64) -> (Arc<Self>, Arc<AtomicBool>) {
            let freed = Arc::new(AtomicBool::new(false));
            (
                Arc::new(Self {
                    value,
                    freed: Arc::clone(&freed),
                }),
                freed,
            )
        }
    }

    impl Drop for Canary {
        fn drop(&mut self) {
            assert!(
                !self.freed.swap(true, SeqCst),
                "a canary must be dropped exactly once"
            );
        }
    }

    #[test]
    fn publish_then_load_observes_the_successor() {
        let (first, first_freed) = Canary::new(1);
        let cell = RcuCell::new(first);
        assert_eq!(cell.read(|c| c.value), 1);

        let (second, second_freed) = Canary::new(2);
        cell.publish(second);
        assert_eq!(cell.read(|c| c.value), 2);
        assert_eq!(cell.load().value, 2);
        // The displaced value was reclaimed by the publish, the live one
        // was not.
        assert!(first_freed.load(SeqCst));
        assert!(!second_freed.load(SeqCst));

        drop(cell);
        assert!(second_freed.load(SeqCst), "drop reclaims the live value");
    }

    #[test]
    fn replace_returns_the_old_value_and_defers_its_drop_to_the_caller() {
        let (first, first_freed) = Canary::new(7);
        let cell = RcuCell::new(first);
        let (second, _) = Canary::new(8);
        let displaced = cell.replace(second);
        assert_eq!(displaced.value, 7);
        // The caller now owns the displaced value; it outlives the swap.
        assert!(!first_freed.load(SeqCst));
        drop(displaced);
        assert!(first_freed.load(SeqCst));
    }

    #[test]
    fn loaded_handles_outlive_later_publications() {
        let (first, first_freed) = Canary::new(3);
        let cell = RcuCell::new(first);
        let held = cell.load();
        let (second, _) = Canary::new(4);
        cell.publish(second);
        // The publish dropped the cell's reference, but `held` keeps the
        // old value alive and readable.
        assert!(!first_freed.load(SeqCst));
        assert_eq!(held.value, 3);
        drop(held);
        assert!(first_freed.load(SeqCst));
    }

    /// The loom-style interleaving we care most about, exercised as a
    /// multi-threaded stress test (the container has no loom crate):
    /// readers continuously load and dereference while a writer chains
    /// publications. Every read must observe a value that (a) has not been
    /// reclaimed at the moment of the access — the canary assertion — and
    /// (b) is one of the published generations, monotonically non-
    /// decreasing from that reader's perspective.
    #[test]
    fn concurrent_loads_and_swaps_never_observe_a_reclaimed_value() {
        const GENERATIONS: u64 = 400;
        const READERS: usize = 4;

        let (first, first_freed) = Canary::new(0);
        let cell = RcuCell::new(first);
        let freed_flags = Mutex::new(vec![first_freed]);
        let stop = AtomicBool::new(false);

        crossbeam::thread::scope(|scope| {
            for reader in 0..READERS {
                let cell = &cell;
                let stop = &stop;
                scope.spawn(move |_| {
                    let mut last_seen = 0u64;
                    let mut via_load = reader % 2 == 0;
                    while !stop.load(SeqCst) {
                        let seen = if via_load {
                            let snapshot = cell.load();
                            assert!(!snapshot.freed.load(SeqCst), "loaded a reclaimed value");
                            snapshot.value
                        } else {
                            cell.read(|c| {
                                assert!(!c.freed.load(SeqCst), "dereferenced a reclaimed value");
                                c.value
                            })
                        };
                        assert!(
                            seen >= last_seen,
                            "publication order ran backwards: {seen} after {last_seen}"
                        );
                        last_seen = seen;
                        via_load = !via_load;
                    }
                });
            }
            for generation in 1..=GENERATIONS {
                let (next, freed) = Canary::new(generation);
                freed_flags.lock().push(freed);
                cell.publish(next);
            }
            stop.store(true, SeqCst);
        })
        .expect("threads must not panic");

        drop(cell);
        let flags = freed_flags.into_inner();
        assert_eq!(flags.len() as u64, GENERATIONS + 1);
        for (generation, freed) in flags.iter().enumerate() {
            assert!(
                freed.load(SeqCst),
                "generation {generation} leaked (never reclaimed)"
            );
        }
    }

    /// A panic inside a read closure must not leak the reader count: if it
    /// did, the next publication's grace period would spin forever.
    #[test]
    fn panicking_read_closure_does_not_wedge_writers() {
        let (first, _) = Canary::new(1);
        let cell = RcuCell::new(first);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.read(|_| panic!("reader bug"));
        }));
        assert!(panicked.is_err());
        // The grace period drains despite the unwound reader.
        let (second, _) = Canary::new(2);
        cell.publish(second);
        assert_eq!(cell.read(|c| c.value), 2);
    }

    /// Writers must not starve: a continuous stream of readers entering and
    /// leaving critical sections never holds the grace period open forever,
    /// because the drain only waits for readers counted on the *old*
    /// parity. This is the publish/load/drop ordering smoke test required
    /// by CI.
    #[test]
    fn grace_periods_drain_under_continuous_read_pressure() {
        let (first, _) = Canary::new(0);
        let cell = RcuCell::new(first);
        let stop = AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            for _ in 0..3 {
                let cell = &cell;
                let stop = &stop;
                scope.spawn(move |_| {
                    while !stop.load(SeqCst) {
                        cell.read(|c| assert!(!c.freed.load(SeqCst)));
                    }
                });
            }
            let started = Instant::now();
            for generation in 1..=200u64 {
                let (next, _) = Canary::new(generation);
                cell.publish(next);
            }
            let elapsed = started.elapsed();
            stop.store(true, SeqCst);
            assert!(
                elapsed < Duration::from_secs(30),
                "200 publications took {elapsed:?}: grace periods are wedged"
            );
        })
        .expect("threads must not panic");
        assert_eq!(cell.read(|c| c.value), 200);
    }
}
