//! The durability seam of the sharded index.
//!
//! [`ShardedIndex`](crate::ShardedIndex) itself stays storage-agnostic: when
//! a [`DurabilitySink`] is attached (RCU path only), the write path reports
//! every acknowledged point write *before* publishing it, and every fold
//! point — the overlay fold, a maintenance pass, a split/merge re-layout —
//! hands the sink the freshly folded base to checkpoint. The file-backed
//! implementation (per-shard checkpoint + WAL, crash recovery, fault
//! injection) lives in the `csv_durability` crate; keeping only the trait
//! here avoids a dependency cycle and keeps the default in-memory
//! configuration allocation-identical (the hot path pays one `Option`
//! check).
//!
//! The ordering contract is write-ahead: a sink call completes — and has
//! made the write durable to the sink's own standard — before the
//! corresponding snapshot is published. A write acknowledged to a caller is
//! therefore always recoverable, and recovery can never observe state that
//! was not yet readable ("no silent data invention").

use csv_common::{Key, KeyValue, Value};

/// Per-shard staleness bookkeeping persisted alongside a checkpoint so a
/// recovered index re-arms its maintenance engine instead of restarting the
/// adaptive loop from scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaleSeed {
    /// Structural writes since the shard's last maintenance pass.
    pub writes: usize,
    /// Whether the shard has ever completed a maintenance pass.
    pub maintained: bool,
    /// Mean key level at the last maintenance pass (meaningless until
    /// `maintained`).
    pub mean_level: f64,
}

impl StaleSeed {
    /// The seed of a freshly bulk-loaded shard: never maintained, every key
    /// counted as an unapplied write (matching
    /// `StaleCounters::seeded`).
    pub fn fresh(len: usize) -> Self {
        Self {
            writes: len,
            maintained: false,
            mean_level: 0.0,
        }
    }
}

/// One shard's content and bookkeeping at a checkpoint: everything recovery
/// needs to rebuild the shard exactly.
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    /// Smallest key routed to the shard (the shard's stable identity across
    /// checkpoints; only a split/merge changes the set of lower bounds).
    pub lower_bound: Key,
    /// Every live record of the folded base, ascending.
    pub records: Vec<KeyValue>,
    /// Staleness bookkeeping to re-arm on recovery.
    pub stale: StaleSeed,
    /// Acknowledged writes this checkpoint absorbs that were *not*
    /// individually logged: 1 for a fold (the triggering write lands in the
    /// folded base directly), 0 for maintenance/split/merge checkpoints.
    /// Sinks that sequence-number their logs advance the shard's sequence
    /// by this amount so "last durable sequence" counts every acknowledged
    /// write exactly once.
    pub absorbed: u64,
}

/// One acknowledged write of a group-committed batch, as reported to the
/// sink by [`ShardedIndex::write_batch`](crate::ShardedIndex::write_batch):
/// an upsert (`Some`) or a tombstone (`None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    /// The written key.
    pub key: Key,
    /// The written slot: `Some` upsert, `None` tombstone.
    pub value: Option<Value>,
}

/// Where the sharded index reports writes and fold points. Implementations
/// must be thread-safe: different shards checkpoint and log concurrently
/// (each shard's own calls are serialized by its writer mutex).
///
/// Implementations signal unrecoverable I/O failure by panicking: the write
/// path has already promised durability to its caller, so a sink that can
/// no longer keep that promise must not let the process keep acknowledging
/// writes. The maintenance engine surfaces such panics through
/// [`MaintenanceHandle::shutdown`](crate::MaintenanceHandle::shutdown).
pub trait DurabilitySink: Send + Sync {
    /// Appends one acknowledged point write — an upsert (`Some`) or a
    /// tombstone (`None`) — to the log of the shard whose lower bound is
    /// `shard`. Called before the write's snapshot is published.
    fn log_write(&self, shard: Key, key: Key, value: Option<Value>);

    /// Appends a whole group-committed batch of writes to `shard`'s log.
    /// Called before the batch's (single) snapshot publication, so the
    /// write-ahead contract covers every record of the group at once; the
    /// group must become durable all-or-nothing — recovery may not replay a
    /// proper subset of it. The default loops [`DurabilitySink::log_write`]
    /// (each record is its own durable unit, which trivially satisfies the
    /// contract for in-memory sinks); file-backed sinks should override
    /// this with a single framed append.
    fn log_writes(&self, shard: Key, records: &[WriteRecord]) {
        for record in records {
            self.log_write(shard, record.key, record.value);
        }
    }

    /// Persists a shard's freshly folded base atomically and truncates its
    /// log. Called before the folded snapshot is published.
    fn checkpoint(&self, checkpoint: &ShardCheckpoint);

    /// Atomically replaces shards in the durable layout: `created` are
    /// checkpointed (reusing a live lower bound supersedes that shard),
    /// `retired` lower bounds are dropped. Covers bulk load (everything
    /// created), splits (two created over one range) and merges (one
    /// created, the right neighbour retired). Called before the new layout
    /// is published.
    fn replace_shards(&self, retired: &[Key], created: &[ShardCheckpoint]);

    /// Log records accumulated since the shard's last checkpoint — the
    /// maintenance engine's checkpoint-tick trigger.
    fn backlog(&self, shard: Key) -> u64;
}

/// One shard's recovered state, produced by a durability implementation and
/// consumed by
/// [`ShardedIndex::from_recovered`](crate::ShardedIndex::from_recovered).
#[derive(Debug, Clone)]
pub struct RecoveredShard {
    /// The shard's lower bound as persisted.
    pub lower_bound: Key,
    /// The shard's records: checkpoint contents with the durable log prefix
    /// replayed, ascending and de-duplicated.
    pub records: Vec<KeyValue>,
    /// Staleness bookkeeping: the checkpointed seed plus the structural
    /// effect of the replayed log records.
    pub stale: StaleSeed,
}
