//! Multi-threaded read-throughput measurement.
//!
//! A small, dependency-free harness used by the `concurrent_reads` example
//! and the scalability bench: it fans a query batch out over a configurable
//! number of threads against a [`crate::ShardedIndex`] and
//! reports aggregate throughput, which is how the SALI paper presents its
//! scalability results.

use crate::sharded::ShardedIndex;
use csv_common::traits::LearnedIndex;
use csv_common::Key;
use std::time::{Duration, Instant};

/// The result of one throughput run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Number of worker threads used.
    pub threads: usize,
    /// Total number of lookups executed across all threads.
    pub total_lookups: usize,
    /// Number of lookups that found their key.
    pub hits: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ThroughputReport {
    /// Aggregate lookups per second.
    pub fn lookups_per_second(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_lookups as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of lookups that found their key.
    pub fn hit_rate(&self) -> f64 {
        if self.total_lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.total_lookups as f64
        }
    }
}

/// Splits `queries` across `threads` workers, runs them concurrently against
/// the sharded index and returns the aggregate report. Every lookup goes
/// through [`ShardedIndex::get`] — the per-operation path a server's mixed
/// traffic takes.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn run_read_throughput<I: LearnedIndex + Sync + Send>(
    index: &ShardedIndex<I>,
    queries: &[Key],
    threads: usize,
) -> ThroughputReport {
    run_workers(queries, threads, |worker| {
        let mut hits = 0usize;
        for &q in worker {
            if index.get(q).is_some() {
                hits += 1;
            }
        }
        hits
    })
}

/// The read-mostly fast path: each worker pins a [`ShardedIndex::read_view`]
/// snapshot once and serves its whole query chunk from it — on the RCU read
/// path that drops even the per-lookup RCU counter traffic, leaving plain
/// memory reads. Falls back to [`ShardedIndex::get`] per lookup on the
/// locked path, which has no snapshots to pin.
///
/// The pinned view is a snapshot: writes published after a worker started
/// its chunk are invisible to that worker. That is the right trade for
/// read-dominated batches (analytics scans, benchmark replays), not for
/// read-your-writes traffic.
///
/// # Panics
/// Panics when `threads == 0`.
pub fn run_read_throughput_pinned<I: LearnedIndex + Sync + Send>(
    index: &ShardedIndex<I>,
    queries: &[Key],
    threads: usize,
) -> ThroughputReport {
    run_workers(queries, threads, |worker| {
        let mut hits = 0usize;
        match index.read_view() {
            Some(view) => {
                for &q in worker {
                    if view.get(q).is_some() {
                        hits += 1;
                    }
                }
            }
            None => {
                for &q in worker {
                    if index.get(q).is_some() {
                        hits += 1;
                    }
                }
            }
        }
        hits
    })
}

fn run_workers(
    queries: &[Key],
    threads: usize,
    work: impl Fn(&[Key]) -> usize + Sync,
) -> ThroughputReport {
    assert!(threads > 0, "need at least one worker thread");
    let chunk = queries.len().div_ceil(threads).max(1);
    let started = Instant::now();
    let hits: usize = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in queries.chunks(chunk) {
            handles.push(scope.spawn(|_| work(worker)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker must not panic"))
            .sum()
    })
    .expect("threads must not panic");
    ThroughputReport {
        threads,
        total_lookups: queries.len(),
        hits,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardingConfig;
    use csv_btree::BPlusTree;
    use csv_common::key::identity_records;
    use csv_datasets::Dataset;

    #[test]
    fn throughput_run_counts_hits_and_misses() {
        let keys = Dataset::Facebook.generate(20_000, 7);
        let index = ShardedIndex::<BPlusTree>::bulk_load(
            &identity_records(&keys),
            ShardingConfig::default(),
        );
        // Half the queries hit, half miss.
        let mut queries: Vec<Key> = keys.iter().copied().step_by(2).collect();
        let misses = queries.len();
        queries.extend((0..misses as u64).map(|i| *keys.last().unwrap() + 1 + i));
        let report = run_read_throughput(&index, &queries, 4);
        assert_eq!(report.threads, 4);
        assert_eq!(report.total_lookups, queries.len());
        assert_eq!(report.hits, queries.len() - misses);
        assert!((report.hit_rate() - 0.5).abs() < 1e-9);
        assert!(report.lookups_per_second() > 0.0);
    }

    #[test]
    fn single_and_many_threads_find_the_same_hits() {
        let keys = Dataset::Genome.generate(10_000, 3);
        let index = ShardedIndex::<BPlusTree>::bulk_load(
            &identity_records(&keys),
            ShardingConfig::default(),
        );
        let queries: Vec<Key> = keys.iter().copied().step_by(3).collect();
        let one = run_read_throughput(&index, &queries, 1);
        let eight = run_read_throughput(&index, &queries, 8);
        assert_eq!(one.hits, queries.len());
        assert_eq!(eight.hits, one.hits);
        assert_eq!(eight.total_lookups, one.total_lookups);
    }

    #[test]
    fn pinned_and_per_lookup_paths_agree_on_both_read_paths() {
        use crate::sharded::ReadPath;
        let keys = Dataset::Osm.generate(12_000, 5);
        let mut queries: Vec<Key> = keys.iter().copied().step_by(2).collect();
        queries.extend((0..100u64).map(|i| *keys.last().unwrap() + 1 + i));
        for path in [ReadPath::Locked, ReadPath::Rcu] {
            let index = ShardedIndex::<BPlusTree>::bulk_load(
                &identity_records(&keys),
                ShardingConfig::default().with_read_path(path),
            );
            let per_lookup = run_read_throughput(&index, &queries, 3);
            let pinned = run_read_throughput_pinned(&index, &queries, 3);
            assert_eq!(per_lookup.hits, pinned.hits, "{path:?}");
            assert_eq!(per_lookup.total_lookups, pinned.total_lookups);
        }
    }

    #[test]
    fn empty_query_batch_is_fine() {
        let index = ShardedIndex::<BPlusTree>::bulk_load(&[], ShardingConfig::default());
        let report = run_read_throughput(&index, &[], 2);
        assert_eq!(report.total_lookups, 0);
        assert_eq!(report.hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let index = ShardedIndex::<BPlusTree>::bulk_load(&[], ShardingConfig::default());
        run_read_throughput(&index, &[1, 2, 3], 0);
    }
}
