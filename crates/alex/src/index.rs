//! The ALEX tree: model-based internal routing over gapped-array data nodes,
//! plus the CSV (Algorithm 2) integration.

use crate::data_node::DataNode;
use core::ops::ControlFlow;
use csv_common::metrics::CostCounters;
use csv_common::traits::{
    IndexStats, LearnedIndex, LevelHistogram, RangeIndex, RemovableIndex, SnapshotIndex,
};
use csv_common::{Key, KeyValue, LinearModel, Value};
use csv_core::cost::SubtreeCostStats;
use csv_core::csv::{CsvIntegrable, RebuildRefusal, SubtreeRef};
use csv_core::layout::SmoothedLayout;

/// Construction parameters of the ALEX tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlexConfig {
    /// Bulk loading splits any key range larger than this into an internal
    /// node; smaller ranges become data nodes.
    pub max_data_node_keys: usize,
    /// Minimum fanout of an internal node.
    pub min_fanout: usize,
    /// Maximum fanout of an internal node.
    pub max_fanout: usize,
    /// CSV rebuilds are refused when the merged node would need more slots
    /// than this.
    pub max_merged_slots: usize,
}

impl Default for AlexConfig {
    fn default() -> Self {
        Self {
            max_data_node_keys: 4096,
            min_fanout: 8,
            max_fanout: 256,
            max_merged_slots: 1 << 26,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Internal {
        model: LinearModel,
        children: Vec<usize>,
        level: usize,
        /// `true` while the node's sub-tree has absorbed inserts/removes
        /// since CSV last considered it; internal nodes start dirty (a
        /// fresh sub-tree has never been considered). Cleared only by
        /// `CsvIntegrable::csv_mark_clean`.
        dirty: bool,
    },
    Data(DataNode),
}

/// The ALEX learned index (see the crate docs for reproduction notes).
#[derive(Debug, Clone)]
pub struct AlexIndex {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    len: usize,
    config: AlexConfig,
}

impl AlexIndex {
    /// Builds an index with a custom configuration.
    pub fn with_config(records: &[KeyValue], config: AlexConfig) -> Self {
        debug_assert!(
            records.windows(2).all(|w| w[0].key < w[1].key),
            "records must be sorted by key and unique"
        );
        let mut index = Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: 0,
            len: records.len(),
            config,
        };
        index.root = index.build_subtree(records, 1);
        index
    }

    /// The configuration used to build this index.
    pub fn config(&self) -> &AlexConfig {
        &self.config
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            id
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn free_descendants(&mut self, node_id: usize) {
        let mut stack: Vec<usize> = match &self.nodes[node_id] {
            Node::Internal { children, .. } => children.clone(),
            Node::Data(_) => return,
        };
        while let Some(id) = stack.pop() {
            if let Node::Internal { children, .. } = &self.nodes[id] {
                stack.extend(children.iter().copied());
            }
            self.nodes[id] = Node::Data(DataNode::build(&[], 0));
            self.free.push(id);
        }
    }

    fn build_subtree(&mut self, records: &[KeyValue], level: usize) -> usize {
        let n = records.len();
        if n <= self.config.max_data_node_keys {
            return self.alloc(Node::Data(DataNode::build(records, level)));
        }
        // Choose a fanout so children end up around half the data-node limit.
        let target_children = n / (self.config.max_data_node_keys / 2).max(1);
        let fanout = target_children
            .next_power_of_two()
            .clamp(self.config.min_fanout, self.config.max_fanout);
        let keys: Vec<Key> = records.iter().map(|r| r.key).collect();
        let positions: Vec<f64> = (0..n)
            .map(|i| i as f64 * (fanout - 1) as f64 / (n - 1) as f64)
            .collect();
        let mut model = LinearModel::fit_points(&keys, &positions);
        // Partition by predicted child; fall back to an even spread when the
        // fit degenerates into a single child.
        let mut boundaries = Self::partition(records, &model, fanout);
        if boundaries.iter().filter(|&&(s, e)| e > s).count() <= 1 {
            let min = records[0].key;
            let max = records[n - 1].key;
            let slope = (fanout - 1) as f64 / (max - min).max(1) as f64;
            model = LinearModel::new(slope, -slope * min as f64);
            boundaries = Self::partition(records, &model, fanout);
        }
        let mut children = Vec::with_capacity(fanout);
        // Reserve the internal node id first so child levels line up.
        let node_id = self.alloc(Node::Internal {
            model,
            children: Vec::new(),
            level,
            dirty: true,
        });
        for (start, end) in boundaries {
            let child = self.build_subtree(&records[start..end], level + 1);
            children.push(child);
        }
        if let Node::Internal { children: slot, .. } = &mut self.nodes[node_id] {
            *slot = children;
        }
        node_id
    }

    fn partition(records: &[KeyValue], model: &LinearModel, fanout: usize) -> Vec<(usize, usize)> {
        let mut boundaries = Vec::with_capacity(fanout);
        let mut start = 0usize;
        for child in 0..fanout {
            let end = if child == fanout - 1 {
                records.len()
            } else {
                start
                    + records[start..]
                        .partition_point(|r| model.predict_clamped(r.key, fanout) <= child)
            };
            boundaries.push((start, end));
            start = end;
        }
        boundaries
    }

    fn find_data_node(&self, key: Key) -> usize {
        let mut node_id = self.root;
        loop {
            match &self.nodes[node_id] {
                Node::Internal {
                    model, children, ..
                } => {
                    let idx = model.predict_clamped(key, children.len());
                    node_id = children[idx];
                }
                Node::Data(_) => return node_id,
            }
        }
    }

    /// Flags every internal node on `key`'s routing path as dirty — each of
    /// them roots a sub-tree that just absorbed a structural change.
    fn mark_path_dirty(&mut self, key: Key) {
        let mut node_id = self.root;
        loop {
            match &mut self.nodes[node_id] {
                Node::Internal {
                    model,
                    children,
                    dirty,
                    ..
                } => {
                    *dirty = true;
                    let idx = model.predict_clamped(key, children.len());
                    node_id = children[idx];
                }
                Node::Data(_) => return,
            }
        }
    }

    /// Height of the tree (deepest data-node level).
    pub fn height(&self) -> usize {
        let mut height = 1;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Internal {
                    children, level, ..
                } => {
                    height = height.max(*level);
                    stack.extend(children.iter().copied());
                }
                Node::Data(dn) => height = height.max(dn.level),
            }
        }
        height
    }

    /// Number of data nodes currently reachable.
    pub fn data_node_count(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Internal { children, .. } => stack.extend(children.iter().copied()),
                Node::Data(_) => count += 1,
            }
        }
        count
    }

    /// Depth-first visit of every data node in the sub-tree rooted at
    /// `node_id` — the one traversal behind record/key collection and the
    /// cost statistics.
    fn for_each_data_node(&self, node_id: usize, mut f: impl FnMut(&DataNode)) {
        let mut stack = vec![node_id];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Internal { children, .. } => stack.extend(children.iter().copied()),
                Node::Data(dn) => f(dn),
            }
        }
    }

    fn collect_records(&self, node_id: usize) -> Vec<KeyValue> {
        let mut out = Vec::new();
        self.for_each_data_node(node_id, |dn| out.extend(dn.records()));
        out.sort_unstable_by_key(|r| r.key);
        out
    }

    fn subtree_cost_stats(&self, node_id: usize) -> SubtreeCostStats {
        let base_level = match &self.nodes[node_id] {
            Node::Internal { level, .. } => *level,
            Node::Data(dn) => dn.level,
        };
        let mut num_keys = 0usize;
        let mut depth_sum = 0.0f64;
        let mut search_sum = 0.0f64;
        self.for_each_data_node(node_id, |dn| {
            let keys = dn.num_keys();
            num_keys += keys;
            depth_sum += (dn.level - base_level + 1) as f64 * keys as f64;
            search_sum += dn.expected_searches() * keys as f64;
        });
        if num_keys == 0 {
            SubtreeCostStats {
                num_keys: 0,
                mean_key_depth: 0.0,
                expected_searches: 0.0,
            }
        } else {
            SubtreeCostStats {
                num_keys,
                mean_key_depth: depth_sum / num_keys as f64,
                expected_searches: search_sum / num_keys as f64,
            }
        }
    }
}

impl LearnedIndex for AlexIndex {
    fn name(&self) -> &'static str {
        "ALEX"
    }

    fn bulk_load(records: &[KeyValue]) -> Self {
        Self::with_config(records, AlexConfig::default())
    }

    fn get(&self, key: Key) -> Option<Value> {
        let node_id = self.find_data_node(key);
        match &self.nodes[node_id] {
            Node::Data(dn) => dn.get(key),
            Node::Internal { .. } => unreachable!("find_data_node ends at a data node"),
        }
    }

    fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value> {
        let mut node_id = self.root;
        loop {
            counters.nodes_visited += 1;
            match &self.nodes[node_id] {
                Node::Internal {
                    model, children, ..
                } => {
                    counters.model_evals += 1;
                    let idx = model.predict_clamped(key, children.len());
                    node_id = children[idx];
                }
                Node::Data(dn) => return dn.get_counted(key, counters),
            }
        }
    }

    fn insert(&mut self, key: Key, value: Value) -> bool {
        let node_id = self.find_data_node(key);
        let (new, needs_expand) = match &mut self.nodes[node_id] {
            Node::Data(dn) => {
                let (new, _shifts) = dn.insert(key, value);
                (new, dn.density() > DataNode::MAX_DENSITY)
            }
            Node::Internal { .. } => unreachable!(),
        };
        if needs_expand {
            if let Node::Data(dn) = &mut self.nodes[node_id] {
                dn.expand();
            }
        }
        if new {
            self.len += 1;
            self.mark_path_dirty(key);
        }
        new
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> IndexStats {
        let mut histogram = LevelHistogram::new();
        let mut node_count = 0usize;
        let mut deep_node_count = 0usize;
        let mut size_bytes = 0usize;
        let mut height = 1usize;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            node_count += 1;
            match &self.nodes[id] {
                Node::Internal {
                    children, level, ..
                } => {
                    height = height.max(*level);
                    if *level >= 3 {
                        deep_node_count += 1;
                    }
                    size_bytes += children.len() * 8 + 48;
                    stack.extend(children.iter().copied());
                }
                Node::Data(dn) => {
                    height = height.max(dn.level);
                    if dn.level >= 3 {
                        deep_node_count += 1;
                    }
                    size_bytes += dn.size_bytes();
                    if dn.num_keys() > 0 {
                        histogram.record(dn.level, dn.num_keys());
                    }
                }
            }
        }
        IndexStats {
            level_histogram: histogram,
            node_count,
            deep_node_count,
            height,
            size_bytes,
            num_keys: self.len,
        }
    }

    fn level_of_key(&self, key: Key) -> Option<usize> {
        let node_id = self.find_data_node(key);
        match &self.nodes[node_id] {
            Node::Data(dn) => dn.get(key).map(|_| dn.level),
            Node::Internal { .. } => unreachable!(),
        }
    }

    fn prefetch_key(&self, key: Key) {
        // One root-model prediction, one prefetch: pull the routed child
        // node header toward the cache ahead of the resolve. Descending
        // further (as `find_data_node` does) would stall on the dependent
        // loads this pass is meant to overlap with other keys' work.
        match &self.nodes[self.root] {
            Node::Internal {
                model, children, ..
            } => {
                let child = children[model.predict_clamped(key, children.len())];
                csv_common::prefetch_slice_at(&self.nodes, child);
            }
            // A root data node is hot anyway; prefetch its predicted slot.
            Node::Data(dn) => dn.prefetch(key),
        }
    }
}

impl AlexIndex {
    /// In-order streaming scan: children of an internal node cover
    /// contiguous, ascending key ranges (the bulk loader partitions sorted
    /// records by the monotone routing model), so the sub-trees that can
    /// overlap `[lo, hi]` are exactly those between the children routing `lo`
    /// and `hi`. A `Break` can only originate from the visitor (data nodes
    /// treat running past `hi` as natural exhaustion), so it propagates
    /// unchanged through the recursion.
    fn visit_node(
        &self,
        node_id: usize,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        match &self.nodes[node_id] {
            Node::Internal {
                model, children, ..
            } => {
                let first = model.predict_clamped(lo, children.len());
                let last = model.predict_clamped(hi, children.len()).max(first);
                for &child in &children[first..=last] {
                    self.visit_node(child, lo, hi, f)?;
                }
                ControlFlow::Continue(())
            }
            Node::Data(dn) => dn.range_visit(lo, hi, f),
        }
    }
}

impl RangeIndex for AlexIndex {
    fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        let _ = self.range_visit(lo, hi, &mut |k, v| {
            out.push(KeyValue::new(k, v));
            ControlFlow::Continue(())
        });
        out
    }

    fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if lo > hi {
            return ControlFlow::Continue(());
        }
        self.visit_node(self.root, lo, hi, f)
    }
}

/// Snapshot audit: `derive(Clone)` deep-copies the node arena — internal
/// nodes own their child-pointer `Vec`s, data nodes their gapped key/value
/// arrays — plus the free list and scalars. No sharing, no interior
/// mutability; cloning is O(slots) and the clone is safe to mutate while
/// readers traverse the original.
impl SnapshotIndex for AlexIndex {}

impl RemovableIndex for AlexIndex {
    fn remove(&mut self, key: Key) -> Option<Value> {
        let node_id = self.find_data_node(key);
        let removed = match &mut self.nodes[node_id] {
            Node::Data(dn) => dn.remove(key),
            Node::Internal { .. } => unreachable!("find_data_node ends at a data node"),
        };
        if removed.is_some() {
            self.len -= 1;
            self.mark_path_dirty(key);
        }
        removed
    }
}

impl CsvIntegrable for AlexIndex {
    fn csv_tracks_dirty(&self) -> bool {
        true
    }

    fn csv_dirty_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if let Node::Internal {
                children,
                level: l,
                dirty,
                ..
            } = &self.nodes[id]
            {
                if *l == level && *dirty {
                    out.push(SubtreeRef { node_id: id, level });
                }
                stack.extend(children.iter().copied());
            }
        }
        out
    }

    fn csv_mark_clean(&mut self) {
        // Clearing the whole arena (free-listed slots included) is safe:
        // reallocated internal nodes start dirty again.
        for node in &mut self.nodes {
            if let Node::Internal { dirty, .. } = node {
                *dirty = false;
            }
        }
    }

    fn csv_max_level(&self) -> usize {
        let mut max_level = 0usize;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if let Node::Internal {
                children, level, ..
            } = &self.nodes[id]
            {
                max_level = max_level.max(*level);
                stack.extend(children.iter().copied());
            }
        }
        max_level
    }

    fn csv_subtrees_at_level(&self, level: usize) -> Vec<SubtreeRef> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if let Node::Internal {
                children, level: l, ..
            } = &self.nodes[id]
            {
                if *l == level {
                    out.push(SubtreeRef { node_id: id, level });
                }
                stack.extend(children.iter().copied());
            }
        }
        out
    }

    fn csv_collect_keys_into(&self, subtree: &SubtreeRef, buf: &mut Vec<Key>) {
        let start = buf.len();
        self.for_each_data_node(subtree.node_id, |dn| dn.keys_into(buf));
        buf[start..].sort_unstable();
    }

    fn csv_subtree_cost(&self, subtree: &SubtreeRef) -> SubtreeCostStats {
        self.subtree_cost_stats(subtree.node_id)
    }

    fn csv_rebuild_subtree(
        &mut self,
        subtree: &SubtreeRef,
        layout: &SmoothedLayout,
    ) -> Result<(), RebuildRefusal> {
        if layout.num_slots() > self.config.max_merged_slots {
            return Err(RebuildRefusal::CapacityExceeded);
        }
        let node_id = subtree.node_id;
        let level = match &self.nodes[node_id] {
            Node::Internal { level, .. } => *level,
            Node::Data(dn) => dn.level,
        };
        let records = self.collect_records(node_id);
        if records.len() != layout.num_real() {
            return Err(RebuildRefusal::StaleLayout);
        }
        // Desired slot of every real record = its rank in the smoothed
        // layout. A key mismatch means the sub-tree's contents changed since
        // the layout was planned (possible in the short-lock sharded path,
        // where writes can land between plan and apply).
        let mut ranks = Vec::with_capacity(records.len());
        for (rank, entry) in layout.entries().iter().enumerate() {
            if entry.is_real() {
                if records[ranks.len()].key != entry.key() {
                    return Err(RebuildRefusal::StaleLayout);
                }
                ranks.push(rank);
            }
        }
        let merged = DataNode::build_from_layout(
            &records,
            level,
            layout.num_slots(),
            *layout.model(),
            &ranks,
        );
        self.free_descendants(node_id);
        self.nodes[node_id] = Node::Data(merged);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::key::identity_records;
    use csv_core::cost::CostModel;
    use csv_core::{CsvConfig, CsvOptimizer};

    /// Fractal key space (same construction as the LIPP tests): gaps grow by
    /// orders of magnitude at every scale, forcing a multi-level ALEX tree.
    fn hard_keys(n: u64) -> Vec<Key> {
        let mut keys = Vec::new();
        let mut super_base = 1_000u64;
        let mut sb = 0u64;
        'outer: loop {
            let mut block_base = super_base;
            for b in 0..24u64 {
                let run = 16 + ((sb * 7 + b * 13) % 48);
                let stride = 1 + ((b * 5 + sb) % 7);
                for i in 0..run {
                    keys.push(block_base + i * stride);
                    if keys.len() as u64 >= n {
                        break 'outer;
                    }
                }
                block_base += run * stride + 100_000 * (1 + (b % 5));
            }
            super_base = block_base + 3_000_000_000 * (1 + sb % 3);
            sb += 1;
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    #[test]
    fn bulk_load_and_lookup() {
        let keys = hard_keys(50_000);
        let index = AlexIndex::bulk_load(&identity_records(&keys));
        assert_eq!(index.len(), keys.len());
        assert_eq!(index.name(), "ALEX");
        assert!(
            index.height() >= 2,
            "50k keys must not fit a single data node"
        );
        assert!(index.data_node_count() >= 2);
        for &k in keys.iter().step_by(73) {
            assert_eq!(index.get(k), Some(k));
        }
        assert_eq!(index.get(*keys.last().unwrap() + 999), None);
    }

    #[test]
    fn empty_and_small_indexes() {
        let empty = AlexIndex::bulk_load(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.get(3), None);
        assert_eq!(empty.level_of_key(3), None);
        let small = AlexIndex::bulk_load(&identity_records(&[1, 5, 9]));
        assert_eq!(small.height(), 1);
        assert_eq!(small.get(5), Some(5));
        assert_eq!(small.level_of_key(5), Some(1));
    }

    #[test]
    fn inserts_and_expansion_keep_correctness() {
        let keys: Vec<Key> = (0..30_000u64).map(|i| i * 4).collect();
        let mut index = AlexIndex::bulk_load(&identity_records(&keys));
        for i in 0..30_000u64 {
            assert!(index.insert(i * 4 + 1, i));
        }
        assert_eq!(index.len(), 60_000);
        for i in (0..30_000u64).step_by(101) {
            assert_eq!(index.get(i * 4), Some(i * 4));
            assert_eq!(index.get(i * 4 + 1), Some(i));
        }
        assert!(!index.insert(1, 77));
        assert_eq!(index.get(1), Some(77));
    }

    #[test]
    fn counted_lookups_and_stats() {
        let keys = hard_keys(60_000);
        let index = AlexIndex::bulk_load(&identity_records(&keys));
        let stats = index.stats();
        assert_eq!(stats.num_keys, keys.len());
        assert_eq!(stats.level_histogram.total(), keys.len());
        assert_eq!(stats.height, index.height());
        assert!(stats.node_count > 1);
        assert!(stats.size_bytes > keys.len() * 8);
        let mut counters = CostCounters::new();
        assert_eq!(index.get_counted(keys[777], &mut counters), Some(keys[777]));
        assert!(counters.nodes_visited >= 2);
        assert!(counters.comparisons >= 1);
    }

    /// A configuration with small data nodes and a modest fanout so the test
    /// workloads produce trees that are at least three levels deep (the
    /// regime CSV targets).
    fn deep_config() -> AlexConfig {
        AlexConfig {
            max_data_node_keys: 512,
            min_fanout: 4,
            max_fanout: 16,
            ..AlexConfig::default()
        }
    }

    #[test]
    fn csv_merges_subtrees_and_respects_cost_model() {
        let keys = hard_keys(60_000);
        let mut index = AlexIndex::with_config(&identity_records(&keys), deep_config());
        assert!(
            index.height() >= 3,
            "test needs a deep tree, got {}",
            index.height()
        );
        let before = index.stats();
        let config = CsvConfig::for_alex(0.2, CostModel::new(1.0, 2.5, 0.0));
        let report = CsvOptimizer::new(config).optimize(&mut index);
        let after = index.stats();
        assert_eq!(index.len(), keys.len());
        for &k in keys.iter().step_by(211) {
            assert_eq!(index.get(k), Some(k));
        }
        assert!(report.subtrees_considered() > 0);
        // Merging reduces the node count whenever anything was rebuilt.
        if report.subtrees_rebuilt > 0 {
            assert!(after.node_count <= before.node_count);
            assert!(after.mean_key_level() <= before.mean_key_level() + 1e-9);
            assert!(report.virtual_points_added > 0);
        }
    }

    #[test]
    fn csv_strict_threshold_rebuilds_less() {
        let keys = hard_keys(40_000);
        let run = |threshold: f64| {
            let mut index = AlexIndex::with_config(&identity_records(&keys), deep_config());
            let config = CsvConfig::for_alex(0.1, CostModel::new(1.0, 2.5, threshold));
            CsvOptimizer::new(config)
                .optimize(&mut index)
                .subtrees_rebuilt
        };
        let lenient = run(0.0);
        let strict = run(-5.0);
        assert!(strict <= lenient, "strict {strict} vs lenient {lenient}");
    }

    #[test]
    fn dirty_tracking_restricts_plan_dirty_to_touched_subtrees() {
        let keys = hard_keys(60_000);
        let mut index = AlexIndex::with_config(&identity_records(&keys), deep_config());
        assert!(index.csv_tracks_dirty());
        let config = CsvConfig::for_alex(0.2, CostModel::new(1.0, 2.5, 0.0));
        let optimizer = CsvOptimizer::new(config);

        // Freshly built: fully dirty at every level, so the incremental
        // plan equals the full plan.
        let full = optimizer.plan(&index);
        let dirty = optimizer.plan_dirty(&index);
        assert!(!full.is_empty());
        assert_eq!(full.decisions(), dirty.decisions());

        index.csv_mark_clean();
        for level in 1..=index.csv_max_level() {
            assert!(index.csv_dirty_subtrees_at_level(level).is_empty());
        }
        assert!(optimizer.plan_dirty(&index).is_empty());

        // One insert dirties exactly its routing path: at most one sub-tree
        // per level.
        let probe = *keys.last().unwrap() + 1_000;
        assert!(index.insert(probe, probe));
        let mut touched_levels = 0usize;
        for level in 1..=index.csv_max_level() {
            let touched = index.csv_dirty_subtrees_at_level(level);
            assert!(
                touched.len() <= 1,
                "level {level} has {} dirty roots",
                touched.len()
            );
            touched_levels += touched.len();
        }
        assert!(touched_levels >= 1, "the insert must dirty its path");
        let plan = optimizer.plan_dirty(&index);
        assert!(plan.len() <= touched_levels);
    }

    #[test]
    fn csv_rebuild_rejects_stale_layout_and_oversized_nodes() {
        let keys = hard_keys(20_000);
        let mut index = AlexIndex::bulk_load(&identity_records(&keys));
        let level = index.csv_max_level();
        assert!(level >= 1);
        let subtree = index
            .csv_subtrees_at_level(level)
            .into_iter()
            .next()
            .unwrap();
        let mut collected = index.csv_collect_keys(&subtree);
        collected.pop();
        let layout = SmoothedLayout::identity(&collected);
        assert_eq!(
            index.csv_rebuild_subtree(&subtree, &layout),
            Err(csv_core::csv::RebuildRefusal::StaleLayout)
        );

        // Same key count but a different key set (what a concurrent
        // remove+insert between plan and apply produces) is stale too.
        let mut swapped = index.csv_collect_keys(&subtree);
        let last = swapped.len() - 1;
        swapped[last] += 1;
        let layout = SmoothedLayout::identity(&swapped);
        assert_eq!(
            index.csv_rebuild_subtree(&subtree, &layout),
            Err(csv_core::csv::RebuildRefusal::StaleLayout)
        );

        let tiny_config = AlexConfig {
            max_merged_slots: 4,
            ..AlexConfig::default()
        };
        let mut tiny = AlexIndex::with_config(&identity_records(&keys), tiny_config);
        let subtree = tiny
            .csv_subtrees_at_level(tiny.csv_max_level())
            .into_iter()
            .next()
            .unwrap();
        let full = tiny.csv_collect_keys(&subtree);
        let layout = SmoothedLayout::identity(&full);
        assert_eq!(
            tiny.csv_rebuild_subtree(&subtree, &layout),
            Err(csv_core::csv::RebuildRefusal::CapacityExceeded)
        );
    }

    #[test]
    fn range_scans_match_oracle() {
        let keys = hard_keys(40_000);
        let index = AlexIndex::with_config(&identity_records(&keys), deep_config());
        assert_eq!(index.range(0, u64::MAX).len(), keys.len());
        for (start, span) in [(100usize, 2_000u64), (20_000, 50), (39_000, 10_000_000)] {
            let lo = keys[start];
            let hi = lo + span;
            let got = index.range(lo, hi);
            let expected: Vec<Key> = keys
                .iter()
                .copied()
                .filter(|&k| k >= lo && k <= hi)
                .collect();
            assert_eq!(
                got.iter().map(|r| r.key).collect::<Vec<_>>(),
                expected,
                "range [{lo}, {hi}]"
            );
            assert!(got.windows(2).all(|w| w[0].key < w[1].key));
        }
        assert!(index.range(10, 5).is_empty());
    }

    #[test]
    fn removals_keep_structure_consistent() {
        let keys = hard_keys(20_000);
        let mut index = AlexIndex::bulk_load(&identity_records(&keys));
        for &k in keys.iter().step_by(4) {
            assert_eq!(index.remove(k), Some(k));
        }
        let removed = keys.iter().step_by(4).count();
        assert_eq!(index.len(), keys.len() - removed);
        for (i, &k) in keys.iter().enumerate() {
            if i % 4 == 0 {
                assert_eq!(index.get(k), None, "removed key {k} resurfaced");
            } else if i % 7 == 0 {
                assert_eq!(index.get(k), Some(k));
            }
        }
        assert_eq!(index.remove(keys[0]), None, "double removal returns None");
        // Removed slots act as gaps for later inserts.
        assert!(index.insert(keys[0], 9_999));
        assert_eq!(index.get(keys[0]), Some(9_999));
        // Ranges exclude removed keys.
        let lo = keys[0];
        let hi = keys[200];
        let expected: Vec<Key> = keys
            .iter()
            .enumerate()
            .filter(|&(i, &k)| k >= lo && k <= hi && (i % 4 != 0 || i == 0))
            .map(|(_, &k)| k)
            .collect();
        assert_eq!(
            index
                .range(lo, hi)
                .iter()
                .map(|r| r.key)
                .collect::<Vec<_>>(),
            expected
        );
    }

    #[test]
    fn subtree_cost_reflects_leaf_search_component() {
        let keys = hard_keys(30_000);
        let index = AlexIndex::bulk_load(&identity_records(&keys));
        let level = index.csv_max_level();
        for subtree in index.csv_subtrees_at_level(level) {
            let cost = index.csv_subtree_cost(&subtree);
            if cost.num_keys > 0 {
                assert!(cost.expected_searches >= 1.0, "ALEX always searches leaves");
                assert!(cost.mean_key_depth >= 1.0);
            }
        }
    }
}
