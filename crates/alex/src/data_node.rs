//! ALEX data nodes: model-laid-out gapped arrays with exponential search.
//!
//! The gapped array stores a copy of the nearest left neighbour's key in
//! every unoccupied slot (leading gaps store 0), so the slot-key array is
//! always non-decreasing and a plain exponential/binary search works on it
//! directly — exactly the trick the original implementation uses.

use core::ops::ControlFlow;
use csv_common::metrics::CostCounters;
use csv_common::search::{expected_search_iterations, exponential_search};
use csv_common::{Key, KeyValue, LinearModel, Value};

/// A gapped-array leaf node.
#[derive(Debug, Clone)]
pub struct DataNode {
    /// Non-decreasing slot keys (gap slots duplicate their left neighbour).
    slot_keys: Vec<Key>,
    /// Values aligned with `slot_keys` (gap slots hold a stale value).
    slot_values: Vec<Value>,
    /// Occupancy bitmap.
    occupied: Vec<bool>,
    /// Linear model mapping a key to a slot.
    model: LinearModel,
    /// Number of real records.
    num_keys: usize,
    /// 1-based level of this node in the ALEX tree.
    pub level: usize,
}

impl DataNode {
    /// Target density after a bulk build or expansion.
    pub const TARGET_DENSITY: f64 = 0.7;
    /// Density that triggers an expansion on insert.
    pub const MAX_DENSITY: f64 = 0.85;

    /// Builds a data node over sorted records with the target density.
    pub fn build(records: &[KeyValue], level: usize) -> Self {
        let n = records.len();
        let capacity = ((n as f64 / Self::TARGET_DENSITY).ceil() as usize).max(8);
        Self::build_with_capacity(records, level, capacity)
    }

    /// Builds a data node with an explicit capacity; the model is fitted so
    /// that keys spread over the whole slot range.
    pub fn build_with_capacity(records: &[KeyValue], level: usize, capacity: usize) -> Self {
        let n = records.len();
        let capacity = capacity.max(n.max(8));
        let keys: Vec<Key> = records.iter().map(|r| r.key).collect();
        let model = if n >= 2 {
            let positions: Vec<f64> = (0..n)
                .map(|i| i as f64 * (capacity - 1) as f64 / (n - 1) as f64)
                .collect();
            LinearModel::fit_points(&keys, &positions)
        } else {
            LinearModel::default()
        };
        Self::layout(records, level, capacity, model)
    }

    /// Builds a data node with an explicit capacity, model and target slots
    /// (`ranks[i]` is the desired slot of record `i`). Used by the CSV
    /// rebuild, where the smoothed layout dictates both.
    pub fn build_from_layout(
        records: &[KeyValue],
        level: usize,
        capacity: usize,
        model: LinearModel,
        ranks: &[usize],
    ) -> Self {
        debug_assert_eq!(records.len(), ranks.len());
        let capacity = capacity.max(records.len().max(8));
        let mut node = Self {
            slot_keys: vec![0; capacity],
            slot_values: vec![0; capacity],
            occupied: vec![false; capacity],
            model,
            num_keys: records.len(),
            level,
        };
        let n = records.len();
        let mut last: i64 = -1;
        for (j, (rec, &rank)) in records.iter().zip(ranks.iter()).enumerate() {
            // Never let clamping collapse two records into one slot: leave
            // room for the records still to be placed.
            let upper = (capacity - (n - j)) as i64;
            let slot = (rank as i64).max(last + 1).min(upper) as usize;
            node.slot_keys[slot] = rec.key;
            node.slot_values[slot] = rec.value;
            node.occupied[slot] = true;
            last = slot as i64;
        }
        node.fix_gap_keys();
        node
    }

    fn layout(records: &[KeyValue], level: usize, capacity: usize, model: LinearModel) -> Self {
        let mut node = Self {
            slot_keys: vec![0; capacity],
            slot_values: vec![0; capacity],
            occupied: vec![false; capacity],
            model,
            num_keys: records.len(),
            level,
        };
        let n = records.len();
        let mut last: i64 = -1;
        for (j, rec) in records.iter().enumerate() {
            let predicted = node.model.predict_clamped(rec.key, capacity) as i64;
            // Clamp so that every remaining record still gets its own slot.
            let upper = (capacity - (n - j)) as i64;
            let slot = predicted.max(last + 1).min(upper) as usize;
            node.slot_keys[slot] = rec.key;
            node.slot_values[slot] = rec.value;
            node.occupied[slot] = true;
            last = slot as i64;
        }
        node.fix_gap_keys();
        node
    }

    /// Rewrites every gap slot's key copy so the slot-key array is sorted.
    fn fix_gap_keys(&mut self) {
        let mut current = 0u64;
        for i in 0..self.slot_keys.len() {
            if self.occupied[i] {
                current = self.slot_keys[i];
            } else {
                self.slot_keys[i] = current;
            }
        }
    }

    /// Number of stored records.
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slot_keys.len()
    }

    /// Occupied fraction of the slot array.
    pub fn density(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.num_keys as f64 / self.capacity() as f64
        }
    }

    /// The node's linear model.
    pub fn model(&self) -> &LinearModel {
        &self.model
    }

    /// Estimated in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.capacity() * (8 + 8 + 1) + std::mem::size_of::<Self>()
    }

    /// All records in ascending key order.
    pub fn records(&self) -> Vec<KeyValue> {
        (0..self.capacity())
            .filter(|&i| self.occupied[i])
            .map(|i| KeyValue::new(self.slot_keys[i], self.slot_values[i]))
            .collect()
    }

    /// Appends the stored keys (ascending within the node) to `buf` without
    /// materialising records — the zero-copy path CSV key collection uses.
    pub fn keys_into(&self, buf: &mut Vec<Key>) {
        buf.reserve(self.num_keys);
        for i in 0..self.capacity() {
            if self.occupied[i] {
                buf.push(self.slot_keys[i]);
            }
        }
    }

    /// Finds the slot holding `key`, if present, plus the probes spent.
    fn locate(&self, key: Key) -> (Option<usize>, usize) {
        if self.num_keys == 0 {
            return (None, 0);
        }
        let hint = self.model.predict_clamped(key, self.capacity());
        let out = exponential_search(&self.slot_keys, key, hint);
        let mut pos = out.position.min(self.capacity().saturating_sub(1));
        // The search may land anywhere inside a run of equal slot keys (the
        // occupied slot plus the gap copies after it, or the zero-valued
        // leading gaps). Rewind to the first slot of the run, then skip any
        // unoccupied copies forward; the occupied slot — if the key exists —
        // is the first occupied slot within the run.
        while pos > 0 && self.slot_keys[pos - 1] == key && self.slot_keys[pos] >= key {
            pos -= 1;
        }
        while pos < self.capacity() && self.slot_keys[pos] == key {
            if self.occupied[pos] {
                return (Some(pos), out.comparisons);
            }
            pos += 1;
        }
        (None, out.comparisons)
    }

    /// Point lookup.
    pub fn get(&self, key: Key) -> Option<Value> {
        self.locate(key).0.map(|slot| self.slot_values[slot])
    }

    /// Point lookup charging probes to `counters`.
    pub fn get_counted(&self, key: Key, counters: &mut CostCounters) -> Option<Value> {
        counters.model_evals += 1;
        let (slot, probes) = self.locate(key);
        counters.comparisons += probes;
        slot.map(|s| self.slot_values[s])
    }

    /// Inserts or overwrites a record. Returns `(was_new, shifts)`. The
    /// caller handles expansion when the density exceeds [`Self::MAX_DENSITY`].
    pub fn insert(&mut self, key: Key, value: Value) -> (bool, usize) {
        let capacity = self.capacity();
        if let (Some(slot), _) = self.locate(key) {
            self.slot_values[slot] = value;
            return (false, 0);
        }
        // Lower-bound slot for the new key among occupied entries.
        let hint = self.model.predict_clamped(key, capacity);
        let pos = exponential_search(&self.slot_keys, key, hint).position;
        // Case 1: the slot immediately before the insertion point is a gap.
        if pos > 0 && !self.occupied[pos - 1] {
            let slot = pos - 1;
            self.slot_keys[slot] = key;
            self.slot_values[slot] = value;
            self.occupied[slot] = true;
            self.num_keys += 1;
            return (true, 0);
        }
        // Case 2: shift right towards the nearest gap at or after `pos`.
        if let Some(gap) = (pos..capacity).find(|&i| !self.occupied[i]) {
            let mut i = gap;
            while i > pos {
                self.slot_keys[i] = self.slot_keys[i - 1];
                self.slot_values[i] = self.slot_values[i - 1];
                self.occupied[i] = true;
                i -= 1;
            }
            self.slot_keys[pos] = key;
            self.slot_values[pos] = value;
            self.occupied[pos] = true;
            self.num_keys += 1;
            return (true, gap - pos);
        }
        // Case 3: shift left towards the nearest gap before `pos`.
        if let Some(gap) = (0..pos).rev().find(|&i| !self.occupied[i]) {
            let target = pos - 1;
            let mut i = gap;
            while i < target {
                self.slot_keys[i] = self.slot_keys[i + 1];
                self.slot_values[i] = self.slot_values[i + 1];
                self.occupied[i] = true;
                i += 1;
            }
            self.slot_keys[target] = key;
            self.slot_values[target] = value;
            self.occupied[target] = true;
            self.num_keys += 1;
            return (true, target - gap);
        }
        // No gaps at all: grow by rebuilding at target density, then retry.
        let mut records = self.records();
        let at = records.partition_point(|r| r.key < key);
        records.insert(at, KeyValue::new(key, value));
        *self = Self::build(&records, self.level);
        (true, 0)
    }

    /// Removes `key`, returning its value when present. The slot becomes a
    /// gap; the key copy left behind keeps the slot-key array sorted so later
    /// searches and inserts still work.
    pub fn remove(&mut self, key: Key) -> Option<Value> {
        let (slot, _) = self.locate(key);
        let slot = slot?;
        let value = self.slot_values[slot];
        self.occupied[slot] = false;
        self.num_keys -= 1;
        Some(value)
    }

    /// All records with keys in `[lo, hi]`, in ascending key order.
    pub fn range(&self, lo: Key, hi: Key) -> Vec<KeyValue> {
        let mut out = Vec::new();
        let _ = self.range_visit(lo, hi, &mut |k, v| {
            out.push(KeyValue::new(k, v));
            ControlFlow::Continue(())
        });
        out
    }

    /// Streams records with keys in `[lo, hi]` to `f` in ascending key
    /// order. Returns `Break` iff `f` broke; running past `hi` is natural
    /// exhaustion and returns `Continue`.
    pub fn range_visit(
        &self,
        lo: Key,
        hi: Key,
        f: &mut dyn FnMut(Key, Value) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if lo > hi || self.num_keys == 0 {
            return ControlFlow::Continue(());
        }
        // The slot-key array is non-decreasing, so a partition point finds
        // the first slot that could hold `lo`; gap copies of smaller keys are
        // skipped by the occupancy check.
        let start = self.slot_keys.partition_point(|&k| k < lo);
        for slot in start..self.capacity() {
            if self.slot_keys[slot] > hi {
                break;
            }
            if self.occupied[slot] {
                f(self.slot_keys[slot], self.slot_values[slot])?;
            }
        }
        ControlFlow::Continue(())
    }

    /// Issues a cache prefetch for the slot the model predicts for `key`,
    /// without resolving the lookup (the search itself starts at the same
    /// predicted position, so this warms exactly the line it will touch).
    pub fn prefetch(&self, key: Key) {
        let hint = self.model.predict_clamped(key, self.capacity());
        csv_common::prefetch_slice_at(&self.slot_keys, hint);
    }

    /// Smallest stored key, if any.
    pub fn min_key(&self) -> Option<Key> {
        self.occupied
            .iter()
            .position(|&o| o)
            .map(|i| self.slot_keys[i])
    }

    /// Largest stored key, if any.
    pub fn max_key(&self) -> Option<Key> {
        self.occupied
            .iter()
            .rposition(|&o| o)
            .map(|i| self.slot_keys[i])
    }

    /// Rebuilds the node at the target density (an ALEX "expansion").
    pub fn expand(&mut self) {
        let records = self.records();
        *self = Self::build(&records, self.level);
    }

    /// Mean expected number of exponential-search iterations per lookup,
    /// computed from the model's log2 slot error (ALEX's cost model; also
    /// the `expected_number_of_searches` term of Eq. 22).
    pub fn expected_searches(&self) -> f64 {
        if self.num_keys == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for (slot, &occ) in self.occupied.iter().enumerate() {
            if occ {
                let err = self.model.predict_f64(self.slot_keys[slot]) - slot as f64;
                total += expected_search_iterations(err);
            }
        }
        total / self.num_keys as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csv_common::key::identity_records;

    fn records(n: u64, stride: u64) -> Vec<KeyValue> {
        identity_records(&(0..n).map(|i| i * stride + 5).collect::<Vec<_>>())
    }

    #[test]
    fn build_and_lookup() {
        let recs = records(1_000, 7);
        let node = DataNode::build(&recs, 1);
        assert_eq!(node.num_keys(), 1_000);
        assert!(node.density() <= DataNode::TARGET_DENSITY + 0.05);
        for r in recs.iter().step_by(17) {
            assert_eq!(node.get(r.key), Some(r.value));
            assert_eq!(node.get(r.key + 1), None);
        }
        assert_eq!(node.records().len(), 1_000);
        assert!(node.expected_searches() >= 1.0);
    }

    #[test]
    fn empty_and_tiny_nodes() {
        let node = DataNode::build(&[], 1);
        assert_eq!(node.num_keys(), 0);
        assert_eq!(node.get(1), None);
        assert_eq!(node.expected_searches(), 0.0);
        let node = DataNode::build(&[KeyValue::new(10, 100)], 2);
        assert_eq!(node.get(10), Some(100));
        assert_eq!(node.level, 2);
    }

    #[test]
    fn inserts_use_gaps_then_shift_then_expand() {
        let recs = records(100, 10);
        let mut node = DataNode::build(&recs, 1);
        let mut total_new = 0usize;
        for i in 0..100u64 {
            let (new, _shifts) = node.insert(i * 10 + 6, i);
            assert!(new);
            total_new += 1;
        }
        assert_eq!(node.num_keys(), 100 + total_new);
        for i in 0..100u64 {
            assert_eq!(node.get(i * 10 + 5), Some(i * 10 + 5));
            assert_eq!(node.get(i * 10 + 6), Some(i));
        }
        // Overwrite.
        let (new, _) = node.insert(6, 999);
        assert!(!new);
        assert_eq!(node.get(6), Some(999));
        // Force an expansion by filling far past the original capacity.
        let before_capacity = node.capacity();
        for i in 0..2_000u64 {
            node.insert(1_000_000 + i, i);
        }
        assert!(node.capacity() > before_capacity);
        assert_eq!(node.get(1_000_000 + 1999), Some(1999));
    }

    #[test]
    fn counted_lookup_reports_probes() {
        let recs = records(10_000, 3);
        let node = DataNode::build(&recs, 1);
        let mut counters = CostCounters::new();
        assert_eq!(
            node.get_counted(recs[5_000].key, &mut counters),
            Some(recs[5_000].value)
        );
        assert!(counters.comparisons >= 1);
        assert_eq!(counters.model_evals, 1);
    }

    #[test]
    fn layout_build_places_keys_at_requested_ranks() {
        let recs = records(50, 100);
        let ranks: Vec<usize> = (0..50).map(|i| i * 2).collect();
        let keys: Vec<Key> = recs.iter().map(|r| r.key).collect();
        let positions: Vec<f64> = ranks.iter().map(|&r| r as f64).collect();
        let model = LinearModel::fit_points(&keys, &positions);
        let node = DataNode::build_from_layout(&recs, 3, 100, model, &ranks);
        assert_eq!(node.num_keys(), 50);
        assert_eq!(node.capacity(), 100);
        assert!((node.density() - 0.5).abs() < 0.01);
        for r in &recs {
            assert_eq!(node.get(r.key), Some(r.value));
        }
        // A perfectly matching layout needs (almost) no search iterations.
        assert!(node.expected_searches() < 1.5);
    }

    #[test]
    fn expansion_preserves_contents() {
        let recs = records(500, 11);
        let mut node = DataNode::build(&recs, 1);
        node.expand();
        assert_eq!(node.num_keys(), 500);
        for r in recs.iter().step_by(23) {
            assert_eq!(node.get(r.key), Some(r.value));
        }
    }

    #[test]
    fn skewed_models_still_answer_correctly() {
        // A node whose model is badly wrong (huge outlier) must still find
        // every key via exponential search.
        let mut keys: Vec<Key> = (0..500).collect();
        keys.push(10_000_000_000);
        let node = DataNode::build(&identity_records(&keys), 1);
        for &k in &keys {
            assert_eq!(node.get(k), Some(k));
        }
        assert!(node.expected_searches() > 1.0);
    }
}
