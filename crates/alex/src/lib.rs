//! A from-scratch reproduction of **ALEX** — the updatable adaptive learned
//! index [Ding et al., SIGMOD 2020] — plus the CSV integration hooks of the
//! paper under reproduction.
//!
//! ALEX organises keys in a tree of linear models: internal nodes route a key
//! to one of their children with a linear model; data nodes store records in
//! a *gapped array* laid out by a per-node linear model and answer lookups
//! with exponential search around the predicted slot. Gaps absorb inserts
//! cheaply; node expansion refits the model when density gets too high.
//!
//! Unlike LIPP, ALEX has a leaf-search component, so CSV's rebuild decision
//! for ALEX uses the Eq. 22 cost model: merging a sub-tree into one big data
//! node saves traversal levels but may increase the expected number of
//! exponential-search iterations.
//!
//! Documented deviations from the original C++ implementation: bulk loading
//! uses a single cost heuristic (split while a data node would exceed the
//! size/error bounds) instead of the full fanout-tree optimisation, and
//! overfull data nodes are expanded in place rather than split sideways.
//! Both simplifications preserve the structural behaviour CSV interacts
//! with: gapped-array leaves, exponential search whose cost tracks the model
//! error, and a hierarchy whose depth grows with the key-space difficulty.

#![forbid(unsafe_code)]

mod data_node;
mod index;

pub use data_node::DataNode;
pub use index::{AlexConfig, AlexIndex};

#[cfg(test)]
mod proptests {
    use super::AlexIndex;
    use csv_common::key::identity_records;
    use csv_common::traits::LearnedIndex;
    use csv_core::cost::CostModel;
    use csv_core::{CsvConfig, CsvOptimizer};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Bulk-loaded ALEX answers membership queries exactly.
        #[test]
        fn lookup_matches_oracle(mut keys in prop::collection::vec(0u64..2_000_000, 1..500)) {
            keys.sort_unstable();
            keys.dedup();
            let index = AlexIndex::bulk_load(&identity_records(&keys));
            prop_assert_eq!(index.len(), keys.len());
            for &k in &keys {
                prop_assert_eq!(index.get(k), Some(k));
            }
            for probe in [1u64, 999_999, 1_999_999] {
                let expected = keys.binary_search(&probe).is_ok();
                prop_assert_eq!(index.get(probe).is_some(), expected);
            }
        }

        /// Random inserts keep ALEX consistent with a BTreeMap oracle.
        #[test]
        fn inserts_match_btreemap(
            mut base in prop::collection::vec(0u64..500_000, 1..200),
            extra in prop::collection::vec((0u64..500_000, 0u64..100), 0..200),
        ) {
            base.sort_unstable();
            base.dedup();
            let mut index = AlexIndex::bulk_load(&identity_records(&base));
            let mut oracle: std::collections::BTreeMap<u64, u64> =
                base.iter().map(|&k| (k, k)).collect();
            for (k, v) in extra {
                index.insert(k, v);
                oracle.insert(k, v);
            }
            prop_assert_eq!(index.len(), oracle.len());
            for (&k, &v) in &oracle {
                prop_assert_eq!(index.get(k), Some(v));
            }
        }

        /// CSV optimisation preserves every answer.
        #[test]
        fn csv_preserves_answers(mut keys in prop::collection::vec(0u64..3_000_000, 50..400)) {
            keys.sort_unstable();
            keys.dedup();
            let mut index = AlexIndex::bulk_load(&identity_records(&keys));
            let config = CsvConfig::for_alex(0.2, CostModel::default());
            CsvOptimizer::new(config).optimize(&mut index);
            prop_assert_eq!(index.len(), keys.len());
            for &k in &keys {
                prop_assert_eq!(index.get(k), Some(k));
            }
        }
    }
}
