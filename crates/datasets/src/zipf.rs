//! Zipfian (power-law) query sampling.
//!
//! The paper's read-only protocol queries keys uniformly, but skewed access
//! is exactly the regime SALI's probability models target and the regime in
//! which CSV's promotion of frequently visited deep keys pays off most. This
//! module provides a deterministic Zipfian sampler over key ranks so the
//! harness and examples can also evaluate skewed workloads.
//!
//! Sampling uses the classic rejection-free inversion method of Gray et al.
//! ("Quickly generating billion-record synthetic databases", SIGMOD '94),
//! which needs only two precomputed constants per (n, θ) pair and O(1) work
//! per sample.

use csv_common::rng::XorShift64;
use csv_common::Key;

/// A Zipfian distribution over ranks `0..n` with skew parameter `theta`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta_theta: f64,
    rng: XorShift64,
}

impl Zipfian {
    /// Creates a sampler over `n` ranks with skew `theta ∈ (0, 1)`.
    /// `theta = 0.99` matches YCSB's default "zipfian" setting; values close
    /// to 0 degrade towards uniform.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipfian needs at least one rank");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zeta_n = Self::zeta(n, theta);
        let zeta_theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_theta / zeta_n);
        Self {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta_theta,
            rng: XorShift64::new(seed),
        }
    }

    /// The generalised harmonic number `Σ_{i=1..n} 1/i^theta`.
    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws the next rank in `0..n`; rank 0 is the most popular.
    pub fn next_rank(&mut self) -> usize {
        let u = self.rng.next_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        rank.min(self.n - 1)
    }

    /// Draws `count` query keys from `keys` (the i-th most popular key is
    /// `keys[scramble(i)]`, so popularity is spread over the key space rather
    /// than concentrated at the smallest keys).
    pub fn sample_keys(&mut self, keys: &[Key], count: usize) -> Vec<Key> {
        assert!(!keys.is_empty(), "cannot sample from an empty key set");
        (0..count)
            .map(|_| {
                let rank = self.next_rank();
                // Multiplicative scramble so the hot set is not one contiguous
                // key range (which would make every index look artificially
                // cache-friendly).
                let scrambled =
                    (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize % keys.len();
                keys[scrambled]
            })
            .collect()
    }

    /// Access probability of the most popular rank (a closed-form property of
    /// the distribution, useful for assertions and for sizing SALI's
    /// hot-probability threshold).
    pub fn top_rank_probability(&self) -> f64 {
        1.0 / self.zeta_n
    }

    /// The (unused but documented) harmonic constant for rank 2, exposed for
    /// diagnostics.
    pub fn zeta_theta(&self) -> f64 {
        self.zeta_theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_stay_in_bounds_and_skew_towards_zero() {
        let mut z = Zipfian::new(10_000, 0.99, 7);
        let mut counts = vec![0usize; 10_000];
        for _ in 0..100_000 {
            let r = z.next_rank();
            assert!(r < 10_000);
            counts[r] += 1;
        }
        // Rank 0 must be the most popular by a wide margin.
        let max_rest = counts[1..].iter().copied().max().unwrap();
        assert!(
            counts[0] > max_rest,
            "rank 0 hit {} vs max other {}",
            counts[0],
            max_rest
        );
        // The head dominates: the top 1% of ranks should absorb well over a
        // third of the accesses at theta = 0.99.
        let head: usize = counts[..100].iter().sum();
        assert!(head as f64 > 0.35 * 100_000.0, "head share {head}");
    }

    #[test]
    fn lower_theta_is_closer_to_uniform() {
        let head_share = |theta: f64| {
            let mut z = Zipfian::new(1_000, theta, 3);
            let mut head = 0usize;
            for _ in 0..50_000 {
                if z.next_rank() < 10 {
                    head += 1;
                }
            }
            head
        };
        let skewed = head_share(0.99);
        let flat = head_share(0.2);
        assert!(
            skewed > flat,
            "theta=0.99 head {skewed} vs theta=0.2 head {flat}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let keys: Vec<Key> = (0..5_000u64).map(|i| i * 3 + 11).collect();
        let a = Zipfian::new(keys.len(), 0.9, 42).sample_keys(&keys, 1_000);
        let b = Zipfian::new(keys.len(), 0.9, 42).sample_keys(&keys, 1_000);
        let c = Zipfian::new(keys.len(), 0.9, 43).sample_keys(&keys, 1_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|k| keys.binary_search(k).is_ok()));
    }

    #[test]
    fn top_rank_probability_matches_empirical_frequency() {
        let mut z = Zipfian::new(500, 0.8, 9);
        let expected = z.top_rank_probability();
        let mut hits = 0usize;
        let trials = 200_000;
        for _ in 0..trials {
            if z.next_rank() == 0 {
                hits += 1;
            }
        }
        let observed = hits as f64 / trials as f64;
        assert!(
            (observed - expected).abs() < 0.02,
            "observed {observed:.4} vs expected {expected:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_rejected() {
        Zipfian::new(10, 1.5, 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_domain_rejected() {
        Zipfian::new(0, 0.5, 1);
    }
}
